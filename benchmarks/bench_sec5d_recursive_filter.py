"""§V-D: recursive filtering of ~50 s of stereo audio (2^21 samples).

Paper (RTX 4070 SUPER): CUDA-only 67.5 us -> 58 us with the FIR
convolution on Tensor Cores, the savings coming from relieving the
memory subsystem (TC utilization a mere 8%).
"""

import pytest

from repro.apps import recursive_filter
from repro.perfmodel import PerfModel, format_table
from repro.targets.device import RTX4070S

from .harness import print_header


@pytest.mark.benchmark(group="sec5d")
def test_sec5d_recursive_filter(benchmark):
    model = PerfModel(RTX4070S)
    rows = []
    times = {}
    for variant in ("cuda", "tensor"):
        app = recursive_filter.build(variant)
        app.verify(rtol=3e-2, atol=3e-2)
        _, counters = app.run_and_measure()
        t = model.estimate(counters, kernels=app.kernels)
        times[variant] = t
        rows.append(
            [
                variant,
                f"{t.us():.1f}",
                f"{t.tensor_s * 1e6:.1f}",
                f"{t.cuda_s * 1e6:.1f}",
                f"{t.dram_s * 1e6:.1f}",
                f"{t.l1_s * 1e6:.1f}",
            ]
        )
    print_header("SS V-D — recursive filter, 2^21 stereo samples (us)")
    print(
        format_table(
            ["variant", "total", "tensor", "cuda", "dram", "l1"], rows
        )
    )
    print("paper: 67.5 us CUDA-only -> 58 us with TC convolution (1.16x)")
    speedup = times["cuda"].total_s / times["tensor"].total_s
    print(f"modeled speedup: {speedup:.2f}x")
    # shape: a modest end-to-end effect at best; the TC convolution
    # removes the FIR's scalar FLOPs and most of its L1 traffic, but both
    # variants sit at the DRAM floor of our model (the paper's 1.16x came
    # from L1-bandwidth relief its profiler measured directly)
    assert times["tensor"].total_s <= times["cuda"].total_s * 1.01
    assert times["tensor"].cuda_s < times["cuda"].cuda_s
    assert times["tensor"].l1_s < times["cuda"].l1_s
    assert speedup < 2.0  # the recurrence dominates; no miracle win
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
