"""Ablation: which rule classes are load-bearing for instruction selection?

The paper's §III-B narrative: lowering patterns alone cannot match
Halide's simplifier output — the axiomatic rules must re-derive the
canonical nested forms inside EqSat.  This ablation disables axiom
subsets and shows selection failing, plus measures how many phased
iterations each workload actually needs (the fixed-iteration rule
schedule of §III-D.2).
"""

import pytest

from repro import frontend as hl
from repro.eqsat import rewrite
from repro.hardboiled import select_instructions
from repro.hardboiled.rules_axiomatic import axiomatic_rules
from repro.lowering import lower
from repro.perfmodel import format_table

from .harness import print_header


def build_amx_matmul():
    from repro.apps.matmul import build_amx

    return build_amx(layout="standard")


def select_with_rules(lowered, rule_filter, iterations=14):
    """Run selection with a filtered axiomatic rule set."""
    import repro.hardboiled.tile_extractor as te

    full_rules, relations = axiomatic_rules()
    filtered = [r for r in full_rules if rule_filter(r)]
    original = te.axiomatic_rules
    te.axiomatic_rules = lambda: (filtered, relations)
    # _rules_for caches per accelerator kind; drop it so the patched
    # axiom set is actually picked up (and again afterwards, so later
    # callers re-see the full set)
    te._rules_for.cache_clear()
    try:
        return select_instructions(lowered, iterations=iterations)
    finally:
        te.axiomatic_rules = original
        te._rules_for.cache_clear()


@pytest.mark.benchmark(group="ablation")
def test_ablation_axiom_classes(benchmark):
    app = build_amx_matmul()
    lowered = lower(app.output)
    rows = []

    # full rule set: everything maps
    _, report = select_instructions(lowered)
    rows.append(["full axiom set", report.num_mapped, len(report.selections)])
    assert report.all_mapped

    # no axioms at all: only the trivially-canonical store maps
    _, report_none = select_with_rules(lowered, lambda r: False)
    rows.append(["no axioms", report_none.num_mapped, len(report_none.selections)])
    assert not report_none.all_mapped

    # drop the broadcast-into-load push (paper Fig. 10c rule 1):
    # the B operand stays hidden behind the simplifier's
    # broadcast-of-load form and the MatMul cannot match
    def without_load_push(rule):
        return "MultiplyLanes" not in str(rule.actions)

    _, report_nlp = select_with_rules(lowered, without_load_push)
    rows.append(
        ["without broadcast->load push", report_nlp.num_mapped,
         len(report_nlp.selections)]
    )
    assert not report_nlp.all_mapped

    print_header("Ablation — axiomatic rule classes (AMX MatMul, std layout)")
    print(format_table(["rule set", "stores mapped", "stores total"], rows))
    print(
        "paper SS III-B: without the axioms the simplifier's local"
        " rewrites hide the tensor patterns from any syntactic matcher"
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.mark.benchmark(group="ablation")
def test_ablation_iteration_budget(benchmark):
    """How many phased iterations does each pattern family need?"""
    from repro.apps import conv1d

    rows = []
    needed = {}
    for name, make in (
        ("AMX matmul (standard)", lambda: build_amx_matmul().output),
        ("WMMA conv1d", lambda: conv1d.build("tensor", taps=16, rows=1).output),
    ):
        lowered = lower(make())
        for iters in (2, 4, 6, 8, 10, 14):
            _, report = select_instructions(lowered, iterations=iters)
            if report.all_mapped:
                needed[name] = iters
                rows.append([name, iters])
                break
        else:
            needed[name] = None
            rows.append([name, ">14"])
    print_header("Ablation — phased iterations needed to map (SS III-D.2)")
    print(format_table(["workload", "iterations"], rows))
    assert all(v is not None for v in needed.values())
    # the conv pattern is already canonical; matmul needs re-derivation
    assert needed["WMMA conv1d"] <= needed["AMX matmul (standard)"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
