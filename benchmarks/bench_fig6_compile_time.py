"""Figure 6: kernel compile time and EqSat time vs kernel size.

Unlike the runtime figures this one is *directly measured*: it times our
actual lowering passes and the actual equality-saturation runs.  The
paper's claim: EqSat time grows manageably with kernel size because
tensorized statements are small and the schedule-guided search space is
narrow (§V-A).
"""

import pytest

from repro.apps import conv1d
from repro.hardboiled import select_instructions
from repro.lowering import lower
from repro.perfmodel import format_table

from .harness import eqsat_profile_row, print_eqsat_profile, print_header

KERNEL_SIZES = [8, 32, 56, 96, 160, 256]


@pytest.mark.benchmark(group="fig6")
def test_fig6_compile_time(benchmark):
    rows = []
    profile_rows = []
    eqsat_times = {}
    total_times = {}
    for k in KERNEL_SIZES:
        app = conv1d.build("tensor", taps=k, rows=1)
        lowered = lower(app.output)
        lower_s = sum(lowered.pass_seconds.values())
        tensorized, report = select_instructions(lowered, strict=True)
        eqsat_times[k] = report.eqsat_seconds
        total_times[k] = lower_s + report.total_seconds
        rows.append(
            [
                k,
                f"{report.eqsat_seconds:.3f}",
                f"{total_times[k]:.3f}",
                report.num_mapped,
                max(s.egraph_nodes for s in report.selections),
            ]
        )
        profile_rows.append(eqsat_profile_row(f"k={k}", report.eqsat_profile))
    print_header(
        "Figure 6 — Conv1D compile time vs kernel size (seconds, measured)"
    )
    print(
        format_table(
            ["k", "eqsat (s)", "total compile (s)", "stores mapped",
             "max e-nodes"],
            rows,
        )
    )
    print(
        "paper: equality saturation stays a manageable fraction of"
        " compile time and grows slowly with k"
    )
    print()
    print("saturation-phase breakdown (engine profile):")
    print_eqsat_profile(profile_rows)
    # shape: growth from k=8 to k=256 stays well under the 32x kernel
    # growth (the per-store e-graphs don't blow up)
    assert eqsat_times[256] < eqsat_times[8] * 32
    assert all(t < 30.0 for t in eqsat_times.values())

    app = conv1d.build("tensor", taps=32, rows=1)
    lowered = lower(app.output)
    benchmark.pedantic(
        lambda: select_instructions(lowered), rounds=1, iterations=1
    )
