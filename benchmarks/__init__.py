"""Paper-reproduction benchmarks (see benchmarks/README.md).

This package marker lets pytest import the ``bench_*`` modules with
their relative ``from .harness import ...`` imports intact:

    PYTHONPATH=src python -m pytest benchmarks/ -q
"""
