"""Figures 7 & 8: microbenchmarks at kernel size 16 and 32.

Paper (RTX 4070 SUPER): at k=16 conv2d 3.1x, downsample 4.6x, upsample
1.4x; at k=32 conv2d 2.4x, downsample 6.1x, upsample 2.9x.  (The
upsample tile geometry here is built for 16-tap multiphase kernels, so
the k=32 upsample point reuses it — noted in EXPERIMENTS.md.)
"""

import pytest

from repro.apps import conv2d, downsample, upsample
from repro.perfmodel import PerfModel, format_table
from repro.targets.device import RTX4070S

from .harness import both_variants, print_header


def run_micro(k: int):
    model = PerfModel(RTX4070S)
    rows = []
    speedups = {}
    for module, name in (
        (conv2d, "conv2d"),
        (downsample, "downsample"),
        (upsample, "upsample"),
    ):
        params = {"taps": k}
        if module is upsample:
            params = {}  # fixed 16-tap multiphase geometry
        cuda_t, tensor_t, _ = both_variants(module, RTX4070S, **params)
        peak = model.theoretical_peak(
            module.theoretical_macs(k), module.theoretical_io_bytes(k)
        )
        speedup = cuda_t.total_s / tensor_t.total_s
        speedups[name] = speedup
        rows.append(
            [
                name,
                f"{cuda_t.ms():.3f} ({cuda_t.bound})",
                f"{tensor_t.ms():.3f} ({tensor_t.bound})",
                f"{speedup:.2f}x",
                f"{peak.ms():.3f}",
            ]
        )
    return rows, speedups


@pytest.mark.benchmark(group="fig7")
def test_fig7_micro_k16(benchmark):
    rows, speedups = run_micro(16)
    print_header("Figure 7 — Microbenchmarks, kernel size 16 (ms)")
    print(
        format_table(
            ["bench", "CUDA-only", "Tensor Cores", "speedup", "peak"], rows
        )
    )
    print("paper: conv2d 3.1x, downsample 4.6x, upsample 1.4x")
    # our analytic CUDA baseline is more favourable than the paper's
    # measured one (see EXPERIMENTS.md), so the asserted shape is: TC
    # never loses, conv2d clearly wins
    assert speedups["conv2d"] > 1.5
    assert speedups["downsample"] >= 0.99
    assert speedups["upsample"] >= 0.99
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.mark.benchmark(group="fig8")
def test_fig8_micro_k32(benchmark):
    rows, speedups = run_micro(32)
    print_header("Figure 8 — Microbenchmarks, kernel size 32 (ms)")
    print(
        format_table(
            ["bench", "CUDA-only", "Tensor Cores", "speedup", "peak"], rows
        )
    )
    print("paper: conv2d 2.4x, downsample 6.1x, upsample 2.9x")
    assert speedups["conv2d"] > 1.5
    assert speedups["downsample"] >= 0.99
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
