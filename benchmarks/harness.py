"""Shared helpers for the paper-reproduction benchmarks.

Each benchmark compiles the real pipelines (including HARDBOILED's EqSat
instruction selection, whose wall-clock time is genuinely measured),
executes them on the simulators to collect op/byte counters, and feeds
the counters into the roofline device model to produce paper-style
tables.  Absolute times are model estimates; the qualitative shape
(winner, bound type, crossovers) is asserted.

Two kinds of numbers appear in the reports:

* *modeled* times (:func:`measure`) come from counters collected on the
  instrumented interpreter backend and the roofline device model;
* *host wall-clock* times (:func:`wallclock`, :func:`backend_speedup`)
  time the simulation itself on this machine, and exist to compare the
  interpreter backend against the compiled NumPy backend
  (``backend="compile"``) end to end.
"""

from __future__ import annotations

import time

from repro.perfmodel import PerfModel, TimeBreakdown, format_table
from repro.targets.device import RTX4070S


def measure(app, device) -> TimeBreakdown:
    """Run an app and model its full-size runtime on ``device``."""
    out, counters = app.run_and_measure()
    model = PerfModel(device)
    return model.estimate(counters, kernels=app.kernels)


def wallclock(app, backend: str, repeats: int = 3) -> float:
    """Best-of-``repeats`` host seconds for one run on ``backend``.

    A warm-up run is taken first so one-time costs (kernel compilation
    on the compiled backend) are not billed to the steady state — the
    kernel cache makes every later run a cache hit.
    """
    app.run(backend=backend)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        app.run(backend=backend)
        best = min(best, time.perf_counter() - start)
    return best


def backend_speedup(app, repeats: int = 3):
    """(interpreter_s, compiled_s, speedup) host wall-clock for an app."""
    interp_s = wallclock(app, "interpret", repeats)
    compiled_s = wallclock(app, "compile", repeats)
    return interp_s, compiled_s, interp_s / compiled_s


def backend_report(apps, repeats: int = 3):
    """Wall-clock rows ``[name, interp, compiled, speedup]`` for apps.

    ``apps`` is an iterable of (label, app) pairs; returns (rows,
    speedups-by-label) ready for :func:`repro.perfmodel.format_table`.
    """
    rows = []
    speedups = {}
    for label, app in apps:
        interp_s, compiled_s, ratio = backend_speedup(app, repeats)
        speedups[label] = ratio
        rows.append(
            [
                label,
                f"{interp_s * 1e3:.1f} ms",
                f"{compiled_s * 1e3:.2f} ms",
                f"{ratio:.1f}x",
            ]
        )
    return rows, speedups


def both_variants(module, device, **params):
    """(cuda_time, tensor_time, tensor_report) for one workload."""
    cuda_app = module.build("cuda", **params)
    tensor_app = module.build("tensor", **params)
    cuda_t = measure(cuda_app, device)
    tensor_t = measure(tensor_app, device)
    return cuda_t, tensor_t, tensor_app.report


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def eqsat_profile_row(label, profile) -> list:
    """One report row from a saturation profile dict.

    ``profile`` is ``ScheduleStats.profile()`` /
    ``SelectionReport.eqsat_profile``: total/match/apply/rebuild seconds
    plus delta/full round and match counters.
    """
    return [
        label,
        f"{profile.get('total_s', 0.0) * 1e3:.2f} ms",
        f"{profile.get('match_s', 0.0) * 1e3:.2f} ms",
        f"{profile.get('apply_s', 0.0) * 1e3:.2f} ms",
        f"{profile.get('rebuild_s', 0.0) * 1e3:.2f} ms",
        int(profile.get("delta_rounds", 0)),
        int(profile.get("full_rounds", 0)),
        int(profile.get("matches", 0)),
    ]


EQSAT_PROFILE_HEADER = [
    "workload",
    "eqsat total",
    "match",
    "apply",
    "rebuild",
    "delta rounds",
    "full rounds",
    "matches",
]


def print_eqsat_profile(rows) -> None:
    """Print a match/apply/rebuild breakdown table for saturation runs,
    so perf work has a profile to point at."""
    print(format_table(EQSAT_PROFILE_HEADER, rows))


# -- warm-start (artifact cache) telemetry -------------------------------------

ARTIFACT_HEADER = [
    "workload",
    "cache",
    "compile",
    "eqsat",
    "restore",
    "stores",
]


def artifact_row(label, report, seconds) -> list:
    """One warm-start report row from a ``SelectionReport``.

    ``report.artifact_cache`` says which path ran ("hit" restored the
    artifact, "miss" paid saturation + codegen); ``seconds`` is the
    caller-measured end-to-end compile wall-clock.
    """
    return [
        label,
        report.artifact_cache or "-",
        f"{seconds * 1e3:.2f} ms",
        f"{report.eqsat_seconds * 1e3:.2f} ms",
        f"{report.restore_seconds * 1e3:.2f} ms",
        f"{report.num_mapped}/{report.num_stores}",
    ]


def print_artifact_report(rows, store=None) -> None:
    """Print per-workload artifact-cache rows plus store counters."""
    print(format_table(ARTIFACT_HEADER, rows))
    if store is not None:
        stats = store.stats
        print(
            f"store: {stats.hits} hits, {stats.misses} misses"
            f" ({stats.stale} stale), {stats.writes} writes,"
            f" load {stats.load_seconds * 1e3:.2f} ms /"
            f" write {stats.store_seconds * 1e3:.2f} ms"
        )


# -- serving-throughput telemetry ----------------------------------------------

SERVING_HEADER = [
    "workload",
    "requests",
    "naive loop",
    "batched",
    "per-request",
    "speedup",
]


def serving_row(label, requests, naive_s, batched_s) -> list:
    """One throughput row: naive per-call loop vs. batched ``run_many``."""
    return [
        label,
        requests,
        f"{naive_s * 1e3:.1f} ms",
        f"{batched_s * 1e3:.1f} ms",
        f"{batched_s / requests * 1e3:.2f} ms",
        f"{naive_s / batched_s:.1f}x",
    ]


def print_serving_report(rows) -> None:
    print(format_table(SERVING_HEADER, rows))
