"""Shared helpers for the paper-reproduction benchmarks.

Each benchmark compiles the real pipelines (including HARDBOILED's EqSat
instruction selection, whose wall-clock time is genuinely measured),
executes them on the simulators to collect op/byte counters, and feeds
the counters into the roofline device model to produce paper-style
tables.  Absolute times are model estimates; the qualitative shape
(winner, bound type, crossovers) is asserted.
"""

from __future__ import annotations

from repro.perfmodel import PerfModel, TimeBreakdown, format_table
from repro.targets.device import A100, RTX4070S


def measure(app, device) -> TimeBreakdown:
    """Run an app and model its full-size runtime on ``device``."""
    out, counters = app.run_and_measure()
    model = PerfModel(device)
    return model.estimate(counters, kernels=app.kernels)


def both_variants(module, device, **params):
    """(cuda_time, tensor_time, tensor_report) for one workload."""
    cuda_app = module.build("cuda", **params)
    tensor_app = module.build("tensor", **params)
    cuda_t = measure(cuda_app, device)
    tensor_t = measure(tensor_app, device)
    return cuda_t, tensor_t, tensor_app.report


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
