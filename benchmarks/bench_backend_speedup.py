"""Interpreter vs. compiled-NumPy backend: end-to-end host wall-clock.

Unlike the figure benchmarks (whose device times are roofline-model
estimates), this one is *directly measured*: it times the same pipeline
executed through the instrumented interpreter and through the compiled
NumPy kernels (``backend="compile"``), on this machine.  The compiled
backend must be at least 5x faster end to end on at least three
workloads — that is the whole point of shipping it.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_backend_speedup.py -q -s
"""

import pytest

from repro.apps import attention, conv1d, conv2d, dct_denoise, downsample
from repro.perfmodel import format_table

from .harness import backend_report, print_header


def workloads():
    return [
        ("conv1d (cuda)", conv1d.build("cuda", taps=16, rows=2)),
        ("conv2d (cuda)", conv2d.build("cuda", taps=16, width=512, rows=8)),
        (
            "downsample (cuda)",
            downsample.build("cuda", taps=16, width=512, rows=8),
        ),
        ("attention (cuda)", attention.build("cuda", length=128)),
        ("attention (tensor)", attention.build("tensor", length=128)),
        ("dct_denoise (tensor)", dct_denoise.build("tensor", num_tiles=16)),
    ]


@pytest.mark.benchmark(group="backends")
def test_backend_speedup(benchmark):
    rows, speedups = backend_report(workloads())
    print_header("Execution backends — host wall-clock per run")
    print(
        format_table(
            ["workload", "interpreter", "compiled", "speedup"], rows
        )
    )
    fast = [name for name, s in speedups.items() if s >= 5.0]
    print(f">=5x on {len(fast)}/{len(speedups)} workloads: {sorted(fast)}")
    # every workload must win, and the win must be large on most
    assert all(s > 1.0 for s in speedups.values()), speedups
    assert len(fast) >= 3, speedups
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
