"""Table I: AMX robustness across Intel-manual MatMul schedules.

Paper: under the VNNI layout every manual variant except software
pipelining compiles; under the standard layout HARDBOILED additionally
discovers and injects the swizzle, except for preloading matrix B (a
dense staged copy looks identical in either layout, so whether to
swizzle is ambiguous).  Software pipelining needs load/compute
interleaving Halide's scheduling model cannot express at all.
"""

import numpy as np
import pytest

from repro.apps import matmul
from repro.hardboiled import select_instructions
from repro.lowering import lower
from repro.perfmodel import format_table

from .harness import print_header

#: (label, build kwargs, expressible in the scheduling model?)
VARIANTS = [
    ("Reference impl.", {}, True),
    ("Loop reordering", {"loop_order": "yx"}, True),
    ("Preloading matrix A", {"preload_a": True}, True),
    ("Preloading matrix B", {"preload_b": True}, True),
    ("Software pipelining", None, False),
]

#: Table I from the paper
PAPER = {
    ("Reference impl.", "vnni"): True,
    ("Reference impl.", "standard"): True,
    ("Loop reordering", "vnni"): True,
    ("Loop reordering", "standard"): True,
    ("Preloading matrix A", "vnni"): True,
    ("Preloading matrix A", "standard"): True,
    ("Preloading matrix B", "vnni"): True,
    ("Preloading matrix B", "standard"): False,
    ("Software pipelining", "vnni"): False,
    ("Software pipelining", "standard"): False,
}


def try_variant(layout: str, kwargs) -> bool:
    app = matmul.build_amx(layout=layout, **kwargs)
    lowered = lower(app.output)
    tensorized, report = select_instructions(lowered, strict=False)
    if not report.all_mapped:
        return False
    # mapped schedules must also be *correct*
    from repro.runtime.executor import CompiledPipeline

    out = CompiledPipeline(tensorized).run(app.inputs)
    return bool(
        np.allclose(out, app.reference(), rtol=2e-2, atol=2e-2)
    )


@pytest.mark.benchmark(group="table1")
def test_table1_amx_robustness(benchmark):
    rows = []
    measured = {}
    for label, kwargs, expressible in VARIANTS:
        row = [label]
        for layout in ("vnni", "standard"):
            if not expressible:
                supported = False  # outside Halide's scheduling model
            else:
                supported = try_variant(layout, kwargs)
            measured[(label, layout)] = supported
            row.append("yes" if supported else "x")
        rows.append(row)
    print_header("Table I — AMX support for Intel-manual MatMul schedules")
    print(format_table(["Implementation", "VNNI", "Standard"], rows))
    print(
        "paper: all yes except software pipelining (both) and preloading"
        " matrix B under the standard layout"
    )
    for key, expected in PAPER.items():
        assert measured[key] == expected, (
            f"{key}: measured {measured[key]}, paper says {expected}"
        )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
