"""Figure 4: ML workloads on the A100 — sanity check vs vendor proxies.

Paper (ms): GEMM 1024^3: peak 0.01 (C), Halide-TC 0.07, Halide-CUDA 0.2,
cuBLASLt 0.04.  Conv layer 16ch: TC 1.1, CUDA-only 3.9, PyTorch 3.9ish,
cuDNN 1.7.  Attention: TC 27.8, PyTorch 33.6, composed 20.8.

Vendor libraries are modeled as roofline proxies at the sustained
fractions their measured points imply (documented in EXPERIMENTS.md);
the claim under test is Halide-TC's position between the CUDA-only
schedule and the best vendor kernel.
"""

import pytest

from repro.apps import attention, conv_layer, matmul
from repro.perfmodel import Efficiency, PerfModel, format_table
from repro.targets.device import A100

from .harness import both_variants, print_header

#: sustained tensor fractions implied by the paper's vendor numbers
VENDOR_EFFICIENCY = Efficiency(tensor=0.17, cuda=0.35)


@pytest.mark.benchmark(group="fig4")
def test_fig4_ml_workloads(benchmark):
    model = PerfModel(A100)
    vendor_model = PerfModel(A100, VENDOR_EFFICIENCY)
    rows = []
    results = {}

    for module, name, params, macs, io in (
        (matmul, "GEMM 1024^3", {"n": 128}, matmul.theoretical_macs(),
         matmul.theoretical_io_bytes()),
        (conv_layer, "ConvLayer 16ch", {"channels": 16},
         conv_layer.theoretical_macs(16), conv_layer.theoretical_io_bytes(16)),
        (attention, "Attention", {},
         attention.theoretical_macs(), attention.theoretical_io_bytes()),
    ):
        cuda_t, tensor_t, _ = both_variants(module, A100, **params)
        peak = model.theoretical_peak(macs, io)
        _, counters = module.build("tensor", **params).run_and_measure()
        vendor_t = vendor_model.estimate(counters)
        results[name] = (cuda_t, tensor_t, vendor_t, peak)
        rows.append(
            [
                name,
                f"{peak.ms():.3f} ({peak.bound})",
                f"{tensor_t.ms():.3f}",
                f"{cuda_t.ms():.3f}",
                f"{vendor_t.ms():.3f}",
                f"{cuda_t.total_s / tensor_t.total_s:.2f}x",
            ]
        )

    print_header("Figure 4 — ML workloads on A100 (ms)")
    print(
        format_table(
            ["workload", "theor. peak", "Halide TC", "Halide CUDA",
             "vendor proxy", "TC speedup"],
            rows,
        )
    )
    print(
        "paper: GEMM peak 0.01 / TC 0.07 / CUDA 0.2 / cuBLASLt 0.04;"
        " conv layer TC 1.1 vs CUDA-only 3.9; attention TC 27.8"
    )

    for name, (cuda_t, tensor_t, vendor_t, peak) in results.items():
        # the paper's ordering: peak < vendor <= Halide-TC < Halide-CUDA
        assert tensor_t.total_s < cuda_t.total_s, name
        assert peak.total_s < tensor_t.total_s, name
        assert vendor_t.total_s <= tensor_t.total_s * 1.05, name
    # GEMM speedup ~3.4x in the paper
    gemm_cuda, gemm_tc, _, _ = results["GEMM 1024^3"]
    assert 1.5 < gemm_cuda.total_s / gemm_tc.total_s < 8.0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
