"""Figure 5: 1-D convolution runtime vs kernel size (RTX 4070 SUPER).

Paper: the CUDA-only schedule flips from bandwidth- to compute-limited
around k = 64 while the Tensor Core schedule stays bandwidth-limited,
reaching a 2.3x speedup at k = 256.
"""

import pytest

from repro.apps import conv1d
from repro.perfmodel import PerfModel, format_table
from repro.targets.device import RTX4070S

from .harness import both_variants, print_header

KERNEL_SIZES = [8, 32, 56, 96, 160, 256]


@pytest.mark.benchmark(group="fig5")
def test_fig5_conv1d_sweep(benchmark):
    model = PerfModel(RTX4070S)
    rows = []
    results = {}
    for k in KERNEL_SIZES:
        cuda_t, tensor_t, report = both_variants(
            conv1d, RTX4070S, taps=k, rows=2
        )
        peak = model.theoretical_peak(
            conv1d.theoretical_macs(k), conv1d.theoretical_io_bytes(k)
        )
        results[k] = (cuda_t, tensor_t)
        rows.append(
            [
                k,
                f"{cuda_t.ms():.3f} ({cuda_t.bound})",
                f"{tensor_t.ms():.3f} ({tensor_t.bound})",
                f"{cuda_t.total_s / tensor_t.total_s:.2f}x",
                f"{peak.ms():.3f}",
            ]
        )
    print_header("Figure 5 — Conv1D execution time vs kernel size (ms)")
    print(
        format_table(
            ["k", "CUDA-only", "Tensor Cores", "speedup", "theor. peak"],
            rows,
        )
    )
    print(
        "paper: CUDA-only goes compute-bound near k=64; TC stays"
        " memory-bound; 2.3x at k=256"
    )

    # shape assertions
    big_cuda, big_tensor = results[256]
    assert big_cuda.bound == "C", "CUDA-only must be compute-bound at k=256"
    assert big_cuda.total_s / big_tensor.total_s > 1.5
    small_cuda, small_tensor = results[8]
    assert small_cuda.bound == "M", "CUDA-only is memory-bound at k=8"
    # the TC schedule stays memory-bound through most of the sweep (the
    # paper: all of it; our model flips marginally at k=256 because it
    # charges the 2x Toeplitz redundancy at full cost)
    assert results[96][1].bound == "M"
    # TC runtime is nearly flat while CUDA-only grows with k
    assert results[256][0].total_s / results[8][0].total_s > 2.5
    assert results[256][1].total_s / results[8][1].total_s < 2.0

    # time one real (reduced-size) tensorized execution
    app = conv1d.build("tensor", taps=32, rows=1)
    app.compile()
    benchmark.pedantic(lambda: app.run(), rounds=1, iterations=1)
