"""§V-E: DCT-based denoising of a one-megapixel three-channel image.

Paper (RTX 4070 SUPER), transform kernel: direct-DCT CUDA 277 us,
fast-DCT CUDA 76 us, direct-DCT Tensor Cores 68 us — the brute-force DCT
on Tensor Cores beats the fast algorithm despite doing ~3.6x more
floating-point operations.
"""

import pytest

from repro.apps import dct_denoise
from repro.linalg import direct_dct_flop_count, fast_dct_flop_count
from repro.perfmodel import PerfModel, format_table
from repro.targets.device import RTX4070S

from .harness import print_header


@pytest.mark.benchmark(group="sec5e")
def test_sec5e_dct_denoise(benchmark):
    model = PerfModel(RTX4070S)
    rows = []
    times = {}
    for variant in ("cuda", "tensor"):
        app = dct_denoise.build(variant, num_tiles=16)
        app.verify()
        _, counters = app.run_and_measure()
        t = model.estimate(counters, kernels=app.kernels)
        times[variant] = t
        rows.append(
            [f"direct DCT ({variant})", f"{t.us():.0f} ({t.bound})"]
        )
    # the fast-DCT variant replaces each 16-point matrix DCT by the
    # Plonka butterfly network: same traffic, fewer scalar FLOPs
    app = dct_denoise.build("cuda", num_tiles=16)
    _, counters = app.run_and_measure()
    ratio = fast_dct_flop_count(16) / direct_dct_flop_count(16)
    counters.scalar_flops = int(counters.scalar_flops * ratio)
    fast_t = model.estimate(counters, kernels=app.kernels)
    times["fast"] = fast_t
    rows.append(["fast DCT (cuda, analytic)", f"{fast_t.us():.0f} ({fast_t.bound})"])

    print_header("SS V-E — DCT denoise transform kernel, 1 MPix x3 (us)")
    print(format_table(["variant", "modeled time"], rows))
    print(
        "paper: direct CUDA 277, fast CUDA 76, direct TC 68 — TC beats"
        f" fast despite {1 / ratio:.1f}x more FLOPs"
    )
    # shape assertions: TC-direct <= fast-CUDA <= direct-CUDA (all three
    # converge to the bandwidth floor in our model; the paper's larger
    # CUDA gap reflects measured SM inefficiency on the 4-MatMul chain)
    assert times["tensor"].total_s <= times["cuda"].total_s * 1.01
    assert times["fast"].total_s <= times["cuda"].total_s * 1.01
    assert times["tensor"].total_s <= times["fast"].total_s * 1.2
    # the direct DCT really does ~2-4x the FLOPs of the fast one, yet the
    # tensorized direct variant is not slower — the paper's §V-E punchline
    assert times["tensor"].cuda_s < times["fast"].cuda_s
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
