"""Old-vs-new saturation engine speed on the fig-6 compile-time workloads.

The incremental engine (persistent head index, compiled pattern/action
programs, delta matching with per-rule watermarks, match dedup, backoff
scheduling, incremental relation canonicalization) is measured head to
head against the preserved pre-overhaul loop (``repro.eqsat.legacy``:
per-round snapshot index, recursive generator matching with per-binding
dict copies, full re-match and re-apply every round).

Both engines must reach identical results — the same extracted terms and
the same relation contents — on every store of every workload; that is
asserted before any timing is reported.  The timing target (asserted in
the pytest path, skipped in ``--smoke`` mode) is a >=5x saturation
wall-clock speedup on the largest fig-6 workload.

Run directly::

    python -m benchmarks.bench_eqsat_speed          # full report
    python -m benchmarks.bench_eqsat_speed --smoke  # CI: crash/equality
                                                    # check only, no
                                                    # timing assertions
"""

from __future__ import annotations

import argparse
import gc
import time

from repro.apps import conv1d
from repro.eqsat import EGraph, extract_best
from repro.eqsat.legacy import legacy_run_phased
from repro.eqsat.schedule import run_phased
from repro.hardboiled.cost import hardboiled_cost_model
from repro.hardboiled.encode import Encoder
from repro.hardboiled.tile_extractor import TileExtractor, _rules_for
from repro.ir import Store
from repro.ir.visitor import IRVisitor
from repro.lowering import lower
from repro.perfmodel import format_table

from .harness import print_header

KERNEL_SIZES = [8, 32, 96, 256]
LARGEST = 256
ITERATIONS = 14  # the tile extractor's schedule length
TARGET_SPEEDUP = 5.0


def fig6_stores(taps: int):
    """The marker-wrapped accelerator stores of one fig-6 workload."""
    app = conv1d.build("tensor", taps=taps, rows=1)
    lowered = lower(app.output)
    extractor = TileExtractor(lowered)
    prepared = []

    class Collect(IRVisitor):
        def visit_Store(self, node: Store):
            entry = extractor.prepare_store(node)
            if entry is not None:
                prepared.append(entry)

    Collect().visit(lowered.stmt)
    return prepared


def saturate_stores(stores, runner):
    """Saturate every store with ``runner``; returns wall-clock seconds
    plus the per-store results used for the equivalence check."""
    seconds = 0.0
    terms = []
    relations = []
    matches = 0
    for kind, wrapped in stores:
        egraph = EGraph()
        root = Encoder(egraph).stmt(wrapped)
        main_rules, sup_rules = _rules_for(kind)
        start = time.perf_counter()
        stats = runner(
            egraph, main_rules, sup_rules, iterations=ITERATIONS
        )
        seconds += time.perf_counter() - start
        terms.append(str(extract_best(egraph, root, hardboiled_cost_model())))
        relations.append(
            {name: len(rows) for name, rows in egraph.relations.items()}
        )
        matches += stats.total_matches
    return seconds, terms, relations, matches


def compare_engines(taps: int, repeats: int = 7):
    """Best-of-``repeats`` old/new saturation times plus result checks."""
    stores = fig6_stores(taps)
    _, old_terms, old_rels, old_matches = saturate_stores(
        stores, legacy_run_phased
    )
    _, new_terms, new_rels, new_matches = saturate_stores(stores, run_phased)
    assert old_terms == new_terms, (
        f"taps={taps}: engines extracted different terms"
    )
    assert old_rels == new_rels, (
        f"taps={taps}: engines derived different relations"
    )
    old_best = new_best = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            old_best = min(
                old_best, saturate_stores(stores, legacy_run_phased)[0]
            )
            new_best = min(new_best, saturate_stores(stores, run_phased)[0])
    finally:
        if gc_was_enabled:
            gc.enable()
    return {
        "taps": taps,
        "stores": len(stores),
        "old_s": old_best,
        "new_s": new_best,
        "speedup": old_best / new_best,
        "old_matches": old_matches,
        "new_matches": new_matches,
    }


def report(results) -> None:
    print_header(
        "EqSat engine speed — legacy full-rematch loop vs incremental"
        " engine (fig-6 workloads, best-of-N wall-clock)"
    )
    rows = [
        [
            r["taps"],
            r["stores"],
            f"{r['old_s'] * 1e3:.2f} ms",
            f"{r['new_s'] * 1e3:.2f} ms",
            f"{r['speedup']:.2f}x",
            r["old_matches"],
            r["new_matches"],
        ]
        for r in results
    ]
    print(
        format_table(
            ["k", "stores", "old eqsat", "new eqsat", "speedup",
             "old matches", "new matches"],
            rows,
        )
    )
    print(
        "old matches count every re-derived match per round; new matches"
        " count distinct matches (dedup + delta re-derivation removal)"
    )


def test_eqsat_engine_speedup():
    """New engine: identical results, >=5x on the largest fig-6 workload."""
    results = [compare_engines(taps) for taps in KERNEL_SIZES]
    report(results)
    largest = next(r for r in results if r["taps"] == LARGEST)
    assert largest["speedup"] >= TARGET_SPEEDUP, (
        f"saturation speedup regressed: {largest['speedup']:.2f}x <"
        f" {TARGET_SPEEDUP}x on taps={LARGEST}"
    )
    # dedup must strictly reduce the applied-match count
    assert largest["new_matches"] < largest["old_matches"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="equivalence/crash check on a small workload; no timing"
        " assertions (CI-safe)",
    )
    args = parser.parse_args()
    if args.smoke:
        result = compare_engines(KERNEL_SIZES[0], repeats=1)
        print(
            f"smoke ok: taps={result['taps']} stores={result['stores']}"
            f" old={result['old_s'] * 1e3:.2f}ms"
            f" new={result['new_s'] * 1e3:.2f}ms"
            f" speedup={result['speedup']:.2f}x (not asserted)"
        )
        return 0
    test_eqsat_engine_speedup()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
