"""The int8 dot-product (VNNI/DP4A) target: correctness + roofline.

Two modes:

* ``--smoke`` (CI): compiles both quantized apps through HARDBOILED,
  checks that dp4a intrinsics were actually selected, and asserts the
  interpreter and the compiled NumPy backend agree with the exact
  int32 numpy reference bit for bit.  No timing assertions.
* full (default): additionally prints the modeled roofline comparison
  of the quantized GEMM against the fp16 tensor GEMM on each device —
  the quantization win the serving workloads are after — plus host
  wall-clock for the two execution backends.

Run::

    python -m benchmarks.bench_dp4a          # full report
    python -m benchmarks.bench_dp4a --smoke  # CI equivalence check
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.apps import conv_layer, matmul
from repro.perfmodel import PerfModel, format_table
from repro.runtime import Counters
from repro.targets.device import A100, SPR_AMX

from .harness import backend_report, print_header


def quantized_apps():
    return [
        ("matmul_int8", matmul.build_int8(tiles=2)),
        ("conv_layer_int8", conv_layer.build_int8(width=16, rows=1)),
    ]


def check_equivalence(apps):
    """Interpret, compile, and the int32 numpy reference: bit-exact."""
    for label, app in apps:
        ref = app.reference()
        np.testing.assert_array_equal(app.run(), ref, err_msg=label)
        np.testing.assert_array_equal(
            app.run(backend="compile"), ref, err_msg=label
        )
        counters = Counters()
        app.run(counters)
        assert counters.int8_macs > 0, f"{label}: no MACs on the int8 unit"
        assert counters.intrinsic_calls["dp4a_matmul"] > 0, (
            f"{label}: dp4a_matmul was not selected"
        )
        assert app.report is not None and app.report.all_mapped, label


def roofline_rows(apps):
    """Modeled full-size times: int8 apps vs the fp16 tensor GEMM.

    ``apps`` are the already-compiled quantized apps — selection ran
    once during the equivalence check and is not repeated here.
    """
    workloads = [("matmul fp16 (tensor)", matmul.build("tensor", n=64))]
    workloads += [(f"{label} (dp4a)", app) for label, app in apps]
    measured = [
        (label, app, app.run_and_measure()[1]) for label, app in workloads
    ]
    rows = []
    for device in (A100, SPR_AMX):
        model = PerfModel(device)
        for label, app, counters in measured:
            t = model.estimate(counters, kernels=app.kernels)
            macs = counters.tensor_macs + counters.int8_macs
            rows.append(
                [
                    device.name,
                    label,
                    f"{macs:,}",
                    f"{t.ms():.3f} ms",
                    t.bound,
                ]
            )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="correctness/equivalence check only (CI mode)",
    )
    args = parser.parse_args(argv)

    apps = quantized_apps()
    check_equivalence(apps)
    print(
        "dp4a smoke: both quantized apps bit-exact on both backends"
        " against the int32 numpy reference"
    )
    if args.smoke:
        return 0

    print_header("Quantized (int8/dp4a) vs fp16 tensor — modeled full size")
    print(
        format_table(
            ["device", "workload", "MACs", "modeled", "bound"],
            roofline_rows(apps),
        )
    )

    print_header("Quantized apps — host wall-clock per run")
    rows, speedups = backend_report(apps)
    print(
        format_table(
            ["workload", "interpreter", "compiled", "speedup"], rows
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
