"""Warm-start compile service: cold vs. warm over the fig-6 workloads.

Cold (what every process used to pay): lower, equality-saturate every
accelerator store, extract, and run NumPy codegen.  Warm (this PR): the
same ``compile_lowered`` call finds the artifact a previous compile
persisted — keyed on the pre-selection statement fingerprint, the
rule-set fingerprint, backend, and device — and restores the tensorized
statement plus the ready-to-exec kernel, skipping saturation *and*
codegen entirely.

Asserted (full mode): summed end-to-end compile time over the fig-6
conv1d suite is >=5x faster warm than cold, and every workload's
pipeline output is bit-identical cold vs. warm on *both* execution
backends.  ``--smoke`` checks hit/miss behavior, bit-exactness, and the
parallel batch driver without timing assertions (CI-safe).

Run directly::

    python -m benchmarks.bench_warm_start           # full, asserts 5x
    python -m benchmarks.bench_warm_start --smoke   # CI gate
"""

from __future__ import annotations

import argparse
import tempfile
import time

import numpy as np

from repro.apps import conv1d
from repro.lowering import lower
from repro.service import (
    ArtifactStore,
    BatchCompiler,
    CompileJob,
    compile_lowered,
    ruleset_fingerprint,
)

from .harness import artifact_row, print_artifact_report, print_header

#: the fig-6 compile-time sweep (bench_fig6_compile_time.KERNEL_SIZES)
KERNEL_SIZES = [8, 32, 56, 96, 160, 256]
SMOKE_SIZES = [8, 16]
TARGET_SPEEDUP = 5.0


def compile_suite(sizes, store, expect):
    """Compile every workload through ``store``; returns per-workload
    ``(seconds, report, {backend: output})`` and asserts each compile
    took the ``expect`` ("hit"/"miss") path."""
    results = {}
    for taps in sizes:
        app = conv1d.build("tensor", taps=taps, rows=1)
        lowered = lower(app.output)
        start = time.perf_counter()
        pipeline, report = compile_lowered(
            lowered, store, backend="compile", strict=True
        )
        seconds = time.perf_counter() - start
        assert report.artifact_cache == expect, (
            f"taps={taps}: expected artifact-cache {expect},"
            f" got {report.artifact_cache}"
        )
        assert report.all_mapped
        outputs = {
            backend: pipeline.run(app.inputs, backend=backend)
            for backend in ("compile", "interpret")
        }
        results[taps] = (seconds, report, outputs)
    return results


def race(sizes):
    """One cold sweep then one warm sweep over a fresh store."""
    # one-time per-process key ingredient, paid before either sweep so
    # neither side is billed for it (a real serving process pays it
    # once, then amortizes it over every pipeline it compiles)
    ruleset_fingerprint()
    with tempfile.TemporaryDirectory(prefix="repro-warm-start-") as root:
        cold_store = ArtifactStore(root)
        cold = compile_suite(sizes, cold_store, expect="miss")
        # a fresh ArtifactStore over the same directory stands in for a
        # fresh process: no in-memory state survives except the
        # process-wide rule/kernel caches, which the warm path never
        # consults anyway (it restores instead of compiling)
        warm_store = ArtifactStore(root)
        warm = compile_suite(sizes, warm_store, expect="hit")

        rows = []
        for taps in sizes:
            cold_s, cold_report, cold_out = cold[taps]
            warm_s, warm_report, warm_out = warm[taps]
            for backend in ("compile", "interpret"):
                assert np.array_equal(
                    cold_out[backend], warm_out[backend]
                ), f"taps={taps}: {backend} outputs differ cold vs. warm"
            rows.append(artifact_row(f"conv1d k={taps} cold", cold_report, cold_s))
            rows.append(artifact_row(f"conv1d k={taps} warm", warm_report, warm_s))
        cold_total = sum(cold[t][0] for t in sizes)
        warm_total = sum(warm[t][0] for t in sizes)
        return rows, warm_store, cold_total, warm_total


def batch_race(sizes, max_workers=4):
    """The parallel batch driver: first batch misses, second batch hits."""
    jobs = [
        CompileJob.make("conv1d", taps=taps, rows=1) for taps in sizes
    ]
    with tempfile.TemporaryDirectory(prefix="repro-batch-") as root:
        compiler = BatchCompiler(root, max_workers=max_workers)
        first = compiler.compile_many(jobs)
        second = compiler.compile_many(jobs)
    for result in first.results + second.results:
        assert result.ok, f"{result.job.label}: {result.error}"
        assert result.all_mapped
    assert first.misses == len(jobs), first.summary()
    assert second.hits == len(jobs), second.summary()
    return first, second


def report(rows, store, cold_total, warm_total, first, second) -> None:
    print_header(
        "Warm-start compile service — cold vs. warm over the fig-6"
        " conv1d suite (end-to-end compile wall-clock)"
    )
    print_artifact_report(rows, store)
    speedup = cold_total / warm_total if warm_total else float("inf")
    print(
        f"suite totals: cold {cold_total * 1e3:.1f} ms, warm"
        f" {warm_total * 1e3:.1f} ms -> {speedup:.1f}x"
    )
    print()
    print("parallel batch driver (worker processes, shared store):")
    for label, batch in (("first batch", first), ("second batch", second)):
        s = batch.summary()
        print(
            f"  {label}: {s['jobs']} jobs, {s['misses']} misses,"
            f" {s['hits']} hits, wall {s['wall_seconds'] * 1e3:.1f} ms"
            f" (worker-side {s['worker_seconds'] * 1e3:.1f} ms)"
        )


def test_warm_start_speedup():
    """Warm >=5x cold over the suite; outputs bit-identical both backends."""
    rows, store, cold_total, warm_total = race(KERNEL_SIZES)
    first, second = batch_race(KERNEL_SIZES)
    report(rows, store, cold_total, warm_total, first, second)
    speedup = cold_total / warm_total
    assert speedup >= TARGET_SPEEDUP, (
        f"warm-start speedup regressed: {speedup:.2f}x < {TARGET_SPEEDUP}x"
        f" (cold {cold_total:.3f}s, warm {warm_total:.3f}s)"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="hit/miss + bit-exactness + batch-driver check on small"
        " workloads; no timing assertions (CI-safe)",
    )
    args = parser.parse_args()
    if args.smoke:
        rows, store, cold_total, warm_total = race(SMOKE_SIZES)
        first, second = batch_race(SMOKE_SIZES, max_workers=2)
        report(rows, store, cold_total, warm_total, first, second)
        speedup = cold_total / warm_total if warm_total else float("inf")
        print(f"smoke ok: {speedup:.1f}x (not asserted)")
        return 0
    test_warm_start_speedup()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
