"""Table II: non-integer Lanczos-3 resize of a 2048x2048 RGB image.

Paper (RTX 4070 SUPER): CUDA-only 111/110/113/145 us vs Tensor Cores
79/73/74/102 us for output sizes 143/245/450/921 — geomean 1.47x, with
the TC kernels bandwidth-limited at ~10% tensor utilization.
"""

import numpy as np
import pytest

from repro.apps import resample
from repro.perfmodel import PerfModel, format_table
from repro.targets.device import RTX4070S

from .harness import print_header

IN_SIZE = 2048
CHANNELS = 3
OUTPUT_SIZES = [143, 245, 450, 921]
PAPER = {143: (111, 79), 245: (110, 73), 450: (113, 74), 921: (145, 102)}


def measure_resize(out_size: int, variant: str):
    """Model a full separable resize from reduced-size interpreted passes."""
    model = PerfModel(RTX4070S)
    total = None
    # vertical pass: 2048 -> out over 2048*3 columns; horizontal: 2048 ->
    # out over out*3 rows.  Interpret a 32-column slice and scale.
    cols_interp = 32
    for in_size, out_sz, full_cols in (
        (IN_SIZE, out_size, IN_SIZE * CHANNELS),
        (IN_SIZE, out_size, out_size * CHANNELS),
    ):
        app = resample.build_pass(
            variant,
            in_size=in_size,
            out_size=out_sz,
            columns=cols_interp,
            scale_factor=full_cols / cols_interp,
        )
        _, counters = app.run_and_measure()
        t = model.estimate(counters, kernels=1)
        total = t if total is None else _sum(total, t)
    return total


def _sum(a, b):
    import dataclasses

    return dataclasses.replace(
        a,
        tensor_s=a.tensor_s + b.tensor_s,
        cuda_s=a.cuda_s + b.cuda_s,
        dram_s=a.dram_s + b.dram_s,
        l1_s=a.l1_s + b.l1_s,
        launch_s=a.launch_s + b.launch_s,
    )


@pytest.mark.benchmark(group="table2")
def test_table2_resample(benchmark):
    rows = []
    ratios = []
    for out_size in OUTPUT_SIZES:
        cuda_t = measure_resize(out_size, "cuda")
        tensor_t = measure_resize(out_size, "tensor")
        ratio = cuda_t.total_s / tensor_t.total_s
        ratios.append(ratio)
        p_cuda, p_tc = PAPER[out_size]
        rows.append(
            [
                f"{out_size}x{out_size}",
                f"{cuda_t.us():.0f}",
                f"{tensor_t.us():.0f}",
                f"{ratio:.2f}x",
                f"{p_cuda}/{p_tc}",
            ]
        )
    geomean = float(np.exp(np.mean(np.log(ratios))))
    print_header("Table II — Lanczos-3 resize of 2048^2 RGB (us, modeled)")
    print(
        format_table(
            ["output", "CUDA-only", "Tensor core", "speedup",
             "paper (CUDA/TC)"],
            rows,
        )
    )
    print(f"geomean speedup: {geomean:.2f}x (paper: 1.47x)")
    # shape: TC never loses, and both variants sit at the bandwidth
    # floor.  Our roofline classifies the CUDA-only kernels as already
    # fully bandwidth-bound, so the modeled win is smaller than the
    # measured 1.47x (the paper's CUDA kernels ran at 60-90% of *both*
    # limits) — see EXPERIMENTS.md.
    assert all(r >= 0.99 for r in ratios)
    assert 0.99 <= geomean < 3.0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
