"""Batched serving runtime: steady-state ``run_many`` vs. the naive loop.

The naive serving loop (what every request used to pay) calls
``CompiledPipeline.run`` per request: every input is re-wrapped in a
fresh ``Buffer``, the ``{name}.stride.{d}`` env dict is re-derived, the
kernel is re-fetched from the cache, every ``Allocate`` inside the
kernel constructs a fresh zeroed buffer per loop iteration, and every
weight-derived shuffle operand (the ConvolutionShuffle Toeplitz matrix,
tile index grids) is rebuilt per tile per request.

The batched path (this PR) binds an :class:`ExecutionPlan` per worker:
the kernel, buffers, and env are bound once; ingest is a zero-copy
``.data`` swap; and each worker's :class:`BufferArena` pools the
kernel-internal allocations and memoizes the weight-derived operands by
value across requests.  Requests fan out over a thread pool (NumPy
releases the GIL inside kernels).

On top of the per-worker plans sits the **batch-axis kernel** path:
``run_many(batch_axis=True)`` stacks the whole bucket into ``[B, ...]``
buffers and makes *one* kernel call for the batch — the weight-derived
shuffle operands and tile grids are shared by construction, and the
per-request interpreter/dispatch overhead is paid once instead of B
times.

Asserted (full mode), over the fig-6 conv1d suite on the compile
backend: batched multi-worker throughput is >= 3x the naive per-call
loop; the batch-axis kernel is >= 1.5x the looped multi-worker
``run_many``; and outputs are bit-identical across all paths on *both*
backends.  ``--smoke`` checks the bit-identity and multi-worker
plumbing without timing assertions (CI-safe).

Run directly::

    python -m benchmarks.bench_serving_throughput           # asserts 3x & 1.5x
    python -m benchmarks.bench_serving_throughput --smoke   # CI gate
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.apps import conv1d
from repro.apps.common import f16_random
from repro.service import Server

from .harness import print_header, print_serving_report, serving_row

#: the fig-6 compile-time sweep (bench_fig6_compile_time.KERNEL_SIZES)
KERNEL_SIZES = [8, 32, 56, 96, 160, 256]
SMOKE_SIZES = [8, 16]
TARGET_SPEEDUP = 3.0
TARGET_BATCHED_SPEEDUP = 1.5
WORKERS = 4
BATCH = 32


def build_requests(app, count: int, seed: int = 7):
    """``count`` same-shaped request maps: fresh image, same filter.

    This is the serving shape the plan path is built for — per-request
    data varies, the filter (and therefore the Toeplitz operands the
    kernel derives from it) repeats.
    """
    rng = np.random.default_rng(seed)
    requests = []
    for _ in range(count):
        requests.append(
            {
                key: (
                    f16_random(rng, value.shape)
                    if key.name == "I"
                    else value
                )
                for key, value in app.inputs.items()
            }
        )
    return requests


def requests_for(taps: int) -> int:
    """Batch sizes scaled so each workload measures ~comparable work."""
    return max(6, 192 // taps)


def race(sizes, workers=WORKERS):
    """Per-workload (requests, naive_s, batched_s, outputs) on "compile".

    The naive side is the per-call ``run()`` loop; the batched side is
    a :class:`Server` with persistent per-worker plans, timed on its
    second batch so both sides are measured in steady state (the naive
    loop's kernel is equally warm).
    """
    results = {}
    for taps in sizes:
        app = conv1d.build("tensor", taps=taps, rows=1)
        app.backend = "compile"
        pipeline = app.compile()
        requests = build_requests(app, requests_for(taps))

        pipeline.run(requests[0])  # compile/codegen outside the timings
        start = time.perf_counter()
        naive_out = [pipeline.run(request) for request in requests]
        naive_s = time.perf_counter() - start

        with Server(pipeline, workers=workers) as server:
            server.run_many(requests)  # bind every worker's plan
            start = time.perf_counter()
            batched_out = server.run_many(requests)
            batched_s = time.perf_counter() - start

        for a, b in zip(naive_out, batched_out):
            assert np.array_equal(a, b), (
                f"taps={taps}: batched output differs from naive run()"
            )
        results[taps] = (len(requests), naive_s, batched_s, naive_out)
    return results


def interpreter_parity(sizes, workers=2, requests_each=2):
    """``run_many`` on the interpreter backend (counters disabled) is
    bit-identical to the sequential interpreter loop."""
    for taps in sizes:
        app = conv1d.build("tensor", taps=taps, rows=1)
        pipeline = app.compile()
        requests = build_requests(app, requests_each, seed=11)
        sequential = [
            pipeline.run(request, backend="interpret")
            for request in requests
        ]
        batched = pipeline.run_many(
            requests, workers=workers, backend="interpret"
        )
        for a, b in zip(sequential, batched):
            assert np.array_equal(a, b), (
                f"taps={taps}: interpreter run_many differs from run()"
            )


def batch_axis_race(sizes, batch=BATCH, workers=WORKERS):
    """Per-workload (B, looped_s, batched_s) on the compile backend.

    The looped side is the multi-worker plan path this benchmark's main
    race already credits (``batch_axis=False``); the batch-axis side is
    one stacked kernel call for the whole bucket.  Both sides timed on
    their second batch (kernels warm), outputs asserted bit-identical.
    """
    results = {}
    for taps in sizes:
        app = conv1d.build("tensor", taps=taps, rows=1)
        app.backend = "compile"
        pipeline = app.compile()
        requests = build_requests(app, batch, seed=13)

        pipeline.run_many(requests, batch_axis=False, workers=workers)
        start = time.perf_counter()
        looped_out = pipeline.run_many(
            requests, batch_axis=False, workers=workers
        )
        looped_s = time.perf_counter() - start

        pipeline.run_many(requests, batch_axis=True)  # batched codegen
        start = time.perf_counter()
        batched_out = pipeline.run_many(requests, batch_axis=True)
        batched_s = time.perf_counter() - start

        for a, b in zip(looped_out, batched_out):
            assert np.array_equal(a, b), (
                f"taps={taps}: batch-axis output differs from looped"
                " run_many"
            )
        results[taps] = (batch, looped_s, batched_s)
    return results


#: --faulted smoke: per-visit probability of an injected kernel failure
FAULT_RATE = 0.10
#: chosen so the very first kernel visit fires (fraction 0.013 < 0.10)
#: — the smoke provably exercises a fault on every run
FAULT_SEED = 49


def faulted_smoke(sizes, workers=2, rate=FAULT_RATE, seed=FAULT_SEED):
    """Serve the suite under a ``rate`` injected-kernel-failure storm.

    Graceful-degradation gate: every request is answered (no silent
    drops), answered outputs are bit-identical to the unfaulted run,
    failures surfacing to callers stay rare (the retry budget and the
    breaker's interpreter fallback absorb the storm), and the server's
    stats() prove recovery work actually happened.
    """
    from repro.runtime.executor import RequestError
    from repro.service import faults
    from repro.service.faults import FaultPlan, FaultSpec

    print_header(
        "Faulted serving smoke — "
        f"{rate:.0%} injected kernel-failure rate, {workers} workers,"
        " retries + circuit-breaker degradation"
    )
    total_fired = total_errors = total_requests = 0
    for taps in sizes:
        app = conv1d.build("tensor", taps=taps, rows=1)
        app.backend = "compile"
        pipeline = app.compile()
        requests = build_requests(app, requests_for(taps), seed=17)
        expected = [pipeline.run(request) for request in requests]
        plan = FaultPlan(
            seed=seed, specs=[FaultSpec("raise-in-kernel", rate=rate)]
        )
        with Server(
            pipeline, workers=workers, retries=2, breaker_threshold=3
        ) as server:
            with faults.active(plan):
                outputs = server.run_many(requests, on_error="return")
            stats = server.stats()
        assert len(outputs) == len(requests), "requests silently dropped"
        errors = 0
        for reference, output in zip(expected, outputs):
            if isinstance(output, RequestError):
                errors += 1
                continue
            assert np.array_equal(output, reference), (
                f"taps={taps}: faulted serving output differs from the"
                " unfaulted run"
            )
        recovered = stats["retries"] > 0 or stats["degraded"]
        assert stats["failures"] == 0 or recovered, (
            f"taps={taps}: failures happened but no recovery path ran"
        )
        total_fired += plan.fired()
        total_errors += errors
        total_requests += len(requests)
        print(
            f"  conv1d k={taps}: {len(requests)} requests,"
            f" {plan.fired()} faults fired, {stats['retries']} retries,"
            f" degraded={stats['degraded']}"
            f" (backend breaker trips={stats['breakers']['backend']['trips']}),"
            f" {errors} surfaced errors"
        )
    assert total_fired > 0, "fault plan never fired — smoke proved nothing"
    # graceful: the retry budget + degradation absorb almost everything
    assert total_errors <= max(1, total_requests // 10), (
        f"{total_errors}/{total_requests} requests failed — degradation"
        " is not graceful"
    )
    print(
        f"faulted smoke ok: {total_fired} faults over {total_requests}"
        f" requests, {total_errors} surfaced"
    )


def report_batch_axis(results, workers):
    print_header(
        "Batch-axis kernel — one stacked kernel call per bucket vs."
        f" looped run_many ({workers} workers), compile backend"
    )
    rows = [
        serving_row(f"conv1d k={taps} B={count}", count, looped_s, batched_s)
        for taps, (count, looped_s, batched_s) in results.items()
    ]
    print_serving_report(rows)
    looped_total = sum(r[1] for r in results.values())
    batched_total = sum(r[2] for r in results.values())
    print(
        f"suite totals: looped {looped_total * 1e3:.1f} ms, batch-axis"
        f" {batched_total * 1e3:.1f} ms ->"
        f" {looped_total / batched_total:.1f}x"
    )
    return looped_total, batched_total


def report(results, workers) -> None:
    print_header(
        "Batched serving throughput — naive per-call run() loop vs."
        f" run_many plans ({workers} workers), fig-6 conv1d suite,"
        " compile backend"
    )
    rows = [
        serving_row(f"conv1d k={taps}", count, naive_s, batched_s)
        for taps, (count, naive_s, batched_s, _) in results.items()
    ]
    print_serving_report(rows)
    naive_total = sum(r[1] for r in results.values())
    batched_total = sum(r[2] for r in results.values())
    print(
        f"suite totals: naive {naive_total * 1e3:.1f} ms, batched"
        f" {batched_total * 1e3:.1f} ms ->"
        f" {naive_total / batched_total:.1f}x"
    )
    return naive_total, batched_total


def test_serving_throughput():
    """Batched >=3x the naive loop; outputs bit-identical both backends."""
    results = race(KERNEL_SIZES)
    interpreter_parity(SMOKE_SIZES)
    naive_total, batched_total = report(results, WORKERS)
    speedup = naive_total / batched_total
    assert speedup >= TARGET_SPEEDUP, (
        f"serving speedup regressed: {speedup:.2f}x < {TARGET_SPEEDUP}x"
        f" (naive {naive_total:.3f}s, batched {batched_total:.3f}s)"
    )


def test_batch_axis_throughput():
    """The batch-axis kernel >=1.5x the looped multi-worker run_many."""
    results = batch_axis_race(KERNEL_SIZES)
    looped_total, batched_total = report_batch_axis(results, WORKERS)
    speedup = looped_total / batched_total
    assert speedup >= TARGET_BATCHED_SPEEDUP, (
        f"batch-axis speedup regressed: {speedup:.2f}x <"
        f" {TARGET_BATCHED_SPEEDUP}x (looped {looped_total:.3f}s,"
        f" batch-axis {batched_total:.3f}s)"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="bit-identity + multi-worker plumbing on small workloads;"
        " no timing assertions (CI-safe)",
    )
    parser.add_argument(
        "--faulted",
        action="store_true",
        help="graceful-degradation smoke: serve under a"
        f" {FAULT_RATE:.0%} injected kernel-failure rate and assert"
        " bit-identical answered outputs (CI-safe)",
    )
    args = parser.parse_args()
    if args.faulted:
        faulted_smoke(SMOKE_SIZES)
        return 0
    if args.smoke:
        results = race(SMOKE_SIZES, workers=2)
        interpreter_parity(SMOKE_SIZES)
        naive_total, batched_total = report(results, 2)
        speedup = naive_total / batched_total
        ba = batch_axis_race(SMOKE_SIZES, batch=8, workers=2)
        looped_total, ba_total = report_batch_axis(ba, 2)
        print(
            f"smoke ok: {speedup:.1f}x serving,"
            f" {looped_total / ba_total:.1f}x batch-axis (not asserted)"
        )
        return 0
    test_serving_throughput()
    test_batch_axis_throughput()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
