"""Batched serving runtime: steady-state ``run_many`` vs. the naive loop.

The naive serving loop (what every request used to pay) calls
``CompiledPipeline.run`` per request: every input is re-wrapped in a
fresh ``Buffer``, the ``{name}.stride.{d}`` env dict is re-derived, the
kernel is re-fetched from the cache, every ``Allocate`` inside the
kernel constructs a fresh zeroed buffer per loop iteration, and every
weight-derived shuffle operand (the ConvolutionShuffle Toeplitz matrix,
tile index grids) is rebuilt per tile per request.

The batched path (this PR) binds an :class:`ExecutionPlan` per worker:
the kernel, buffers, and env are bound once; ingest is a zero-copy
``.data`` swap; and each worker's :class:`BufferArena` pools the
kernel-internal allocations and memoizes the weight-derived operands by
value across requests.  Requests fan out over a thread pool (NumPy
releases the GIL inside kernels).

On top of the per-worker plans sits the **batch-axis kernel** path:
``run_many(batch_axis=True)`` stacks the whole bucket into ``[B, ...]``
buffers and makes *one* kernel call for the batch — the weight-derived
shuffle operands and tile grids are shared by construction, and the
per-request interpreter/dispatch overhead is paid once instead of B
times.

Asserted (full mode), over the fig-6 conv1d suite on the compile
backend: batched multi-worker throughput is >= 3x the naive per-call
loop; the batch-axis kernel is >= 1.5x the looped multi-worker
``run_many``; and outputs are bit-identical across all paths on *both*
backends.  ``--smoke`` checks the bit-identity and multi-worker
plumbing without timing assertions (CI-safe).

``--mixed-shapes`` races the :class:`~repro.service.Router` front end
on an interleaved multi-shape stream: requests are bucketed by
(app fingerprint, shape signature), micro-batched, and carried to the
worker processes over the shared-memory rings.  Full mode asserts the
``--processes N`` router out-runs the single-process batch-axis
ceiling (skipped, with a note, on single-core hosts where no amount
of processes can help); ``--mixed-shapes --smoke`` asserts bitwise
parity plus the zero-copy contract — after warm-up, a measured round
moves every tensor payload over shared memory and nothing over the
pickling pipe (CI-safe, no timing).

Run directly::

    python -m benchmarks.bench_serving_throughput           # asserts 3x & 1.5x
    python -m benchmarks.bench_serving_throughput --smoke   # CI gate
    python -m benchmarks.bench_serving_throughput --mixed-shapes --processes 4
    python -m benchmarks.bench_serving_throughput --mixed-shapes --smoke
"""

from __future__ import annotations

import argparse
import os
import time

import numpy as np

from repro.apps import conv1d
from repro.apps.common import f16_random
from repro.service import CompileJob, Router, Server
from repro.service.shm import available as shm_available

from .harness import print_header, print_serving_report, serving_row

#: the fig-6 compile-time sweep (bench_fig6_compile_time.KERNEL_SIZES)
KERNEL_SIZES = [8, 32, 56, 96, 160, 256]
SMOKE_SIZES = [8, 16]
TARGET_SPEEDUP = 3.0
TARGET_BATCHED_SPEEDUP = 1.5
WORKERS = 4
BATCH = 32


def build_requests(app, count: int, seed: int = 7):
    """``count`` same-shaped request maps: fresh image, same filter.

    This is the serving shape the plan path is built for — per-request
    data varies, the filter (and therefore the Toeplitz operands the
    kernel derives from it) repeats.
    """
    rng = np.random.default_rng(seed)
    requests = []
    for _ in range(count):
        requests.append(
            {
                key: (
                    f16_random(rng, value.shape)
                    if key.name == "I"
                    else value
                )
                for key, value in app.inputs.items()
            }
        )
    return requests


def requests_for(taps: int) -> int:
    """Batch sizes scaled so each workload measures ~comparable work."""
    return max(6, 192 // taps)


def race(sizes, workers=WORKERS):
    """Per-workload (requests, naive_s, batched_s, outputs) on "compile".

    The naive side is the per-call ``run()`` loop; the batched side is
    a :class:`Server` with persistent per-worker plans, timed on its
    second batch so both sides are measured in steady state (the naive
    loop's kernel is equally warm).
    """
    results = {}
    for taps in sizes:
        app = conv1d.build("tensor", taps=taps, rows=1)
        app.backend = "compile"
        pipeline = app.compile()
        requests = build_requests(app, requests_for(taps))

        pipeline.run(requests[0])  # compile/codegen outside the timings
        start = time.perf_counter()
        naive_out = [pipeline.run(request) for request in requests]
        naive_s = time.perf_counter() - start

        with Server(pipeline, workers=workers) as server:
            server.run_many(requests)  # bind every worker's plan
            start = time.perf_counter()
            batched_out = server.run_many(requests)
            batched_s = time.perf_counter() - start

        for a, b in zip(naive_out, batched_out):
            assert np.array_equal(a, b), (
                f"taps={taps}: batched output differs from naive run()"
            )
        results[taps] = (len(requests), naive_s, batched_s, naive_out)
    return results


def interpreter_parity(sizes, workers=2, requests_each=2):
    """``run_many`` on the interpreter backend (counters disabled) is
    bit-identical to the sequential interpreter loop."""
    for taps in sizes:
        app = conv1d.build("tensor", taps=taps, rows=1)
        pipeline = app.compile()
        requests = build_requests(app, requests_each, seed=11)
        sequential = [
            pipeline.run(request, backend="interpret")
            for request in requests
        ]
        batched = pipeline.run_many(
            requests, workers=workers, backend="interpret"
        )
        for a, b in zip(sequential, batched):
            assert np.array_equal(a, b), (
                f"taps={taps}: interpreter run_many differs from run()"
            )


def batch_axis_race(sizes, batch=BATCH, workers=WORKERS):
    """Per-workload (B, looped_s, batched_s) on the compile backend.

    The looped side is the multi-worker plan path this benchmark's main
    race already credits (``batch_axis=False``); the batch-axis side is
    one stacked kernel call for the whole bucket.  Both sides timed on
    their second batch (kernels warm), outputs asserted bit-identical.
    """
    results = {}
    for taps in sizes:
        app = conv1d.build("tensor", taps=taps, rows=1)
        app.backend = "compile"
        pipeline = app.compile()
        requests = build_requests(app, batch, seed=13)

        pipeline.run_many(requests, batch_axis=False, workers=workers)
        start = time.perf_counter()
        looped_out = pipeline.run_many(
            requests, batch_axis=False, workers=workers
        )
        looped_s = time.perf_counter() - start

        pipeline.run_many(requests, batch_axis=True)  # batched codegen
        start = time.perf_counter()
        batched_out = pipeline.run_many(requests, batch_axis=True)
        batched_s = time.perf_counter() - start

        for a, b in zip(looped_out, batched_out):
            assert np.array_equal(a, b), (
                f"taps={taps}: batch-axis output differs from looped"
                " run_many"
            )
        results[taps] = (batch, looped_s, batched_s)
    return results


#: --faulted smoke: per-visit probability of an injected kernel failure
FAULT_RATE = 0.10
#: chosen so the very first kernel visit fires (fraction 0.013 < 0.10)
#: — the smoke provably exercises a fault on every run
FAULT_SEED = 49


def faulted_smoke(sizes, workers=2, rate=FAULT_RATE, seed=FAULT_SEED):
    """Serve the suite under a ``rate`` injected-kernel-failure storm.

    Graceful-degradation gate: every request is answered (no silent
    drops), answered outputs are bit-identical to the unfaulted run,
    failures surfacing to callers stay rare (the retry budget and the
    breaker's interpreter fallback absorb the storm), and the server's
    stats() prove recovery work actually happened.
    """
    from repro.runtime.executor import RequestError
    from repro.service import faults
    from repro.service.faults import FaultPlan, FaultSpec

    print_header(
        "Faulted serving smoke — "
        f"{rate:.0%} injected kernel-failure rate, {workers} workers,"
        " retries + circuit-breaker degradation"
    )
    total_fired = total_errors = total_requests = 0
    for taps in sizes:
        app = conv1d.build("tensor", taps=taps, rows=1)
        app.backend = "compile"
        pipeline = app.compile()
        requests = build_requests(app, requests_for(taps), seed=17)
        expected = [pipeline.run(request) for request in requests]
        plan = FaultPlan(
            seed=seed, specs=[FaultSpec("raise-in-kernel", rate=rate)]
        )
        with Server(
            pipeline, workers=workers, retries=2, breaker_threshold=3
        ) as server:
            with faults.active(plan):
                outputs = server.run_many(requests, on_error="return")
            stats = server.stats()
        assert len(outputs) == len(requests), "requests silently dropped"
        errors = 0
        for reference, output in zip(expected, outputs):
            if isinstance(output, RequestError):
                errors += 1
                continue
            assert np.array_equal(output, reference), (
                f"taps={taps}: faulted serving output differs from the"
                " unfaulted run"
            )
        recovered = stats["retries"] > 0 or stats["degraded"]
        assert stats["failures"] == 0 or recovered, (
            f"taps={taps}: failures happened but no recovery path ran"
        )
        total_fired += plan.fired()
        total_errors += errors
        total_requests += len(requests)
        print(
            f"  conv1d k={taps}: {len(requests)} requests,"
            f" {plan.fired()} faults fired, {stats['retries']} retries,"
            f" degraded={stats['degraded']}"
            f" (backend breaker trips={stats['breakers']['backend']['trips']}),"
            f" {errors} surfaced errors"
        )
    assert total_fired > 0, "fault plan never fired — smoke proved nothing"
    # graceful: the retry budget + degradation absorb almost everything
    assert total_errors <= max(1, total_requests // 10), (
        f"{total_errors}/{total_requests} requests failed — degradation"
        " is not graceful"
    )
    print(
        f"faulted smoke ok: {total_fired} faults over {total_requests}"
        f" requests, {total_errors} surfaced"
    )


# -- mixed-shape router race ---------------------------------------------------

#: conv1d kernel sizes for the mixed-shape stream — each size is a
#: distinct shape signature, so each forms its own serving bucket
MIXED_SIZES = [32, 96, 160]
MIXED_SMOKE_SIZES = [8, 16]
MIXED_REQUESTS = 32
MIXED_SMOKE_REQUESTS = 4
#: multi-process router must beat the single-process ceiling by this
TARGET_MIXED_SCALING = 1.2


def mixed_jobs(sizes):
    """One :class:`CompileJob` per conv1d kernel size.  The cuda
    variant skips equality saturation, so worker processes start fast
    and the race times serving, not compilation."""
    return [
        CompileJob.make("conv1d", "cuda", taps=taps, rows=1)
        for taps in sizes
    ]


def build_named_requests(app, count, seed=23):
    """Like :func:`build_requests`, but keyed by parameter *name* —
    the wire-facing serving idiom the shm frame codec carries (object
    keys are pipe-only traffic).  The filter array is the same object
    across requests, so the codec writes it into the frame once."""
    rng = np.random.default_rng(seed)
    requests = []
    for _ in range(count):
        requests.append(
            {
                key.name: (
                    f16_random(rng, value.shape)
                    if key.name == "I"
                    else value
                )
                for key, value in app.inputs.items()
            }
        )
    return requests


def mixed_stream(jobs, per_app, seed=23):
    """(requests per job, interleaved stream): request ``i`` of every
    app, then ``i+1`` of every app — adjacent requests never share a
    shape signature, which is exactly the traffic the router's
    bucketing exists to untangle."""
    per_job = {}
    for job in jobs:
        app = job.build_app()
        per_job[job] = build_named_requests(app, per_app, seed=seed)
    stream = [
        (job, per_job[job][index])
        for index in range(per_app)
        for job in jobs
    ]
    return per_job, stream


def _route_stream(router, stream, timeout=300.0):
    """Submit the whole interleaved stream, then resolve in order."""
    futures = [router.submit(job, inputs) for job, inputs in stream]
    return [future.result(timeout=timeout) for future in futures]


def _transport_totals(stats):
    """Sum the per-pool transport counters across the router."""
    totals = {
        "shm_batches": 0,
        "shm_requests": 0,
        "pipe_batches": 0,
        "pipe_payloads": 0,
    }
    for pool in stats["pools"].values():
        transport = pool["transport"]
        for key in totals:
            totals[key] += transport[key]
    return totals


def _assert_mixed_parity(jobs, stream, round_results, expected, label):
    """Routed outputs bit-identical to the reference, in order."""
    seen = {job: 0 for job in jobs}
    for (job, _), output in zip(stream, round_results):
        index = seen[job]
        seen[job] += 1
        assert np.array_equal(output, expected[job][index]), (
            f"{label}: routed output for {job.label} request"
            f" {index} differs from the single-process reference"
        )


def _print_bucket_stats(stats):
    for bucket in stats["buckets"]:
        p50 = bucket["p50_ms"]
        p99 = bucket["p99_ms"]
        rps = bucket["throughput_rps"]
        print(
            f"  bucket {bucket['job']}: {bucket['completed']} done in"
            f" {bucket['flushes']} flushes (largest"
            f" {bucket['largest_flush']}),"
            f" p50 {p50:.2f} ms / p99 {p99:.2f} ms,"
            f" {rps:.0f} req/s"
            if p50 is not None and rps is not None
            else f"  bucket {bucket['job']}: {bucket['completed']} done"
        )


def mixed_shapes_smoke(workers=1, per_app=MIXED_SMOKE_REQUESTS):
    """Bitwise parity + the zero-copy contract, no timing (CI-safe).

    Round 1 warms every worker (plans bind; the shm handshake rides
    alongside the first pipe dispatch).  Round 2 is the measured
    round: on a host with shared memory, *every* tensor payload must
    cross on the rings and *none* over the pickling pipe — asserted
    on the transport-counter deltas between the rounds.
    """
    print_header(
        "Mixed-shape router smoke — interleaved multi-shape stream,"
        f" {workers} worker(s) per bucketed pool, zero-copy contract"
    )
    jobs = mixed_jobs(MIXED_SMOKE_SIZES)
    per_job, stream = mixed_stream(jobs, per_app)
    expected = {}
    for job, requests in per_job.items():
        app = job.build_app()
        app.backend = "compile"
        pipeline = app.compile()
        expected[job] = [pipeline.run(request) for request in requests]
    with Router(jobs, workers=workers, max_batch=per_app) as router:
        warm = _route_stream(router, stream)
        before = _transport_totals(router.stats())
        measured = _route_stream(router, stream)
        stats = router.stats()
    after = _transport_totals(stats)
    _assert_mixed_parity(jobs, stream, warm, expected, "warm round")
    _assert_mixed_parity(
        jobs, stream, measured, expected, "measured round"
    )
    assert stats["failed"] == 0, "mixed stream surfaced failures"
    assert len(stats["buckets"]) == len(jobs), (
        f"expected one bucket per shape, got {len(stats['buckets'])}"
    )
    _print_bucket_stats(stats)
    if shm_available():
        pipe_delta = after["pipe_payloads"] - before["pipe_payloads"]
        shm_delta = after["shm_requests"] - before["shm_requests"]
        assert pipe_delta == 0, (
            f"{pipe_delta} payload(s) were pickled over the pipe after"
            " warm-up — the shm path is not zero-copy end to end"
        )
        assert shm_delta == len(stream), (
            f"only {shm_delta}/{len(stream)} measured requests rode"
            " shared memory"
        )
        print(
            f"mixed-shape smoke ok: {len(stream)} requests/round,"
            f" measured round {shm_delta} over shm, 0 over pipe"
        )
    else:
        print(
            "mixed-shape smoke ok: parity held"
            " (shared memory unavailable here — zero-copy contract"
            " not exercised, pipe fallback served the stream)"
        )


def mixed_shapes_race(
    processes=2, sizes=MIXED_SIZES, per_app=MIXED_REQUESTS
):
    """Race the router against the single-process batch-axis ceiling.

    The ceiling is the best one process can do: for each shape, one
    warmed batch-axis ``run_many`` call, zero IPC.  The router pays
    process supervision and transport on top — the assertion is that
    with ``processes`` workers per bucket it scales *past* the
    ceiling anyway.  On a single-core host that is physically
    impossible, so the timing assertion is skipped (parity and the
    zero-copy contract still hold).
    """
    print_header(
        "Mixed-shape router race — single-process batch-axis ceiling"
        f" vs. Router with {processes} worker process(es) per bucket"
    )
    jobs = mixed_jobs(sizes)
    per_job, stream = mixed_stream(jobs, per_app)

    expected = {}
    pipelines = {}
    for job, requests in per_job.items():
        app = job.build_app()
        app.backend = "compile"
        pipeline = app.compile()
        pipeline.run_many(requests, batch_axis=True)  # warm codegen
        pipelines[job] = pipeline
    start = time.perf_counter()
    for job, requests in per_job.items():
        expected[job] = pipelines[job].run_many(
            requests, batch_axis=True
        )
    single_s = time.perf_counter() - start

    with Router(jobs, workers=processes, max_batch=8) as router:
        _route_stream(router, stream)  # warm plans + shm handshake
        before = _transport_totals(router.stats())
        start = time.perf_counter()
        measured = _route_stream(router, stream)
        multi_s = time.perf_counter() - start
        stats = router.stats()
    after = _transport_totals(stats)
    _assert_mixed_parity(
        jobs, stream, measured, expected, "routed round"
    )
    assert stats["failed"] == 0, "mixed stream surfaced failures"
    _print_bucket_stats(stats)

    total = len(stream)
    single_rps = total / single_s
    multi_rps = total / multi_s
    print(
        f"single-process ceiling: {total} requests in"
        f" {single_s * 1e3:.1f} ms ({single_rps:.0f} req/s)"
    )
    print(
        f"router x{processes}:          {total} requests in"
        f" {multi_s * 1e3:.1f} ms ({multi_rps:.0f} req/s)"
        f" -> {multi_rps / single_rps:.2f}x"
    )
    if shm_available():
        pipe_delta = after["pipe_payloads"] - before["pipe_payloads"]
        assert pipe_delta == 0, (
            f"{pipe_delta} payload(s) pickled over the pipe in the"
            " measured round — not zero-copy"
        )
    cores = os.cpu_count() or 1
    if cores > 1:
        assert multi_rps >= TARGET_MIXED_SCALING * single_rps, (
            f"router did not scale past the single-process ceiling:"
            f" {multi_rps:.0f} req/s vs {single_rps:.0f} req/s"
            f" (need {TARGET_MIXED_SCALING}x on {cores} cores)"
        )
    else:
        print(
            "single-core host: scaling assertion skipped — no number"
            " of worker processes can out-run one busy core"
        )


# -- overload (shed-not-collapse) gate ----------------------------------------

#: conv1d kernel size for the overload run (fast worker start)
OVERLOAD_TAPS = 8
#: per-request latency budget (seconds) — the SLO goodput is measured
#: against; a request that cannot meet it expires instead of occupying
#: a worker
OVERLOAD_BUDGET = 0.5
#: requests submitted with an already-spent budget: they must expire
#: before ever reaching a worker
OVERLOAD_TINY = 10
#: a budget this small is spent before the flusher can run
TINY_BUDGET = 1e-6


def _paced_round(router, job, warm, rate, duration, tiny_every=None):
    """Offer an open-loop paced stream at ``rate`` req/s for
    ``duration`` seconds; returns the per-class outcome counts.

    Half interactive / half best-effort; every request carries the
    ``OVERLOAD_BUDGET`` latency budget.  With ``tiny_every`` set,
    every Nth request instead carries an already-spent budget (on the
    interactive lane, so the shedder cannot drop it before the expiry
    path runs).
    """
    from repro.service import DeadlineExceeded, ShedError
    from repro.service.serve import RejectedError

    interval = 1.0 / rate
    shed_at_admission = 0
    futures = []
    tiny_futures = []
    index = 0
    start = time.perf_counter()
    next_at = start
    while time.perf_counter() - start < duration:
        now = time.perf_counter()
        if now < next_at:
            time.sleep(min(next_at - now, 0.001))
            continue
        next_at += interval
        index += 1
        is_tiny = tiny_every is not None and index % tiny_every == 0
        priority = (
            "interactive" if is_tiny or index % 2 else "best-effort"
        )
        try:
            future = router.submit(
                job,
                warm[index % len(warm)],
                deadline=TINY_BUDGET if is_tiny else OVERLOAD_BUDGET,
                priority=priority,
            )
        except (ShedError, RejectedError):
            shed_at_admission += 1
            continue
        (tiny_futures if is_tiny else futures).append(future)
    # resolve everything offered this round before measuring: goodput
    # counts only requests that met their budget end to end
    completed = expired = failed = 0
    for future in futures:
        error = future.exception(timeout=120)
        if error is None:
            completed += 1
        elif isinstance(error, DeadlineExceeded):
            expired += 1
        else:
            failed += 1
    tiny_expired = sum(
        1
        for future in tiny_futures
        if isinstance(future.exception(timeout=120), DeadlineExceeded)
    )
    elapsed = time.perf_counter() - start
    return {
        "offered": index,
        "completed": completed,
        "expired": expired,
        "failed": failed,
        "shed_at_admission": shed_at_admission,
        "tiny": len(tiny_futures),
        "tiny_expired": tiny_expired,
        "goodput": completed / elapsed,
        "elapsed": elapsed,
    }


def overload_race(smoke=False, workers=2):
    """Shed-not-collapse: goodput at 2x offered load stays near capacity.

    Capacity is the goodput of an open-loop paced round at a
    sustainable rate (bootstrapped from a closed-loop run); the gate
    round offers the same traffic at 2x that rate plus a cohort of
    already-expired (tiny-budget) requests.  Asserted: adaptive
    shedding keeps goodput within 20% of capacity (50% for
    ``--smoke``), the shedder provably engaged, every tiny-budget
    request expired, and no expired request ever occupied a worker
    (zero deadline kills).
    """
    threshold = 0.5 if smoke else 0.8
    duration = 1.0 if smoke else 2.0
    print_header(
        "Overload gate — open-loop 2x offered load vs. paced capacity,"
        f" {workers} workers, CoDel-style shedding,"
        f" {OVERLOAD_BUDGET:.2f}s budgets"
    )
    job = CompileJob.make("conv1d", "cuda", taps=OVERLOAD_TAPS, rows=1)
    app = job.build_app()
    warm = build_named_requests(app, 64, seed=31)
    with Router(
        [job],
        workers=workers,
        max_batch=4,
        flush_interval=0.002,
        shed_target=0.02,
        shed_interval=0.05,
        bucket_cap=64,
    ) as router:
        router.run_many(job, warm[:16])  # plans bind, shm handshakes
        start = time.perf_counter()
        router.run_many(job, warm)
        bootstrap = len(warm) / (time.perf_counter() - start)

        base = _paced_round(router, job, warm, bootstrap, duration)
        capacity = base["goodput"]
        before_shed = router.stats()["shed"]
        gate = _paced_round(
            router,
            job,
            warm,
            2.0 * capacity,
            duration,
            tiny_every=max(1, int(duration * 2.0 * capacity) // OVERLOAD_TINY),
        )
        stats = router.stats()
    shed = stats["shed"] - before_shed
    (pool_stats,) = stats["pools"].values()
    goodput = gate["goodput"]
    print(
        f"paced capacity: {capacity:.0f} req/s"
        f" ({base['completed']}/{base['offered']} completed at the"
        f" {bootstrap:.0f} req/s bootstrap rate)"
    )
    print(
        f"2x round: offered {gate['offered']} at {2 * capacity:.0f}"
        f" req/s over {gate['elapsed']:.2f}s -> goodput"
        f" {goodput:.0f} req/s ({goodput / capacity:.0%} of capacity):"
        f" {gate['completed']} completed, {gate['expired']} expired,"
        f" {shed} shed ({gate['shed_at_admission']} at admission),"
        f" {gate['failed']} failed,"
        f" tiny-budget {gate['tiny_expired']}/{gate['tiny']} expired"
    )
    assert gate["failed"] == 0, (
        f"{gate['failed']} requests failed outright under overload"
    )
    assert gate["tiny"] and gate["tiny_expired"] == gate["tiny"], (
        f"only {gate['tiny_expired']}/{gate['tiny']} already-expired"
        " requests failed fast with DeadlineExceeded"
    )
    assert pool_stats["deadline_kills"] == 0, (
        f"{pool_stats['deadline_kills']} expired batches occupied a"
        " worker — expiry must happen before dispatch"
    )
    assert shed >= 1, (
        "2x offered load never engaged the shedder — overload control"
        " is not doing anything"
    )
    assert goodput >= threshold * capacity, (
        f"goodput collapsed under 2x load: {goodput:.0f} req/s is"
        f" {goodput / capacity:.0%} of the {capacity:.0f} req/s"
        f" capacity (need >= {threshold:.0%})"
    )
    print(
        f"overload gate ok: goodput held at {goodput / capacity:.0%}"
        " of capacity under 2x offered load"
    )


def report_batch_axis(results, workers):
    print_header(
        "Batch-axis kernel — one stacked kernel call per bucket vs."
        f" looped run_many ({workers} workers), compile backend"
    )
    rows = [
        serving_row(f"conv1d k={taps} B={count}", count, looped_s, batched_s)
        for taps, (count, looped_s, batched_s) in results.items()
    ]
    print_serving_report(rows)
    looped_total = sum(r[1] for r in results.values())
    batched_total = sum(r[2] for r in results.values())
    print(
        f"suite totals: looped {looped_total * 1e3:.1f} ms, batch-axis"
        f" {batched_total * 1e3:.1f} ms ->"
        f" {looped_total / batched_total:.1f}x"
    )
    return looped_total, batched_total


def report(results, workers) -> None:
    print_header(
        "Batched serving throughput — naive per-call run() loop vs."
        f" run_many plans ({workers} workers), fig-6 conv1d suite,"
        " compile backend"
    )
    rows = [
        serving_row(f"conv1d k={taps}", count, naive_s, batched_s)
        for taps, (count, naive_s, batched_s, _) in results.items()
    ]
    print_serving_report(rows)
    naive_total = sum(r[1] for r in results.values())
    batched_total = sum(r[2] for r in results.values())
    print(
        f"suite totals: naive {naive_total * 1e3:.1f} ms, batched"
        f" {batched_total * 1e3:.1f} ms ->"
        f" {naive_total / batched_total:.1f}x"
    )
    return naive_total, batched_total


def test_serving_throughput():
    """Batched >=3x the naive loop; outputs bit-identical both backends."""
    results = race(KERNEL_SIZES)
    interpreter_parity(SMOKE_SIZES)
    naive_total, batched_total = report(results, WORKERS)
    speedup = naive_total / batched_total
    assert speedup >= TARGET_SPEEDUP, (
        f"serving speedup regressed: {speedup:.2f}x < {TARGET_SPEEDUP}x"
        f" (naive {naive_total:.3f}s, batched {batched_total:.3f}s)"
    )


def test_batch_axis_throughput():
    """The batch-axis kernel >=1.5x the looped multi-worker run_many."""
    results = batch_axis_race(KERNEL_SIZES)
    looped_total, batched_total = report_batch_axis(results, WORKERS)
    speedup = looped_total / batched_total
    assert speedup >= TARGET_BATCHED_SPEEDUP, (
        f"batch-axis speedup regressed: {speedup:.2f}x <"
        f" {TARGET_BATCHED_SPEEDUP}x (looped {looped_total:.3f}s,"
        f" batch-axis {batched_total:.3f}s)"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="bit-identity + multi-worker plumbing on small workloads;"
        " no timing assertions (CI-safe)",
    )
    parser.add_argument(
        "--faulted",
        action="store_true",
        help="graceful-degradation smoke: serve under a"
        f" {FAULT_RATE:.0%} injected kernel-failure rate and assert"
        " bit-identical answered outputs (CI-safe)",
    )
    parser.add_argument(
        "--mixed-shapes",
        action="store_true",
        help="race the shape-bucketing Router on an interleaved"
        " multi-shape stream; with --smoke asserts bitwise parity and"
        " the zero-copy shm contract only (CI-safe)",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=2,
        help="worker processes per bucketed pool for the"
        " --mixed-shapes race (default 2)",
    )
    parser.add_argument(
        "--overload",
        action="store_true",
        help="shed-not-collapse gate: goodput at 2x offered load stays"
        " near closed-loop capacity while expired requests never"
        " occupy a worker; with --smoke uses a shorter run and a"
        " laxer goodput floor (CI-safe)",
    )
    args = parser.parse_args()
    if args.overload:
        overload_race(smoke=args.smoke)
        return 0
    if args.mixed_shapes:
        if args.smoke:
            mixed_shapes_smoke()
        else:
            mixed_shapes_race(processes=args.processes)
        return 0
    if args.faulted:
        faulted_smoke(SMOKE_SIZES)
        return 0
    if args.smoke:
        results = race(SMOKE_SIZES, workers=2)
        interpreter_parity(SMOKE_SIZES)
        naive_total, batched_total = report(results, 2)
        speedup = naive_total / batched_total
        ba = batch_axis_race(SMOKE_SIZES, batch=8, workers=2)
        looped_total, ba_total = report_batch_axis(ba, 2)
        print(
            f"smoke ok: {speedup:.1f}x serving,"
            f" {looped_total / ba_total:.1f}x batch-axis (not asserted)"
        )
        return 0
    test_serving_throughput()
    test_batch_axis_throughput()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
