"""Differential serving-parity suite for the micro-batching router.

The gate for the shared-memory transport + router stack: a mixed
stream of requests served through ``Router`` -> shm rings ->
batch-axis workers must be **bitwise identical** to running every
request one at a time through ``CompiledPipeline.run`` in the same
process — on both backends, in submission order, and while the
fault-injection harness crashes workers mid-bucket or corrupts
shared-memory frames under the read path.
"""

import numpy as np
import pytest

from conftest import SIMPLE_APPS, build_requests
from repro.runtime.executor import RequestError
from repro.service import CompileJob
from repro.service.faults import FaultPlan, FaultSpec
from repro.service.router import Router, job_fingerprint, shape_signature
from repro.service.serve import RejectedError, ServerClosed
from repro.service.shm import available as shm_available
from repro.service.supervisor import RemoteError, WorkerPool

pytestmark = pytest.mark.router

#: the cuda variants skip equality saturation, so workers start fast
JOBS = [
    CompileJob.make(
        module.__name__.split(".")[-1], "cuda", **params
    )
    for module, params in SIMPLE_APPS
]
#: a second conv1d shape so one app contributes two distinct buckets
EXTRA_SHAPE_JOB = CompileJob.make("conv1d", "cuda", taps=8, rows=1)

FAST_JOB = EXTRA_SHAPE_JOB  # smallest/fastest worker init of the set

BACKENDS = ["compile", "interpret"]


def _reference_outputs(job, requests, backend):
    """Per-request single-process ``CompiledPipeline.run`` outputs."""
    app = job.build_app()
    app.backend = backend
    pipeline = app.compile()
    return [pipeline.run(request) for request in requests]


def _mixed_stream(jobs, per_app, rng):
    """An interleaved mixed-shape stream: request ``i`` of every app,
    then request ``i+1`` of every app, ... — adjacent requests never
    share an app or a shape signature."""
    per_job = {}
    for job in jobs:
        app = job.build_app()
        per_job[job] = build_requests(app, per_app, rng)
    stream = []
    for index in range(per_app):
        for job in jobs:
            stream.append((job, per_job[job][index]))
    return per_job, stream


class TestDifferentialParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mixed_stream_bitwise_identical(self, backend, rng):
        """Every fig-6 app, mixed into one stream, twice over (the
        second round rides the warmed shared-memory path): routed
        results equal per-request execution bit for bit, in
        submission order."""
        jobs = JOBS + [EXTRA_SHAPE_JOB]
        per_job, stream = _mixed_stream(jobs, 3, rng)
        expected = {
            job_fingerprint(job): _reference_outputs(
                job, requests, backend
            )
            for job, requests in per_job.items()
        }
        with Router(
            jobs, workers=1, backend=backend, max_batch=4
        ) as router:
            for round_index in range(2):
                futures = [
                    (job_fingerprint(job), router.submit(job, inputs))
                    for job, inputs in stream
                ]
                seen = {}
                for key, future in futures:
                    position = seen.get(key, 0)
                    seen[key] = position + 1
                    np.testing.assert_array_equal(
                        future.result(timeout=120), expected[key][position]
                    )
            stats = router.stats()
        assert stats["completed"] == 2 * len(stream)
        assert stats["failed"] == 0
        # every app formed its own bucket; the extra conv1d shape too
        assert len(stats["buckets"]) == len(jobs)
        if backend == "compile" and shm_available():
            shm_requests = sum(
                pool["transport"]["shm_requests"]
                for pool in stats["pools"].values()
            )
            assert shm_requests > 0, "warmed stream never rode shm"

    def test_results_arrive_in_submission_order(self, rng):
        app = FAST_JOB.build_app()
        requests = build_requests(app, 10, rng)
        expected = _reference_outputs(FAST_JOB, requests, "compile")
        with Router([FAST_JOB], workers=2, max_batch=4) as router:
            results = router.run_many(FAST_JOB, requests)
        for result, reference in zip(results, expected):
            np.testing.assert_array_equal(result, reference)


class TestFaultedParity:
    def test_worker_crash_mid_bucket_is_bitwise_transparent(self, rng):
        """The acceptance scenario: a worker killed mid-bucket, the
        bucket's requests retried onto the respawned worker, results
        still bit-identical and in order."""
        app = FAST_JOB.build_app()
        requests = build_requests(app, 8, rng)
        expected = _reference_outputs(FAST_JOB, requests, "compile")
        plan = FaultPlan(
            seed=11,
            specs=[
                FaultSpec(
                    "kill-worker", visits=(0,), scope={"incarnation": 0}
                )
            ],
        )
        with Router(
            [FAST_JOB],
            workers=2,
            max_batch=4,
            fault_plan=plan,
            retries=3,
        ) as router:
            results = router.run_many(FAST_JOB, requests)
            stats = router.stats()
        for result, reference in zip(results, expected):
            np.testing.assert_array_equal(result, reference)
        pool_stats = next(iter(stats["pools"].values()))
        assert pool_stats["crashes"] >= 1
        assert pool_stats["restarts"] >= 1
        assert stats["failed"] == 0

    @pytest.mark.skipif(
        not shm_available(), reason="host cannot back shared memory"
    )
    def test_corrupted_shm_frame_is_rejected_and_retried(self, rng):
        """An injected shm-slot corruption under the worker's read
        path: the checksummed frame is rejected, the requests retried
        on a fresh frame, and the served bytes stay identical."""
        app = FAST_JOB.build_app()
        requests = build_requests(app, 6, rng)
        expected = _reference_outputs(FAST_JOB, requests, "compile")
        plan = FaultPlan(
            seed=5,
            specs=[FaultSpec("corrupt-shm-slot", visits=(0,))],
        )
        with Router(
            [FAST_JOB],
            workers=1,
            max_batch=4,
            fault_plan=plan,
            retries=3,
            transport="shm",
        ) as router:
            # two rounds: round 1 warms the ring handshake, round 2
            # rides shm and trips the injected corruption
            for _ in range(2):
                results = router.run_many(FAST_JOB, requests)
                for result, reference in zip(results, expected):
                    np.testing.assert_array_equal(result, reference)
            stats = router.stats()
        pool_stats = next(iter(stats["pools"].values()))
        transport = pool_stats["transport"]
        assert transport["shm_corruptions"] >= 1
        assert transport["shm_batches"] >= 1
        assert stats["failed"] == 0


class TestTracebackPreservation:
    def test_run_many_on_error_return_preserves_worker_traceback(
        self, rng
    ):
        """Regression: a request failing *inside* a worker-side batch
        must surface its own original traceback through the shm
        transport — the same exception type a local run raises, with
        the worker-side traceback text attached."""
        app = FAST_JOB.build_app()
        app.backend = "compile"
        pipeline = app.compile()
        requests = build_requests(app, 5, rng)
        poisoned = dict(requests[2])
        first_key = sorted(poisoned)[0]
        poisoned[first_key] = np.zeros((3, 3), dtype=np.float32)
        with pytest.raises(Exception) as local:
            pipeline.run(poisoned)
        local_kind = type(local.value).__name__

        batch = requests[:2] + [poisoned] + requests[3:]
        with WorkerPool(FAST_JOB, workers=1, retries=0) as pool:
            # warm the ring handshake so the batch below rides shm
            pool.run(requests[0])
            before = pool.stats()["transport"]["shm_batches"]
            futures = pool.submit_many(batch)
            results = []
            for index, future in enumerate(futures):
                try:
                    results.append(future.result(timeout=120))
                except Exception as exc:
                    results.append(RequestError(index, exc))
            after = pool.stats()["transport"]["shm_batches"]
        if shm_available():
            assert after > before, "batch did not ride the shm path"
        assert isinstance(results[2], RequestError)
        remote = results[2].original
        assert isinstance(remote, RemoteError)
        assert remote.kind == local_kind
        assert "Traceback (most recent call last)" in (
            remote.remote_traceback
        )
        assert local_kind in remote.remote_traceback
        for index in (0, 1, 3, 4):
            np.testing.assert_array_equal(
                results[index], pipeline.run(batch[index])
            )

    def test_router_isolates_poisoned_request(self, rng):
        app = FAST_JOB.build_app()
        requests = build_requests(app, 4, rng)
        poisoned = dict(requests[1])
        first_key = sorted(poisoned)[0]
        poisoned[first_key] = np.zeros((2, 2), dtype=np.float32)
        batch = [requests[0], poisoned, requests[2], requests[3]]
        expected = _reference_outputs(FAST_JOB, requests, "compile")
        with Router([FAST_JOB], workers=1, retries=0) as router:
            results = router.run_many(
                FAST_JOB, batch, on_error="return"
            )
        assert isinstance(results[1], RequestError)
        assert results[1].index == 1
        np.testing.assert_array_equal(results[0], expected[0])
        np.testing.assert_array_equal(results[2], expected[2])
        np.testing.assert_array_equal(results[3], expected[3])


class TestAdmissionAndLifecycle:
    def test_backpressure_rejects_beyond_max_pending(self, rng):
        app = FAST_JOB.build_app()
        requests = build_requests(app, 3, rng)
        with Router(
            [FAST_JOB],
            workers=1,
            max_batch=16,
            flush_interval=0.5,
            max_pending=2,
        ) as router:
            first = router.submit(FAST_JOB, requests[0])
            second = router.submit(FAST_JOB, requests[1])
            with pytest.raises(RejectedError):
                router.submit(FAST_JOB, requests[2])
            first.result(timeout=120)
            second.result(timeout=120)
            stats = router.stats()
        assert stats["rejected"] >= 1
        assert any(b["rejected"] >= 1 for b in stats["buckets"])

    def test_close_is_idempotent_and_rejects_new_work(self, rng):
        app = FAST_JOB.build_app()
        request = build_requests(app, 1, rng)[0]
        router = Router([FAST_JOB], workers=1)
        router.run(FAST_JOB, request)
        router.close()
        router.close()
        with pytest.raises(ServerClosed):
            router.submit(FAST_JOB, request)
        assert router.stats()["closed"] is True

    def test_unknown_job_is_a_typed_error(self, rng):
        with Router([FAST_JOB], workers=1) as router:
            with pytest.raises(KeyError):
                router.submit(
                    CompileJob.make("conv1d", "cuda", taps=4, rows=1), None
                )

    def test_pipe_transport_serves_identically(self, rng):
        """Fallback matrix row: shared memory disabled outright, the
        pipe path alone still serves bit-identical results."""
        app = FAST_JOB.build_app()
        requests = build_requests(app, 6, rng)
        expected = _reference_outputs(FAST_JOB, requests, "compile")
        with Router(
            [FAST_JOB], workers=1, transport="pipe"
        ) as router:
            results = router.run_many(FAST_JOB, requests)
            stats = router.stats()
        for result, reference in zip(results, expected):
            np.testing.assert_array_equal(result, reference)
        transport = next(iter(stats["pools"].values()))["transport"]
        assert transport["mode"] == "pipe"
        assert transport["shm_batches"] == 0
        assert transport["pipe_payloads"] >= len(requests)


class TestStats:
    def test_per_bucket_latency_and_throughput(self, rng):
        app = FAST_JOB.build_app()
        requests = build_requests(app, 8, rng)
        with Router(
            [FAST_JOB], workers=1, max_batch=4, flush_interval=0.05
        ) as router:
            router.run_many(FAST_JOB, requests)
            stats = router.stats()
        assert stats["submitted"] == len(requests)
        assert stats["completed"] == len(requests)
        (bucket,) = stats["buckets"]
        assert bucket["signature"] == shape_signature(requests[0])
        assert bucket["flushes"] >= 1
        assert bucket["largest_flush"] >= 2  # micro-batching engaged
        assert bucket["p50_ms"] is not None
        assert bucket["p99_ms"] is not None
        assert bucket["p50_ms"] <= bucket["p99_ms"]
        assert bucket["throughput_rps"] and bucket["throughput_rps"] > 0
        fingerprint = bucket["fingerprint"]
        assert stats["jobs"][fingerprint] == FAST_JOB.label
        assert stats["pools"][fingerprint]["completed"] == len(requests)


class TestLifecycleHardening:
    def test_run_many_partial_submit_returns_placeholders(self, rng):
        """Regression: a mid-stream admission rejection must not
        abandon already-submitted futures.  With on_error="return" the
        rejected tail comes back as RequestError placeholders and the
        admitted head still completes."""
        app = FAST_JOB.build_app()
        requests = build_requests(app, 4, rng)
        expected = _reference_outputs(FAST_JOB, requests, "compile")
        with Router(
            [FAST_JOB],
            workers=1,
            max_batch=16,
            flush_interval=0.3,
            max_pending=2,
        ) as router:
            results = router.run_many(
                FAST_JOB, requests, on_error="return"
            )
        np.testing.assert_array_equal(results[0], expected[0])
        np.testing.assert_array_equal(results[1], expected[1])
        for index in (2, 3):
            assert isinstance(results[index], RequestError)
            assert isinstance(results[index].original, RejectedError)
            assert results[index].index == index

    def test_run_many_partial_submit_raise_awaits_the_head(self, rng):
        """Same regression, on_error="raise": the RejectedError
        surfaces only after the already-submitted futures reached
        terminal states — nothing is left pending behind the raise."""
        app = FAST_JOB.build_app()
        requests = build_requests(app, 4, rng)
        with Router(
            [FAST_JOB],
            workers=1,
            max_batch=16,
            flush_interval=0.3,
            max_pending=2,
        ) as router:
            with pytest.raises(RejectedError):
                router.run_many(FAST_JOB, requests, on_error="raise")
            stats = router.stats()
            assert stats["pending"] == 0
            assert stats["completed"] == 2

    def test_expired_request_never_reaches_a_worker(self, rng):
        """The deadline-budget contract: a request whose budget is
        already spent fails fast with DeadlineExceeded and is never
        dispatched — no worker time, no pool traffic."""
        from repro.service.supervisor import DeadlineExceeded

        app = FAST_JOB.build_app()
        requests = build_requests(app, 2, rng)
        expected = _reference_outputs(FAST_JOB, requests, "compile")
        with Router(
            [FAST_JOB], workers=1, flush_interval=0.02, record_events=True
        ) as router:
            doomed = router.submit(FAST_JOB, requests[0], deadline=1e-6)
            with pytest.raises(DeadlineExceeded):
                doomed.result(timeout=60)
            # the router stays healthy for in-budget work
            live = router.submit(FAST_JOB, requests[1], deadline=60.0)
            np.testing.assert_array_equal(
                live.result(timeout=120), expected[1]
            )
            stats = router.stats()
            (pool,) = router.pools().values()
            dispatched = {
                event[1]
                for event in pool.event_log()
                if event[0] == "dispatch"
            }
        assert stats["expired"] == 1
        assert stats["completed"] == 1
        assert stats["failed"] == 0
        # exactly one request ever reached the pool
        assert len(dispatched) == 1
        pool_stats = stats["pools"][job_fingerprint(FAST_JOB)]
        assert pool_stats["completed"] == 1
        assert pool_stats["expired"] == 0
        assert pool_stats["deadline_kills"] == 0

    def test_queue_wait_consumes_the_budget(self, rng):
        """The budget spans router queue wait: a request whose bucket
        does not flush inside its budget expires without dispatch."""
        from repro.service.supervisor import DeadlineExceeded

        app = FAST_JOB.build_app()
        request = build_requests(app, 1, rng)[0]
        with Router(
            [FAST_JOB],
            workers=1,
            max_batch=16,
            flush_interval=0.5,
        ) as router:
            future = router.submit(FAST_JOB, request, deadline=0.05)
            with pytest.raises(DeadlineExceeded) as excinfo:
                future.result(timeout=60)
            assert "before its bucket flushed" in str(excinfo.value)
            assert router.stats()["expired"] == 1

    def test_interactive_evicts_best_effort_at_bucket_cap(self, rng):
        """Two-class admission at the depth cap: best-effort arrivals
        shed, an interactive arrival evicts the newest queued
        best-effort entry instead of being turned away."""
        from repro.service.serve import ShedError

        app = FAST_JOB.build_app()
        requests = build_requests(app, 4, rng)
        expected = _reference_outputs(FAST_JOB, requests, "compile")
        router = Router(
            [FAST_JOB],
            workers=1,
            max_batch=16,
            flush_interval=60.0,
            bucket_cap=2,
        )
        try:
            first = router.submit(
                FAST_JOB, requests[0], priority="best-effort"
            )
            evicted = router.submit(
                FAST_JOB, requests[1], priority="best-effort"
            )
            with pytest.raises(ShedError):
                router.submit(
                    FAST_JOB, requests[2], priority="best-effort"
                )
            urgent = router.submit(
                FAST_JOB, requests[3], priority="interactive"
            )
            with pytest.raises(ShedError):
                evicted.result(timeout=1)
            # close() flushes the survivors: both classes complete
            router.close()
            np.testing.assert_array_equal(
                first.result(timeout=1), expected[0]
            )
            np.testing.assert_array_equal(
                urgent.result(timeout=1), expected[3]
            )
            stats = router.stats()
            assert stats["shed"] == 2
            assert stats["completed"] == 2
        finally:
            router.close()

    def test_sojourn_shedding_under_sustained_overload(self, rng):
        """CoDel-style control: under 2x-style overload the bucket
        sheds best-effort entries once head-of-queue wait stays above
        target, while every interactive request still completes."""
        import time

        from repro.service.serve import ShedError

        app = FAST_JOB.build_app()
        requests = build_requests(app, 60, rng)
        shed = 0
        interactive = []
        best_effort = []
        with Router(
            [FAST_JOB],
            workers=1,
            max_batch=1,
            max_inflight=1,
            flush_interval=0.001,
            shed_target=0.01,
            shed_interval=0.02,
        ) as router:
            for index, request in enumerate(requests):
                # paced open-loop arrivals: the stream outlives the
                # service rate, so head-of-queue wait actually grows
                time.sleep(0.002)
                priority = (
                    "interactive" if index % 2 == 0 else "best-effort"
                )
                try:
                    future = router.submit(
                        FAST_JOB, request, priority=priority
                    )
                except ShedError:
                    assert priority == "best-effort"
                    shed += 1
                    continue
                (interactive if priority == "interactive" else
                 best_effort).append(future)
            assert router.drain(timeout=120) is True
            stats = router.stats()
        assert shed >= 1, "overload never tripped the shedder"
        assert stats["shed"] == shed
        # the interactive class rode through the overload untouched
        assert all(f.exception(timeout=1) is None for f in interactive)
        assert all(f.exception(timeout=1) is None for f in best_effort)
        assert stats["completed"] == len(interactive) + len(best_effort)

    def test_drain_resolves_everything_then_rejects(self, rng):
        app = FAST_JOB.build_app()
        requests = build_requests(app, 6, rng)
        expected = _reference_outputs(FAST_JOB, requests, "compile")
        router = Router([FAST_JOB], workers=1, max_batch=4)
        try:
            futures = [
                router.submit(FAST_JOB, request) for request in requests
            ]
            assert router.drain(timeout=120) is True
            assert all(future.done() for future in futures)
            for future, reference in zip(futures, expected):
                np.testing.assert_array_equal(
                    future.result(timeout=1), reference
                )
            with pytest.raises(ServerClosed):
                router.submit(FAST_JOB, requests[0])
            stats = router.stats()
            assert stats["pending"] == 0
            assert stats["offered"] == stats["completed"] == len(requests)
        finally:
            router.close()

    def test_close_timeout_force_fails_stuck_requests(self, rng):
        """A wedged worker cannot strand callers: close(timeout=)
        fails the stuck future with a typed ServerClosed."""
        app = FAST_JOB.build_app()
        request = build_requests(app, 1, rng)[0]
        plan = FaultPlan(
            specs=[FaultSpec("hang-kernel", visits=(0,), seconds=30.0)]
        )
        router = Router(
            [FAST_JOB],
            workers=1,
            fault_plan=plan,
            hang_grace=60.0,
            flush_interval=0.005,
        )
        future = router.submit(FAST_JOB, request)
        router.close(timeout=0.3)
        with pytest.raises(ServerClosed):
            future.result(timeout=1)

    def test_rolling_restart_replaces_every_worker(self, rng):
        app = FAST_JOB.build_app()
        requests = build_requests(app, 4, rng)
        expected = _reference_outputs(FAST_JOB, requests, "compile")
        with Router([FAST_JOB], workers=2, max_batch=2) as router:
            before = router.run_many(FAST_JOB, requests)
            replaced = router.rolling_restart(timeout=120)
            after = router.run_many(FAST_JOB, requests)
            stats = router.stats()
        assert replaced == 2
        for result, reference in zip(before, expected):
            np.testing.assert_array_equal(result, reference)
        for result, reference in zip(after, expected):
            np.testing.assert_array_equal(result, reference)
        pool_stats = stats["pools"][job_fingerprint(FAST_JOB)]
        assert pool_stats["rolling_restarts"] == 1
        assert pool_stats["crashes"] == 0
        assert all(
            worker["incarnation"] >= 1
            for worker in pool_stats["workers"]
        )
