"""The warm-start compile service: artifact persistence, invalidation,
concurrency, and the batch driver."""

import multiprocessing
import os
import pickle
import threading

import numpy as np
import pytest
from conftest import build_requests

from repro.apps import conv1d
from repro.hardboiled import SelectionError
from repro.lowering import lower
from repro.service import (
    ArtifactKey,
    ArtifactStore,
    BatchCompiler,
    CompileArtifact,
    CompileJob,
    compile_lowered,
    compile_one,
    fingerprint_families,
    ruleset_fingerprint,
    warm_select,
)
from repro.service.store import ARTIFACT_FORMAT_VERSION
from repro.runtime.kernel_cache import KernelCache, frame_blob, unframe_blob


def small_app(taps=8):
    return conv1d.build("tensor", taps=taps, rows=1)


def _read_payload(path):
    """Unwrap one checksummed store payload (tests tamper semantically)."""
    with open(path, "rb") as handle:
        return pickle.loads(unframe_blob(handle.read()))


def _write_payload(path, payload):
    """Re-frame a tampered payload so only its *content* is invalid."""
    with open(path, "wb") as handle:
        handle.write(frame_blob(pickle.dumps(payload)))


class TestRoundTrip:
    @pytest.mark.parametrize("backend", ["interpret", "compile"])
    def test_restore_is_bit_exact(self, tmp_path, backend):
        """A restored pipeline produces the cold compile's exact bytes."""
        app = small_app()
        cold_pipe, cold_report = compile_lowered(
            lower(app.output), ArtifactStore(tmp_path), backend=backend
        )
        assert cold_report.artifact_cache == "miss"
        cold_out = cold_pipe.run(app.inputs, backend=backend)

        # a fresh store object stands in for a fresh process
        warm_app = small_app()
        warm_pipe, warm_report = compile_lowered(
            lower(warm_app.output), ArtifactStore(tmp_path), backend=backend
        )
        assert warm_report.artifact_cache == "hit"
        assert warm_report.all_mapped and warm_report.num_mapped == 3
        warm_out = warm_pipe.run(warm_app.inputs, backend=backend)
        np.testing.assert_array_equal(cold_out, warm_out)
        # the restored statement is structurally identical
        assert repr(warm_pipe.lowered.stmt) == repr(cold_pipe.lowered.stmt)

    def test_hit_skips_saturation_and_codegen(self, tmp_path):
        app = small_app()
        compile_lowered(
            lower(app.output), ArtifactStore(tmp_path), backend="compile"
        )
        store = ArtifactStore(tmp_path)
        pipe, report = compile_lowered(
            lower(small_app().output), store, backend="compile"
        )
        assert report.eqsat_seconds == 0.0 and not report.selections
        assert store.stats.hits == 1
        # the kernel arrived pre-seeded: the first run is a cache hit,
        # never a codegen miss
        before = pipe.kernel_cache.stats()
        pipe.run(app.inputs)
        after = pipe.kernel_cache.stats()
        assert after["misses"] == before["misses"]
        assert after["hits"] == before["hits"] + 1

    def test_backend_and_device_are_part_of_the_key(self, tmp_path):
        app = small_app()
        store = ArtifactStore(tmp_path)
        warm_select(lower(app.output), store, backend="interpret")
        result = warm_select(
            lower(small_app().output), store, backend="compile"
        )
        assert result.report.artifact_cache == "miss"
        result = warm_select(
            lower(small_app().output), store, backend="compile", device="A100"
        )
        assert result.report.artifact_cache == "miss"
        result = warm_select(
            lower(small_app().output), store, backend="compile", device="A100"
        )
        assert result.report.artifact_cache == "hit"

    def test_iterations_are_part_of_the_key(self, tmp_path):
        """A shallow-saturation artifact must never serve a deeper
        compile (it can legitimately have mapped fewer stores)."""
        store = ArtifactStore(tmp_path)
        warm_select(
            lower(small_app().output), store, backend="interpret",
            iterations=1, strict=False,
        )
        result = warm_select(
            lower(small_app().output), store, backend="interpret",
            iterations=14,
        )
        assert result.report.artifact_cache == "miss"
        result = warm_select(
            lower(small_app().output), store, backend="interpret",
            iterations=14,
        )
        assert result.report.artifact_cache == "hit"

    def test_app_compile_cache_dir(self, tmp_path):
        """App.compile(cache_dir=...) takes the warm path end to end."""
        cold = small_app()
        cold.backend = "compile"
        cold.compile(cache_dir=str(tmp_path))
        assert cold.report.artifact_cache == "miss"
        cold_out = cold.run()

        warm = small_app()
        warm.backend = "compile"
        warm.cache_dir = str(tmp_path)
        assert warm.report.artifact_cache == "hit"
        np.testing.assert_array_equal(cold_out, warm.run())


class TestInvalidation:
    def test_rule_change_invalidates_fingerprint(self):
        """Dropping/altering any rule family changes the rule hash."""
        from repro.hardboiled.rules_axiomatic import axiomatic_rules
        from repro.hardboiled.rules_wmma import wmma_rules

        full = (("axiomatic", axiomatic_rules), ("wmma", wmma_rules))
        assert fingerprint_families(full) != fingerprint_families(full[:1])

        def doctored_wmma():
            rules, relations = wmma_rules()
            return rules[:-1], relations  # one rule removed

        doctored = (("axiomatic", axiomatic_rules), ("wmma", doctored_wmma))
        assert fingerprint_families(full) != fingerprint_families(doctored)
        # and the hash is deterministic for identical content
        assert fingerprint_families(full) == fingerprint_families(full)

    def test_stale_rules_fingerprint_misses(self, tmp_path):
        """An artifact persisted under old rules is never served."""
        app = small_app()
        store = ArtifactStore(tmp_path)
        result = warm_select(lower(app.output), store, backend="compile")
        assert result.report.artifact_cache == "miss"
        assert len(store) == 1

        stale_key = ArtifactKey(
            stmt=result.key.stmt,
            rules="0" * 64,  # a rule file changed: different fingerprint
            backend=result.key.backend,
            device=result.key.device,
        )
        assert store.get(stale_key) is None
        # the old artifact is still on disk (different address), and the
        # current-fingerprint lookup still hits
        assert len(store) == 1
        assert store.get(result.key) is not None

    def test_format_version_bump_rejects_artifact(self, tmp_path):
        app = small_app()
        store = ArtifactStore(tmp_path)
        result = warm_select(lower(app.output), store, backend="interpret")
        path = store.path_for(result.key.digest)
        artifact = _read_payload(path)
        artifact.format_version = ARTIFACT_FORMAT_VERSION + 1
        _write_payload(path, artifact)
        fresh = ArtifactStore(tmp_path)
        assert fresh.get(result.key) is None
        assert fresh.stats.stale == 1
        assert not os.path.exists(path)  # rejected artifacts are dropped

    def test_corrupt_artifact_is_a_miss(self, tmp_path):
        app = small_app()
        store = ArtifactStore(tmp_path)
        result = warm_select(lower(app.output), store, backend="interpret")
        path = store.path_for(result.key.digest)
        with open(path, "wb") as handle:
            handle.write(b"\x80\x05 torn write garbage")
        fresh = ArtifactStore(tmp_path)
        assert fresh.get(result.key) is None
        assert fresh.stats.stale == 1
        # and the compile falls through to a working cold path
        result = warm_select(lower(small_app().output), fresh, backend="interpret")
        assert result.report.artifact_cache == "miss"

    def test_strict_restored_artifact_honors_unmapped(self, tmp_path):
        """A (hypothetical) partially-mapped artifact raises under strict."""
        app = small_app()
        store = ArtifactStore(tmp_path)
        result = warm_select(lower(app.output), store, backend="interpret")
        path = store.path_for(result.key.digest)
        artifact = _read_payload(path)
        artifact.store_rows[0]["mapped"] = False
        _write_payload(path, artifact)
        fresh = ArtifactStore(tmp_path)
        with pytest.raises(SelectionError):
            warm_select(
                lower(small_app().output), fresh, backend="interpret",
                strict=True,
            )

    def test_stale_kernel_payload_falls_back_to_cold_compile(self, tmp_path):
        """A kernel-format bump (without an artifact-format bump) must
        recompile cold, not crash every warm start."""
        from repro.runtime.codegen import KERNEL_FORMAT_VERSION

        app = small_app()
        store = ArtifactStore(tmp_path)
        result = warm_select(lower(app.output), store, backend="compile")
        path = store.path_for(result.key.digest)
        artifact = _read_payload(path)
        assert artifact.kernel is not None
        artifact.kernel["format"] = KERNEL_FORMAT_VERSION + 1
        _write_payload(path, artifact)

        fresh = ArtifactStore(tmp_path)
        result = warm_select(lower(small_app().output), fresh, backend="compile")
        assert result.report.artifact_cache == "miss"
        assert result.kernel is not None
        # both telemetry surfaces agree the lookup missed
        assert fresh.stats.hits == 0
        assert fresh.stats.stale == 1
        assert fresh.stats.misses >= 1
        # the stale artifact was overwritten: the next lookup hits again
        result = warm_select(
            lower(small_app().output), ArtifactStore(tmp_path),
            backend="compile",
        )
        assert result.report.artifact_cache == "hit"

    def test_custom_apps_forward_backend_to_artifact(self, tmp_path):
        """dct_denoise/recursive_filter key artifacts under their
        backend, so compiled-backend artifacts carry the kernel."""
        from repro.apps import dct_denoise

        cold = dct_denoise.build(
            "tensor", num_tiles=4, cache_dir=str(tmp_path), backend="compile"
        )
        assert cold.report.artifact_cache == "miss"
        cold_out = cold.run()

        warm = dct_denoise.build(
            "tensor", num_tiles=4, cache_dir=str(tmp_path), backend="compile"
        )
        assert warm.report.artifact_cache == "hit"
        # the kernel came from the artifact: the first compiled run is a
        # cache hit, codegen never runs in the warm process
        cache = warm.pipeline.kernel_cache
        misses_before = cache.misses
        warm_out = warm.run()
        assert cache.misses == misses_before
        np.testing.assert_array_equal(cold_out, warm_out)

    def test_ruleset_fingerprint_is_cached_and_stable(self):
        first = ruleset_fingerprint()
        assert first == ruleset_fingerprint()
        ruleset_fingerprint.cache_clear()
        assert first == ruleset_fingerprint()

    def test_fingerprint_tracks_selection_rule_registry(self, monkeypatch):
        """Registering a new accelerator family for selection changes
        the fingerprint without touching fingerprint.py."""
        from repro.hardboiled import tile_extractor
        from repro.hardboiled.rules_wmma import wmma_rules

        baseline = ruleset_fingerprint()
        monkeypatch.setattr(
            tile_extractor,
            "_APP_RULES",
            {**tile_extractor._APP_RULES, "newaccel": wmma_rules},
        )
        ruleset_fingerprint.cache_clear()
        try:
            assert ruleset_fingerprint() != baseline
        finally:
            ruleset_fingerprint.cache_clear()

    def test_unwritable_store_still_compiles(self, tmp_path, monkeypatch):
        """A read-only artifact mount degrades to 'not cached', it does
        not fail the compile."""
        from repro.service import store as store_module

        def denied(path, blob):
            raise PermissionError(f"read-only: {path}")

        monkeypatch.setattr(store_module, "atomic_write_bytes", denied)
        store = ArtifactStore(tmp_path)
        result = warm_select(
            lower(small_app().output), store, backend="compile"
        )
        assert result.report.artifact_cache == "miss"
        assert result.kernel is not None
        assert store.stats.write_errors == 1
        assert len(store) == 0


def _bkernel_files(root):
    return [
        os.path.join(dirpath, name)
        for dirpath, _, files in os.walk(root)
        for name in files
        if name.endswith(".bkernel")
    ]


class TestBatchedKernelPersistence:
    """Batch-axis kernel variants ride the same artifact store as the
    scalar compile: persisted under digested batch-aware keys, restored
    bit-exactly, and stale formats recompiled — never served."""

    def _compiled(self, store):
        # a fresh KernelCache stands in for a fresh process: the shared
        # DEFAULT_CACHE would satisfy batched lookups in memory and the
        # store would never be consulted
        app = small_app()
        pipe, _ = compile_lowered(
            lower(app.output), store, backend="compile",
            kernel_cache=KernelCache(),
        )
        return app, pipe

    def test_batched_kernel_restores_across_processes(self, tmp_path):
        app, pipe = self._compiled(ArtifactStore(tmp_path))
        requests = build_requests(app, 4, np.random.default_rng(7))
        cold = pipe.run_many(requests, batch_axis=True)
        assert len(_bkernel_files(tmp_path)) == 1

        # a fresh store + pipeline stands in for a fresh process: the
        # batched kernel must restore (artifact hit + kernel hit, zero
        # writes) and reproduce the cold bytes
        warm_store = ArtifactStore(tmp_path)
        _, warm_pipe = self._compiled(warm_store)
        assert warm_store.stats.hits == 1  # the .artifact
        warm = warm_pipe.run_many(requests, batch_axis=True)
        assert warm_store.stats.hits == 2  # ... and the .bkernel
        assert warm_store.stats.writes == 0
        for a, b in zip(cold, warm):
            np.testing.assert_array_equal(a, b)

    def test_stale_kernel_format_recompiles_and_repersists(self, tmp_path):
        from repro.runtime.codegen import KERNEL_FORMAT_VERSION

        app, pipe = self._compiled(ArtifactStore(tmp_path))
        requests = build_requests(app, 3, np.random.default_rng(11))
        cold = pipe.run_many(requests, batch_axis=True)
        [path] = _bkernel_files(tmp_path)
        payload = _read_payload(path)
        assert payload["format"] == KERNEL_FORMAT_VERSION
        payload["format"] = KERNEL_FORMAT_VERSION + 1
        _write_payload(path, payload)

        fresh_store = ArtifactStore(tmp_path)
        _, fresh_pipe = self._compiled(fresh_store)
        out = fresh_pipe.run_many(requests, batch_axis=True)
        for a, b in zip(cold, out):
            np.testing.assert_array_equal(a, b)
        assert fresh_store.stats.stale == 1
        assert fresh_store.stats.writes == 1  # re-persisted, current format

        # the rewritten kernel serves the next process without staleness
        final_store = ArtifactStore(tmp_path)
        _, final_pipe = self._compiled(final_store)
        final_pipe.run_many(requests, batch_axis=True)
        assert final_store.stats.stale == 0
        assert final_store.stats.writes == 0

    def test_embedded_key_mismatch_is_stale(self, tmp_path):
        app, pipe = self._compiled(ArtifactStore(tmp_path))
        requests = build_requests(app, 2, np.random.default_rng(3))
        pipe.run_many(requests, batch_axis=True)
        [path] = _bkernel_files(tmp_path)
        payload = _read_payload(path)
        payload["key"] = payload["key"] + "-moved"
        _write_payload(path, payload)
        store = ArtifactStore(tmp_path)
        _, fresh_pipe = self._compiled(store)
        fresh_pipe.run_many(requests, batch_axis=True)
        assert store.stats.stale == 1


class TestConcurrency:
    def test_concurrent_writers_leave_store_consistent(self, tmp_path):
        """Many processes hammering one store: no torn artifacts, no
        leftover temp files, every artifact loads."""
        jobs = [
            CompileJob.make("conv1d", taps=taps, rows=1)
            for taps in (8, 16)
            for _ in range(3)  # duplicates race on the same digest
        ]
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(processes=4) as pool:
            results = pool.starmap(
                compile_one, [(job, str(tmp_path), "host") for job in jobs]
            )
        assert all(r.ok for r in results), [r.error for r in results]
        store = ArtifactStore(tmp_path)
        digests = set(store.digests())
        assert len(digests) == 2  # one artifact per distinct key
        for digest in digests:
            with open(store.path_for(digest), "rb") as handle:
                artifact = pickle.loads(unframe_blob(handle.read()))
            assert isinstance(artifact, CompileArtifact)
            assert artifact.key_digest == digest
        leftovers = [
            name
            for _, _, files in os.walk(tmp_path)
            for name in files
            if name.endswith(".tmp")
        ]
        assert leftovers == []

    def test_concurrent_kernel_writers_stay_atomic(self, tmp_path):
        """Threads hammering one batched-kernel key: readers see a full
        payload or a miss, never a torn one; no temp files survive."""
        app = small_app()
        pipe, _ = compile_lowered(
            lower(app.output), ArtifactStore(tmp_path), backend="compile",
            kernel_cache=KernelCache(),
        )
        requests = build_requests(app, 2, np.random.default_rng(5))
        pipe.run_many(requests, batch_axis=True)
        kernel = next(k for k in pipe._batched.values() if k is not None)

        store = ArtifactStore(tmp_path)
        failures = []

        def writer():
            for _ in range(12):
                if store.put_kernel("contended-key", kernel) is None:
                    failures.append("write skipped")

        def reader():
            for _ in range(24):
                got = store.get_kernel("contended-key")
                if got is not None and not hasattr(got, "fn"):
                    failures.append("torn read")

        threads = [threading.Thread(target=writer) for _ in range(3)]
        threads += [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert failures == []
        assert store.stats.stale == 0  # a torn payload would count here
        assert store.get_kernel("contended-key") is not None
        leftovers = [
            name
            for _, _, files in os.walk(tmp_path)
            for name in files
            if name.endswith(".tmp")
        ]
        assert leftovers == []

    def test_batch_compiler_populates_then_hits(self, tmp_path):
        jobs = [
            CompileJob.make("conv1d", taps=8, rows=1),
            CompileJob.make("matmul", builder="build_amx", variant=None,
                            tiles=1),
        ]
        compiler = BatchCompiler(str(tmp_path), max_workers=2)
        first = compiler.compile_many(jobs)
        assert [r.error for r in first.results] == [None, None]
        assert first.misses == 2 and first.hits == 0
        second = compiler.compile_many(jobs)
        assert second.hits == 2 and second.misses == 0
        assert second.summary()["eqsat_seconds"] == 0.0

    def test_batch_compiler_serial_mode_and_errors(self, tmp_path):
        jobs = [
            CompileJob.make("conv1d", taps=8, rows=1),
            CompileJob.make("conv1d", taps=7, rows=1),  # invalid: not %8
        ]
        report = BatchCompiler(str(tmp_path), max_workers=1).compile_many(jobs)
        ok, bad = report.results
        assert ok.ok and ok.cache == "miss"
        assert not bad.ok and "ValueError" in bad.error
        assert len(report.errors) == 1


class TestBatchJobSpecs:
    def test_job_label_and_build(self):
        job = CompileJob.make("matmul", variant="tensor", n=16)
        assert "matmul.build" in job.label and "n=16" in job.label
        app = job.build_app()
        assert app.name.startswith("matmul")

    def test_jobs_are_picklable(self):
        job = CompileJob.make("conv1d", taps=8, rows=1)
        assert pickle.loads(pickle.dumps(job)) == job
