"""The batched serving runtime: zero-copy ingest, execution plans,
buffer arenas, concurrent kernel-cache access, run_many, and Server."""

import threading

import numpy as np
import pytest
from conftest import (
    build_vector_pipeline as build_pipeline,
    make_vector_input as make_input,
)

from repro.apps import conv1d, upsample
from repro.lowering import lower
from repro.runtime import kernel_cache as kc
from repro.runtime.buffer import Buffer
from repro.runtime.executor import CompiledPipeline, compile_pipeline, realize
from repro.runtime.kernel_cache import KernelCache
from repro.runtime.plan import BufferArena
from repro.service import Server
from repro.ir.types import BFloat, Float


class TestBufferIngest:
    def test_contiguous_correctly_typed_input_is_not_copied(self):
        arr = np.arange(12, dtype=np.float32).reshape(3, 4)
        buf = Buffer.from_numpy("A", arr)
        assert np.shares_memory(buf.data, arr)

    def test_1d_contiguous_view(self):
        arr = np.arange(8, dtype=np.int32)
        buf = Buffer.from_numpy("A", arr)
        assert np.shares_memory(buf.data, arr)

    def test_non_contiguous_input_is_copied(self):
        arr = np.arange(24, dtype=np.float32).reshape(4, 6)[:, ::2]
        buf = Buffer.from_numpy("A", arr)
        assert not np.shares_memory(buf.data, arr)
        np.testing.assert_array_equal(buf.to_numpy(), arr)

    def test_dtype_conversion_copies(self):
        arr = np.arange(8, dtype=np.float64)
        buf = Buffer.from_numpy("A", arr, dtype=Float(32))
        assert not np.shares_memory(buf.data, arr)
        assert buf.data.dtype == np.float32

    def test_bfloat16_input_still_rounds_into_a_copy(self):
        arr = np.array([1.0, 1.0 + 2**-12], dtype=np.float32)
        buf = Buffer.from_numpy("A", arr, dtype=BFloat(16))
        assert not np.shares_memory(buf.data, arr)
        # the second value is not bf16-representable: it was rounded
        assert buf.data[1] != arr[1]
        # and the caller's array was left untouched
        assert arr[1] == np.float32(1.0 + 2**-12)

    def test_strides_are_memoized(self):
        buf = Buffer("A", Float(32), (4, 5, 6))
        assert buf.strides == (1, 4, 20)
        assert buf.strides is buf.strides


class TestSteadyStateRun:
    """The acceptance contract on plain ``CompiledPipeline.run``."""

    def test_run_does_not_fingerprint_after_the_first_call(self):
        inp, f = build_pipeline()
        pipe = CompiledPipeline(lower(f), "compile", kernel_cache=KernelCache())
        inputs = {inp: make_input()}
        first = pipe.run(inputs)

        def boom(*a, **k):  # pragma: no cover - called means failure
            raise AssertionError("run() fingerprinted the statement")

        original = kc.fingerprint_stmt
        kc.fingerprint_stmt = boom
        try:
            np.testing.assert_array_equal(pipe.run(inputs), first)
        finally:
            kc.fingerprint_stmt = original

    def test_run_does_not_copy_contiguous_inputs(self, monkeypatch):
        from repro.runtime import executor as executor_module

        inp, f = build_pipeline()
        pipe = CompiledPipeline(lower(f), backend="compile")
        wrapped = []
        original = Buffer.from_numpy

        def spy(name, array, **kwargs):
            buf = original(name, array, **kwargs)
            wrapped.append((buf, array))
            return buf

        monkeypatch.setattr(
            executor_module.Buffer, "from_numpy", staticmethod(spy)
        )
        pipe.run({inp: make_input()})
        assert wrapped
        for buf, array in wrapped:
            assert np.shares_memory(buf.data, array)


class TestExecutionPlan:
    def test_plan_matches_run_on_both_backends(self):
        inp, f = build_pipeline()
        pipe = CompiledPipeline(lower(f), backend="compile")
        for backend in ("compile", "interpret"):
            plan = pipe.plan(backend=backend)
            for seed in (1, 2, 3):
                inputs = {inp: make_input(seed=seed)}
                np.testing.assert_array_equal(
                    plan.run(inputs), pipe.run(inputs, backend=backend)
                )

    def test_steady_state_does_not_fingerprint_or_hit_the_cache(self):
        inp, f = build_pipeline()
        cache = KernelCache()
        pipe = CompiledPipeline(lower(f), "compile", kernel_cache=cache)
        plan = pipe.plan()
        inputs = {inp: make_input()}
        plan.run(inputs)
        lookups_after_bind = cache.hits + cache.misses
        # sabotage fingerprinting and the cache: the steady state
        # must consult neither
        def boom(*a, **k):  # pragma: no cover - called means failure
            raise AssertionError("steady-state run() touched this")

        original = kc.fingerprint_stmt
        kc.fingerprint_stmt = boom
        cache.get = boom
        cache.lookup = boom
        try:
            out = plan.run({inp: make_input(seed=9)})
        finally:
            kc.fingerprint_stmt = original
        assert out.shape == (64,)
        assert cache.hits + cache.misses == lookups_after_bind

    def test_steady_state_does_not_copy_contiguous_inputs(self):
        inp, f = build_pipeline()
        pipe = CompiledPipeline(lower(f), backend="compile")
        plan = pipe.plan()
        plan.run({inp: make_input()})
        arr = make_input(seed=5)
        plan.run({inp: arr})
        assert np.shares_memory(plan._buffers["sv_in"].data, arr)

    def test_steady_state_reuses_the_env_and_buffers(self):
        inp, f = build_pipeline()
        pipe = CompiledPipeline(lower(f), backend="compile")
        plan = pipe.plan()
        plan.run({inp: make_input()})
        env_id = id(plan._env)
        buffers_id = id(plan._buffers)
        plan.run({inp: make_input(seed=4)})
        plan.run({inp: make_input(seed=5)})
        assert id(plan._env) == env_id
        assert id(plan._buffers) == buffers_id
        assert plan.stats()["rebinds"] == 1
        assert plan.stats()["runs"] == 3

    def test_shape_change_rebinds(self):
        inp, f = build_pipeline()
        pipe = CompiledPipeline(lower(f), backend="compile")
        plan = pipe.plan()
        base = make_input()
        expected = plan.run({inp: base})
        # a longer input: only the bound 64 elements are read
        longer = np.concatenate([base, np.ones(16, np.float32)])
        np.testing.assert_array_equal(plan.run({inp: longer}), expected)
        assert plan.stats()["rebinds"] == 2
        # back to the original shape: rebinds again, still correct
        np.testing.assert_array_equal(plan.run({inp: base}), expected)

    def test_out_parameter_writes_caller_storage(self):
        inp, f = build_pipeline()
        pipe = CompiledPipeline(lower(f), backend="compile")
        plan = pipe.plan()
        inputs = {inp: make_input()}
        expected = plan.run(inputs)
        out = np.full(64, np.nan, dtype=np.float32)  # stale garbage
        result = plan.run(inputs, out=out)
        assert result is out
        np.testing.assert_array_equal(out, expected)

    def test_out_parameter_validates(self):
        inp, f = build_pipeline()
        plan = CompiledPipeline(lower(f), backend="compile").plan()
        inputs = {inp: make_input()}
        with pytest.raises(ValueError, match="shape"):
            plan.run(inputs, out=np.zeros(63, np.float32))
        with pytest.raises(ValueError, match="shape"):
            plan.run(inputs, out=np.zeros(64, np.float64))
        bad = np.zeros(64, np.float32)
        bad.flags.writeable = False
        with pytest.raises(ValueError, match="writeable"):
            plan.run(inputs, out=bad)

    def test_out_must_not_alias_an_input(self):
        # inputs are bound zero-copy: an aliasing out= would be zeroed
        # before the kernel reads it
        inp, f = build_pipeline()
        plan = CompiledPipeline(lower(f), backend="compile").plan()
        arr = make_input()
        with pytest.raises(ValueError, match="share memory"):
            plan.run({inp: arr}, out=arr)

    def test_interpreter_plan_out_path(self):
        inp, f = build_pipeline()
        plan = CompiledPipeline(lower(f)).plan(backend="interpret")
        inputs = {inp: make_input()}
        out = np.empty(64, np.float32)
        np.testing.assert_array_equal(
            plan.run(inputs, out=out), plan.run(inputs)
        )


class TestBufferArena:
    def test_allocations_are_pooled_across_runs(self):
        app = conv1d.build("tensor", taps=8, rows=1)
        app.backend = "compile"
        pipe = app.compile()
        plan = pipe.plan()
        plan.run(app.inputs)
        allocs_after_first = plan.arena.buffer_allocs
        plan.run(app.inputs)
        plan.run(app.inputs)
        assert plan.arena.buffer_allocs == allocs_after_first
        assert plan.arena.buffer_reuses > 0

    def test_arena_outputs_bit_identical_to_unpooled(self):
        # covers tile grids + Toeplitz memo (conv1d) and the multiphase
        # memo (upsample) against the arena-less run() path
        for app in (
            conv1d.build("tensor", taps=16, rows=1),
            upsample.build("tensor"),
        ):
            app.backend = "compile"
            pipe = app.compile()
            plan = pipe.plan()
            for _ in range(2):
                np.testing.assert_array_equal(
                    plan.run(app.inputs), pipe.run(app.inputs)
                )
            assert plan.arena.memo_hits > 0

    def test_memo_keys_on_values_not_identity(self):
        arena = BufferArena()
        built = []

        def build_a():
            built.append("a")
            return np.array([1.0])

        def build_b():
            built.append("b")
            return np.array([2.0])

        key_a = ("toeplitz", b"\x01", 4, 4, 1)
        key_b = ("toeplitz", b"\x02", 4, 4, 1)  # different weight bytes
        assert arena.memo(key_a, build_a)[0] == 1.0
        assert arena.memo(key_a, build_a)[0] == 1.0
        assert arena.memo(key_b, build_b)[0] == 2.0
        assert built == ["a", "b"]
        assert (arena.memo_hits, arena.memo_misses) == (1, 2)

    def test_memo_is_bounded(self):
        arena = BufferArena(memo_maxsize=4)
        for i in range(10):
            arena.memo(("k", i), lambda i=i: np.array([i]))
        assert arena.stats()["memo_entries"] == 4

    def test_take_zeroes_recycled_buffers(self):
        from repro.ir.stmt import MemoryType

        arena = BufferArena()
        buf = arena.take("t", Float(32), (8,), MemoryType.STACK)
        buf.data[:] = 7.0
        arena.give(buf)
        again = arena.take("t", Float(32), (8,), MemoryType.STACK)
        assert again is buf
        np.testing.assert_array_equal(again.data, np.zeros(8, np.float32))


class TestKernelCacheConcurrency:
    def test_concurrent_get_is_consistent(self):
        cache = KernelCache(maxsize=2)
        lowereds = [
            lower(build_pipeline(split=s)[1]) for s in (8, 16, 32)
        ]
        keys = [kc.fingerprint_stmt(lo.stmt) for lo in lowereds]
        errors = []
        barrier = threading.Barrier(8)

        def worker(i):
            try:
                barrier.wait()
                for j in range(30):
                    lo = lowereds[(i + j) % len(lowereds)]
                    kernel = cache.get(lo, key=keys[(i + j) % len(keys)])
                    assert kernel is not None
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = cache.stats()
        assert stats["entries"] <= 2
        # every one of the 240 gets was accounted exactly once
        assert stats["hits"] + stats["misses"] + stats["disk_hits"] == 240

    def test_concurrent_put_and_clear(self):
        cache = KernelCache(maxsize=8)
        lowered = lower(build_pipeline()[1])
        errors = []

        def churn():
            try:
                for _ in range(50):
                    cache.get(lowered)
                    cache.clear()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=churn) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


class TestRunMany:
    def _requests(self, inp, n):
        return [{inp: make_input(seed=100 + i)} for i in range(n)]

    def test_parallel_matches_sequential_compile(self):
        inp, f = build_pipeline()
        pipe = CompiledPipeline(lower(f), backend="compile")
        requests = self._requests(inp, 9)
        sequential = [pipe.run(r) for r in requests]
        parallel = pipe.run_many(requests, workers=3, batch_axis=False)
        assert len(parallel) == 9
        for a, b in zip(sequential, parallel):
            np.testing.assert_array_equal(a, b)

    def test_parallel_matches_sequential_interpret(self):
        # the interpreter batch path, counters disabled
        inp, f = build_pipeline()
        pipe = CompiledPipeline(lower(f))
        requests = self._requests(inp, 4)
        sequential = [pipe.run(r, backend="interpret") for r in requests]
        parallel = pipe.run_many(requests, workers=2, backend="interpret")
        for a, b in zip(sequential, parallel):
            np.testing.assert_array_equal(a, b)

    def test_workers_one_runs_in_caller_thread(self):
        inp, f = build_pipeline()
        pipe = CompiledPipeline(lower(f), backend="compile")
        requests = self._requests(inp, 3)
        results = pipe.run_many(requests, workers=1, batch_axis=False)
        for r, request in zip(results, requests):
            np.testing.assert_array_equal(r, pipe.run(request))

    def test_empty_batch(self):
        _, f = build_pipeline()
        assert CompiledPipeline(lower(f)).run_many([]) == []

    def test_worker_errors_propagate(self):
        inp, f = build_pipeline()
        pipe = CompiledPipeline(lower(f), backend="compile")
        bad = {inp: make_input()[:32]}  # wrong shape: kernel reads OOB
        with pytest.raises(Exception):
            pipe.run_many([bad, bad], workers=2)

    def test_accelerator_app_run_many(self):
        app = conv1d.build("tensor", taps=8, rows=1)
        app.backend = "compile"
        outputs = app.run_many([None, None, None], workers=2)
        expected = app.run()
        for out in outputs:
            np.testing.assert_array_equal(out, expected)


class TestServer:
    def test_serves_batches_bit_identical(self):
        # batch_axis=False pins the worker-pool path; the batch-axis
        # serving path is covered by tests/test_batched.py
        inp, f = build_pipeline()
        pipe = CompiledPipeline(lower(f), backend="compile")
        requests = [{inp: make_input(seed=i)} for i in range(8)]
        expected = [pipe.run(r) for r in requests]
        with Server(pipe, workers=3) as server:
            for _ in range(2):  # second batch reuses warm plans
                results = server.run_many(requests, batch_axis=False)
                for a, b in zip(expected, results):
                    np.testing.assert_array_equal(a, b)
            stats = server.stats()
        assert stats["requests"] == 16
        assert stats["batches"] == 2
        assert stats["batched_batches"] == 0
        assert 1 <= len(stats["plans"]) <= 3
        assert sum(p["runs"] for p in stats["plans"]) == 16

    def test_accepts_an_app_and_single_requests(self):
        app = conv1d.build("tensor", taps=8, rows=1)
        app.backend = "compile"
        expected = app.run()
        with Server(app, workers=2) as server:
            np.testing.assert_array_equal(server.run(app.inputs), expected)
            future = server.submit(app.inputs)
            np.testing.assert_array_equal(future.result(), expected)

    def test_close_is_idempotent_and_rejects_new_work(self):
        _, f = build_pipeline()
        server = Server(CompiledPipeline(lower(f), backend="compile"))
        server.close()
        server.close()
        with pytest.raises(RuntimeError, match="closed"):
            server.submit({})

    def test_submit_after_close_raises_typed_error(self):
        from repro.service import ServerClosed

        _, f = build_pipeline()
        server = Server(CompiledPipeline(lower(f), backend="compile"))
        server.close()
        with pytest.raises(ServerClosed):
            server.submit({})
        with pytest.raises(ServerClosed):
            server.run_many([{}])
        assert issubclass(ServerClosed, RuntimeError)  # old callers hold

    def test_drain_completes_in_flight_then_rejects(self):
        from repro.service import ServerClosed

        inp, f = build_pipeline()
        pipe = CompiledPipeline(lower(f), backend="compile")
        expected = pipe.run({inp: make_input(seed=1)})
        server = Server(pipe, workers=2)
        futures = [
            server.submit({inp: make_input(seed=1)}) for _ in range(4)
        ]
        assert server.drain(timeout=60) is True
        for future in futures:
            np.testing.assert_array_equal(future.result(timeout=1), expected)
        with pytest.raises(ServerClosed):
            server.submit({})

    def test_close_racing_submit_never_drops_work(self):
        """Hammer submit from threads while the server closes: every
        accepted future resolves; every refusal is a typed
        ServerClosed — nothing hangs, nothing vanishes."""
        from repro.service import ServerClosed

        inp, f = build_pipeline()
        pipe = compile_pipeline(f, backend="compile")
        request = {inp.name: make_input()}
        expected = pipe.run(request)
        server = Server(pipe, workers=2)
        accepted, refused, wrong = [], [], []
        start = threading.Barrier(5)

        def submitter():
            start.wait()
            for _ in range(50):
                try:
                    accepted.append(server.submit(request))
                except ServerClosed:
                    refused.append(1)
                except Exception as exc:  # pragma: no cover
                    wrong.append(exc)

        threads = [threading.Thread(target=submitter) for _ in range(4)]
        for thread in threads:
            thread.start()
        start.wait()
        server.close()
        for thread in threads:
            thread.join()
        assert wrong == []
        for future in accepted:
            np.testing.assert_array_equal(future.result(1.0), expected)
        assert len(accepted) + len(refused) == 200
        assert server.stats()["requests"] == len(accepted)

    def test_zero_workers_rejected(self):
        _, f = build_pipeline()
        with pytest.raises(ValueError, match="workers"):
            Server(CompiledPipeline(lower(f)), workers=0)


class TestKernelCacheThreading:
    def test_one_shot_entry_points_accept_a_private_cache(self):
        cache = KernelCache()
        inp, f = build_pipeline()
        inputs = {inp: make_input()}
        out = realize(f, inputs, backend="compile", kernel_cache=cache)
        assert cache.stats()["misses"] == 1
        _, f2 = build_pipeline()
        pipe = compile_pipeline(f2, backend="compile", kernel_cache=cache)
        np.testing.assert_array_equal(pipe.run(inputs), out)
        stats = cache.stats()
        assert (stats["misses"], stats["hits"]) == (1, 1)
