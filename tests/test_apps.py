"""End-to-end correctness of every application, both variants.

For each workload: the CUDA-only schedule, the tensor-accelerator
schedule (through HARDBOILED), and the numpy reference must agree; the
tensor variant must actually run its MACs on the (simulated) tensor
unit.
"""

import numpy as np
import pytest

from repro.apps import (
    attention,
    conv1d,
    conv2d,
    conv_layer,
    dct_denoise,
    downsample,
    matmul,
    recursive_filter,
    resample,
    upsample,
)

SIMPLE_APPS = [
    (conv1d, {"taps": 16, "rows": 1}),
    (conv2d, {"taps": 16, "width": 512, "rows": 4}),
    (downsample, {"taps": 16, "width": 256, "rows": 4}),
    (upsample, {"width": 256, "rows": 2}),
    (matmul, {"n": 64}),
    (conv_layer, {"rows": 2}),
    (attention, {"length": 128}),
]


@pytest.mark.parametrize(
    "module,params",
    SIMPLE_APPS,
    ids=[m.__name__.split(".")[-1] for m, _ in SIMPLE_APPS],
)
class TestAppCorrectness:
    def test_cuda_matches_reference(self, module, params):
        app = module.build("cuda", **params)
        out, counters = app.run_and_measure()
        np.testing.assert_allclose(
            out, app.reference(), rtol=4e-2, atol=4e-2
        )
        assert counters.tensor_macs == 0

    def test_tensor_matches_reference_on_tensor_unit(self, module, params):
        app = module.build("tensor", **params)
        out, counters = app.run_and_measure()
        np.testing.assert_allclose(
            out, app.reference(), rtol=4e-2, atol=4e-2
        )
        assert counters.tensor_macs > 0
        assert app.report is None or app.report.all_mapped

    def test_variants_agree(self, module, params):
        cuda_out = module.build("cuda", **params).run()
        tensor_out = module.build("tensor", **params).run()
        np.testing.assert_allclose(
            cuda_out, tensor_out, rtol=4e-2, atol=4e-2
        )


class TestResample:
    @pytest.mark.parametrize("variant", ["cuda", "tensor"])
    def test_pass_matches_blocksparse_reference(self, variant):
        app = resample.build_pass(
            variant, in_size=256, out_size=57, columns=32
        )
        out = app.run()
        np.testing.assert_allclose(
            out, app.reference(), rtol=3e-2, atol=3e-2
        )

    def test_assemble_shape(self):
        app = resample.build_pass(
            "cuda", in_size=256, out_size=57, columns=32
        )
        full = resample.assemble(app.run(), 57)
        assert full.shape == (57, 32)


class TestRecursiveFilter:
    @pytest.mark.parametrize("variant", ["cuda", "tensor"])
    def test_matches_serial_reference(self, variant):
        app = recursive_filter.build(variant, samples=4096)
        app.verify(rtol=3e-2, atol=3e-2)

    def test_tensor_variant_uses_tensor_unit(self):
        app = recursive_filter.build("tensor", samples=4096)
        _, counters = app.run_and_measure()
        assert counters.tensor_macs > 0


class TestDCTDenoise:
    @pytest.mark.parametrize("variant", ["cuda", "tensor"])
    def test_matches_numpy_transform(self, variant):
        app = dct_denoise.build(variant, num_tiles=8)
        app.verify()

    def test_coring_matches_reference_threshold(self):
        app = dct_denoise.build("cuda", num_tiles=4)
        out, _ = app.run_and_measure()
        ref = app.reference()
        np.testing.assert_allclose(out, ref, rtol=5e-2, atol=5e-2)

    def test_tensor_fused_epilogue(self):
        app = dct_denoise.build("tensor", num_tiles=4)
        _, counters = app.run_and_measure()
        # four MatMuls on the tensor unit, coring on scalar lanes
        assert counters.tensor_macs > 0
        assert counters.scalar_flops > 0


class TestAMXTable1Variants:
    def test_standard_and_vnni_reference(self):
        for layout in ("standard", "vnni"):
            app = matmul.build_amx(layout=layout)
            out = app.run()
            np.testing.assert_allclose(
                out, app.reference(), rtol=2e-2, atol=2e-2
            )

    def test_preload_b_vnni_maps_standard_does_not(self):
        from repro.hardboiled import select_instructions
        from repro.lowering import lower

        app = matmul.build_amx(layout="vnni", preload_b=True)
        _, report = select_instructions(lower(app.output))
        assert report.all_mapped
        app = matmul.build_amx(layout="standard", preload_b=True)
        _, report = select_instructions(lower(app.output))
        assert not report.all_mapped


class TestBackendMemoization:
    """Regression: ``App.compile()`` used to cache the pipeline built
    with the backend value at first call, so mutating ``app.backend``
    afterwards was silently ignored."""

    def test_backend_mutation_rebuilds_pipeline(self):
        app = conv1d.build("cuda", taps=16, rows=1)
        first = app.run()
        assert app.compile().backend == "interpret"
        app.backend = "compile"
        assert app.compile().backend == "compile"
        np.testing.assert_allclose(app.run(), first, rtol=0, atol=0)

    def test_rebuild_reuses_lowered_statement(self):
        # switching backends must not re-lower (or re-select) anything
        app = conv1d.build("tensor", taps=16, rows=1)
        lowered = app.compile().lowered
        report = app.report
        app.backend = "compile"
        assert app.compile().lowered is lowered
        assert app.report is report
        app.backend = "interpret"
        assert app.compile().backend == "interpret"
