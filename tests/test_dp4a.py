"""The int8 dot-product (VNNI/DP4A) target: simulator, rules, apps.

Covers the third accelerator kind end to end: the functional simulator
(VNNI-4 pack/unpack, int8 wraparound semantics), instruction selection
on the quantized apps (dp4a intrinsics must appear, every MAC must land
on the int8 unit), bit-exact interpret-vs-compile parity, and the
roofline threading of the new ``int8_macs`` counter.
"""

import numpy as np
import pytest
from conftest import INT8_APP_IDS, INT8_APPS

from repro import frontend as hl
from repro.apps import conv_layer, matmul
from repro.eqsat import EGraph, run_phased
from repro.hardboiled import (
    axiomatic_rules,
    dp4a_rules,
    select_instructions,
    supporting_rules,
)
from repro.hardboiled.encode import Encoder
from repro.ir import (
    Broadcast,
    Int,
    IntImm,
    Load,
    Ramp,
    Variable,
    print_stmt,
)
from repro.lowering import lower
from repro.perfmodel import PerfModel
from repro.runtime import Counters
from repro.targets.device import A100, SPR_AMX
from repro.targets.dp4a import (
    DP4AError,
    DP_K,
    DP_M,
    DP_N,
    check_tile_shape,
    dp4a_mac,
    vnni4_pack,
    vnni4_unpack,
)


class TestSimulator:
    def test_vnni4_roundtrip(self):
        rng = np.random.default_rng(0)
        b = rng.integers(-128, 128, size=(DP_K, DP_N), dtype=np.int8)
        packed = vnni4_pack(b)
        assert packed.shape == (DP_K // 4, 4 * DP_N)
        np.testing.assert_array_equal(vnni4_unpack(packed), b)

    def test_vnni4_layout(self):
        # vnni[p, 4j + t] == b[4p + t, j]
        b = np.arange(DP_K * DP_N, dtype=np.int32).reshape(DP_K, DP_N)
        packed = vnni4_pack(b)
        for t in range(4):
            np.testing.assert_array_equal(packed[0, 4 * 7 + t], b[t, 7])

    def test_vnni4_pack_needs_divisible_rows(self):
        with pytest.raises(DP4AError):
            vnni4_pack(np.zeros((6, 4), dtype=np.int8))

    def test_dp4a_mac_matches_numpy(self):
        rng = np.random.default_rng(1)
        a = rng.integers(-128, 128, size=(DP_M, DP_K), dtype=np.int8)
        b = rng.integers(-128, 128, size=(DP_K, DP_N), dtype=np.int8)
        c = rng.integers(-1000, 1000, size=(DP_M, DP_N), dtype=np.int32)
        got = dp4a_mac(c, a, vnni4_pack(b))
        ref = c + a.astype(np.int32) @ b.astype(np.int32)
        np.testing.assert_array_equal(got, ref)

    def test_inputs_truncate_to_int8(self):
        # values outside int8 wrap mod 256, like the hardware registers
        a = np.full((DP_M, DP_K), 300, dtype=np.int32)  # wraps to 44
        b = vnni4_pack(np.ones((DP_K, DP_N), dtype=np.int8))
        c = np.zeros((DP_M, DP_N), dtype=np.int32)
        got = dp4a_mac(c, a, b)
        np.testing.assert_array_equal(got, np.full((DP_M, DP_N), 44 * DP_K))

    def test_tile_shape_limits(self):
        check_tile_shape(16, 64, 1)  # a full int8 tile row is 64 bytes
        check_tile_shape(16, 16, 4)  # a full int32 accumulator row too
        with pytest.raises(DP4AError):
            check_tile_shape(17, 16, 1)
        with pytest.raises(DP4AError):
            check_tile_shape(16, 65, 1)


def _saturate(expr):
    eg = EGraph()
    root = Encoder(eg).expr(expr)
    ax, _ = axiomatic_rules()
    sup, _ = supporting_rules()
    dp, _ = dp4a_rules()
    run_phased(eg, list(ax) + list(dp), list(sup), iterations=8)
    return eg, root


class TestRules:
    def test_vnni4_layout_loads_without_swizzle(self):
        """A B operand already in the VNNI-4 layout (three-level nested
        ramp over group/row-group/column) maps to a direct dp4a_load."""
        mul_lanes = DP_M * DP_N * DP_K
        idx = Broadcast(
            Ramp(
                Ramp(
                    Ramp(Variable("b0"), IntImm(1), 4),
                    Broadcast(Variable("s2"), 4),
                    DP_K // 4,
                ),
                Broadcast(Variable("s1"), DP_K),
                DP_N,
            ),
            DP_M,
        )
        rhs = Load(Int(8, mul_lanes), "Bv", idx)
        eg, root = _saturate(rhs)
        facts = eg.facts("dp4a-B-tile")
        assert any(eg.find(root) == pair[0] for pair in facts)

    def test_standard_layout_swizzles_via_k4_interleave(self):
        mul_lanes = DP_M * DP_N * DP_K
        idx = Broadcast(
            Ramp(
                Ramp(Variable("b0"), Variable("s1"), DP_K),
                Broadcast(IntImm(1), DP_K),
                DP_N,
            ),
            DP_M,
        )
        rhs = Load(Int(8, mul_lanes), "Bs", idx)
        eg, root = _saturate(rhs)
        assert any(eg.find(root) == pair[0] for pair in eg.facts("dp4a-B-tile"))


class TestMatmulInt8Selection:
    def test_all_stores_map_to_dp4a(self):
        app = matmul.build_int8(tiles=1)
        lo = lower(app.output)
        tz, report = select_instructions(lo)
        assert report.all_mapped
        assert all(s.kind == "dp4a" for s in report.selections)
        # the dp4a intrinsic shows up in the SelectionReport itself
        assert any(
            "dp4a_matmul" in print_stmt(s.stmt) for s in report.selections
        )
        text = print_stmt(tz.stmt)
        assert "dp4a_zero" in text
        assert "dp4a_matmul" in text
        assert "dp4a_store" in text
        # the standard-layout B operand got the k=4 interleave swizzle
        assert "KWayInterleave(4" in text

    def test_swizzle_hoisted_outside_produce(self):
        app = matmul.build_int8(tiles=1)
        lo = lower(app.output)
        tz, _ = select_instructions(lo)
        text = print_stmt(tz.stmt)
        assert text.index("KWayInterleave") < text.index("produce")

    def test_every_mac_on_the_int8_unit(self):
        app = matmul.build_int8(tiles=2)
        counters = Counters()
        app.run(counters)
        n = matmul.TILE * 2
        assert counters.int8_macs == n * n * matmul.INT8_K
        assert counters.scalar_flops == 0
        assert counters.tensor_macs == 0
        assert counters.intrinsic_calls["dp4a_matmul"] == 4  # 2x2 tiles

    def test_vnni4_layout_maps_without_swizzle(self):
        # pre-packed B loads directly; the %4 / /4 degenerate-pattern
        # recovery axioms rebuild the three-level nested ramp
        app = matmul.build_int8(tiles=1, layout="vnni4")
        lo = lower(app.output)
        tz, report = select_instructions(lo)
        assert report.all_mapped
        text = print_stmt(tz.stmt)
        assert "dp4a_matmul" in text
        assert "KWayInterleave" not in text

    def test_vnni4_layout_bit_exact_both_backends(self):
        app = matmul.build_int8(tiles=1, layout="vnni4")
        ref = app.reference()
        counters = Counters()
        np.testing.assert_array_equal(app.run(counters), ref)
        np.testing.assert_array_equal(app.run(backend="compile"), ref)
        assert counters.int8_macs == 16 * 16 * matmul.INT8_K
        assert counters.scalar_flops == 0


class TestConvLayerInt8Selection:
    def test_selection_report_and_epilogue(self):
        app = conv_layer.build_int8(width=16, rows=1)
        report = app.report
        assert report is not None and report.all_mapped
        assert all(s.kind == "dp4a" for s in report.selections)
        text = print_stmt(app.compile().lowered.stmt)
        assert "dp4a_matmul" in text
        # the i32 bias+ReLU epilogue reads the accumulator pointwise
        # through the (legal, WMMA-style) outbound marker
        assert "DP4A2Mem" in text

    def test_macs_on_int8_unit_with_scalar_epilogue(self):
        app = conv_layer.build_int8(width=16, rows=1)
        out, counters = app.run_and_measure()
        assert counters.int8_macs > 0
        assert counters.tensor_macs == 0


class TestInt8BitExactness:
    """Both quantized apps, both backends, against the numpy reference
    — the app list is shared with the parity/batched suites."""

    @pytest.mark.parametrize("builder,params", INT8_APPS, ids=INT8_APP_IDS)
    def test_bit_exact_against_reference_both_backends(self, builder, params):
        app = builder(**params)
        ref = app.reference()
        np.testing.assert_array_equal(app.run(), ref)
        np.testing.assert_array_equal(app.run(backend="compile"), ref)


class TestRooflineThreading:
    def test_int8_macs_drive_tensor_time(self):
        counters = Counters(int8_macs=10**9)
        t = PerfModel(A100).estimate(counters)
        assert t.tensor_s > 0
        # int8 runs at 2x the fp16 MAC rate, so the same count of fp16
        # MACs must take twice as long
        t_fp16 = PerfModel(A100).estimate(Counters(tensor_macs=10**9))
        assert t_fp16.tensor_s == pytest.approx(2 * t.tensor_s)

    def test_int8_rate_fallback_doubles_fp16(self):
        from repro.targets.device import DeviceSpec

        spec = DeviceSpec(
            name="x",
            tensor_macs_per_s=1e12,
            cuda_macs_per_s=1e12,
            dram_bytes_per_s=1e12,
            l1_bytes_per_s=1e12,
        )
        assert spec.int8_rate() == 2e12
        assert SPR_AMX.int8_rate() == 4e12


class TestUnmappableInt8Store:
    def test_non_matmul_int8_store_reported(self):
        # a pointwise int8 computation scheduled into dp4a storage has
        # no lowering rule: selection must report it unmapped
        inp = hl.ImageParam(hl.Int(8), 1, name="inp_q")
        x = hl.Var("x")
        f = hl.Func("f_q")
        f[x] = hl.i32(inp[x]) * 2
        out_f = f.in_()
        out_f.bound(x, 0, 256).vectorize(x, 256)
        f.store_in(hl.MemoryType.DP4A_ACCUMULATOR).compute_at(out_f, "x")
        f.vectorize(x, 256)
        lo = lower(out_f)
        tz, report = select_instructions(lo, strict=False)
        assert not report.all_mapped
