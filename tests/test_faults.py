"""The deterministic fault-injection harness and in-process recovery:
FaultPlan semantics, store hardening (checksums, quarantine, IO retry),
per-request isolation in run_many, and the Server's retry / circuit-
breaker / admission machinery."""

import pickle

import numpy as np
import pytest
from conftest import build_vector_pipeline, make_vector_input

from repro.lowering import lower
from repro.runtime.executor import RequestError, compile_pipeline
from repro.service import faults
from repro.service.faults import (
    CircuitBreaker,
    FaultPlan,
    FaultSpec,
    InjectedAllocFailure,
    InjectedKernelError,
)
from repro.service.fingerprint import ArtifactKey
from repro.service.serve import RejectedError, Server
from repro.service.store import ArtifactStore, CompileArtifact
from repro.runtime.plan import BatchingUnsupported

pytestmark = pytest.mark.faults


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Every test leaves the process without an installed fault plan."""
    yield
    faults.uninstall()


def vector_setup(count=6):
    """A cheap compiled pipeline, requests, and unfaulted outputs."""
    inp, func = build_vector_pipeline()
    pipe = compile_pipeline(func, backend="compile")
    requests = [{inp.name: make_vector_input(seed=i)} for i in range(count)]
    expected = [pipe.run(request) for request in requests]
    return pipe, requests, expected


class TestFaultPlan:
    def test_rate_pattern_is_deterministic(self):
        def pattern(plan):
            fired = []
            for visit in range(64):
                try:
                    plan.fire("kernel.compile")
                except InjectedKernelError:
                    fired.append(visit)
            return fired

        spec = FaultSpec("raise-in-kernel", rate=0.25)
        first = pattern(FaultPlan(seed=11, specs=[spec]))
        second = pattern(FaultPlan(seed=11, specs=[spec]))
        assert first == second
        assert 0 < len(first) < 64  # it is a rate, not all-or-nothing
        assert pattern(FaultPlan(seed=12, specs=[spec])) != first

    def test_visit_pinning_and_max_fires(self):
        plan = FaultPlan(
            specs=[
                FaultSpec(
                    "raise-in-kernel", visits=(1, 3, 5), max_fires=2
                )
            ]
        )
        fired = []
        for visit in range(8):
            try:
                plan.fire("kernel.compile")
            except InjectedKernelError:
                fired.append(visit)
        assert fired == [1, 3]  # max_fires capped the third hit
        assert plan.fired("raise-in-kernel") == 2

    def test_scope_gates_firing(self):
        spec = FaultSpec(
            "raise-in-kernel", visits=(0,), scope={"incarnation": 0}
        )
        plan = FaultPlan(specs=[spec])
        # a restarted worker's scope does not match: no fire, and the
        # visit is not even counted against the spec
        plan.fire("kernel.compile", scope={"incarnation": 1})
        with pytest.raises(InjectedKernelError):
            plan.fire("kernel.compile", scope={"incarnation": 0})

    def test_pickle_resets_counters(self):
        plan = FaultPlan(seed=3, specs=[FaultSpec("raise-in-kernel")])
        with pytest.raises(InjectedKernelError):
            plan.fire("kernel.compile")
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.seed == plan.seed and clone.specs == plan.specs
        assert clone.stats()["visits"] == [0]  # fresh per process
        assert plan.stats()["visits"] == [1]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown fault mode"):
            FaultSpec("set-fire-to-the-rain")

    def test_uninstalled_fire_is_inert(self):
        from repro.runtime.faultpoints import fire

        fire("kernel.compile")  # no plan installed: must be a no-op


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures_only(self):
        breaker = CircuitBreaker(threshold=3)
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        breaker.record_success()  # streak broken
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.record_failure() is True
        assert not breaker.allow()

    def test_reset_closes_but_keeps_trip_count(self):
        breaker = CircuitBreaker(threshold=1)
        assert breaker.record_failure() is True
        breaker.reset()
        assert breaker.allow()
        stats = breaker.stats()
        assert stats["trips"] == 1 and stats["total_failures"] == 1


class TestStoreFaults:
    def _seeded_store(self, tmp_path):
        _, func = build_vector_pipeline()
        key = ArtifactKey(
            stmt="s", rules="r", backend="compile", device="host"
        )
        artifact = CompileArtifact(
            key_digest=key.digest, key=key, stmt=lower(func).stmt
        )
        store = ArtifactStore(tmp_path, io_retry_delay=0.001)
        store.put(key, artifact)
        return store, key, artifact

    def test_corrupt_artifact_quarantined_not_served(self, tmp_path):
        store, key, artifact = self._seeded_store(tmp_path)
        plan = FaultPlan(
            specs=[FaultSpec("corrupt-artifact", visits=(0,))]
        )
        with faults.active(plan):
            assert store.get(key) is None  # never serves corrupt bytes
        assert plan.fired("corrupt-artifact") == 1
        assert store.stats.stale == 1
        assert store.stats.quarantined == 1
        assert len(store.quarantined_files()) == 1
        # recompile analog: re-persist, then the hit path works again
        store.put(key, artifact)
        assert store.get(key) is not None
        assert store.stats.hits == 1

    def test_transient_io_error_absorbed_by_retry(self, tmp_path):
        store, key, _ = self._seeded_store(tmp_path)
        plan = FaultPlan(specs=[FaultSpec("io-error", visits=(0,))])
        with faults.active(plan):
            assert store.get(key) is not None  # retried, then served
        assert store.stats.io_retries == 1
        assert store.stats.hits == 1 and store.stats.quarantined == 0

    def test_exhausted_io_retries_miss_without_quarantine(self, tmp_path):
        store, key, _ = self._seeded_store(tmp_path)
        plan = FaultPlan(specs=[FaultSpec("io-error", rate=1.0)])
        with faults.active(plan):
            assert store.get(key) is None
        # the file itself may be fine — a flaky mount is not corruption
        assert store.stats.quarantined == 0
        assert store.stats.misses == 1
        assert store.get(key) is not None  # healthy again, still there

    def test_slow_io_is_slow_but_correct(self, tmp_path):
        store, key, _ = self._seeded_store(tmp_path)
        plan = FaultPlan(
            specs=[FaultSpec("slow-io", seconds=0.01, rate=1.0)]
        )
        with faults.active(plan):
            assert store.get(key) is not None


class TestRunManyIsolation:
    def test_looped_path_isolates_failing_request(self):
        pipe, requests, expected = vector_setup(count=5)
        plan = FaultPlan(
            specs=[FaultSpec("raise-in-kernel", visits=(2,))]
        )
        with faults.active(plan):
            results = pipe.run_many(
                requests, workers=1, batch_axis=False, on_error="return"
            )
        assert isinstance(results[2], RequestError)
        assert results[2].index == 2
        assert isinstance(results[2].original, InjectedKernelError)
        assert results[2].original.__traceback__ is not None
        for i in (0, 1, 3, 4):
            assert np.array_equal(results[i], expected[i])

    def test_on_error_raise_propagates_original(self):
        pipe, requests, _ = vector_setup(count=3)
        plan = FaultPlan(
            specs=[FaultSpec("raise-in-kernel", visits=(0,))]
        )
        with faults.active(plan):
            with pytest.raises(InjectedKernelError):
                pipe.run_many(requests, workers=1, batch_axis=False)

    def test_batch_axis_failure_falls_back_to_looped(self):
        pipe, requests, expected = vector_setup(count=4)
        # visit 0 is the single batch-axis kernel call; the looped
        # retry (visits 1..4) runs clean
        plan = FaultPlan(
            specs=[FaultSpec("raise-in-kernel", visits=(0,))]
        )
        with faults.active(plan):
            results = pipe.run_many(
                requests, workers=1, on_error="return"
            )
        assert not any(isinstance(r, RequestError) for r in results)
        assert all(
            np.array_equal(r, e) for r, e in zip(results, expected)
        )

    def test_explicit_batch_axis_failure_propagates(self):
        pipe, requests, _ = vector_setup(count=4)
        plan = FaultPlan(
            specs=[FaultSpec("raise-in-kernel", visits=(0,))]
        )
        with faults.active(plan):
            with pytest.raises(InjectedKernelError):
                pipe.run_many(requests, batch_axis=True)

    def test_bad_on_error_rejected(self):
        pipe, requests, _ = vector_setup(count=2)
        with pytest.raises(ValueError, match="on_error"):
            pipe.run_many(requests, on_error="ignore")


class TestServerRecovery:
    def test_retry_recovers_transient_kernel_fault(self):
        pipe, requests, expected = vector_setup(count=1)
        plan = FaultPlan(
            specs=[FaultSpec("raise-in-kernel", visits=(0,))]
        )
        with Server(
            pipe, workers=1, batch_axis=False, retries=1
        ) as server:
            with faults.active(plan):
                out = server.run(requests[0])
            assert np.array_equal(out, expected[0])
            stats = server.stats()
            assert stats["retries"] == 1
            assert stats["failures"] == 1
            assert stats["requests"] == 1

    def test_alloc_failure_is_retried(self):
        # a two-stage pipeline: the compute_root producer is an
        # Allocate in the kernel, so the plan's arena actually
        # allocates (the single-stage vector pipeline never does)
        from repro import frontend as hl

        inp = hl.ImageParam(hl.Float(32), 1, name="af_in")
        x = hl.Var("x")
        g = hl.Func("af_mid")
        g[x] = inp[x] * 2.0
        f = hl.Func("af_out")
        f[x] = g[x] + 1.0
        f.bound(x, 0, 64)
        g.compute_root()
        pipe = compile_pipeline(f, backend="compile")
        requests = [{"af_in": make_vector_input(seed=0)}]
        expected = [pipe.run(requests[0])]
        plan = FaultPlan(specs=[FaultSpec("alloc-fail", visits=(0,))])
        with Server(
            pipe, workers=1, batch_axis=False, retries=1
        ) as server:
            with faults.active(plan):
                out = server.run(requests[0])
            assert np.array_equal(out, expected[0])
            assert server.stats()["retries"] == 1

    def test_breaker_degrades_to_interpreter_bit_identical(self):
        pipe, requests, expected = vector_setup(count=8)
        inp2, func2 = build_vector_pipeline()
        served = compile_pipeline(func2, backend="compile")
        # every compiled-kernel call fails; the interpreter site is
        # untouched, so degradation ends the outage entirely
        plan = FaultPlan(
            specs=[FaultSpec("raise-in-kernel", rate=1.0)]
        )
        with Server(
            served, workers=2, retries=1, breaker_threshold=2
        ) as server:
            with faults.active(plan):
                results = server.run_many(requests, on_error="return")
                stats = server.stats()
                assert stats["degraded"] is True
                assert stats["effective_backend"] == "interpret"
                assert stats["breakers"]["backend"]["trips"] == 1
                for result, reference in zip(results, expected):
                    if not isinstance(result, RequestError):
                        assert np.array_equal(result, reference)
                # steady degraded state: everything serves, bit-identical
                again = server.run_many(requests)
                assert all(
                    np.array_equal(r, e)
                    for r, e in zip(again, expected)
                )

    def test_reset_breakers_restores_compiled_path(self):
        pipe, requests, expected = vector_setup(count=4)
        plan = FaultPlan(specs=[FaultSpec("raise-in-kernel", rate=1.0)])
        with Server(
            pipe, workers=1, batch_axis=False, retries=0,
            breaker_threshold=1,
        ) as server:
            with faults.active(plan):
                server.run_many(requests, on_error="return")
            assert server.stats()["degraded"] is True
            server.reset_breakers()
            stats = server.stats()
            assert stats["degraded"] is False
            assert stats["effective_backend"] == "compile"
            assert stats["breakers"]["backend"]["trips"] == 1
            results = server.run_many(requests)
            assert all(
                np.array_equal(r, e) for r, e in zip(results, expected)
            )

    def test_tripped_batch_breaker_routes_pool(self):
        pipe, requests, expected = vector_setup(count=4)
        with Server(pipe, workers=2) as server:
            for _ in range(server.batch_breaker.threshold):
                server.batch_breaker.record_failure()
            results = server.run_many(requests)
            assert all(
                np.array_equal(r, e) for r, e in zip(results, expected)
            )
            assert server.stats()["batched_batches"] == 0
            with pytest.raises(BatchingUnsupported):
                server.run_many(requests, batch_axis=True)

    def test_admission_rejects_when_full(self):
        pipe, requests, expected = vector_setup(count=2)
        plan = FaultPlan(
            specs=[
                FaultSpec("hang-kernel", seconds=0.3, visits=(0,))
            ]
        )
        with Server(
            pipe, workers=1, batch_axis=False, max_pending=1
        ) as server:
            with faults.active(plan):
                first = server.submit(requests[0])  # hangs ~0.3s
                rejected = False
                for _ in range(200):
                    if first.done():
                        break
                    try:
                        server.submit(requests[1], block=False)
                    except RejectedError:
                        rejected = True
                        break
                assert np.array_equal(first.result(), expected[0])
            assert rejected
            assert server.stats()["rejected"] >= 1
            # slot freed: admission is open again
            assert np.array_equal(
                server.run(requests[1]), expected[1]
            )

    def test_store_counters_surface_in_stats(self, tmp_path):
        pipe, requests, _ = vector_setup(count=1)
        pipe.artifact_store = ArtifactStore(tmp_path)
        with Server(pipe, workers=1) as server:
            stats = server.stats()
        assert stats["store"]["quarantined"] == 0
        assert "io_retries" in stats["store"]
