"""Tests for the AMX/WMMA simulators and shuffle intrinsics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import Call, Float, IntImm, StringImm, Variable
from repro.runtime import Buffer, Interpreter
from repro.targets.amx import (
    AMXError,
    check_tile_shape,
    tdpbf16ps,
    vnni_pack,
    vnni_unpack,
)
from repro.targets.bfloat16 import is_bfloat16_exact, round_to_bfloat16
from repro.targets.device import A100, DEVICES, RTX4070S
from repro.targets.wmma import WMMAError, check_shape, mma_sync
from repro.hardboiled.intrinsics import kway_interleave, toeplitz_from_kernel

# intrinsic registration happens on executor import
import repro.runtime.executor  # noqa: F401


def call(name, *args):
    return Call(Float(32), name, tuple(args))


class TestBFloat16:
    def test_round_exact_values(self):
        exact = np.array([0.0, 1.0, -2.5, 256.0], dtype=np.float32)
        np.testing.assert_array_equal(round_to_bfloat16(exact), exact)
        assert is_bfloat16_exact(exact).all()

    def test_round_to_nearest_even(self):
        # 1 + 2^-9 is exactly halfway between 1.0 and the next bf16;
        # round-to-even goes down to 1.0
        halfway = np.float32(1.0 + 2.0**-9)
        assert round_to_bfloat16(np.array([halfway]))[0] == np.float32(1.0)

    def test_rounding_error_bounded(self):
        rng = np.random.default_rng(3)
        values = rng.standard_normal(1000).astype(np.float32)
        rounded = round_to_bfloat16(values)
        # bf16 has 8 mantissa bits: relative error < 2^-8
        rel = np.abs(rounded - values) / np.maximum(np.abs(values), 1e-30)
        assert rel.max() < 2.0**-8

    def test_nan_stays_nan(self):
        out = round_to_bfloat16(np.array([np.nan], dtype=np.float32))
        assert np.isnan(out[0])


class TestVNNI:
    def test_pack_layout(self):
        b = np.arange(8, dtype=np.float32).reshape(4, 2)  # K=4, N=2
        packed = vnni_pack(b)
        assert packed.shape == (2, 4)
        # vnni[p, 2j+t] == b[2p+t, j]
        assert packed[0, 0] == b[0, 0]
        assert packed[0, 1] == b[1, 0]
        assert packed[0, 2] == b[0, 1]
        assert packed[1, 1] == b[3, 0]

    def test_odd_k_rejected(self):
        with pytest.raises(AMXError):
            vnni_pack(np.zeros((3, 2), dtype=np.float32))

    @settings(max_examples=25, deadline=None)
    @given(
        k=st.sampled_from([2, 4, 8, 32]), n=st.sampled_from([1, 3, 16])
    )
    def test_property_roundtrip(self, k, n):
        rng = np.random.default_rng(k * 100 + n)
        b = rng.standard_normal((k, n)).astype(np.float32)
        np.testing.assert_array_equal(vnni_unpack(vnni_pack(b)), b)


class TestTDPBF16PS:
    def test_matches_reference_matmul(self):
        rng = np.random.default_rng(7)
        a = round_to_bfloat16(rng.standard_normal((16, 32)).astype(np.float32))
        b = round_to_bfloat16(rng.standard_normal((32, 16)).astype(np.float32))
        c = rng.standard_normal((16, 16)).astype(np.float32)
        out = tdpbf16ps(c, a, vnni_pack(b))
        np.testing.assert_allclose(out, c + a @ b, rtol=1e-5)

    def test_rounds_inputs_to_bf16(self):
        a = np.full((16, 32), 1.00001, dtype=np.float32)  # not bf16-exact
        b = vnni_pack(np.eye(32, 16, dtype=np.float32))
        out = tdpbf16ps(np.zeros((16, 16), np.float32), a, b)
        np.testing.assert_array_equal(out[:, 0], np.full(16, 1.0))

    def test_tile_shape_limits(self):
        check_tile_shape(16, 32, 2)  # 16 rows x 64B: ok
        with pytest.raises(AMXError):
            check_tile_shape(17, 32, 2)
        with pytest.raises(AMXError):
            check_tile_shape(16, 33, 2)


class TestAMXIntrinsics:
    def test_tile_zero(self):
        interp = Interpreter({})
        out = interp.eval_expr(call("tile_zero", IntImm(16), IntImm(16)), {})
        assert out.shape == (256,)
        assert (out == 0).all()

    def test_load_matmul_store_roundtrip(self):
        rng = np.random.default_rng(11)
        a = round_to_bfloat16(rng.standard_normal((16, 32)).astype(np.float32))
        b = round_to_bfloat16(rng.standard_normal((32, 16)).astype(np.float32))
        from repro.ir import BFloat

        bufs = {
            "A": Buffer.from_numpy("A", a, dtype=BFloat(16)),
            "Bv": Buffer.from_numpy("Bv", vnni_pack(b), dtype=BFloat(16)),
            "C": Buffer("C", Float(32), (256,)),
        }
        interp = Interpreter(bufs)
        load_a = call(
            "tile_load", StringImm("A"), IntImm(0), IntImm(32),
            IntImm(16), IntImm(32),
        )
        load_b = call(
            "tile_load", StringImm("Bv"), IntImm(0), IntImm(32),
            IntImm(16), IntImm(32),
        )
        zero = call("tile_zero", IntImm(16), IntImm(16))
        mm = call(
            "tile_matmul", zero, load_a, load_b,
            IntImm(16), IntImm(16), IntImm(32),
        )
        store = call(
            "tile_store", StringImm("C"), IntImm(0), IntImm(16),
            IntImm(16), IntImm(16), mm,
        )
        interp.eval_expr(store, {})
        np.testing.assert_allclose(
            bufs["C"].data.reshape(16, 16), a @ b, rtol=1e-5, atol=1e-4
        )
        assert interp.counters.tensor_macs == 16 * 16 * 32

    def test_wrong_shape_rejected(self):
        interp = Interpreter({})
        zero = call("tile_zero", IntImm(16), IntImm(16))
        bad = call(
            "tile_matmul", zero, zero, zero,
            IntImm(8), IntImm(8), IntImm(8),
        )
        with pytest.raises(AMXError):
            interp.eval_expr(bad, {})

    def test_out_of_bounds_load(self):
        bufs = {"A": Buffer("A", Float(32), (16,))}
        interp = Interpreter(bufs)
        bad = call(
            "tile_load", StringImm("A"), IntImm(0), IntImm(32),
            IntImm(16), IntImm(16),
        )
        with pytest.raises(AMXError, match="bounds"):
            interp.eval_expr(bad, {})


class TestWMMA:
    def test_supported_shapes(self):
        check_shape(16, 16, 16)
        check_shape(32, 8, 16)
        check_shape(8, 32, 16)
        with pytest.raises(WMMAError):
            check_shape(32, 32, 16)

    def test_mma_sync_fp16_inputs(self):
        rng = np.random.default_rng(13)
        a = rng.standard_normal((32, 16)).astype(np.float16)
        b = rng.standard_normal((16, 8)).astype(np.float16)
        c = np.zeros((32, 8), dtype=np.float32)
        out = mma_sync(c, a, b)
        ref = a.astype(np.float32) @ b.astype(np.float32)
        np.testing.assert_allclose(out, ref, rtol=1e-6)

    def test_intrinsic_pipeline(self):
        rng = np.random.default_rng(17)
        a = rng.standard_normal((32, 16)).astype(np.float16)
        b = rng.standard_normal((16, 8)).astype(np.float16)
        bufs = {
            "A": Buffer.from_numpy("A", a),
            "B": Buffer.from_numpy("B", b),
            "D": Buffer("D", Float(32), (256,)),
        }
        interp = Interpreter(bufs)
        frag_a = call(
            "wmma.load.a.sync", StringImm("A"), IntImm(0), IntImm(16),
            IntImm(32), IntImm(16),
        )
        frag_b = call(
            "wmma.load.b.sync", StringImm("B"), IntImm(0), IntImm(8),
            IntImm(16), IntImm(8),
        )
        acc = call("wmma.fill.sync", IntImm(32), IntImm(8), IntImm(0))
        mma = call(
            "wmma.mma.sync", acc, frag_a, frag_b,
            IntImm(32), IntImm(8), IntImm(16),
        )
        store = call(
            "wmma.store.d.sync", StringImm("D"), IntImm(0), IntImm(8),
            IntImm(32), IntImm(8), mma,
        )
        interp.eval_expr(store, {})
        ref = a.astype(np.float32) @ b.astype(np.float32)
        np.testing.assert_allclose(
            bufs["D"].data.reshape(32, 8), ref, rtol=1e-5, atol=1e-4
        )
        assert interp.counters.tensor_macs == 32 * 8 * 16


class TestShuffles:
    def test_kway_interleave_is_vnni_for_k2(self):
        b = np.arange(32, dtype=np.float32).reshape(8, 4)
        np.testing.assert_array_equal(kway_interleave(b, 2), vnni_pack(b))

    def test_toeplitz_conv(self):
        # windows @ A_K == convolution
        rng = np.random.default_rng(19)
        kernel = rng.standard_normal(8).astype(np.float32)
        signal = rng.standard_normal(64).astype(np.float32)
        rows, cols = 16, 8
        a_k = toeplitz_from_kernel(kernel, rows, cols)
        windows = np.stack([signal[m : m + rows] for m in range(0, 32, 8)])
        out = windows @ a_k
        for w in range(windows.shape[0]):
            for j in range(cols):
                ref = (signal[w * 8 + j : w * 8 + j + 8] * kernel).sum()
                np.testing.assert_allclose(out[w, j], ref, rtol=1e-4)

    def test_toeplitz_strided_downsample(self):
        rng = np.random.default_rng(23)
        kernel = rng.standard_normal(4).astype(np.float32)
        signal = rng.standard_normal(32).astype(np.float32)
        a_down = toeplitz_from_kernel(kernel, rows=16, cols=6, stride=2)
        window = signal[:16]
        out = window @ a_down
        for j in range(6):
            ref = (signal[2 * j : 2 * j + 4] * kernel).sum()
            np.testing.assert_allclose(out[j], ref, rtol=1e-4)

    @settings(max_examples=25, deadline=None)
    @given(
        taps=st.sampled_from([2, 4, 8]),
        stride=st.sampled_from([1, 2]),
        seed=st.integers(0, 100),
    )
    def test_property_toeplitz_matches_direct_convolution(
        self, taps, stride, seed
    ):
        rng = np.random.default_rng(seed)
        kernel = rng.standard_normal(taps).astype(np.float32)
        cols = 8
        rows = stride * (cols - 1) + taps
        signal = rng.standard_normal(rows).astype(np.float32)
        a = toeplitz_from_kernel(kernel, rows, cols, stride)
        out = signal @ a
        for j in range(cols):
            ref = (signal[stride * j : stride * j + taps] * kernel).sum()
            np.testing.assert_allclose(out[j], ref, rtol=1e-3, atol=1e-4)


class TestDevices:
    def test_registry(self):
        assert "A100-SXM-80GB" in DEVICES
        assert DEVICES["RTX-4070-SUPER"] is RTX4070S

    def test_paper_cited_rates(self):
        assert A100.tensor_macs_per_s == 156e12
        assert A100.dram_bytes_per_s == 2.0e12
        assert RTX4070S.tensor_macs_per_s == 36e12
        assert abs(RTX4070S.dram_bytes_per_s - 504.2e9) < 1e6
