"""The kernel cache: memoization, invalidation, and counter routing."""

import numpy as np
import pytest

from repro import frontend as hl
from repro.lowering import lower
from repro.runtime import Counters
from repro.runtime.executor import CompiledPipeline, realize
from repro.runtime.kernel_cache import KernelCache, fingerprint_stmt


def build_pipeline(width=64, split=8, vector=8):
    inp = hl.ImageParam(hl.Float(32), 1, name="kc_in")
    x, xi = hl.Var("x"), hl.Var("xi")
    f = hl.Func("kc_out")
    f[x] = inp[x] * 2.0 + 1.0
    f.bound(x, 0, width)
    f.split(x, x, xi, split).vectorize(xi, vector)
    return inp, f


def make_inputs(inp, width=64):
    rng = np.random.default_rng(3)
    return {inp: rng.standard_normal(width).astype(np.float32)}


class TestMemoization:
    def test_same_pipeline_compiles_once(self):
        cache = KernelCache()
        inp, f = build_pipeline()
        pipe = CompiledPipeline(lower(f), backend="compile", kernel_cache=cache)
        inputs = make_inputs(inp)
        pipe.run(inputs)
        assert (cache.misses, cache.hits) == (1, 0)
        pipe.run(inputs)
        pipe.run(inputs)
        assert (cache.misses, cache.hits) == (1, 2)
        assert len(cache) == 1

    def test_equal_lowerings_share_a_kernel(self):
        # two independent lower() runs of the same schedule hit one entry
        cache = KernelCache()
        inp, f1 = build_pipeline()
        _, f2 = build_pipeline()
        p1 = CompiledPipeline(lower(f1), "compile", kernel_cache=cache)
        p2 = CompiledPipeline(lower(f2), "compile", kernel_cache=cache)
        p1.run(make_inputs(inp))
        p2.run(make_inputs(inp))
        assert (cache.misses, cache.hits) == (1, 1)

    def test_schedule_change_invalidates_key(self):
        _, a = build_pipeline(split=8)
        _, b = build_pipeline(split=16)
        _, c = build_pipeline(split=8, vector=4)
        keys = {fingerprint_stmt(lower(g).stmt) for g in (a, b, c)}
        assert len(keys) == 3

    def test_lru_eviction(self):
        cache = KernelCache(maxsize=2)
        stmts = [lower(build_pipeline(split=s)[1]) for s in (8, 16, 32)]
        for lowered in stmts:
            cache.get(lowered)
        assert len(cache) == 2
        assert cache.misses == 3
        # oldest entry was evicted: re-requesting it recompiles
        cache.get(stmts[0])
        assert cache.misses == 4


class TestDiskTier:
    def test_fresh_process_hits_disk_instead_of_recompiling(self, tmp_path):
        inp, f = build_pipeline()
        inputs = make_inputs(inp)
        hot = KernelCache(disk_dir=str(tmp_path))
        p1 = CompiledPipeline(lower(f), "compile", kernel_cache=hot)
        out1 = p1.run(inputs)
        assert (hot.misses, hot.disk_hits) == (1, 0)

        # a fresh cache over the same directory = a fresh process
        cold = KernelCache(disk_dir=str(tmp_path))
        _, f2 = build_pipeline()
        p2 = CompiledPipeline(lower(f2), "compile", kernel_cache=cold)
        out2 = p2.run(inputs)
        assert (cold.misses, cold.disk_hits, cold.hits) == (0, 1, 0)
        np.testing.assert_array_equal(out1, out2)
        # after re-hydration the kernel lives in memory: next run is a hit
        p2.run(inputs)
        assert cold.hits == 1

    def test_unimportable_disk_entry_recompiles(self, tmp_path):
        """A payload pickled against a module that no longer exists is
        dropped and recompiled, not raised out of run()."""
        inp, f = build_pipeline()
        cache = KernelCache(disk_dir=str(tmp_path))
        lowered = lower(f)
        kernel = cache.get(lowered)
        path = cache._disk_path(kernel.key)
        with open(path, "wb") as handle:
            # a GLOBAL opcode referencing a module that does not exist:
            # pickle.load raises ModuleNotFoundError
            handle.write(b"cno_such_module_xyz\nattr\n.")
        fresh = KernelCache(disk_dir=str(tmp_path))
        fresh.get(lowered)
        assert (fresh.misses, fresh.disk_hits) == (1, 0)
        # the recompile re-persisted a loadable entry
        assert fresh._disk_load(kernel.key) is not None

    def test_corrupt_disk_entry_recompiles(self, tmp_path):
        inp, f = build_pipeline()
        cache = KernelCache(disk_dir=str(tmp_path))
        lowered = lower(f)
        kernel = cache.get(lowered)
        path = cache._disk_path(kernel.key)
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        fresh = KernelCache(disk_dir=str(tmp_path))
        fresh.get(lowered)
        assert (fresh.misses, fresh.disk_hits) == (1, 0)

    def test_pipeline_exposes_cache_stats(self):
        cache = KernelCache()
        inp, f = build_pipeline()
        pipe = CompiledPipeline(lower(f), "compile", kernel_cache=cache)
        assert pipe.cache_stats == {
            "hits": 0, "misses": 0, "disk_hits": 0, "entries": 0,
        }
        pipe.run(make_inputs(inp))
        pipe.run(make_inputs(inp))
        stats = pipe.cache_stats
        assert (stats["hits"], stats["misses"], stats["entries"]) == (1, 1, 1)

    def test_seed_kernel_rejects_foreign_kernel(self):
        from repro.runtime.codegen import compile_stmt

        inp, f = build_pipeline()
        _, other = build_pipeline(split=16)
        pipe = CompiledPipeline(lower(f), "compile", kernel_cache=KernelCache())
        other_lowered = lower(other)
        foreign = compile_stmt(
            other_lowered.stmt, key=fingerprint_stmt(other_lowered.stmt)
        )
        with pytest.raises(ValueError, match="does not match"):
            pipe.seed_kernel(foreign)


class TestCounterRouting:
    def test_counters_force_interpreter(self):
        """Instrumented runs bypass the compiled backend entirely."""
        cache = KernelCache()
        inp, f = build_pipeline()
        pipe = CompiledPipeline(lower(f), backend="compile", kernel_cache=cache)
        counters = Counters()
        out = pipe.run(make_inputs(inp), counters=counters)
        # the interpreter ran (it counted) and no kernel was compiled
        assert counters.scalar_flops > 0
        assert counters.total_store_bytes() > 0
        assert len(cache) == 0 and cache.misses == 0
        # and the uncounted compiled run agrees exactly
        compiled = pipe.run(make_inputs(inp))
        np.testing.assert_allclose(out, compiled, rtol=0, atol=0)
        assert cache.misses == 1

    def test_backend_validation(self):
        _, f = build_pipeline()
        with pytest.raises(ValueError, match="unknown backend"):
            CompiledPipeline(lower(f), backend="jit")
        with pytest.raises(ValueError, match="unknown backend"):
            CompiledPipeline(lower(f)).run(backend="turbo")


class TestRealize:
    def test_realize_backend_switch(self):
        inp, f = build_pipeline()
        inputs = make_inputs(inp)
        a = realize(f, inputs)
        _, f2 = build_pipeline()
        b = realize(f2, inputs, backend="compile")
        np.testing.assert_allclose(a, b, rtol=0, atol=0)


class TestGetOrBuild:
    """The arbitrary-builder memoization the batch-axis variants ride."""

    def test_builds_once_then_hits(self, tmp_path):
        from repro.runtime.kernel_cache import batched_key

        cache = KernelCache(disk_dir=str(tmp_path))
        inp, f = build_pipeline()
        pipe = CompiledPipeline(lower(f), backend="compile",
                                kernel_cache=cache)
        pipe.run(make_inputs(inp))  # the scalar kernel, for a builder
        import copy

        key = batched_key(pipe.cache_key, frozenset([inp.name]))
        variant = copy.copy(cache.lookup(pipe.cache_key))
        variant.key = key  # as compile_batched_stmt stamps its kernels
        calls = []

        def build():
            calls.append(1)
            return variant

        assert cache.get_or_build(key, build) is variant
        assert cache.get_or_build(key, build) is variant
        assert len(calls) == 1

        # the disk tier re-hydrates a fresh process without rebuilding
        fresh = KernelCache(disk_dir=str(tmp_path))

        def never():
            raise AssertionError("disk tier should have served this")

        assert fresh.get_or_build(key, never).key == key
        assert fresh.disk_hits == 1

    def test_build_errors_are_not_cached(self):
        cache = KernelCache()

        def boom():
            raise RuntimeError("codegen failed")

        with pytest.raises(RuntimeError):
            cache.get_or_build("k", boom)
        # the failure was not memoized: a working builder still runs
        sentinel = object()
        assert cache.get_or_build("k", lambda: sentinel) is sentinel

    def test_batched_key_varies_with_split(self):
        from repro.runtime.kernel_cache import batched_key

        base = "stmt-fingerprint"
        a = batched_key(base, frozenset(["I"]))
        b = batched_key(base, frozenset(["I", "K"]))
        assert a != b != base
        # order-independent: frozenset iteration order must not leak
        assert a == batched_key(base, frozenset(["I"]))
        assert b == batched_key(base, frozenset(["K", "I"]))
