"""The kernel cache: memoization, invalidation, and counter routing."""

import numpy as np
import pytest

from repro import frontend as hl
from repro.lowering import lower
from repro.runtime import Counters
from repro.runtime.executor import CompiledPipeline, realize
from repro.runtime.kernel_cache import KernelCache, fingerprint_stmt


def build_pipeline(width=64, split=8, vector=8):
    inp = hl.ImageParam(hl.Float(32), 1, name="kc_in")
    x, xi = hl.Var("x"), hl.Var("xi")
    f = hl.Func("kc_out")
    f[x] = inp[x] * 2.0 + 1.0
    f.bound(x, 0, width)
    f.split(x, x, xi, split).vectorize(xi, vector)
    return inp, f


def make_inputs(inp, width=64):
    rng = np.random.default_rng(3)
    return {inp: rng.standard_normal(width).astype(np.float32)}


class TestMemoization:
    def test_same_pipeline_compiles_once(self):
        cache = KernelCache()
        inp, f = build_pipeline()
        pipe = CompiledPipeline(lower(f), backend="compile", kernel_cache=cache)
        inputs = make_inputs(inp)
        pipe.run(inputs)
        assert (cache.misses, cache.hits) == (1, 0)
        pipe.run(inputs)
        pipe.run(inputs)
        assert (cache.misses, cache.hits) == (1, 2)
        assert len(cache) == 1

    def test_equal_lowerings_share_a_kernel(self):
        # two independent lower() runs of the same schedule hit one entry
        cache = KernelCache()
        inp, f1 = build_pipeline()
        _, f2 = build_pipeline()
        p1 = CompiledPipeline(lower(f1), "compile", kernel_cache=cache)
        p2 = CompiledPipeline(lower(f2), "compile", kernel_cache=cache)
        p1.run(make_inputs(inp))
        p2.run(make_inputs(inp))
        assert (cache.misses, cache.hits) == (1, 1)

    def test_schedule_change_invalidates_key(self):
        _, a = build_pipeline(split=8)
        _, b = build_pipeline(split=16)
        _, c = build_pipeline(split=8, vector=4)
        keys = {fingerprint_stmt(lower(g).stmt) for g in (a, b, c)}
        assert len(keys) == 3

    def test_lru_eviction(self):
        cache = KernelCache(maxsize=2)
        stmts = [lower(build_pipeline(split=s)[1]) for s in (8, 16, 32)]
        for lowered in stmts:
            cache.get(lowered)
        assert len(cache) == 2
        assert cache.misses == 3
        # oldest entry was evicted: re-requesting it recompiles
        cache.get(stmts[0])
        assert cache.misses == 4


class TestCounterRouting:
    def test_counters_force_interpreter(self):
        """Instrumented runs bypass the compiled backend entirely."""
        cache = KernelCache()
        inp, f = build_pipeline()
        pipe = CompiledPipeline(lower(f), backend="compile", kernel_cache=cache)
        counters = Counters()
        out = pipe.run(make_inputs(inp), counters=counters)
        # the interpreter ran (it counted) and no kernel was compiled
        assert counters.scalar_flops > 0
        assert counters.total_store_bytes() > 0
        assert len(cache) == 0 and cache.misses == 0
        # and the uncounted compiled run agrees exactly
        compiled = pipe.run(make_inputs(inp))
        np.testing.assert_allclose(out, compiled, rtol=0, atol=0)
        assert cache.misses == 1

    def test_backend_validation(self):
        _, f = build_pipeline()
        with pytest.raises(ValueError, match="unknown backend"):
            CompiledPipeline(lower(f), backend="jit")
        with pytest.raises(ValueError, match="unknown backend"):
            CompiledPipeline(lower(f)).run(backend="turbo")


class TestRealize:
    def test_realize_backend_switch(self):
        inp, f = build_pipeline()
        inputs = make_inputs(inp)
        a = realize(f, inputs)
        _, f2 = build_pipeline()
        b = realize(f2, inputs, backend="compile")
        np.testing.assert_allclose(a, b, rtol=0, atol=0)
