"""Tests for IR expression nodes, builders, printer, and analysis."""

import pytest

from repro.ir import (
    Add,
    Broadcast,
    Cast,
    FloatImm,
    Float,
    IntImm,
    Int,
    BFloat,
    Load,
    Mul,
    Ramp,
    Sub,
    Variable,
    VectorReduce,
    Store,
    cast,
    const,
    expr_size,
    free_variables,
    make_add,
    make_broadcast,
    make_div,
    make_mod,
    make_mul,
    make_ramp,
    make_sub,
    print_expr,
    print_stmt,
    substitute,
    vector_reduce_add,
)


def var(name="x", dtype=Int(32)):
    return Variable(name, dtype)


class TestNodeTypes:
    def test_ramp_type_widen(self):
        r = Ramp(IntImm(0), IntImm(1), 8)
        assert r.type == Int(32, 8)

    def test_nested_ramp_type(self):
        inner = Ramp(IntImm(0), IntImm(1), 8)
        outer = Ramp(inner, Broadcast(IntImm(32), 8), 16)
        assert outer.type == Int(32, 128)

    def test_broadcast_type(self):
        b = Broadcast(Ramp(IntImm(0), IntImm(1), 4), 3)
        assert b.type == Int(32, 12)

    def test_vector_reduce_type(self):
        v = Broadcast(FloatImm(1.0), 64)
        vr = VectorReduce("add", v, 8)
        assert vr.type == Float(32, 8)

    def test_vector_reduce_divisibility(self):
        v = Broadcast(FloatImm(1.0), 10)
        with pytest.raises(ValueError):
            VectorReduce("add", v, 3)

    def test_load_lane_mismatch(self):
        with pytest.raises(ValueError):
            Load(Float(32, 8), "A", IntImm(0))

    def test_store_lane_mismatch(self):
        with pytest.raises(ValueError):
            Store("A", Ramp(IntImm(0), IntImm(1), 4), FloatImm(0.0))

    def test_structural_equality(self):
        a = Add(IntImm(1), IntImm(2))
        b = Add(IntImm(1), IntImm(2))
        assert a == b
        assert hash(a) == hash(b)
        assert a != Sub(IntImm(1), IntImm(2))


class TestBuilders:
    def test_add_identity(self):
        x = var()
        assert make_add(x, IntImm(0)) is x
        assert make_add(IntImm(0), x) is x

    def test_mul_identity_and_zero(self):
        x = var()
        assert make_mul(x, IntImm(1)) is x
        assert make_mul(x, IntImm(0)) == IntImm(0)

    def test_constant_folding(self):
        assert make_add(IntImm(2), IntImm(3)) == IntImm(5)
        assert make_mul(FloatImm(2.0), FloatImm(4.0)) == FloatImm(8.0)

    def test_div_floor_semantics(self):
        assert make_div(IntImm(-7), IntImm(2)) == IntImm(-4)

    def test_mod_euclidean(self):
        assert make_mod(IntImm(-7), IntImm(2)) == IntImm(1)

    def test_operator_sugar(self):
        x = var()
        e = x + 1
        assert isinstance(e, Add)
        e = 2 * x
        assert isinstance(e, Mul)

    def test_promotion_inserts_cast(self):
        x = var("x", Int(32))
        f = var("f", Float(32))
        e = make_add(x, f)
        assert e.type == Float(32)
        assert isinstance(e.a, Cast)

    def test_lane_broadcasting(self):
        x = var("x", Float(32, 8))
        e = make_add(x, FloatImm(1.0))
        assert e.type == Float(32, 8)
        assert isinstance(e.b, Broadcast)

    def test_ramp_count_one_collapses(self):
        x = var()
        assert make_ramp(x, IntImm(1), 1) is x

    def test_broadcast_count_one_collapses(self):
        x = var()
        assert make_broadcast(x, 1) is x

    def test_vector_reduce_same_lanes_collapses(self):
        v = Broadcast(FloatImm(1.0), 8)
        assert vector_reduce_add(v, 8) is v

    def test_cast_fold(self):
        assert cast(Float(32), IntImm(3)) == FloatImm(3.0)
        assert cast(Int(32), FloatImm(3.7)) == IntImm(3)

    def test_cast_broadcast_scalar_to_vector(self):
        e = cast(Float(32, 4), FloatImm(1.0))
        assert isinstance(e, Broadcast)

    def test_const_vector(self):
        e = const(0.0, Float(32, 512))
        assert isinstance(e, Broadcast)
        assert e.type == Float(32, 512)


class TestPrinter:
    def test_broadcast_terse(self):
        assert print_expr(Broadcast(IntImm(1), 32)) == "x32(1)"

    def test_ramp(self):
        assert print_expr(Ramp(IntImm(0), IntImm(1), 8)) == "ramp(0, 1, 8)"

    def test_nested_like_paper_fig2(self):
        # A[ramp(ramp(0, 8, 4), x4(1), 8)] — the 4x8 transpose of Fig. 2
        idx = Ramp(Ramp(IntImm(0), IntImm(8), 4), Broadcast(IntImm(1), 4), 8)
        load = Load(Float(32, 32), "A", idx)
        assert print_expr(load) == "A[ramp(ramp(0, 8, 4), x4(1), 8)]"

    def test_store(self):
        s = Store("out", Ramp(IntImm(0), IntImm(1), 4), Broadcast(FloatImm(0.0), 4))
        assert print_stmt(s) == "out[ramp(0, 1, 4)] = x4(0.0f)"

    def test_cast(self):
        e = Cast(Float(32), var())
        assert print_expr(e) == "cast<float32>(x)"


class TestAnalysis:
    def test_expr_size(self):
        e = make_add(var("a"), make_mul(var("b"), var("c")))
        assert expr_size(e) == 5

    def test_free_variables(self):
        e = make_add(var("a"), make_mul(var("b"), IntImm(2)))
        assert free_variables(e) == {"a", "b"}

    def test_substitute(self):
        e = make_add(var("a"), var("b"))
        e2 = substitute(e, {"a": IntImm(1)})
        assert free_variables(e2) == {"b"}

    def test_substitute_is_noop_without_matches(self):
        e = make_add(var("a"), var("b"))
        assert substitute(e, {"z": IntImm(1)}) is e
