"""Cross-cutting property tests on the compiler's semantic invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eqsat import EGraph, extract_best, run_phased
from repro.hardboiled import (
    axiomatic_rules,
    decode_expr,
    encode_expr,
    hardboiled_cost_model,
    supporting_rules,
)
from repro.hardboiled.encode import Encoder
from repro.ir import (
    Add,
    Broadcast,
    Cast,
    Float,
    IntImm,
    Load,
    Mul,
    Ramp,
    Variable,
    print_expr,
)
from repro.ir.types import BFloat, Int
from repro.lowering.simplify import simplify_expr
from repro.runtime import Buffer, Interpreter


# -- strategies ---------------------------------------------------------------


@st.composite
def index_vectors(draw, max_lanes=64):
    """Random nested Ramp/Broadcast/arith integer index expressions."""

    def go(depth, lanes_budget):
        choices = ["imm", "ramp", "broadcast"]
        if depth > 0:
            choices += ["add", "mul_const"]
        kind = draw(st.sampled_from(choices))
        if kind == "imm" or depth > 3:
            return IntImm(draw(st.integers(0, 7)))
        if kind == "ramp":
            base = go(depth + 1, lanes_budget // 2)
            count = draw(st.sampled_from([2, 4]))
            if base.type.lanes * count > lanes_budget:
                return IntImm(draw(st.integers(0, 7)))
            stride_value = draw(st.integers(0, 3))
            from repro.ir.builders import const

            return Ramp(base, const(stride_value, base.type), count)
        if kind == "broadcast":
            value = go(depth + 1, lanes_budget // 2)
            count = draw(st.sampled_from([2, 4]))
            if value.type.lanes * count > lanes_budget:
                return IntImm(draw(st.integers(0, 7)))
            return Broadcast(value, count)
        if kind == "add":
            a = go(depth + 1, lanes_budget)
            b = go(depth + 1, lanes_budget)
            if a.type.lanes != b.type.lanes:
                if a.type.lanes == 1:
                    a = Broadcast(a, b.type.lanes)
                elif b.type.lanes == 1:
                    b = Broadcast(b, a.type.lanes)
                else:
                    return a
            return Add(a, b)
        # mul by constant
        a = go(depth + 1, lanes_budget)
        from repro.ir.builders import const

        return Mul(a, const(draw(st.integers(1, 3)), a.type))

    return go(0, max_lanes)


def evaluate(expr):
    return np.atleast_1d(
        np.asarray(Interpreter({}).eval_expr(expr, {}))
    )


class TestSimplifierSoundness:
    @settings(max_examples=80, deadline=None)
    @given(index_vectors())
    def test_simplify_preserves_semantics(self, expr):
        before = evaluate(expr)
        after = evaluate(simplify_expr(expr))
        np.testing.assert_array_equal(before, after)


class TestAxiomSoundness:
    """EqSat axioms + extraction must preserve evaluation semantics."""

    @settings(max_examples=40, deadline=None)
    @given(index_vectors(max_lanes=32))
    def test_axioms_preserve_semantics(self, expr):
        egraph = EGraph()
        root = Encoder(egraph).expr(expr)
        ax, _ = axiomatic_rules()
        sup, _ = supporting_rules()
        run_phased(egraph, list(ax), list(sup), iterations=4)
        best = extract_best(egraph, root, hardboiled_cost_model())
        decoded = decode_expr(best)
        np.testing.assert_array_equal(evaluate(expr), evaluate(decoded))

    @settings(max_examples=40, deadline=None)
    @given(index_vectors(max_lanes=32))
    def test_encode_decode_roundtrip(self, expr):
        assert decode_expr(encode_expr(expr)) == expr


class TestLoadSemantics:
    @settings(max_examples=30, deadline=None)
    @given(index_vectors(max_lanes=32), st.integers(0, 99))
    def test_axioms_preserve_load_semantics(self, idx, seed):
        """Broadcast-push-into-load etc. must not change gathered data."""
        rng = np.random.default_rng(seed)
        data = rng.standard_normal(512).astype(np.float32)
        buf = Buffer.from_numpy("A", data)
        lanes = idx.type.lanes
        load = Load(Float(32, lanes), "A", idx)
        wrapped = Broadcast(load, 2)

        egraph = EGraph()
        root = Encoder(egraph).expr(wrapped)
        ax, _ = axiomatic_rules()
        sup, _ = supporting_rules()
        run_phased(egraph, list(ax), list(sup), iterations=4)
        best = decode_expr(
            extract_best(egraph, root, hardboiled_cost_model())
        )
        a = Interpreter({"A": buf}).eval_vector(wrapped, {})
        b = Interpreter({"A": buf}).eval_vector(best, {})
        np.testing.assert_array_equal(a, b)


# -- runtime invariants --------------------------------------------------------


_PROPERTY_PIPELINES = {}


def _conv1d_pipeline():
    """One compiled conv1d/tensor app shared across property examples
    (equality saturation is too slow to re-run per example)."""
    if "conv1d" not in _PROPERTY_PIPELINES:
        from repro.apps import conv1d

        app = conv1d.build("tensor", taps=16, rows=1)
        app.backend = "compile"
        _PROPERTY_PIPELINES["conv1d"] = (app, app.compile())
    return _PROPERTY_PIPELINES["conv1d"]


class TestArenaReuseSoundness:
    """Recycled arena buffers and memoized operands must be invisible:
    any sequence of requests through one plan produces the exact bytes
    a fresh arena-less run produces."""

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.integers(0, 2**16), min_size=1, max_size=5))
    def test_plan_sequence_matches_fresh_runs(self, seeds):
        app, pipe = _conv1d_pipeline()
        plan = pipe.plan()
        params = list(app.inputs.items())
        for seed in seeds:
            rng = np.random.default_rng(seed)
            request = {
                params[0][0].name: rng.standard_normal(
                    params[0][1].shape
                ).astype(np.float32),
                params[1][0].name: params[1][1],
            }
            np.testing.assert_array_equal(
                plan.run(request), pipe.run(request)
            )


class TestFromNumpyZeroCopyPredicate:
    """``Buffer.from_numpy`` wraps zero-copy exactly when no copy is
    forced: C-contiguous source, matching storage dtype, not bf16."""

    @settings(max_examples=60, deadline=None)
    @given(
        source=st.sampled_from(["f4", "f8", "i4"]),
        target=st.sampled_from(["f32", "bf16", "i32", None]),
        contiguous=st.booleans(),
        seed=st.integers(0, 99),
    )
    def test_sharing_matches_reference_predicate(
        self, source, target, contiguous, seed
    ):
        rng = np.random.default_rng(seed)
        array = (rng.standard_normal(32) * 10).astype(source)
        if not contiguous:
            array = array[::2]
        dtype = {
            "f32": Float(32), "bf16": BFloat(16), "i32": Int(32), None: None
        }[target]
        if dtype is None and source == "f8":
            storage = np.float64
        elif dtype is None:
            storage = array.dtype.type
        else:
            storage = dtype.to_numpy()
        buf = Buffer.from_numpy("A", array, dtype=dtype)
        expect_share = (
            contiguous
            and array.dtype == np.dtype(storage)
            and target != "bf16"
        )
        assert np.shares_memory(buf.data, array) == expect_share
        # and regardless of sharing, the contents agree (bf16 rounds)
        if target != "bf16":
            np.testing.assert_array_equal(
                buf.data, array.astype(storage).ravel()
            )


class TestShuffleMemoIsolation:
    """The arena's shuffle-operand memo keys on weight *values*: two
    requests with different weights must never share a memo entry, and
    each must match its own fresh arena-less run bit for bit."""

    @settings(max_examples=8, deadline=None)
    @given(seed_a=st.integers(0, 2**16), seed_b=st.integers(0, 2**16))
    def test_distinct_weights_never_alias(self, seed_a, seed_b):
        app, pipe = _conv1d_pipeline()
        plan = pipe.plan()
        params = list(app.inputs.items())
        image = params[0][1]
        weights_shape = params[1][1].shape
        request_a = {
            params[0][0].name: image,
            params[1][0].name: np.random.default_rng(seed_a)
            .standard_normal(weights_shape)
            .astype(np.float32),
        }
        request_b = {
            params[0][0].name: image,
            params[1][0].name: np.random.default_rng(seed_b)
            .standard_normal(weights_shape)
            .astype(np.float32),
        }
        out_a = plan.run(request_a).copy()
        out_b = plan.run(request_b)
        # each sequenced run matches its own fresh, memo-less run
        np.testing.assert_array_equal(out_a, pipe.run(request_a))
        np.testing.assert_array_equal(out_b, pipe.run(request_b))
        if not np.array_equal(
            request_a[params[1][0].name], request_b[params[1][0].name]
        ):
            assert not np.array_equal(out_a, out_b)
