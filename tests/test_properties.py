"""Cross-cutting property tests on the compiler's semantic invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eqsat import EGraph, extract_best, run_phased
from repro.hardboiled import (
    axiomatic_rules,
    decode_expr,
    encode_expr,
    hardboiled_cost_model,
    supporting_rules,
)
from repro.hardboiled.encode import Encoder
from repro.ir import (
    Add,
    Broadcast,
    Cast,
    Float,
    IntImm,
    Load,
    Mul,
    Ramp,
    Variable,
    print_expr,
)
from repro.lowering.simplify import simplify_expr
from repro.runtime import Buffer, Interpreter


# -- strategies ---------------------------------------------------------------


@st.composite
def index_vectors(draw, max_lanes=64):
    """Random nested Ramp/Broadcast/arith integer index expressions."""

    def go(depth, lanes_budget):
        choices = ["imm", "ramp", "broadcast"]
        if depth > 0:
            choices += ["add", "mul_const"]
        kind = draw(st.sampled_from(choices))
        if kind == "imm" or depth > 3:
            return IntImm(draw(st.integers(0, 7)))
        if kind == "ramp":
            base = go(depth + 1, lanes_budget // 2)
            count = draw(st.sampled_from([2, 4]))
            if base.type.lanes * count > lanes_budget:
                return IntImm(draw(st.integers(0, 7)))
            stride_value = draw(st.integers(0, 3))
            from repro.ir.builders import const

            return Ramp(base, const(stride_value, base.type), count)
        if kind == "broadcast":
            value = go(depth + 1, lanes_budget // 2)
            count = draw(st.sampled_from([2, 4]))
            if value.type.lanes * count > lanes_budget:
                return IntImm(draw(st.integers(0, 7)))
            return Broadcast(value, count)
        if kind == "add":
            a = go(depth + 1, lanes_budget)
            b = go(depth + 1, lanes_budget)
            if a.type.lanes != b.type.lanes:
                if a.type.lanes == 1:
                    a = Broadcast(a, b.type.lanes)
                elif b.type.lanes == 1:
                    b = Broadcast(b, a.type.lanes)
                else:
                    return a
            return Add(a, b)
        # mul by constant
        a = go(depth + 1, lanes_budget)
        from repro.ir.builders import const

        return Mul(a, const(draw(st.integers(1, 3)), a.type))

    return go(0, max_lanes)


def evaluate(expr):
    return np.atleast_1d(
        np.asarray(Interpreter({}).eval_expr(expr, {}))
    )


class TestSimplifierSoundness:
    @settings(max_examples=80, deadline=None)
    @given(index_vectors())
    def test_simplify_preserves_semantics(self, expr):
        before = evaluate(expr)
        after = evaluate(simplify_expr(expr))
        np.testing.assert_array_equal(before, after)


class TestAxiomSoundness:
    """EqSat axioms + extraction must preserve evaluation semantics."""

    @settings(max_examples=40, deadline=None)
    @given(index_vectors(max_lanes=32))
    def test_axioms_preserve_semantics(self, expr):
        egraph = EGraph()
        root = Encoder(egraph).expr(expr)
        ax, _ = axiomatic_rules()
        sup, _ = supporting_rules()
        run_phased(egraph, list(ax), list(sup), iterations=4)
        best = extract_best(egraph, root, hardboiled_cost_model())
        decoded = decode_expr(best)
        np.testing.assert_array_equal(evaluate(expr), evaluate(decoded))

    @settings(max_examples=40, deadline=None)
    @given(index_vectors(max_lanes=32))
    def test_encode_decode_roundtrip(self, expr):
        assert decode_expr(encode_expr(expr)) == expr


class TestLoadSemantics:
    @settings(max_examples=30, deadline=None)
    @given(index_vectors(max_lanes=32), st.integers(0, 99))
    def test_axioms_preserve_load_semantics(self, idx, seed):
        """Broadcast-push-into-load etc. must not change gathered data."""
        rng = np.random.default_rng(seed)
        data = rng.standard_normal(512).astype(np.float32)
        buf = Buffer.from_numpy("A", data)
        lanes = idx.type.lanes
        load = Load(Float(32, lanes), "A", idx)
        wrapped = Broadcast(load, 2)

        egraph = EGraph()
        root = Encoder(egraph).expr(wrapped)
        ax, _ = axiomatic_rules()
        sup, _ = supporting_rules()
        run_phased(egraph, list(ax), list(sup), iterations=4)
        best = decode_expr(
            extract_best(egraph, root, hardboiled_cost_model())
        )
        a = Interpreter({"A": buf}).eval_vector(wrapped, {})
        b = Interpreter({"A": buf}).eval_vector(best, {})
        np.testing.assert_array_equal(a, b)
