"""Cross-cutting property tests on the compiler's semantic invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eqsat import EGraph, extract_best, run_phased
from repro.hardboiled import (
    axiomatic_rules,
    decode_expr,
    encode_expr,
    hardboiled_cost_model,
    supporting_rules,
)
from repro.hardboiled.encode import Encoder
from repro.ir import (
    Add,
    Broadcast,
    Cast,
    Float,
    IntImm,
    Load,
    Mul,
    Ramp,
    Variable,
    print_expr,
)
from repro.ir.types import BFloat, Int
from repro.lowering.simplify import simplify_expr
from repro.runtime import Buffer, Interpreter


# -- strategies ---------------------------------------------------------------


@st.composite
def index_vectors(draw, max_lanes=64):
    """Random nested Ramp/Broadcast/arith integer index expressions."""

    def go(depth, lanes_budget):
        choices = ["imm", "ramp", "broadcast"]
        if depth > 0:
            choices += ["add", "mul_const"]
        kind = draw(st.sampled_from(choices))
        if kind == "imm" or depth > 3:
            return IntImm(draw(st.integers(0, 7)))
        if kind == "ramp":
            base = go(depth + 1, lanes_budget // 2)
            count = draw(st.sampled_from([2, 4]))
            if base.type.lanes * count > lanes_budget:
                return IntImm(draw(st.integers(0, 7)))
            stride_value = draw(st.integers(0, 3))
            from repro.ir.builders import const

            return Ramp(base, const(stride_value, base.type), count)
        if kind == "broadcast":
            value = go(depth + 1, lanes_budget // 2)
            count = draw(st.sampled_from([2, 4]))
            if value.type.lanes * count > lanes_budget:
                return IntImm(draw(st.integers(0, 7)))
            return Broadcast(value, count)
        if kind == "add":
            a = go(depth + 1, lanes_budget)
            b = go(depth + 1, lanes_budget)
            if a.type.lanes != b.type.lanes:
                if a.type.lanes == 1:
                    a = Broadcast(a, b.type.lanes)
                elif b.type.lanes == 1:
                    b = Broadcast(b, a.type.lanes)
                else:
                    return a
            return Add(a, b)
        # mul by constant
        a = go(depth + 1, lanes_budget)
        from repro.ir.builders import const

        return Mul(a, const(draw(st.integers(1, 3)), a.type))

    return go(0, max_lanes)


def evaluate(expr):
    return np.atleast_1d(
        np.asarray(Interpreter({}).eval_expr(expr, {}))
    )


class TestSimplifierSoundness:
    @settings(max_examples=80, deadline=None)
    @given(index_vectors())
    def test_simplify_preserves_semantics(self, expr):
        before = evaluate(expr)
        after = evaluate(simplify_expr(expr))
        np.testing.assert_array_equal(before, after)


class TestAxiomSoundness:
    """EqSat axioms + extraction must preserve evaluation semantics."""

    @settings(max_examples=40, deadline=None)
    @given(index_vectors(max_lanes=32))
    def test_axioms_preserve_semantics(self, expr):
        egraph = EGraph()
        root = Encoder(egraph).expr(expr)
        ax, _ = axiomatic_rules()
        sup, _ = supporting_rules()
        run_phased(egraph, list(ax), list(sup), iterations=4)
        best = extract_best(egraph, root, hardboiled_cost_model())
        decoded = decode_expr(best)
        np.testing.assert_array_equal(evaluate(expr), evaluate(decoded))

    @settings(max_examples=40, deadline=None)
    @given(index_vectors(max_lanes=32))
    def test_encode_decode_roundtrip(self, expr):
        assert decode_expr(encode_expr(expr)) == expr


class TestLoadSemantics:
    @settings(max_examples=30, deadline=None)
    @given(index_vectors(max_lanes=32), st.integers(0, 99))
    def test_axioms_preserve_load_semantics(self, idx, seed):
        """Broadcast-push-into-load etc. must not change gathered data."""
        rng = np.random.default_rng(seed)
        data = rng.standard_normal(512).astype(np.float32)
        buf = Buffer.from_numpy("A", data)
        lanes = idx.type.lanes
        load = Load(Float(32, lanes), "A", idx)
        wrapped = Broadcast(load, 2)

        egraph = EGraph()
        root = Encoder(egraph).expr(wrapped)
        ax, _ = axiomatic_rules()
        sup, _ = supporting_rules()
        run_phased(egraph, list(ax), list(sup), iterations=4)
        best = decode_expr(
            extract_best(egraph, root, hardboiled_cost_model())
        )
        a = Interpreter({"A": buf}).eval_vector(wrapped, {})
        b = Interpreter({"A": buf}).eval_vector(best, {})
        np.testing.assert_array_equal(a, b)


# -- runtime invariants --------------------------------------------------------


_PROPERTY_PIPELINES = {}


def _conv1d_pipeline():
    """One compiled conv1d/tensor app shared across property examples
    (equality saturation is too slow to re-run per example)."""
    if "conv1d" not in _PROPERTY_PIPELINES:
        from repro.apps import conv1d

        app = conv1d.build("tensor", taps=16, rows=1)
        app.backend = "compile"
        _PROPERTY_PIPELINES["conv1d"] = (app, app.compile())
    return _PROPERTY_PIPELINES["conv1d"]


class TestArenaReuseSoundness:
    """Recycled arena buffers and memoized operands must be invisible:
    any sequence of requests through one plan produces the exact bytes
    a fresh arena-less run produces."""

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.integers(0, 2**16), min_size=1, max_size=5))
    def test_plan_sequence_matches_fresh_runs(self, seeds):
        app, pipe = _conv1d_pipeline()
        plan = pipe.plan()
        params = list(app.inputs.items())
        for seed in seeds:
            rng = np.random.default_rng(seed)
            request = {
                params[0][0].name: rng.standard_normal(
                    params[0][1].shape
                ).astype(np.float32),
                params[1][0].name: params[1][1],
            }
            np.testing.assert_array_equal(
                plan.run(request), pipe.run(request)
            )


class TestFromNumpyZeroCopyPredicate:
    """``Buffer.from_numpy`` wraps zero-copy exactly when no copy is
    forced: C-contiguous source, matching storage dtype, not bf16."""

    @settings(max_examples=60, deadline=None)
    @given(
        source=st.sampled_from(["f4", "f8", "i4"]),
        target=st.sampled_from(["f32", "bf16", "i32", None]),
        contiguous=st.booleans(),
        seed=st.integers(0, 99),
    )
    def test_sharing_matches_reference_predicate(
        self, source, target, contiguous, seed
    ):
        rng = np.random.default_rng(seed)
        array = (rng.standard_normal(32) * 10).astype(source)
        if not contiguous:
            array = array[::2]
        dtype = {
            "f32": Float(32), "bf16": BFloat(16), "i32": Int(32), None: None
        }[target]
        if dtype is None and source == "f8":
            storage = np.float64
        elif dtype is None:
            storage = array.dtype.type
        else:
            storage = dtype.to_numpy()
        buf = Buffer.from_numpy("A", array, dtype=dtype)
        expect_share = (
            contiguous
            and array.dtype == np.dtype(storage)
            and target != "bf16"
        )
        assert np.shares_memory(buf.data, array) == expect_share
        # and regardless of sharing, the contents agree (bf16 rounds)
        if target != "bf16":
            np.testing.assert_array_equal(
                buf.data, array.astype(storage).ravel()
            )


class TestShmRingProtocol:
    """Seqlock slot handoff on the shared-memory ring: any writer/
    reader interleaving delivers exact bytes in FIFO order, slot
    exhaustion is backpressure (never an overwrite), wraparound is
    invisible, and a torn or corrupted frame is rejected — never
    silently served."""

    @settings(max_examples=25, deadline=None)
    @given(
        ops=st.lists(st.sampled_from(["write", "read"]), max_size=60),
        slots=st.integers(1, 4),
        seed=st.integers(0, 999),
    )
    def test_random_interleavings_deliver_exact_fifo_bytes(
        self, ops, slots, seed
    ):
        from repro.service.shm import ShmRing

        rng = np.random.default_rng(seed)
        ring = ShmRing.create(slots=slots, slot_bytes=256)
        try:
            published = []  # (slot, payload) in publish order
            writes = 0
            for op in ops:
                if op == "write":
                    slot = ring.try_claim()
                    if slot is None:
                        # backpressure exactly when every slot is held
                        assert len(published) >= 0
                        assert ring.stats()["full_events"] >= 1
                        continue
                    length = int(rng.integers(1, ring.slot_bytes + 1))
                    payload = rng.integers(
                        0, 256, length, dtype=np.uint8
                    )
                    ring.payload(slot)[:length] = payload
                    ring.publish(slot, length)
                    published.append((slot, payload))
                    writes += 1
                elif published:
                    slot, payload = published.pop(0)
                    view = ring.read(slot)
                    np.testing.assert_array_equal(view, payload)
                    del view  # zero-copy: release only after last use
                    ring.release(slot)
            # drain: everything still published reads back intact
            for slot, payload in published:
                np.testing.assert_array_equal(ring.read(slot), payload)
                ring.release(slot)
            assert ring.stats()["writes"] == writes
            assert ring.stats()["corruptions"] == 0
        finally:
            ring.destroy()

    @settings(max_examples=15, deadline=None)
    @given(slots=st.integers(1, 3))
    def test_slot_exhaustion_backpressures_until_release(self, slots):
        from repro.service.shm import ShmRing

        ring = ShmRing.create(slots=slots, slot_bytes=64)
        try:
            claimed = [ring.try_claim() for _ in range(slots)]
            assert None not in claimed
            assert ring.try_claim() is None  # full: backpressure
            for slot in claimed:
                ring.publish(slot, 8)
            assert ring.try_claim() is None  # READY still occupies
            ring.read(claimed[0])
            assert ring.try_claim() is None  # READING still occupies
            ring.release(claimed[0])
            assert ring.try_claim() == claimed[0]  # freed slot reusable
        finally:
            ring.destroy()

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 999), offset=st.integers(0, 63))
    def test_checksummed_frames_reject_corruption(self, seed, offset):
        from repro.service.shm import ShmCorruption, ShmRing

        rng = np.random.default_rng(seed)
        ring = ShmRing.create(slots=2, slot_bytes=64)
        try:
            slot = ring.try_claim()
            payload = rng.integers(0, 256, 64, dtype=np.uint8)
            ring.payload(slot)[:] = payload
            ring.publish(slot, 64)
            # scribble over the published frame behind the seqlock
            ring.payload(slot)[offset] ^= 0xFF
            with np.testing.assert_raises(ShmCorruption):
                ring.read(slot)
            assert ring.stats()["corruptions"] == 1
        finally:
            ring.destroy()

    def test_reader_crash_mid_slot_is_reclaimed(self):
        """A reader that dies between ``read`` and ``release`` (here:
        an injected fault at the ``shm.read`` seam) strands its slot;
        the writer's ``reclaim`` frees every stranded slot so the ring
        survives the reader's replacement."""
        from repro.service import faults
        from repro.service.faults import FaultPlan, FaultSpec
        from repro.service.shm import ShmRing

        ring = ShmRing.create(slots=2, slot_bytes=64)
        try:
            for slot in (0, 1):
                claimed = ring.try_claim()
                ring.payload(claimed)[:8] = np.arange(8, dtype=np.uint8)
                ring.publish(claimed, 8)
            plan = FaultPlan(
                specs=[
                    FaultSpec(
                        "raise-in-kernel", site="shm.read", visits=(0,)
                    )
                ]
            )
            with faults.active(plan):
                with np.testing.assert_raises(Exception):
                    ring.read(0)  # the reader "crashes" mid-slot
            ring.read(1)  # second slot held in READING, never released
            assert ring.try_claim() is None  # both slots stranded
            assert ring.reclaim() == 2
            assert ring.try_claim() is not None
            assert ring.stats()["reclaims"] == 2
        finally:
            ring.destroy()

    def test_corrupt_shm_slot_fault_kind_is_rejected_by_checksum(self):
        """The ``corrupt-shm-slot`` FaultPlan kind flips bytes of the
        mapped frame between the seqlock check and the CRC check —
        checksummed rings must reject it, and a checksum-free ring
        documents why the CRC is on by default (garbage is served)."""
        from repro.service import faults
        from repro.service.faults import FaultPlan, FaultSpec
        from repro.service.shm import ShmCorruption, ShmRing

        payload = np.arange(64, dtype=np.uint8)
        plan = FaultPlan(
            seed=9, specs=[FaultSpec("corrupt-shm-slot", visits=(0,))]
        )
        ring = ShmRing.create(slots=2, slot_bytes=64, checksum=True)
        try:
            slot = ring.try_claim()
            ring.payload(slot)[:] = payload
            ring.publish(slot, 64)
            with faults.active(plan):
                with np.testing.assert_raises(ShmCorruption):
                    ring.read(slot)
            ring.release(slot)
            # a fresh frame (the retry) reads back exactly
            slot = ring.try_claim()
            ring.payload(slot)[:] = payload
            ring.publish(slot, 64)
            np.testing.assert_array_equal(ring.read(slot), payload)
            ring.release(slot)
        finally:
            ring.destroy()
        unchecked = ShmRing.create(slots=2, slot_bytes=64, checksum=False)
        try:
            slot = unchecked.try_claim()
            unchecked.payload(slot)[:] = payload
            unchecked.publish(slot, 64)
            with faults.active(
                FaultPlan(
                    seed=9,
                    specs=[FaultSpec("corrupt-shm-slot", visits=(0,))],
                )
            ):
                served = unchecked.read(slot).copy()
            assert not np.array_equal(served, payload)  # garbage served
        finally:
            unchecked.destroy()


class TestFrameCodecRoundtrip:
    """The tensor frame codec: any batch of name->array dicts survives
    plan/write/read bit for bit, shared arrays stay *one* tensor in
    the frame and come back as one shared view object, and traffic the
    codec cannot carry is declined (pipe fallback), never mangled."""

    _DTYPES = ["<f4", "<f8", "<i4", "<i8", "<u1"]

    @settings(max_examples=25, deadline=None)
    @given(
        batch=st.integers(1, 5),
        names=st.integers(1, 3),
        dtype=st.sampled_from(_DTYPES),
        share=st.booleans(),
        seed=st.integers(0, 999),
    )
    def test_plan_write_read_roundtrip(
        self, batch, names, dtype, share, seed
    ):
        from repro.service.shm import (
            ShmRing,
            plan_frame,
            read_frame,
            write_frame,
        )

        rng = np.random.default_rng(seed)
        shared = (rng.standard_normal(6) * 10).astype(dtype)
        requests = []
        for _ in range(batch):
            request = {}
            for position in range(names):
                if share and position == names - 1:
                    request[f"t{position}"] = shared  # same object
                else:
                    request[f"t{position}"] = (
                        rng.standard_normal((2, 3)) * 10
                    ).astype(dtype)
            requests.append(request)
        plan = plan_frame(requests)
        assert plan is not None
        if share and batch > 1:
            # the shared array is stored once, not ``batch`` times
            assert len(plan.sources) < batch * names + 1
        ring = ShmRing.create(slots=2, slot_bytes=max(plan.length, 64))
        try:
            slot = write_frame(ring, plan)
            assert slot is not None
            unpacked = read_frame(ring, slot, plan.meta)
            assert len(unpacked) == batch
            for original, roundtrip in zip(requests, unpacked):
                for name, array in original.items():
                    np.testing.assert_array_equal(
                        roundtrip[name], array
                    )
                    assert not roundtrip[name].flags.writeable
            if share and batch > 1:
                first = unpacked[0][f"t{names - 1}"]
                assert all(
                    request[f"t{names - 1}"] is first
                    for request in unpacked
                )
                del first
            del unpacked  # zero-copy views must die before destroy()
        finally:
            ring.destroy()

    def test_unfit_traffic_is_declined_not_mangled(self):
        from repro.service.shm import ShmRing, plan_frame, write_frame

        assert plan_frame([None]) is None  # not a dict
        assert plan_frame([{1: np.zeros(2)}]) is None  # non-str key
        assert plan_frame([{"x": "nope"}]) is None  # not an array
        assert (
            plan_frame([{"x": np.array([object()])}]) is None
        )  # object dtype
        oversized = plan_frame([{"x": np.zeros(1024, dtype=np.uint8)}])
        assert oversized is not None
        ring = ShmRing.create(slots=1, slot_bytes=64)
        try:
            assert write_frame(ring, oversized) is None  # too big
            small = plan_frame([{"x": np.zeros(8, dtype=np.uint8)}])
            assert write_frame(ring, small) is not None
            assert write_frame(ring, small) is None  # ring full
        finally:
            ring.destroy()


class TestShuffleMemoIsolation:
    """The arena's shuffle-operand memo keys on weight *values*: two
    requests with different weights must never share a memo entry, and
    each must match its own fresh arena-less run bit for bit."""

    @settings(max_examples=8, deadline=None)
    @given(seed_a=st.integers(0, 2**16), seed_b=st.integers(0, 2**16))
    def test_distinct_weights_never_alias(self, seed_a, seed_b):
        app, pipe = _conv1d_pipeline()
        plan = pipe.plan()
        params = list(app.inputs.items())
        image = params[0][1]
        weights_shape = params[1][1].shape
        request_a = {
            params[0][0].name: image,
            params[1][0].name: np.random.default_rng(seed_a)
            .standard_normal(weights_shape)
            .astype(np.float32),
        }
        request_b = {
            params[0][0].name: image,
            params[1][0].name: np.random.default_rng(seed_b)
            .standard_normal(weights_shape)
            .astype(np.float32),
        }
        out_a = plan.run(request_a).copy()
        out_b = plan.run(request_b)
        # each sequenced run matches its own fresh, memo-less run
        np.testing.assert_array_equal(out_a, pipe.run(request_a))
        np.testing.assert_array_equal(out_b, pipe.run(request_b))
        if not np.array_equal(
            request_a[params[1][0].name], request_b[params[1][0].name]
        ):
            assert not np.array_equal(out_a, out_b)
