"""Tests for rules, matching, guards, extraction, and schedules."""


from repro.eqsat import (
    CostModel,
    EGraph,
    GuardAtom,
    I,
    PApp,
    PLit,
    PVar,
    RelAtom,
    Rule,
    Sym,
    T,
    TermAtom,
    UnionAction,
    FactAction,
    LetAction,
    Term,
    extract_best,
    find_matches,
    Matcher,
    parse_program,
    parse_pattern,
    rewrite,
    run_phased,
    run_rules,
    saturate,
)


def pat(text: str):
    from repro.eqsat.sexpr import parse_one

    return parse_pattern(parse_one(text))


class TestMatching:
    def test_simple_match(self):
        eg = EGraph()
        eg.add_term(T("Add", I(1), I(2)))
        rule = rewrite("comm", pat("(Add x y)"), pat("(Add y x)"))
        matches = find_matches(Matcher(eg), rule)
        assert len(matches) == 1

    def test_literal_pattern_filters(self):
        eg = EGraph()
        eg.add_term(T("Mul", Sym("a"), I(2)))
        eg.add_term(T("Mul", Sym("a"), I(3)))
        rule = rewrite("times2", pat("(Mul x 2)"), pat("x"))
        assert len(find_matches(Matcher(eg), rule)) == 1

    def test_nonlinear_pattern(self):
        eg = EGraph()
        eg.add_term(T("Div", Sym("a"), Sym("a")))
        eg.add_term(T("Div", Sym("a"), Sym("b")))
        rule = rewrite("self_div", pat("(Div x x)"), pat("x"))
        assert len(find_matches(Matcher(eg), rule)) == 1

    def test_nested_pattern(self):
        eg = EGraph()
        eg.add_term(T("Div", T("Mul", Sym("a"), I(2)), I(2)))
        rule = rewrite(
            "assoc", pat("(Div (Mul a n) n)"), pat("(Mul a (Div n n))")
        )
        assert len(find_matches(Matcher(eg), rule)) == 1


class TestGuards:
    def test_comparison_guard(self):
        eg = EGraph()
        eg.add_term(T("Broadcast", Sym("v"), I(8)))
        eg.add_term(T("Broadcast", Sym("w"), I(1)))
        rule = rewrite(
            "wide_only",
            pat("(Broadcast v l)"),
            pat("(Wide v l)"),
            when=[GuardAtom(">", (PVar("l"), PLit("i64", 1)))],
        )
        assert len(find_matches(Matcher(eg), rule)) == 1

    def test_modulo_guard(self):
        eg = EGraph()
        eg.add_term(T("Pair", I(12), I(4)))
        eg.add_term(T("Pair", I(12), I(5)))
        rule = Rule(
            "divisible",
            [
                TermAtom("e", pat("(Pair a b)")),
                GuardAtom("=", (PLit("i64", 0), pat("(% a b)"))),
            ],
            [UnionAction(PVar("e"), pat("(Divisible a b)"))],
        )
        assert len(find_matches(Matcher(EGraph()), rule)) == 0
        assert len(find_matches(Matcher(eg), rule)) == 1

    def test_binding_guard_computes_literal(self):
        # (= product (* a b)) with product unbound binds it to a*b
        eg = EGraph()
        eg.add_term(T("Pair", I(6), I(7)))
        rule = Rule(
            "compute",
            [
                TermAtom("e", pat("(Pair a b)")),
                GuardAtom("=", (PVar("product"), pat("(* a b)"))),
            ],
            [UnionAction(PVar("e"), pat("(Product product)"))],
        )
        run_rules(eg, [rule])
        assert eg.lookup_term(T("Product", I(42))) is not None


class TestRelations:
    def test_relation_atom_and_fact_action(self):
        eg = EGraph()
        a = eg.add_term(Sym("a"))
        eg.assert_fact("is-matrix", (a,))
        rule = Rule(
            "tag",
            [RelAtom("is-matrix", (PVar("m"),))],
            [FactAction("tagged", (PVar("m"),))],
        )
        run_rules(eg, [rule])
        assert (eg.find(a),) in eg.facts("tagged")

    def test_datalog_transitivity(self):
        eg = EGraph()
        a, b, c = (eg.add_term(Sym(s)) for s in "abc")
        eg.assert_fact("edge", (a, b))
        eg.assert_fact("edge", (b, c))
        trans = Rule(
            "trans",
            [RelAtom("edge", (PVar("x"), PVar("y"))),
             RelAtom("edge", (PVar("y"), PVar("z")))],
            [FactAction("edge", (PVar("x"), PVar("z")))],
        )
        saturate(eg, [trans])
        assert (eg.find(a), eg.find(c)) in eg.facts("edge")


class TestEqSatEndToEnd:
    def test_figure1_mul_div_cancel(self):
        """The paper's Fig. 1: (a*2)/2 becomes a."""
        eg = EGraph()
        root = eg.add_term(T("Div", T("Mul", Sym("a"), I(2)), I(2)))
        a = eg.add_term(Sym("a"))
        rules = [
            rewrite("reassoc", pat("(Div (Mul x n) m)"),
                    pat("(Mul x (Div n m))")),
            rewrite("div-self", pat("(Div n n)"), pat("1")),
            rewrite("mul-one", pat("(Mul x 1)"), pat("x")),
        ]
        saturate(eg, rules)
        assert eg.equivalent(root, a)
        best = extract_best(eg, root)
        assert best == Sym("a")

    def test_commutativity_no_blowup(self):
        eg = EGraph()
        root = eg.add_term(T("Add", Sym("a"), T("Add", Sym("b"), Sym("c"))))
        stats = saturate(eg, [rewrite("comm", pat("(Add x y)"), pat("(Add y x)"))])
        assert stats.saturated
        # commutativity only doubles the node count, never explodes
        assert eg.num_nodes() < 20

    def test_extraction_prefers_smaller(self):
        eg = EGraph()
        big = eg.add_term(T("Add", T("Mul", Sym("a"), I(1)), I(0)))
        small = eg.add_term(Sym("a"))
        eg.union(big, small)
        eg.rebuild()
        assert extract_best(eg, big) == Sym("a")

    def test_custom_cost_prefers_intrinsic(self):
        eg = EGraph()
        naive = eg.add_term(
            T("VectorReduceAdd", I(512), T("Mul", Sym("lhs"), Sym("rhs")))
        )
        tile = eg.add_term(T("Call", Sym("tile_matmul"), Sym("args")))
        eg.union(naive, tile)
        eg.rebuild()
        best = extract_best(eg, naive, CostModel())
        assert best.head == "Call"


class TestParseProgram:
    def test_parse_rewrite_roundtrip(self):
        rules, relations = parse_program(
            """
            (rewrite (Broadcast (Broadcast x l1) l2)
                     (Broadcast x (* l1 l2)))
            """
        )
        assert len(rules) == 1
        eg = EGraph()
        root = eg.add_term(
            T("Broadcast", T("Broadcast", Sym("v"), I(4)), I(8))
        )
        flat = eg.add_term(T("Broadcast", Sym("v"), I(32)))
        saturate(eg, rules)
        assert eg.equivalent(root, flat)

    def test_parse_rule_with_relation(self):
        rules, relations = parse_program(
            """
            (relation has-type (Expr Type))
            (rule ((= e (FloatImm v)))
                  ((has-type e (Float32 1))))
            """
        )
        assert "has-type" in relations
        eg = EGraph()
        imm = eg.add_term(T("FloatImm", Term(("f64", 0.5))))
        run_rules(eg, rules)
        assert len(eg.facts("has-type")) == 1

    def test_parse_when_condition(self):
        rules, _ = parse_program(
            """
            (rewrite (Ramp e 1 l)
                     (Ramp (Ramp e 1 2) (Broadcast 2 2) (/ l 2))
                     :when ((= 0 (% l 2)) (> l 2)))
            """
        )
        eg = EGraph()
        ok = eg.add_term(T("Ramp", Sym("e"), I(1), I(8)))
        bad = eg.add_term(T("Ramp", Sym("f"), I(1), I(7)))
        run_rules(eg, rules)
        nested = eg.lookup_term(
            T("Ramp", T("Ramp", Sym("e"), I(1), I(2)),
              T("Broadcast", I(2), I(2)), I(4))
        )
        assert nested is not None and eg.equivalent(ok, nested)
        # the odd-lane ramp must not have been rewritten
        assert len(eg.nodes_of(bad)) == 1

    def test_paper_type_derivation_rule(self):
        """The App/Arrow type-derivation rule from §II-D."""
        rules, _ = parse_program(
            """
            (relation has-type (Expr Type))
            (rule ((= e (App e1 e2))
                   (has-type e1 (Arrow t1 t2))
                   (has-type e2 t1))
                  ((has-type e t2)))
            """
        )
        eg = EGraph()
        f, x = eg.add_term(Sym("f")), eg.add_term(Sym("x"))
        app = eg.add_term(T("App", Sym("f"), Sym("x")))
        int_t = eg.add_term(T("Int"))
        bool_t = eg.add_term(T("Bool"))
        arrow = eg.add_term(T("Arrow", T("Int"), T("Bool")))
        eg.assert_fact("has-type", (f, arrow))
        eg.assert_fact("has-type", (x, int_t))
        saturate(eg, rules)
        assert (eg.find(app), eg.find(bool_t)) in eg.facts("has-type")


class TestPhasedSchedule:
    def test_supporting_saturates_between_main(self):
        # supporting rule derives types; main rule needs them
        supporting, relations = parse_program(
            """
            (relation has-lanes (Expr i64))
            (rule ((= e (Broadcast x l))) ((has-lanes e l)))
            """
        )
        main = [
            Rule(
                "widen",
                [
                    TermAtom("e", pat("(Broadcast x l)")),
                    RelAtom("has-lanes", (PVar("e"), PVar("l"))),
                ],
                [UnionAction(PVar("e"), pat("(Wide x l)"))],
            )
        ]
        eg = EGraph()
        root = eg.add_term(T("Broadcast", Sym("v"), I(16)))
        stats = run_phased(eg, main, supporting, iterations=3)
        wide = eg.lookup_term(T("Wide", Sym("v"), I(16)))
        assert wide is not None and eg.equivalent(root, wide)
        assert stats.outer_iterations >= 1
