"""Tests for the incremental saturation engine.

Covers the engine mechanics the end-to-end suites only exercise
implicitly: match deduplication, delta-vs-full equivalence, backoff
banning, rebuild congruence repair under chained unions, ``run_phased``
early saturation exit, extraction memoization, and the timing breakdown
counters.
"""

import pytest

from repro.eqsat import (
    BackoffScheduler,
    CostModel,
    EGraph,
    FactAction,
    GuardAtom,
    I,
    Matcher,
    RelAtom,
    Rule,
    RuleEngine,
    Sym,
    T,
    TermAtom,
    UnionAction,
    PVar,
    compute_costs,
    extract_best,
    find_matches,
    parse_pattern,
    parse_program,
    rewrite,
    run_phased,
    run_rules,
    saturate,
)
from repro.eqsat.legacy import (
    LegacyMatcher,
    legacy_find_matches,
    legacy_run_phased,
)
from repro.eqsat.sexpr import parse_one


def pat(text: str):
    return parse_pattern(parse_one(text))


class TestMatchDedup:
    def test_match_anywhere_dedups_same_head_classes(self):
        """A class holding several same-head nodes must not re-yield the
        whole per-class match set once per node (the old behaviour)."""
        eg = EGraph()
        a = eg.add_term(T("Wrap", Sym("a")))
        b = eg.add_term(T("Wrap", Sym("b")))
        eg.union(a, b)
        eg.rebuild()
        # the merged class now holds two Wrap nodes
        assert len(eg.nodes_of(a)) == 2
        matches = list(Matcher(eg).match_anywhere(pat("(Wrap x)"), {}))
        assert len(matches) == len(set(
            (c, tuple(sorted(bs.items()))) for c, bs in matches
        ))
        # the legacy matcher shows the duplicate-yield behaviour
        legacy = list(LegacyMatcher(eg).match_anywhere(pat("(Wrap x)"), {}))
        assert len(legacy) > len(set(
            (c, tuple(sorted(bs.items()))) for c, bs in legacy
        ))

    def test_find_matches_distinct(self):
        eg = EGraph()
        a = eg.add_term(T("Wrap", Sym("a")))
        b = eg.add_term(T("Wrap", Sym("b")))
        eg.union(a, b)
        eg.rebuild()
        rule = rewrite("unwrap", pat("(Wrap x)"), pat("x"))
        found = find_matches(Matcher(eg), rule)
        keys = {tuple(sorted(m.items())) for m in found}
        assert len(found) == len(keys) == 2

    def test_engine_dedups_before_apply(self):
        eg = EGraph()
        a = eg.add_term(T("Wrap", Sym("a")))
        b = eg.add_term(T("Wrap", Sym("b")))
        eg.union(a, b)
        eg.rebuild()
        rule = rewrite("unwrap", pat("(Wrap x)"), pat("x"))
        legacy_found = legacy_find_matches(LegacyMatcher(eg), rule)
        assert len(legacy_found) > 2  # what the old loop would re-apply
        stats = run_rules(eg, [rule])
        assert stats.total_matches == 2


class TestDeltaMatching:
    def _rules(self):
        rules, _ = parse_program(
            """
            (relation has-lanes (Expr i64))
            (rule ((= e (Broadcast x l))) ((has-lanes e l)))
            (rule ((= e (Add a b)) (has-lanes a l)) ((has-lanes e l)))
            """
        )
        return rules

    def test_delta_rounds_reach_the_full_fixpoint(self):
        def build():
            eg = EGraph()
            root = eg.add_term(
                T("Add", T("Broadcast", Sym("v"), I(8)),
                  T("Add", T("Broadcast", Sym("w"), I(8)), Sym("z")))
            )
            return eg, root

        eg_delta, _ = build()
        eg_full, _ = build()
        s_delta = RuleEngine(eg_delta, self._rules()).run(16)
        s_full = RuleEngine(
            eg_full, self._rules(), use_delta=False
        ).run(16)
        assert s_delta.saturated and s_full.saturated
        assert {
            name: {tuple(r) for r in rows}
            for name, rows in eg_delta.relations.items()
        } == {
            name: {tuple(r) for r in rows}
            for name, rows in eg_full.relations.items()
        }
        # later rounds actually ran against the delta index
        assert s_delta.delta_rounds >= 1

    def test_engine_is_persistent_across_runs(self):
        eg = EGraph()
        eg.add_term(T("Broadcast", Sym("v"), I(4)))
        engine = RuleEngine(eg, self._rules())
        first = engine.run(8)
        assert first.saturated and first.total_matches == 1
        # nothing changed: the next run matches nothing and saturates in
        # one (cheap) round instead of re-deriving the old matches
        second = engine.run(8)
        assert second.saturated
        assert second.total_matches == 0
        # new material: only the delta is matched
        eg.add_term(T("Broadcast", Sym("w"), I(2)))
        third = engine.run(8)
        assert third.total_matches == 1

    def test_union_reenables_matching_upward(self):
        """A union deep in a term must re-expose ancestors to delta
        matching (dirty closure walks parent pointers)."""
        eg = EGraph()
        root = eg.add_term(T("Div", Sym("p"), Sym("q")))
        engine = RuleEngine(
            eg, [rewrite("self-div", pat("(Div x x)"), pat("1"))]
        )
        stats = engine.run(4)
        assert stats.total_matches == 0
        eg.union(eg.add_term(Sym("p")), eg.add_term(Sym("q")))
        eg.rebuild()
        stats = engine.run(4)
        assert stats.total_matches == 1
        assert eg.lookup_term(I(1)) == eg.find(root)


class TestBackoff:
    def test_exploding_rule_is_banned_and_recovers(self):
        eg = EGraph()
        for i in range(8):
            eg.add_term(T("Pair", Sym(f"a{i}"), Sym(f"b{i}")))
        swap = rewrite("swap", pat("(Pair x y)"), pat("(Pair y x)"))
        scheduler = BackoffScheduler(match_limit=4, ban_length=2)
        stats = saturate(eg, [swap], max_iterations=32, scheduler=scheduler)
        # the rule exceeded its limit at least once...
        assert stats.banned_rounds.get("swap", 0) >= 1
        # ...but the run still reaches the true fixpoint
        assert stats.saturated
        for i in range(8):
            swapped = eg.lookup_term(T("Pair", Sym(f"b{i}"), Sym(f"a{i}")))
            assert swapped is not None

    def test_scheduler_state(self):
        scheduler = BackoffScheduler(match_limit=2, ban_length=3)
        assert not scheduler.banned(0, 0)
        assert scheduler.record(0, 5, 0)  # 5 > 2: banned
        assert scheduler.banned(0, 1) and scheduler.banned(0, 3)
        assert not scheduler.banned(0, 4)
        # second ban doubles the threshold and the ban length
        assert not scheduler.record(0, 4, 5)  # 4 <= 2<<1
        assert scheduler.record(0, 9, 5)
        scheduler.unban_all()
        assert not scheduler.any_banned(6)


class TestRebuildCongruence:
    def test_chained_unions_repair_parents(self):
        """f(a), f(b), f(c) must all collapse after a ~ b ~ c."""
        eg = EGraph()
        fa = eg.add_term(T("f", Sym("a")))
        fb = eg.add_term(T("f", Sym("b")))
        fc = eg.add_term(T("f", Sym("c")))
        a, b, c = (eg.add_term(Sym(s)) for s in "abc")
        eg.union(a, b)
        eg.union(b, c)
        eg.rebuild()
        assert eg.find(fa) == eg.find(fb) == eg.find(fc)
        # hashcons and the persistent index agree on the canonical node
        assert eg.lookup_term(T("f", Sym("a"))) == eg.find(fc)
        entries = eg.head_entries("f")
        canonical = {
            node.canonicalize(eg.find): eg.find(owner)
            for node, owner in entries.items()
        }
        assert len(canonical) == 1

    def test_congruence_cascades_up_two_levels(self):
        eg = EGraph()
        gfa = eg.add_term(T("g", T("f", Sym("a"))))
        gfb = eg.add_term(T("g", T("f", Sym("b"))))
        eg.union(eg.add_term(Sym("a")), eg.add_term(Sym("b")))
        eg.rebuild()
        assert eg.equivalent(gfa, gfb)

    def test_relation_rows_follow_chained_unions(self):
        eg = EGraph()
        a, b, c = (eg.add_term(Sym(s)) for s in "abc")
        eg.assert_fact("tag", (a,))
        eg.assert_fact("tag", (b,))
        eg.assert_fact("tag", (c,))
        eg.union(a, b)
        eg.union(b, c)
        eg.rebuild()
        assert eg.facts("tag") == {(eg.find(a),)}


class TestRunPhased:
    def test_early_saturation_exit(self):
        supporting, _ = parse_program(
            """
            (relation has-lanes (Expr i64))
            (rule ((= e (Broadcast x l))) ((has-lanes e l)))
            """
        )
        main = [rewrite("bcast1", pat("(Broadcast x 1)"), pat("x"))]
        eg = EGraph()
        eg.add_term(T("Broadcast", Sym("v"), I(1)))
        stats = run_phased(eg, main, supporting, iterations=50)
        # round 1 applies the only rewrite; round 2 changes nothing and
        # the loop exits — nowhere near the iteration budget
        assert stats.saturated
        assert stats.outer_iterations <= 3
        # the final supporting pass runs after the early exit
        assert len(stats.supporting_stats) == stats.outer_iterations + 1

    def test_timing_breakdown_populated(self):
        supporting, _ = parse_program(
            """
            (relation has-lanes (Expr i64))
            (rule ((= e (Broadcast x l))) ((has-lanes e l)))
            """
        )
        main = [rewrite("bcast1", pat("(Broadcast x 1)"), pat("x"))]
        eg = EGraph()
        eg.add_term(T("Broadcast", Sym("v"), I(1)))
        stats = run_phased(eg, main, supporting, iterations=4)
        profile = stats.profile()
        assert profile["total_s"] >= 0
        assert profile["match_s"] > 0
        assert profile["full_rounds"] >= 1
        assert (
            stats.match_seconds + stats.apply_seconds + stats.rebuild_seconds
            <= stats.seconds
        )

    def test_matches_legacy_schedule_results(self):
        def build():
            eg = EGraph()
            root = eg.add_term(
                T("Add", T("Broadcast", T("Broadcast", Sym("v"), I(2)),
                           I(4)),
                  T("Broadcast", I(0), I(8)))
            )
            return eg, root

        rules, _ = parse_program(
            """
            (rewrite (Broadcast (Broadcast x l1) l2)
                     (Broadcast x (* l1 l2)))
            (rewrite (Add x (Broadcast 0 l)) x)
            """
        )
        supporting, _ = parse_program(
            """
            (relation has-lanes (Expr i64))
            (rule ((= e (Broadcast x l))) ((has-lanes e l)))
            """
        )
        eg_new, root_new = build()
        eg_old, root_old = build()
        run_phased(eg_new, rules, supporting, iterations=8)
        legacy_run_phased(eg_old, rules, supporting, iterations=8)
        assert str(extract_best(eg_new, root_new)) == str(
            extract_best(eg_old, root_old)
        )
        assert {n: len(r) for n, r in eg_new.relations.items()} == {
            n: len(r) for n, r in eg_old.relations.items()
        }

    def test_matches_legacy_on_dp4a_rules(self):
        """The int8 rule family (a previously unseen rule set for the
        incremental engine) must drive both engines to identical
        extractions and relations on every store of the quantized GEMM."""
        from repro.apps import matmul
        from repro.hardboiled.cost import hardboiled_cost_model
        from repro.hardboiled.encode import Encoder
        from repro.hardboiled.tile_extractor import TileExtractor, _rules_for
        from repro.ir import Store as IRStore
        from repro.ir.visitor import IRVisitor
        from repro.lowering import lower

        app = matmul.build_int8(tiles=1)
        lowered = lower(app.output)
        extractor = TileExtractor(lowered)
        prepared = []

        class Collect(IRVisitor):
            def visit_Store(self, node: IRStore):
                entry = extractor.prepare_store(node)
                if entry is not None:
                    prepared.append(entry)

        Collect().visit(lowered.stmt)
        assert prepared, "no dp4a stores found in the quantized GEMM"
        model = hardboiled_cost_model()
        extracted = []
        for kind, wrapped in prepared:
            assert kind == "dp4a"
            main_rules, sup_rules = _rules_for(kind)
            eg_new = EGraph()
            root_new = Encoder(eg_new).stmt(wrapped)
            eg_old = EGraph()
            root_old = Encoder(eg_old).stmt(wrapped)
            run_phased(eg_new, list(main_rules), list(sup_rules), iterations=14)
            legacy_run_phased(
                eg_old, list(main_rules), list(sup_rules), iterations=14
            )
            new_term = str(extract_best(eg_new, root_new, model))
            old_term = str(extract_best(eg_old, root_old, model))
            assert new_term == old_term
            extracted.append(new_term)
            assert {n: len(r) for n, r in eg_new.relations.items()} == {
                n: len(r) for n, r in eg_old.relations.items()
            }
        # both engines actually selected the int8 intrinsic somewhere
        assert any("dp4a_matmul" in t for t in extracted)


class TestExtractionMemo:
    def test_costs_cached_until_version_changes(self):
        eg = EGraph()
        root = eg.add_term(T("Add", Sym("a"), Sym("b")))
        model = CostModel()
        first = compute_costs(eg, model)
        assert compute_costs(eg, model) is first  # cache hit
        eg.add_term(Sym("c"))  # version bump
        second = compute_costs(eg, model)
        assert second is not first
        assert extract_best(eg, root, model) == T("Add", Sym("a"), Sym("b"))

    def test_cache_respects_cost_model(self):
        eg = EGraph()
        naive = eg.add_term(T("Big", Sym("x"), Sym("y"), Sym("z")))
        call = eg.add_term(T("Call", Sym("f")))
        eg.union(naive, call)
        eg.rebuild()
        cheap_call = CostModel(base_costs={"Call": 0.1})
        dear_call = CostModel(base_costs={"Call": 100.0})
        assert extract_best(eg, naive, cheap_call).head == "Call"
        assert extract_best(eg, naive, dear_call).head == "Big"

    def test_sparse_fixpoint_matches_reference_costs(self):
        eg = EGraph()
        root = eg.add_term(
            T("Mul", T("Add", I(1), I(2)), T("Add", Sym("a"), I(3)))
        )
        small = eg.add_term(Sym("s"))
        eg.union(root, small)
        eg.rebuild()
        costs = compute_costs(eg)
        # reference: the naive full-sweep fixpoint
        reference = {}
        changed = True
        while changed:
            changed = False
            for cid in list(eg.classes.keys()):
                for node in eg.nodes_of(cid):
                    entries = [reference.get(eg.find(a)) for a in node.args]
                    if any(e is None for e in entries):
                        continue
                    cost = CostModel().node_cost(
                        node, [e[0] for e in entries]
                    )
                    cur = reference.get(cid)
                    if cur is None or cost < cur[0] - 1e-12:
                        reference[cid] = (cost, node)
                        changed = True
        assert {k: v[0] for k, v in costs.items()} == pytest.approx(
            {k: v[0] for k, v in reference.items()}
        )
        assert {k: v[1] for k, v in costs.items()} == {
            k: v[1] for k, v in reference.items()
        }


class TestCompiledPrograms:
    def test_guard_binding_still_binds(self):
        eg = EGraph()
        e = eg.add_term(T("Pair", I(6), I(7)))
        rule = Rule(
            "compute",
            [
                TermAtom("e", pat("(Pair a b)")),
                # (= product (* a b)) binds product to 42
                GuardAtom("=", (PVar("product"), pat("(* a b)"))),
            ],
            [UnionAction(PVar("e"), pat("(Product product)"))],
        )
        run_rules(eg, [rule])
        assert eg.lookup_term(T("Product", I(42))) is not None

    def test_relation_bound_vars_are_not_structural_anchors(self):
        """A later TermAtom anchored on a variable that enters the match
        only through a relation row must force full matching: that
        class has no parent edge to the root, so delta matching would
        drop its matches forever."""
        rule = Rule(
            "via-row",
            [
                TermAtom("e", pat("(F x)")),
                RelAtom("R", (PVar("x"), PVar("y"))),
                TermAtom("y", pat("(G z)")),
            ],
            [UnionAction(PVar("e"), PVar("z"))],
        )
        assert not rule.compiled().delta_safe
        # and the engine consequently keeps finding the late match
        eg = EGraph()
        e = eg.add_term(T("F", Sym("x")))
        y = eg.add_term(Sym("y"))
        eg.assert_fact("R", (eg.add_term(Sym("x")), y))
        engine = RuleEngine(eg, [rule])
        assert engine.run(4).total_matches == 0
        gz = eg.add_term(T("G", Sym("z")))
        eg.union(gz, y)
        eg.rebuild()
        stats = engine.run(4)
        # (the union changes canonical ids, so the match may re-derive
        # under a new dedup key once — what matters is it is found)
        assert stats.total_matches >= 1
        assert eg.equivalent(e, eg.add_term(Sym("z")))

    def test_union_of_row_only_classes_reaches_the_match_root(self):
        """Rows r(x, a) and s(x, b): a union of a and b enables a join
        on the shared row-only variable.  Relation rows create no
        parent edges, so the union must dirty the rows' sibling classes
        (here x) for the delta pass to rediscover the root."""
        rule = Rule(
            "row-join",
            [
                TermAtom("e", pat("(F x)")),
                RelAtom("r", (PVar("x"), PVar("y"))),
                RelAtom("s", (PVar("x"), PVar("y"))),
            ],
            [FactAction("hit", (PVar("e"),))],
        )
        eg = EGraph()
        eg.add_term(T("F", Sym("x")))
        x = eg.add_term(Sym("x"))
        a, b = eg.add_term(Sym("a")), eg.add_term(Sym("b"))
        eg.assert_fact("r", (x, a))
        eg.assert_fact("s", (x, b))
        engine = RuleEngine(eg, [rule])
        assert engine.run(4).total_matches == 0
        eg.union(a, b)
        eg.rebuild()
        stats = engine.run(4)
        assert stats.total_matches == 1
        assert len(eg.facts("hit")) == 1

    def test_engine_rebuilds_pending_unions_at_entry(self):
        """Callers may union without rebuilding (the old loop tolerated
        it); the engine must restore congruence — and the reverse
        relation index its compiled joins read — before matching."""
        rule = Rule(
            "join",
            [TermAtom("e", pat("(F x)")), RelAtom("R", (PVar("x"), PVar("y")))],
            [UnionAction(PVar("e"), PVar("y"))],
        )
        eg = EGraph()
        x1 = eg.add_term(Sym("x1"))
        x2 = eg.add_term(Sym("x2"))
        e = eg.add_term(T("F", Sym("x2")))
        y = eg.add_term(Sym("y"))
        eg.assert_fact("R", (x1, y))
        eg.union(x2, x1)  # deliberately no rebuild
        stats = RuleEngine(eg, [rule]).run(4)
        assert stats.total_matches >= 1
        assert eg.equivalent(e, y)

    def test_delta_safety_analysis(self):
        safe, _ = parse_program(
            """
            (relation has-lanes (Expr i64))
            (rule ((= e (Add a b)) (has-lanes a l)) ((has-lanes e l)))
            """
        )
        assert safe[0].compiled().delta_safe
        # relation-first rules must match fully every round
        unsafe, _ = parse_program(
            """
            (relation edge (Expr Expr))
            (rule ((edge x y) (edge y z)) ((edge x z)))
            """
        )
        assert not unsafe[0].compiled().delta_safe

    def test_depth_bounds_are_monotone_in_nesting(self):
        shallow = rewrite("s", pat("(Add x y)"), pat("x")).compiled()
        deep = rewrite(
            "d", pat("(Add (Mul (Sub x y) z) w)"), pat("x")
        ).compiled()
        assert 1 <= shallow.depth < deep.depth
