"""Shared fixtures and app-suite definitions for the test suite.

The app parameter lists here are the single source of truth for "every
app" tests (backend parity, batch parity, serving): the fig-6 suite
apps at test-sized shapes, and the two quantized int8 apps.  Test
modules import the constants directly (``from conftest import ...``)
for parametrization and use the fixtures for per-test state.
"""

import numpy as np
import pytest

from repro import frontend as hl
from repro.apps import (
    attention,
    conv1d,
    conv2d,
    conv_layer,
    downsample,
    matmul,
    upsample,
)

#: (module, build kwargs) for every single-stage fig-6 app at test size;
#: build with ``module.build(variant, **params)``, variant in VARIANTS
SIMPLE_APPS = [
    (conv1d, {"taps": 16, "rows": 1}),
    (conv2d, {"taps": 16, "width": 512, "rows": 4}),
    (downsample, {"taps": 16, "width": 256, "rows": 4}),
    (upsample, {"width": 256, "rows": 2}),
    (matmul, {"n": 64}),
    (conv_layer, {"rows": 2}),
    (attention, {"length": 128}),
]

SIMPLE_APP_IDS = [m.__name__.split(".")[-1] for m, _ in SIMPLE_APPS]

#: both schedule variants every simple app supports
VARIANTS = ["cuda", "tensor"]

#: (builder, kwargs) for the quantized dp4a apps at test size
INT8_APPS = [
    (matmul.build_int8, {"tiles": 2}),
    (conv_layer.build_int8, {"width": 16, "rows": 1}),
]

INT8_APP_IDS = ["matmul_int8", "conv_layer_int8"]


def build_requests(app, count, rng, vary=1):
    """``count`` run_many requests for ``app``: fresh random data for
    the first ``vary`` input params, the app's own arrays — the *same
    objects* across requests, the serving idiom for weights — for the
    rest.  Keyed by param name."""
    params = list(app.inputs.items())
    requests = []
    for _ in range(count):
        request = {}
        for position, (param, array) in enumerate(params):
            if position < vary:
                if array.dtype.kind == "f":
                    fresh = rng.standard_normal(array.shape)
                    request[param.name] = fresh.astype(array.dtype)
                else:
                    request[param.name] = rng.integers(
                        -128, 128, array.shape
                    ).astype(array.dtype)
            else:
                request[param.name] = array
        requests.append(request)
    return requests


def build_vector_pipeline(width=64, split=8, vector=8):
    """A minimal pure-vector pipeline: ``out[x] = in[x] * 2 + 1``.

    Returns ``(input_param, func)``; shared by the serving and batched
    tests that need a cheap non-accelerator statement."""
    inp = hl.ImageParam(hl.Float(32), 1, name="sv_in")
    x, xi = hl.Var("x"), hl.Var("xi")
    f = hl.Func("sv_out")
    f[x] = inp[x] * 2.0 + 1.0
    f.bound(x, 0, width)
    f.split(x, x, xi, split).vectorize(xi, vector)
    return inp, f


def make_vector_input(width=64, seed=3):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(width).astype(np.float32)


@pytest.fixture
def rng():
    """A per-test seeded generator — deterministic, isolated."""
    return np.random.default_rng(0xC60)


@pytest.fixture
def artifact_store(tmp_path):
    """A fresh on-disk ArtifactStore rooted in this test's tmp dir."""
    from repro.service import ArtifactStore

    return ArtifactStore(str(tmp_path / "artifacts"))


@pytest.fixture(autouse=True, scope="session")
def _no_stray_serving_state():
    """Session hygiene: the suite must not leak worker processes or
    shared-memory segments.  Runs after the last test; a failure here
    means some test tore a pool down without reclaiming its resources."""
    yield
    import multiprocessing
    import time

    from repro.service.shm import leaked_segments

    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        strays = [
            process.name
            for process in multiprocessing.active_children()
            if process.name.startswith("repro-worker")
        ]
        leaked = leaked_segments()
        if not strays and not leaked:
            return
        time.sleep(0.05)
    assert not strays, f"stray worker processes survived the session: {strays}"
    assert not leaked, f"leaked /dev/shm segments survived the session: {leaked}"
