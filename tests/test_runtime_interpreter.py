"""Tests for the IR interpreter, buffers, and counters."""

import numpy as np
import pytest

from repro.ir import (
    Allocate,
    Block,
    Broadcast,
    Cast,
    FloatImm,
    Float,
    For,
    ForKind,
    IfThenElse,
    IntImm,
    Int,
    BFloat,
    LetStmt,
    Load,
    MemoryType,
    Ramp,
    Store,
    Variable,
    VectorReduce,
    make_add,
    make_mul,
    make_ramp,
)
from repro.runtime import Buffer, Counters, Interpreter


def make_interp(**buffers):
    return Interpreter(buffers)


class TestBuffer:
    def test_from_numpy_innermost_first(self):
        arr = np.arange(12, dtype=np.float32).reshape(3, 4)
        buf = Buffer.from_numpy("A", arr)
        # numpy's last axis (len 4) becomes dimension 0
        assert buf.extents == (4, 3)
        assert buf.strides == (1, 4)
        np.testing.assert_array_equal(buf.to_numpy(), arr)

    def test_flatten_index(self):
        arr = np.arange(12, dtype=np.float32).reshape(3, 4)
        buf = Buffer.from_numpy("A", arr)
        # A(x, y) with x innermost == arr[y, x]
        assert buf.data[buf.flatten_index((2, 1))] == arr[1, 2]

    def test_bfloat_rounding_on_store(self):
        buf = Buffer("b", BFloat(16), (4,))
        buf.scatter(np.array([0]), np.array([1.00001], dtype=np.float32))
        # 1.00001 is not representable in bf16; the stored value is rounded
        assert buf.data[0] == np.float32(1.0)

    def test_footprint_tracking(self):
        buf = Buffer("b", Float(32), (8,))
        buf.gather(np.array([0, 1, 1, 2]))
        assert buf.load_footprint_bytes() == 3 * 4


class TestExprEval:
    def test_ramp_scalar(self):
        interp = make_interp()
        e = Ramp(IntImm(3), IntImm(2), 4)
        np.testing.assert_array_equal(
            interp.eval_expr(e, {}), [3, 5, 7, 9]
        )

    def test_nested_ramp_concatenates(self):
        interp = make_interp()
        inner = Ramp(IntImm(0), IntImm(1), 3)
        outer = Ramp(inner, Broadcast(IntImm(10), 3), 2)
        np.testing.assert_array_equal(
            interp.eval_expr(outer, {}), [0, 1, 2, 10, 11, 12]
        )

    def test_broadcast_of_vector_concatenates(self):
        interp = make_interp()
        e = Broadcast(Ramp(IntImm(0), IntImm(1), 3), 2)
        np.testing.assert_array_equal(
            interp.eval_expr(e, {}), [0, 1, 2, 0, 1, 2]
        )

    def test_vector_reduce_adjacent_groups(self):
        interp = make_interp()
        v = Cast(Float(32, 6), Ramp(IntImm(1), IntImm(1), 6))
        vr = VectorReduce("add", v, 2)
        np.testing.assert_array_equal(interp.eval_expr(vr, {}), [6.0, 15.0])

    def test_variable_env(self):
        interp = make_interp()
        assert interp.eval_expr(Variable("i", Int(32)), {"i": 7}) == 7

    def test_unbound_variable_raises(self):
        interp = make_interp()
        with pytest.raises(Exception, match="unbound"):
            interp.eval_expr(Variable("i", Int(32)), {})

    def test_load_gather(self):
        buf = Buffer.from_numpy("A", np.array([10, 20, 30, 40], np.float32))
        interp = make_interp(A=buf)
        e = Load(Float(32, 2), "A", Ramp(IntImm(1), IntImm(2), 2))
        np.testing.assert_array_equal(interp.eval_expr(e, {}), [20, 40])

    def test_load_out_of_bounds(self):
        buf = Buffer.from_numpy("A", np.zeros(4, np.float32))
        interp = make_interp(A=buf)
        e = Load(Float(32, 2), "A", Ramp(IntImm(3), IntImm(2), 2))
        with pytest.raises(Exception, match="out of bounds"):
            interp.eval_expr(e, {})

    def test_int_div_floor(self):
        interp = make_interp()
        e = Variable("a", Int(32)) / Variable("b", Int(32))
        assert interp.eval_expr(e, {"a": -7, "b": 2}) == -4

    def test_cast_to_bfloat_rounds(self):
        interp = make_interp()
        e = Cast(BFloat(16), Variable("v", Float(32)))
        out = interp.eval_expr(e, {"v": np.float32(1.00001)})
        assert out == np.float32(1.0)


class TestStmtExec:
    def test_store_and_loop(self):
        out = Buffer("out", Float(32), (8,))
        interp = make_interp(out=out)
        i = Variable("i", Int(32))
        body = Store("out", i, Cast(Float(32), i * 2))
        loop = For("i", IntImm(0), IntImm(8), ForKind.SERIAL, body)
        interp.run(loop)
        np.testing.assert_array_equal(
            out.data, np.arange(8, dtype=np.float32) * 2
        )

    def test_vector_store(self):
        out = Buffer("out", Float(32), (8,))
        interp = make_interp(out=out)
        st = Store(
            "out",
            Ramp(IntImm(0), IntImm(1), 8),
            Broadcast(FloatImm(3.0), 8),
        )
        interp.run(st)
        np.testing.assert_array_equal(out.data, np.full(8, 3.0, np.float32))

    def test_allocate_scoping(self):
        out = Buffer("out", Float(32), (1,))
        interp = make_interp(out=out)
        body = Block.make(
            [
                Store("tmp", IntImm(0), FloatImm(5.0)),
                Store("out", IntImm(0), Load(Float(32), "tmp", IntImm(0))),
            ]
        )
        alloc = Allocate("tmp", Float(32), (IntImm(4),), MemoryType.STACK, body)
        interp.run(alloc)
        assert out.data[0] == 5.0
        assert "tmp" not in interp.buffers

    def test_let_stmt(self):
        out = Buffer("out", Int(32), (1,))
        interp = make_interp(out=out)
        s = LetStmt("t", IntImm(3) + IntImm(4), Store("out", IntImm(0), Variable("t", Int(32))))
        interp.run(s)
        assert out.data[0] == 7

    def test_if_then_else(self):
        out = Buffer("out", Int(32), (2,))
        interp = make_interp(out=out)
        i = Variable("i", Int(32))
        body = IfThenElse(
            i < 1,
            Store("out", i, IntImm(100)),
            Store("out", i, IntImm(200)),
        )
        interp.run(For("i", IntImm(0), IntImm(2), ForKind.SERIAL, body))
        np.testing.assert_array_equal(out.data, [100, 200])

    def test_gpu_lane_loop_runs_once(self):
        out = Buffer("out", Int(32), (1,))
        interp = make_interp(out=out)
        acc = Store(
            "out",
            IntImm(0),
            Load(Int(32), "out", IntImm(0)) + IntImm(1),
        )
        interp.run(For("lane", IntImm(0), IntImm(32), ForKind.GPU_LANE, acc))
        assert out.data[0] == 1  # warp-collective: body executes once


class TestCounters:
    def test_flop_counting(self):
        interp = make_interp()
        a = Broadcast(Variable("v", Float(32)), 16)
        env = {"v": 2.0}
        interp.eval_expr(make_mul(a, a), env)
        assert interp.counters.scalar_flops == 16

    def test_vector_reduce_counts_adds(self):
        interp = make_interp()
        v = Broadcast(FloatImm(1.0), 64)
        interp.eval_expr(VectorReduce("add", v, 8), {})
        assert interp.counters.scalar_flops == 64 - 8

    def test_load_bytes_by_level(self):
        from repro.ir import MemoryType

        dram = Buffer.from_numpy("A", np.zeros(16, np.float32))
        local = Buffer(
            "tmp", Float(32), (16,), memory_type=MemoryType.STACK
        )
        interp = make_interp(A=dram, tmp=local)
        idx = Ramp(IntImm(0), IntImm(1), 8)
        interp.eval_expr(Load(Float(32, 8), "A", idx), {})
        interp.eval_expr(Load(Float(32, 8), "tmp", idx), {})
        assert interp.counters.load_bytes["dram"] == 32
        assert interp.counters.load_bytes["l1"] == 32

    def test_int_ops_not_counted_as_flops(self):
        interp = make_interp()
        e = Variable("i", Int(32)) + IntImm(1)
        interp.eval_expr(e, {"i": 3})
        assert interp.counters.scalar_flops == 0
        assert interp.counters.int_ops == 1

    def test_counters_scaled(self):
        c = Counters(scalar_flops=10, tensor_macs=4)
        c.add_load("dram", 100)
        s = c.scaled(2.5)
        assert s.scalar_flops == 25
        assert s.tensor_macs == 10
        assert s.load_bytes["dram"] == 250


class TestCountersScaledRounding:
    """Regression: ``Counters.scaled`` truncated every entry with
    ``int(v * factor)``, systematically under-reporting extrapolated
    work whenever the scale factor is fractional."""

    def test_fractional_factor_rounds_to_nearest(self):
        c = Counters(scalar_flops=333, tensor_macs=1, int8_macs=3)
        c.add_load("dram", 333)
        c.add_store("l1", 1)
        c.intrinsic_calls["dp4a_matmul"] = 3
        s = c.scaled(1.2)
        assert s.scalar_flops == 400  # int() would truncate to 399
        assert s.tensor_macs == 1
        assert s.int8_macs == 4  # 3.6 rounds up; int() gave 3
        assert s.load_bytes["dram"] == 400
        assert s.store_bytes["l1"] == 1
        assert s.intrinsic_calls["dp4a_matmul"] == 4

    def test_no_systematic_downward_bias(self):
        c = Counters(scalar_flops=5)
        # truncation loses a whole unit at factor 2.7 (13.5 -> 13);
        # rounding keeps the extrapolation within half a unit
        assert abs(c.scaled(2.7).scalar_flops - 13.5) <= 0.5


class TestOutputStridePublication:
    """Regression: ``CompiledPipeline.run`` published ``{name}.stride.{d}``
    env entries only for *input* buffers, so a kernel addressing the
    output through its strides hit an unbound variable / KeyError."""

    def _stride_pipeline(self):
        from repro import frontend as hl
        from repro.ir import Broadcast, Cast, Float, Mul, Ramp
        from repro.ir.stmt import For, ForKind, MemoryType
        from repro.lowering.build import RealizationInfo
        from repro.lowering.pipeline import Lowered

        f = hl.Func("strout")
        x, y = hl.Var("x"), hl.Var("y")
        f[x, y] = 0.0
        info = RealizationInfo(
            func=f,
            mins=[IntImm(0), IntImm(0)],
            extents=[IntImm(4), IntImm(3)],
            storage_perm=[0, 1],
            memory_type=MemoryType.HEAP,
            is_output=True,
        )
        # store row y of the output through its published stride
        stmt = For(
            "y",
            IntImm(0),
            IntImm(3),
            ForKind.SERIAL,
            Store(
                "strout",
                Ramp(
                    Mul(Variable("y"), Variable("strout.stride.1")),
                    IntImm(1),
                    4,
                ),
                Broadcast(Cast(Float(32), Variable("y")), 4),
            ),
        )
        return Lowered(
            stmt=stmt,
            realizations={"strout": info},
            output=f,
            atomic_vars=set(),
        )

    @pytest.mark.parametrize("backend", ["interpret", "compile"])
    def test_kernel_may_address_output_via_stride(self, backend):
        from repro.runtime.executor import CompiledPipeline

        pipe = CompiledPipeline(self._stride_pipeline(), backend=backend)
        out = pipe.run({})
        expected = np.repeat(
            np.arange(3, dtype=np.float32), 4
        ).reshape(3, 4)
        np.testing.assert_array_equal(out, expected)
