"""Tests for HARDBOILED: encoding, axioms, and end-to-end selection."""

import numpy as np
import pytest

from repro import frontend as hl
from repro.eqsat import (
    EGraph,
    I,
    Matcher,
    Sym,
    T,
    extract_best,
    find_matches,
    run_phased,
)
from repro.hardboiled import (
    SelectionError,
    amx_rules,
    axiomatic_rules,
    compile_tensorized,
    contains_movement,
    decode_expr,
    decode_stmt,
    encode_expr,
    encode_stmt,
    hardboiled_cost_model,
    select_instructions,
    supporting_rules,
    wmma_rules,
)
from repro.hardboiled.encode import Encoder, movement_wrapper
from repro.ir import (
    Add,
    BFloat,
    Broadcast,
    Call,
    Cast,
    Evaluate,
    Float,
    ForKind,
    IntImm,
    Load,
    Ramp,
    Store,
    Variable,
    VectorReduce,
    contains,
    print_stmt,
)
from repro.lowering import lower
from repro.runtime import Counters
from repro.runtime.executor import CompiledPipeline
from repro.targets.bfloat16 import round_to_bfloat16


class TestEncodeDecode:
    def roundtrip(self, e):
        assert decode_expr(encode_expr(e)) == e

    def test_literals_and_vars(self):
        self.roundtrip(IntImm(5))
        self.roundtrip(Variable("x"))

    def test_vector_nodes(self):
        self.roundtrip(Ramp(IntImm(0), IntImm(1), 8))
        self.roundtrip(Broadcast(Variable("v"), 16))
        self.roundtrip(
            VectorReduce("add", Broadcast(Cast(Float(32), IntImm(0)), 64), 8)
        )

    def test_load_with_type(self):
        e = Load(BFloat(16, 512), "A", Ramp(IntImm(0), IntImm(1), 512))
        self.roundtrip(e)

    def test_nested_arith(self):
        e = Add(Variable("a"), Cast(Float(32), Variable("b")))
        self.roundtrip(e)

    def test_call_roundtrip(self):
        e = Call(
            Float(32, 256),
            "tile_matmul",
            (Variable("c"), IntImm(16)),
        )
        self.roundtrip(e)

    def test_movement_markers(self):
        inner = Load(Float(32, 256), "mm", Ramp(IntImm(0), IntImm(1), 256))
        e = movement_wrapper("AMX2Mem", inner)
        term = encode_expr(e)
        assert term.head == "AMX2Mem"
        assert contains_movement(term)
        assert decode_expr(term) == e

    def test_store_stmt_roundtrip(self):
        s = Store(
            "out",
            Ramp(IntImm(0), IntImm(1), 4),
            Broadcast(Cast(Float(32), IntImm(1)), 4),
        )
        assert decode_stmt(encode_stmt(s)) == s

    def test_encoder_seeds_lanes(self):
        eg = EGraph()
        e = Broadcast(Variable("v"), 16)
        root = Encoder(eg).expr(e)
        lanes_16 = eg.add_literal("i64", 16)
        assert (eg.find(root), eg.find(lanes_16)) in eg.facts("has-lanes")


class TestAxioms:
    def run_axioms(self, expr):
        eg = EGraph()
        root = Encoder(eg).expr(expr)
        ax, _ = axiomatic_rules()
        sup, _ = supporting_rules()
        run_phased(eg, list(ax), list(sup), iterations=8)
        return eg, root

    def test_a_matrix_renesting(self):
        """The paper's §III-B mismatch: un-nested A index re-nests."""
        a_idx = Add(
            Broadcast(Ramp(IntImm(0), IntImm(1), 32), 256),
            Ramp(
                Broadcast(IntImm(0), 512),
                Broadcast(Variable("A.stride.1"), 512),
                16,
            ),
        )
        eg, root = self.run_axioms(a_idx)
        canon = T(
            "Ramp",
            T("Broadcast", T("Ramp", I(0), I(1), I(32)), I(16)),
            T("Broadcast", T("Var", Sym("A.stride.1")), I(512)),
            I(16),
        )
        found = eg.lookup_term(canon)
        assert found is not None and eg.equivalent(found, root)

    def test_broadcast_pushes_into_load(self):
        e = Broadcast(
            Load(BFloat(16, 512), "B", Ramp(IntImm(0), IntImm(1), 512)), 16
        )
        eg, root = self.run_axioms(e)
        pushed = T(
            "Load",
            T("BFloat16", I(8192)),
            Sym("B"),
            T("Broadcast", T("Ramp", I(0), I(1), I(512)), I(16)),
        )
        found = eg.lookup_term(pushed)
        assert found is not None and eg.equivalent(found, root)

    def test_flat_ramp_renests_to_tile(self):
        e = Ramp(Variable("base"), IntImm(1), 256)
        eg, root = self.run_axioms(e)
        nested = T(
            "Ramp",
            T("Ramp", T("Var", Sym("base")), I(1), I(16)),
            T("Broadcast", I(16), I(16)),
            I(16),
        )
        found = eg.lookup_term(nested)
        assert found is not None and eg.equivalent(found, root)

    def test_movement_cancellation(self):
        inner = Load(Float(32, 256), "mm", Ramp(IntImm(0), IntImm(1), 256))
        e = movement_wrapper("Mem2AMX", movement_wrapper("AMX2Mem", inner))
        eg, root = self.run_axioms(e)
        best = extract_best(eg, root, hardboiled_cost_model())
        assert not contains_movement(best)


def build_amx_matmul():
    A = hl.ImageParam(hl.BFloat(16), 2, name="A")
    B = hl.ImageParam(hl.BFloat(16), 2, name="B")
    x, y = hl.Var("x"), hl.Var("y")
    r = hl.RDom(0, 32, name="r")
    mm = hl.Func("mm")
    mm[y, x] = 0.0
    mm[y, x] += hl.f32(A[r, x]) * hl.f32(B[y, r])
    out_f = mm.in_()
    out_f.bound(x, 0, 16).bound(y, 0, 16).vectorize(y, 16).vectorize(x, 16)
    mm.store_in(hl.MemoryType.AMX_TILE).compute_at(out_f, "x")
    mm.vectorize(y, 16).vectorize(x, 16)
    mm.update().atomic().vectorize(r, 32).vectorize(y, 16).vectorize(x, 16)
    return out_f, A, B


def build_wmma_conv(n=1024, taps=16):
    K = hl.ImageParam(hl.Float(16), 1, name="K")
    I_img = hl.ImageParam(hl.Float(16), 1, name="I")
    x, xi, rxi = hl.Var("x"), hl.Var("xi"), hl.Var("rxi")
    conv = hl.Func("conv")
    output = hl.Func("output")
    rx = hl.RDom(0, taps, name="rx")
    conv[x] = 0.0
    conv[x] += hl.f32(K[rx]) * hl.f32(I_img[x + rx])
    output[x] = conv[x]
    output.bound(x, 0, n)
    output.split(x, x, xi, 256).vectorize(xi).gpu_blocks(x)
    conv.compute_at(output, x).store_in(
        hl.MemoryType.WMMA_ACCUMULATOR
    ).split(x, x, xi, 256).vectorize(xi)
    conv.update().split(x, x, xi, 256).split(rx, rx, rxi, 8).reorder(
        rxi, xi, rx, x
    ).atomic().vectorize(xi).vectorize(rxi)
    return output, I_img, K


class TestAMXSelection:
    def test_all_stores_map(self):
        out_f, A, B = build_amx_matmul()
        lo = lower(out_f)
        tz, report = select_instructions(lo)
        assert report.all_mapped
        assert len(report.selections) == 3  # zero, matmul, store
        text = print_stmt(tz.stmt)
        assert "tile_zero" in text
        assert "tile_matmul" in text
        assert "tile_store" in text
        assert "KWayInterleave" in text  # standard layout got swizzled

    def test_swizzle_hoisted_to_top(self):
        out_f, A, B = build_amx_matmul()
        lo = lower(out_f)
        tz, report = select_instructions(lo)
        # the KWayInterleave allocation must be outside the produce nest
        text = print_stmt(tz.stmt)
        assert text.index("KWayInterleave") < text.index("produce")

    def test_tensorized_result_matches_reference(self):
        out_f, A, B = build_amx_matmul()
        lo = lower(out_f)
        tz, report = select_instructions(lo)
        rng = np.random.default_rng(0)
        a = round_to_bfloat16(
            rng.standard_normal((16, 32)).astype(np.float32)
        )
        b = round_to_bfloat16(
            rng.standard_normal((32, 16)).astype(np.float32)
        )
        counters = Counters()
        out = CompiledPipeline(tz).run({A: a, B: b}, counters=counters)
        ref = a.astype(np.float32) @ b.astype(np.float32)
        np.testing.assert_allclose(out, ref, rtol=1e-2, atol=1e-2)
        # every MAC ran on the (simulated) AMX unit
        assert counters.tensor_macs == 16 * 16 * 32
        assert counters.scalar_flops == 0

    def test_unmappable_accel_store_reported(self):
        # a non-MatMul computation scheduled into AMX cannot be selected
        inp = hl.ImageParam(hl.Float(32), 1, name="inp_um")
        x = hl.Var("x")
        f = hl.Func("f_um")
        g = f  # alias for clarity
        f[x] = inp[x] * 2.0
        out_f = f.in_()
        out_f.bound(x, 0, 256).vectorize(x, 256)
        f.store_in(hl.MemoryType.AMX_TILE).compute_at(out_f, "x")
        f.vectorize(x, 256)
        lo = lower(out_f)
        tz, report = select_instructions(lo, strict=False)
        assert not report.all_mapped
        with pytest.raises(SelectionError):
            select_instructions(lo, strict=True)


class TestWMMASelection:
    def test_conv_maps_to_m32n8k16(self):
        output, I_img, K = build_wmma_conv()
        lo = lower(output)
        tz, report = select_instructions(lo)
        assert report.all_mapped
        text = print_stmt(tz.stmt)
        assert "ConvolutionShuffle" in text
        assert "wmma.mma.sync" in text
        assert "32, 8, 16" in text  # the m32n8k16 geometry

    def test_warp_lane_loops_inserted(self):
        output, I_img, K = build_wmma_conv()
        lo = lower(output)
        tz, report = select_instructions(lo)
        from repro.ir import For

        lane_loops = []

        def find(node):
            if isinstance(node, For) and node.kind == ForKind.GPU_LANE:
                lane_loops.append(node)
            return False

        contains(tz.stmt, find)
        assert len(lane_loops) >= 2

    def test_conv_correct_and_all_tensor(self):
        output, I_img, K = build_wmma_conv()
        lo = lower(output)
        tz, report = select_instructions(lo)
        rng = np.random.default_rng(1)
        sig = rng.standard_normal(1024 + 24).astype(np.float16)
        ker = rng.standard_normal(16).astype(np.float16)
        counters = Counters()
        out = CompiledPipeline(tz).run({I_img: sig, K: ker}, counters=counters)
        ref = np.array(
            [
                (sig[i : i + 16].astype(np.float32) * ker.astype(np.float32)).sum()
                for i in range(1024)
            ]
        )
        np.testing.assert_allclose(out, ref, rtol=1e-2, atol=1e-2)
        assert counters.scalar_flops == 0
        # 4 segments x 2 tap-blocks x m32n8k16
        assert counters.tensor_macs == 4 * 2 * 32 * 8 * 16

    def test_toeplitz_rebuilt_per_tap_block(self):
        output, I_img, K = build_wmma_conv()
        lo = lower(output)
        tz, report = select_instructions(lo)
        text = print_stmt(tz.stmt)
        # the shuffle depends on rx, so it lives inside the rx loop
        assert text.index("for conv.s1.rx") < text.index("ConvolutionShuffle")

    def test_compile_tensorized_helper(self):
        output, I_img, K = build_wmma_conv()
        pipeline, report = compile_tensorized(output)
        assert report.all_mapped
        rng = np.random.default_rng(2)
        sig = rng.standard_normal(1024 + 24).astype(np.float16)
        ker = rng.standard_normal(16).astype(np.float16)
        out = pipeline.run({I_img: sig, K: ker})
        assert out.shape == (1024,)


class TestCUDAOnlyUntouched:
    def test_non_accel_stores_not_processed(self):
        inp = hl.ImageParam(hl.Float(32), 1, name="inp_cu")
        x = hl.Var("x")
        f = hl.Func("f_cu")
        f[x] = inp[x] * 2.0
        f.bound(x, 0, 64).vectorize(x, 64)
        lo = lower(f)
        tz, report = select_instructions(lo)
        assert len(report.selections) == 0
        assert tz.stmt == lo.stmt
