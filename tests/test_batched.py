"""The differential batch-parity harness for batch-axis kernels.

For every app in the fig-6 suite (both schedule variants) plus the
quantized int8 apps, random request batches run through three paths:

(a) the per-request **interpreter** — the semantic reference,
(b) the per-request **compiled kernel** (the looped ``run_many`` path),
(c) the **batch-axis kernel** — one kernel call for the whole bucket,

and all three must agree **bitwise** — including B=1 buckets, bf16
rounding inside the AMX tiles, int8 wraparound through dp4a, and the
float summation order of every vector reduce.  The suite also pins the
routing contract: ragged buckets and per-request weights fall back to
the looped path (and raise under ``batch_axis=True``), staging is
invalidated on shape changes mid-serving, and one compiled batched
kernel serves every batch size.

Run this file alone with ``pytest -m batched``.
"""

import numpy as np
import pytest
from conftest import (
    INT8_APP_IDS,
    INT8_APPS,
    SIMPLE_APP_IDS,
    SIMPLE_APPS,
    VARIANTS,
    build_requests,
    build_vector_pipeline,
    make_vector_input,
)
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lowering import lower
from repro.runtime.executor import CompiledPipeline
from repro.runtime.plan import BatchedExecutionPlan, BatchingUnsupported
from repro.service import Server

pytestmark = pytest.mark.batched

#: compiled pipelines are expensive (equality saturation); build each
#: app+variant once and share it across every B parametrization
_PIPELINES = {}


def compiled_app(module, params, variant=None):
    """``(app, pipeline)`` for an app module + variant, or a bare
    builder callable (the int8 apps) when ``variant`` is None."""
    key = (getattr(module, "__name__", repr(module)), variant,
           tuple(sorted(params.items())))
    if key not in _PIPELINES:
        app = (
            module.build(variant, **params)
            if variant is not None
            else module(**params)
        )
        app.backend = "compile"
        _PIPELINES[key] = (app, app.compile())
    return _PIPELINES[key]


def assert_three_way_parity(pipe, requests):
    """(a) interpreter == (b) looped compiled == (c) batched, bitwise."""
    batched = pipe.run_many(requests, batch_axis=True)
    looped = pipe.run_many(requests, batch_axis=False, workers=1)
    for out_b, out_l, request in zip(batched, looped, requests):
        reference = pipe.run(request, backend="interpret")
        np.testing.assert_array_equal(out_l, reference)
        np.testing.assert_array_equal(out_b, reference)


class TestAppParity:
    """Every fig-6 app, both variants, B in {1, 2, odd, large}."""

    @pytest.mark.parametrize("batch", [1, 2, 5], ids=lambda b: f"B{b}")
    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize(
        "module,params", SIMPLE_APPS, ids=SIMPLE_APP_IDS
    )
    def test_batched_parity(self, module, params, variant, batch, rng):
        app, pipe = compiled_app(module, params, variant)
        assert_three_way_parity(pipe, build_requests(app, batch, rng))

    @pytest.mark.parametrize(
        "module,params", SIMPLE_APPS, ids=SIMPLE_APP_IDS
    )
    def test_large_batch(self, module, params, rng):
        app, pipe = compiled_app(module, params, "tensor")
        requests = build_requests(app, 16, rng)
        batched = pipe.run_many(requests, batch_axis=True)
        for out, request in zip(batched, requests):
            np.testing.assert_array_equal(
                out, pipe.run(request, backend="interpret")
            )

    @pytest.mark.parametrize("batch", [1, 3, 8], ids=lambda b: f"B{b}")
    @pytest.mark.parametrize(
        "builder,params", INT8_APPS, ids=INT8_APP_IDS
    )
    def test_int8_parity(self, builder, params, batch, rng):
        """dp4a: int8 truncation and int32 wraparound are elementwise,
        so batching must preserve them exactly."""
        app, pipe = compiled_app(builder, params)
        assert_three_way_parity(pipe, build_requests(app, batch, rng))

    def test_int8_wraparound_values_survive_batching(self, rng):
        """Inputs at the int8 extremes: accumulator wraparound must be
        identical whether requests run alone or stacked."""
        app, pipe = compiled_app(INT8_APPS[0][0], INT8_APPS[0][1])
        params = list(app.inputs.items())
        requests = []
        for _ in range(4):
            request = {}
            for position, (param, array) in enumerate(params):
                if position == 0:
                    request[param.name] = rng.choice(
                        np.array([-128, -127, 126, 127], dtype=array.dtype),
                        size=array.shape,
                    )
                else:
                    request[param.name] = array
            requests.append(request)
        assert_three_way_parity(pipe, requests)

    def test_batched_path_actually_used(self, rng):
        """The parity above must not silently test the fallback."""
        from repro.apps import conv1d

        app, pipe = compiled_app(conv1d, {"taps": 16, "rows": 1}, "tensor")
        pipe.run_many(build_requests(app, 4, rng), batch_axis=True)
        stats = pipe._batched_plan.stats()
        assert stats["runs"] >= 1
        assert stats["batched_requests"] >= 4


class TestKernelReuse:
    """One B-agnostic kernel serves every batch size."""

    def test_batch_size_change_does_not_rebind(self, rng):
        from repro.apps import conv1d

        app, pipe = compiled_app(conv1d, {"taps": 16, "rows": 1}, "tensor")
        plan = BatchedExecutionPlan(pipe)
        kernels = set()
        for batch in (2, 5, 1, 16):
            requests = build_requests(app, batch, rng)
            outs = plan.run(requests)
            kernels.add(id(plan.kernel))
            for out, request in zip(outs, requests):
                np.testing.assert_array_equal(
                    out, pipe.run(request, backend="interpret")
                )
        assert plan.stats()["rebinds"] == 1
        assert len(kernels) == 1

    def test_batched_kernel_is_cached_and_negative_cached(self):
        from repro.apps import conv1d

        app, pipe = compiled_app(conv1d, {"taps": 16, "rows": 1}, "tensor")
        names = [p.name for p in app.inputs]
        data_split = frozenset([names[0], pipe.output_name])
        first = pipe.batched_kernel(data_split)
        assert first is not None
        assert pipe.batched_kernel(data_split) is first
        # per-request weights feed the ConvolutionShuffle constructor:
        # unbatchable, and the None answer is memoized
        weights_split = frozenset(names + [pipe.output_name])
        assert pipe.batched_kernel(weights_split) is None
        assert weights_split in pipe._batched

    def test_out_parameter(self, rng):
        from repro.apps import conv1d

        app, pipe = compiled_app(conv1d, {"taps": 16, "rows": 1}, "tensor")
        plan = BatchedExecutionPlan(pipe)
        requests = build_requests(app, 3, rng)
        expected = plan.run(requests)
        out = np.full((3,) + expected[0].shape, np.nan, expected[0].dtype)
        results = plan.run(requests, out=out)
        for row, exp, res in zip(out, expected, results):
            assert np.shares_memory(row, res)
            np.testing.assert_array_equal(row, exp)


class TestRoutingFallback:
    def _pipe(self):
        inp, f = build_vector_pipeline()
        return inp, CompiledPipeline(lower(f), backend="compile")

    def test_ragged_bucket_falls_back(self):
        inp, pipe = self._pipe()
        # second request is longer: only the bound 64 elements are read
        ragged = [
            {inp: make_vector_input(seed=1)},
            {inp: np.concatenate(
                [make_vector_input(seed=2), np.ones(16, np.float32)]
            )},
        ]
        results = pipe.run_many(ragged)  # silent fallback
        for out, request in zip(results, ragged):
            np.testing.assert_array_equal(out, pipe.run(request))
        with pytest.raises(BatchingUnsupported):
            pipe.run_many(ragged, batch_axis=True)

    def test_interpret_backend_rejects_explicit_batching(self):
        inp, pipe = self._pipe()
        requests = [{inp: make_vector_input(seed=i)} for i in range(2)]
        with pytest.raises(BatchingUnsupported):
            pipe.run_many(
                requests, backend="interpret", batch_axis=True
            )
        # and never routes there implicitly
        results = pipe.run_many(requests, backend="interpret")
        for out, request in zip(results, requests):
            np.testing.assert_array_equal(
                out, pipe.run(request, backend="interpret")
            )

    def test_per_request_weights_fall_back(self, rng):
        from repro.apps import conv1d

        app, pipe = compiled_app(conv1d, {"taps": 16, "rows": 1}, "tensor")
        # vary every input: the weights feed a shuffle constructor, so
        # the bucket is unbatchable — looped fallback, still bitwise
        requests = build_requests(app, 3, rng, vary=len(app.inputs))
        results = pipe.run_many(requests)
        for out, request in zip(results, requests):
            np.testing.assert_array_equal(
                out, pipe.run(request, backend="interpret")
            )
        with pytest.raises(BatchingUnsupported):
            pipe.run_many(requests, batch_axis=True)

    def test_none_requests_reuse_app_inputs(self):
        # App.run_many substitutes the app's bundled inputs for None
        # entries — same dict object per request, so everything is
        # shared and the all-shared kernel variant serves the bucket
        from repro.apps import conv1d

        app, _ = compiled_app(conv1d, {"taps": 16, "rows": 1}, "tensor")
        expected = app.run()
        for out in app.run_many([None, None]):
            np.testing.assert_array_equal(out, expected)


class TestServerBatched:
    def test_server_routes_through_batched_kernel(self, rng):
        from repro.apps import conv1d

        app, pipe = compiled_app(conv1d, {"taps": 16, "rows": 1}, "tensor")
        requests = build_requests(app, 6, rng)
        with Server(pipe, workers=2) as server:
            batched = server.run_many(requests)
            looped = server.run_many(requests, batch_axis=False)
            stats = server.stats()
        assert stats["batched_batches"] == 1
        assert stats["batches"] == 2
        for out_b, out_l in zip(batched, looped):
            np.testing.assert_array_equal(out_b, out_l)

    def test_server_batch_axis_policy(self):
        inp, f = build_vector_pipeline()
        pipe = CompiledPipeline(lower(f), backend="compile")
        requests = [{inp: make_vector_input(seed=i)} for i in range(3)]
        with Server(pipe, workers=2, batch_axis=False) as server:
            server.run_many(requests)
            assert server.stats()["batched_batches"] == 0
        ragged = [
            {inp: make_vector_input(seed=1)},
            {inp: np.concatenate(
                [make_vector_input(seed=2), np.ones(8, np.float32)]
            )},
        ]
        with Server(pipe, workers=2, batch_axis=True) as server:
            with pytest.raises(BatchingUnsupported):
                server.run_many(ragged)

    def test_shape_change_mid_serving_invalidates_staging(self):
        """Regression: a rebind on shape change must also drop the
        batched staging blocks — stale staging would stack the new
        requests into the old geometry."""
        inp, f = build_vector_pipeline()
        pipe = CompiledPipeline(lower(f), backend="compile")
        short = [{inp: make_vector_input(seed=i)} for i in range(3)]
        long = [
            {inp: np.concatenate(
                [make_vector_input(seed=10 + i), np.full(16, 7.0, np.float32)]
            )}
            for i in range(3)
        ]
        with Server(pipe, workers=2) as server:
            first = server.run_many(short)
            second = server.run_many(long)   # rebind: wider inputs
            third = server.run_many(short)   # rebind back
            stats = server.stats()
        assert stats["batched_batches"] == 3
        plan_stats = stats["batched_plan"]
        assert plan_stats["rebinds"] == 3
        for out, request in zip(first + third, short + short):
            np.testing.assert_array_equal(out, pipe.run(request))
        for out, request in zip(second, long):
            np.testing.assert_array_equal(out, pipe.run(request))


class TestHypothesisSweeps:
    """Randomized differential sweeps — batch size and data drawn by
    Hypothesis, parity asserted bitwise against the interpreter."""

    @settings(max_examples=12, deadline=None)
    @given(batch=st.integers(1, 6), seed=st.integers(0, 2**16))
    def test_vector_pipeline_parity(self, batch, seed):
        inp, f = build_vector_pipeline()
        pipe = CompiledPipeline(lower(f), backend="compile")
        rng = np.random.default_rng(seed)
        requests = [
            {inp: rng.standard_normal(64).astype(np.float32)}
            for _ in range(batch)
        ]
        assert_three_way_parity(pipe, requests)

    @settings(max_examples=8, deadline=None)
    @given(batch=st.integers(1, 5), seed=st.integers(0, 2**16))
    def test_accelerator_app_parity(self, batch, seed):
        from repro.apps import conv1d

        app, pipe = compiled_app(conv1d, {"taps": 16, "rows": 1}, "tensor")
        rng = np.random.default_rng(seed)
        requests = build_requests(app, batch, rng)
        batched = pipe.run_many(requests, batch_axis=True)
        for out, request in zip(batched, requests):
            np.testing.assert_array_equal(
                out, pipe.run(request, backend="interpret")
            )
