"""Tests for the e-graph core: hashconsing, union, rebuild, relations."""

import doctest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eqsat import EGraph, ENode, F, I, Sym, T, Term


def add(egraph, head, *args):
    return egraph.add_node(ENode(head, tuple(args)))


class TestHashcons:
    def test_identical_terms_share_class(self):
        eg = EGraph()
        a = eg.add_term(T("Add", I(1), I(2)))
        b = eg.add_term(T("Add", I(1), I(2)))
        assert a == b

    def test_distinct_terms_distinct_classes(self):
        eg = EGraph()
        a = eg.add_term(T("Add", I(1), I(2)))
        b = eg.add_term(T("Add", I(2), I(1)))
        assert a != b

    def test_literals_interned(self):
        eg = EGraph()
        assert eg.add_literal("i64", 7) == eg.add_literal("i64", 7)
        assert eg.add_literal("i64", 7) != eg.add_literal("i64", 8)
        assert eg.add_literal("str", "A") == eg.add_literal("str", "A")

    def test_lookup_term(self):
        eg = EGraph()
        t = T("Mul", Sym("x"), I(2))
        assert eg.lookup_term(t) is None
        added = eg.add_term(t)
        assert eg.lookup_term(t) == added

    def test_lookup_literal_directly(self):
        eg = EGraph()
        assert eg.lookup_term(I(7)) is None
        added = eg.add_term(I(7))
        assert eg.lookup_term(I(7)) == added

    def test_nan_literals_interned_and_found(self):
        # NaN != NaN, so without payload canonicalization every fresh
        # NaN literal would hashcons to a new class and never be found
        eg = EGraph()
        a = eg.add_term(F(float("nan")))
        b = eg.add_term(F(float("nan")))
        assert a == b
        assert eg.lookup_term(F(float("nan"))) == a
        wrapped = eg.add_term(T("Neg", F(float("nan"))))
        assert eg.lookup_term(T("Neg", F(float("nan")))) == wrapped


def test_module_docstring_examples():
    """The saturate-and-extract sessions in the docs must keep working."""
    from repro.eqsat import egraph as egraph_mod
    from repro.eqsat import ematch as ematch_mod

    for module in (egraph_mod, ematch_mod):
        result = doctest.testmod(module)
        assert result.attempted > 0, module.__name__
        assert result.failed == 0, module.__name__


class TestUnion:
    def test_union_merges(self):
        eg = EGraph()
        a = eg.add_literal("str", "a")
        b = eg.add_literal("str", "b")
        assert eg.union(a, b)
        assert eg.equivalent(a, b)
        assert not eg.union(a, b)

    def test_congruence_after_rebuild(self):
        # f(a) and f(b) must merge once a == b
        eg = EGraph()
        a = eg.add_literal("str", "a")
        b = eg.add_literal("str", "b")
        fa = add(eg, "f", a)
        fb = add(eg, "f", b)
        assert not eg.equivalent(fa, fb)
        eg.union(a, b)
        eg.rebuild()
        assert eg.equivalent(fa, fb)

    def test_transitive_congruence(self):
        # g(f(a)) == g(f(b)) needs two upward propagation steps
        eg = EGraph()
        a = eg.add_literal("str", "a")
        b = eg.add_literal("str", "b")
        gfa = add(eg, "g", add(eg, "f", a))
        gfb = add(eg, "g", add(eg, "f", b))
        eg.union(a, b)
        eg.rebuild()
        assert eg.equivalent(gfa, gfb)

    def test_hashcons_canonical_after_rebuild(self):
        eg = EGraph()
        a = eg.add_literal("str", "a")
        b = eg.add_literal("str", "b")
        add(eg, "f", a)
        add(eg, "f", b)
        eg.union(a, b)
        eg.rebuild()
        for node, owner in eg.hashcons.items():
            assert node == node.canonicalize(eg.find)
            assert owner in eg.classes or eg.find(owner) in eg.classes


class TestRelations:
    def test_assert_and_query(self):
        eg = EGraph()
        a = eg.add_literal("str", "a")
        b = eg.add_literal("str", "b")
        assert eg.assert_fact("edge", (a, b))
        assert not eg.assert_fact("edge", (a, b))
        assert (a, b) in eg.facts("edge")

    def test_relations_canonicalized_on_rebuild(self):
        eg = EGraph()
        a = eg.add_literal("str", "a")
        b = eg.add_literal("str", "b")
        c = eg.add_literal("str", "c")
        eg.assert_fact("edge", (a, c))
        eg.assert_fact("edge", (b, c))
        eg.union(a, b)
        eg.rebuild()
        assert len(eg.facts("edge")) == 1


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_property_union_find_invariants(data):
    """Random unions keep find idempotent and classes consistent."""
    eg = EGraph()
    ids = [eg.add_literal("i64", i) for i in range(8)]
    terms = list(ids)
    for i in range(8):
        a = data.draw(st.sampled_from(terms), label="child_a")
        b = data.draw(st.sampled_from(terms), label="child_b")
        terms.append(eg.add_node(ENode("f", (a, b))))
    for _ in range(5):
        a = data.draw(st.sampled_from(terms), label="union_a")
        b = data.draw(st.sampled_from(terms), label="union_b")
        eg.union(a, b)
        eg.rebuild()
    # find is idempotent and lands in a live class
    for t in terms:
        root = eg.find(t)
        assert eg.find(root) == root
        assert root in eg.classes
    # lookups are consistent: the canonical form of every hashcons key is
    # itself present and agrees on the class (stale keys are unreachable
    # garbage, as in egg, because lookups canonicalize first)
    for node, owner in list(eg.hashcons.items()):
        canon = node.canonicalize(eg.find)
        assert canon in eg.hashcons
        assert eg.find(eg.hashcons[canon]) == eg.find(owner)


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_property_congruence_closure(data):
    """After rebuild, f(x) and f(y) are merged whenever x ~ y."""
    eg = EGraph()
    leaves = [eg.add_literal("i64", i) for i in range(6)]
    apps = {leaf: eg.add_node(ENode("f", (leaf,))) for leaf in leaves}
    pairs = data.draw(
        st.lists(
            st.tuples(st.sampled_from(leaves), st.sampled_from(leaves)),
            max_size=6,
        ),
        label="unions",
    )
    for a, b in pairs:
        eg.union(a, b)
    eg.rebuild()
    for a in leaves:
        for b in leaves:
            if eg.equivalent(a, b):
                assert eg.equivalent(apps[a], apps[b])
