"""Tests for the roofline performance model."""

import pytest

from repro.perfmodel import Efficiency, PerfModel, format_table, speedup
from repro.perfmodel.roofline import DEVICE_EFFICIENCY
from repro.runtime import Counters
from repro.targets.device import A100, RTX4070S


def make_counters(tensor_macs=0, scalar_flops=0, dram=0, l1=0):
    c = Counters(tensor_macs=tensor_macs, scalar_flops=scalar_flops)
    if dram:
        c.add_load("dram_unique", dram)
    if l1:
        c.add_load("l1", l1)
    return c


class TestRoofline:
    def test_compute_bound_classification(self):
        model = PerfModel(RTX4070S)
        t = model.estimate(make_counters(tensor_macs=10**12, dram=1000))
        assert t.bound == "C"
        assert t.tensor_s > t.dram_s

    def test_memory_bound_classification(self):
        model = PerfModel(RTX4070S)
        t = model.estimate(make_counters(tensor_macs=10**6, dram=10**9))
        assert t.bound == "M"

    def test_total_is_max_plus_launch(self):
        model = PerfModel(RTX4070S, Efficiency(1, 1, 1, 1, 1))
        t = model.estimate(make_counters(dram=504.2e9), kernels=2)
        assert t.total_s == pytest.approx(
            1.0 + 2 * RTX4070S.launch_overhead_s
        )

    def test_tensor_unit_rate(self):
        model = PerfModel(A100, Efficiency(1, 1, 1, 1, 1))
        t = model.estimate(make_counters(tensor_macs=int(156e12)))
        assert t.tensor_s == pytest.approx(1.0)

    def test_flops_pair_into_fmas(self):
        model = PerfModel(A100, Efficiency(1, 1, 1, 1, 1))
        t = model.estimate(make_counters(scalar_flops=int(2 * 9.75e12)))
        assert t.cuda_s == pytest.approx(1.0)

    def test_device_calibration_registered(self):
        assert PerfModel(A100).efficiency is DEVICE_EFFICIENCY["A100-SXM-80GB"]
        assert PerfModel(RTX4070S).efficiency.tensor == 0.65

    def test_theoretical_peak_ignores_efficiency(self):
        model = PerfModel(RTX4070S)
        peak = model.theoretical_peak(36e12, 0)
        assert peak.tensor_s == pytest.approx(1.0)

    def test_int_ops_charged_to_cuda_engine(self):
        model = PerfModel(RTX4070S, Efficiency(1, 1, 1, 1, 1))
        c = Counters(int_ops=int(4 * 17.7e12))
        t = model.estimate(c)
        assert t.cuda_s == pytest.approx(1.0)

    def test_l1_reuse_discount(self):
        eff = Efficiency(1, 1, 1, 1, l1_reuse=0.5)
        model = PerfModel(RTX4070S, eff)
        t = model.estimate(make_counters(l1=int(2 * 17.8e12)))
        assert t.l1_s == pytest.approx(1.0)


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_speedup(self):
        assert speedup(2.0, 1.0) == 2.0
