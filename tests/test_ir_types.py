"""Tests for repro.ir.types."""

import numpy as np
import pytest

from repro.ir.types import (
    BFloat,
    Bool,
    DataType,
    Float,
    Int,
    TypeCode,
    UInt,
    promote,
)


class TestConstruction:
    def test_scalar_flags(self):
        t = Int(32)
        assert t.is_scalar()
        assert not t.is_vector()
        assert t.is_int()

    def test_vector_flags(self):
        t = Float(32, 8)
        assert t.is_vector()
        assert t.lanes == 8
        assert t.is_float()

    def test_bfloat_is_float(self):
        assert BFloat(16).is_float()
        assert BFloat(16).is_bfloat()
        assert not Float(16).is_bfloat()

    def test_bool(self):
        assert Bool().is_bool()
        assert Bool().bits == 1

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            DataType(TypeCode.INT, 0, 1)

    def test_invalid_lanes(self):
        with pytest.raises(ValueError):
            DataType(TypeCode.INT, 32, 0)


class TestDerived:
    def test_element_of(self):
        assert Float(32, 16).element_of() == Float(32)

    def test_with_lanes(self):
        assert Int(32).with_lanes(4) == Int(32, 4)

    def test_widen_lanes(self):
        assert Float(16, 2).widen_lanes(8) == Float(16, 16)

    def test_bytes(self):
        assert Float(32, 4).bytes() == 16
        assert BFloat(16, 8).bytes() == 16
        assert Bool(8).bytes() == 8  # 1 byte per bool lane


class TestNumpy:
    def test_float32(self):
        assert Float(32).to_numpy() == np.dtype(np.float32)

    def test_float16(self):
        assert Float(16).to_numpy() == np.dtype(np.float16)

    def test_bfloat_stored_as_float32(self):
        assert BFloat(16).to_numpy() == np.dtype(np.float32)

    def test_ints(self):
        assert Int(8).to_numpy() == np.dtype(np.int8)
        assert UInt(16).to_numpy() == np.dtype(np.uint16)

    def test_bool(self):
        assert Bool().to_numpy() == np.dtype(np.bool_)


class TestNames:
    def test_scalar_names(self):
        assert str(Float(32)) == "float32"
        assert str(BFloat(16)) == "bfloat16"
        assert str(Bool()) == "bool"

    def test_vector_names(self):
        assert str(Float(32, 8192)) == "float32x8192"


class TestPromotion:
    def test_same(self):
        assert promote(Int(32), Int(32)) == Int(32)

    def test_float_beats_int(self):
        assert promote(Int(32), Float(32)) == Float(32)
        assert promote(Float(16), Int(64)) == Float(16)

    def test_wider_wins(self):
        assert promote(Int(16), Int(32)) == Int(32)
        assert promote(Float(64), Float(32)) == Float(64)

    def test_float_beats_bfloat_at_same_width(self):
        assert promote(Float(16), BFloat(16)) == Float(16)

    def test_int_beats_uint(self):
        assert promote(Int(32), UInt(32)) == Int(32)

    def test_scalar_broadcasts_to_vector(self):
        assert promote(Int(32), Int(32, 8)) == Int(32, 8)

    def test_vector_lane_mismatch_raises(self):
        with pytest.raises(ValueError):
            promote(Int(32, 4), Int(32, 8))
