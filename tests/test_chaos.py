"""Chaos-soak invariant suite (``repro.service.chaos``).

Each test case is one seeded soak: a random composition of fault modes
fires against a long mixed workload (two shape buckets, random deadline
budgets, priority classes, idempotence flags, sometimes a mid-stream
rolling restart) and the invariant checker must come back empty —
exactly-one terminal outcome per request, bitwise parity on successes,
at-most-once for ``idempotent=False``, stats conservation, and clean
process/shm teardown.

``REPRO_CHAOS_SEEDS`` bounds the sweep (default 25 locally; CI sets a
smaller cap with a wall-clock ceiling).  A failure message carries the
seed, so every violation replays exactly with
``run_soak(seed, cache_dir=...)``.
"""

import os

import pytest

from repro.service.chaos import SoakReport, random_fault_plan, run_soak
from repro.service.faults import FaultPlan

pytestmark = pytest.mark.chaos

SEEDS = range(int(os.environ.get("REPRO_CHAOS_SEEDS", "25")))


@pytest.fixture(scope="module")
def soak_cache(tmp_path_factory):
    """One shared artifact store: later soaks warm-start their workers."""
    return str(tmp_path_factory.mktemp("chaos-store"))


def test_fault_plan_is_deterministic():
    """Same seed, same plan — the replay contract of every report."""
    first = random_fault_plan(1234)
    second = random_fault_plan(1234)
    assert [spec.label for spec in first.specs] == [
        spec.label for spec in second.specs
    ]
    assert isinstance(first, FaultPlan)
    assert first.specs, "a chaos plan must contain at least one fault"


def test_fault_plans_cover_the_mode_space():
    """Across a modest seed range the draw exercises every mode."""
    drawn = set()
    for seed in range(64):
        for spec in random_fault_plan(seed).specs:
            drawn.add(spec.mode)
    from repro.service.chaos import _DISRUPTIVE_MODES, _RATE_MODES

    assert drawn == set(_RATE_MODES + _DISRUPTIVE_MODES)


@pytest.mark.parametrize("seed", SEEDS)
def test_soak_invariants(seed, soak_cache):
    """The full soak for one seed: every invariant must hold."""
    report = run_soak(seed, cache_dir=soak_cache)
    assert isinstance(report, SoakReport)
    assert report.ok, (
        f"seed {seed} violated {len(report.violations)} invariant(s)"
        f" (plan={report.plan}, action={report.action}):"
        f" {report.violations}"
    )
    # the workload always contains admitted requests and tiny budgets,
    # so a passing soak must have both completions and expiries
    assert report.submitted > 0
    assert report.completed > 0
    assert report.expired > 0
