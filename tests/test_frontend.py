"""Tests for the user-facing DSL: Funcs, schedules, dim bookkeeping."""

import pytest

from repro import frontend as hl
from repro.ir import Call, CallType, ForKind, MemoryType


class TestDefinition:
    def test_pure_definition(self):
        x, y = hl.Var("x"), hl.Var("y")
        f = hl.Func("f")
        f[x, y] = 1.0
        assert f.defined
        assert f.dimensions == 2
        assert f.arg_names == ["x", "y"]

    def test_pure_args_must_be_vars(self):
        x = hl.Var("x")
        f = hl.Func("f")
        with pytest.raises(TypeError):
            f[x + 1] = 1.0

    def test_duplicate_args_rejected(self):
        x = hl.Var("x")
        f = hl.Func("f")
        with pytest.raises(ValueError):
            f[x, x] = 1.0

    def test_update_definition_via_iadd(self):
        x = hl.Var("x")
        r = hl.RDom(0, 4, name="r_upd")
        f = hl.Func("f")
        f[x] = 0.0
        f[x] += hl.f32(r.to_expr())
        assert len(f.updates) == 1
        assert "r_upd" in f.updates[0].rvars

    def test_update_before_pure_fails(self):
        x = hl.Var("x")
        f = hl.Func("f")
        with pytest.raises(ValueError):
            f[x] += 1.0

    def test_func_call_expr_carries_func(self):
        x = hl.Var("x")
        f = hl.Func("f")
        f[x] = 2.0
        e = f[x].to_expr()
        assert isinstance(e, Call)
        assert e.call_type == CallType.HALIDE
        assert e.func is f

    def test_image_param_indexing(self):
        img = hl.ImageParam(hl.Float(32), 2, name="img")
        x, y = hl.Var("x"), hl.Var("y")
        e = img[x, y]
        assert e.call_type == CallType.IMAGE
        with pytest.raises(ValueError):
            img[x]

    def test_dtype_from_definition(self):
        x = hl.Var("x")
        f = hl.Func("f")
        f[x] = hl.cast(hl.BFloat(16), 1.0)
        assert f.dtype == hl.BFloat(16)


class TestScheduleDims:
    def make(self):
        x, y = hl.Var("x"), hl.Var("y")
        f = hl.Func("f")
        f[x, y] = 1.0
        return f, x, y

    def test_default_dims_innermost_first(self):
        f, x, y = self.make()
        assert [d.var for d in f.pure.dims] == ["x", "y"]

    def test_split_replaces_dim(self):
        f, x, y = self.make()
        xo, xi = hl.Var("xo"), hl.Var("xi")
        f.split(x, xo, xi, 8)
        assert [d.var for d in f.pure.dims] == ["xi", "xo", "y"]

    def test_split_reusing_old_name(self):
        f, x, y = self.make()
        xi = hl.Var("xi")
        f.split(x, x, xi, 8)
        assert [d.var for d in f.pure.dims] == ["xi", "x", "y"]

    def test_vectorize_with_factor_splits(self):
        f, x, y = self.make()
        f.vectorize(x, 8)
        dims = f.pure.dims
        assert dims[0].kind == ForKind.VECTORIZED
        assert dims[0].var.endswith("i")

    def test_reorder_innermost_first(self):
        f, x, y = self.make()
        f.reorder(y, x)
        assert [d.var for d in f.pure.dims] == ["y", "x"]

    def test_reorder_subset(self):
        f, x, y = self.make()
        xo, xi = hl.Var("xo"), hl.Var("xi")
        f.split(x, xo, xi, 8)  # [xi, xo, y]
        f.reorder(xi, y)  # y moves inward, xo stays put
        assert [d.var for d in f.pure.dims] == ["xi", "xo", "y"]
        f.reorder(y, xi)
        assert [d.var for d in f.pure.dims] == ["y", "xo", "xi"]

    def test_unknown_var_raises(self):
        f, x, y = self.make()
        with pytest.raises(KeyError):
            f.vectorize(hl.Var("nope"))

    def test_update_dims_rvar_innermost(self):
        x = hl.Var("x")
        r = hl.RDom(0, 4, name="r_dims")
        f = hl.Func("f")
        f[x] = 0.0
        f[x] += hl.f32(x + r)
        assert [d.var for d in f.update().dims] == ["r_dims", "x"]

    def test_atomic_flag(self):
        x = hl.Var("x")
        r = hl.RDom(0, 4, name="r_at")
        f = hl.Func("f")
        f[x] = 0.0
        f[x] += 1.0
        f.update().atomic()
        assert f.update().atomic_flag

    def test_bound_validates_args(self):
        f, x, y = self.make()
        f.bound(x, 0, 16)
        assert f.explicit_bounds["x"] == (0, 16)
        with pytest.raises(KeyError):
            f.bound(hl.Var("z"), 0, 4)

    def test_store_in(self):
        f, x, y = self.make()
        f.store_in(MemoryType.AMX_TILE)
        assert f.memory_type == MemoryType.AMX_TILE

    def test_in_wrapper(self):
        f, x, y = self.make()
        w = f.in_()
        assert w.defined
        assert w.arg_names == f.arg_names
        assert f.in_() is w  # cached

    def test_reorder_storage(self):
        f, x, y = self.make()
        f.reorder_storage(y, x)
        assert f.storage_order == ["y", "x"]
        with pytest.raises(ValueError):
            f.reorder_storage(x, x)

    def test_tile(self):
        f, x, y = self.make()
        xi, yi = hl.Var("xi"), hl.Var("yi")
        f.tile(x, y, xi, yi, 4, 8)
        assert [d.var for d in f.pure.dims] == ["xi", "yi", "x", "y"]


class TestRDom:
    def test_1d_acts_as_var(self):
        r = hl.RDom(2, 10, name="rq")
        assert r.name == "rq"
        assert r.x.min_value == 2
        assert r.x.extent == 10

    def test_multi_dim(self):
        r = hl.RDom([(0, 3), (1, 5)], name="r2")
        assert len(r) == 2
        assert r.x.name == "r2.x"
        assert r.y.min_value == 1
        with pytest.raises(TypeError):
            r.to_expr()

    def test_expr_arithmetic(self):
        r = hl.RDom(0, 4, name="ra")
        e = r * 2 + 1
        from repro.ir import free_variables

        assert free_variables(e) == {"ra"}
