"""Mutation self-test of the static verification subsystem.

Each analyzer must *detect the defect class it exists for*: every test
here seeds one specific defect — an unbound IR variable, an
out-of-bounds index, an illegal accumulator access, an unsound rewrite
rule, an unpaired arena take, a nondeterministic kernel, an unguarded
field — and asserts the corresponding check fires with the right id.
A verifier that silently passes broken input is worse than none, so
this suite is the analyzers' own regression gate (``pytest -m
analysis``).

The flip side is the clean run: every fig-6 app at both schedule
variants must produce **zero** findings end-to-end (lowered IR,
tensorized IR, scalar kernel, batch-axis kernel), and the verifier must
stay cheap enough (< ~5% of compile time) that ``warm_compile`` can
afford to gate every restore through it by default.
"""

import dataclasses
import threading
import time
from types import SimpleNamespace

import pytest
from conftest import SIMPLE_APP_IDS, SIMPLE_APPS, VARIANTS

from repro.analysis import (
    AnalysisError,
    apply_waivers,
    errors,
    lint_concurrency,
    lint_kernel_source,
    lint_rule,
    lint_rules,
    lint_source,
    parse_waivers,
    verify_ir,
)
from repro.analysis.lint_rules import lint_family
from repro.analysis.sweep import FIG6_APPS, analyze_app
from repro.eqsat.ematch import CompiledQuery
from repro.eqsat.pattern import PApp, PVar
from repro.eqsat.rules import GuardAtom, rewrite
from repro.ir import expr as E
from repro.ir import stmt as S
from repro.ir.types import Float, Int

pytestmark = pytest.mark.analysis

f32 = Float(32)
i32 = Int(32)


def checks(findings):
    return {finding.check for finding in findings}


def alloc(body, name="buf", extent=8, memory_type=S.MemoryType.HEAP):
    return S.Allocate(name, f32, (E.IntImm(extent),), memory_type, body)


def store(name="buf", index=0, value=1.0):
    return S.Store(name, E.IntImm(index), E.FloatImm(value))


def acc_realizations(name="acc"):
    """A realization map declaring one WMMA accumulator buffer."""
    return {
        name: SimpleNamespace(
            func=None,
            extents=(E.IntImm(256),),
            memory_type=S.MemoryType.WMMA_ACCUMULATOR,
        )
    }


# -- IR verifier: one seeded defect per well-formedness class ------------------


class TestVerifyIRMutations:
    def test_use_before_def(self):
        bad = alloc(
            S.Store("buf", E.Variable("phantom"), E.FloatImm(0.0))
        )
        assert "ir.use-before-def" in checks(verify_ir(bad))

    def test_bound_loop_var_is_fine(self):
        ok = alloc(
            S.For(
                "i",
                E.IntImm(0),
                E.IntImm(8),
                S.ForKind.SERIAL,
                S.Store("buf", E.Variable("i"), E.FloatImm(0.0)),
            )
        )
        assert verify_ir(ok) == []

    def test_out_of_bounds_store(self):
        bad = alloc(store(index=16), extent=8)
        assert "ir.out-of-bounds" in checks(verify_ir(bad))

    def test_out_of_bounds_through_loop_range(self):
        # i in [0, 12) stores into an 8-element buffer
        bad = alloc(
            S.For(
                "i",
                E.IntImm(0),
                E.IntImm(12),
                S.ForKind.SERIAL,
                S.Store("buf", E.Variable("i"), E.FloatImm(0.0)),
            ),
            extent=8,
        )
        assert "ir.out-of-bounds" in checks(verify_ir(bad))

    def test_undeclared_buffer_store(self):
        bad = store(name="ghost")
        assert "ir.undeclared-buffer" in checks(verify_ir(bad))

    def test_allocate_shadowing_warns(self):
        bad = alloc(alloc(store()))
        findings = verify_ir(bad)
        assert "ir.allocate-shadow" in checks(findings)
        assert errors(findings) == []  # a warning, not a gate failure

    def test_plain_accumulator_store_rejected_post_selection(self):
        bad = S.Store("acc", E.IntImm(0), E.FloatImm(0.0))
        findings = verify_ir(
            bad, acc_realizations(), phase="tensorized"
        )
        assert "ir.accumulator-access" in checks(findings)

    def test_plain_accumulator_load_rejected_post_selection(self):
        bad = S.Evaluate(E.Load(f32, "acc", E.IntImm(0)))
        findings = verify_ir(
            bad, acc_realizations(), phase="tensorized"
        )
        assert "ir.accumulator-access" in checks(findings)

    def test_intrinsic_accumulator_traffic_is_legal(self):
        # the post-selection idiom: fill/mma values stored whole-tile,
        # accumulator state read only as an intrinsic operand
        fill = S.Store(
            "acc",
            E.IntImm(0),
            E.Call(f32, "wmma.fill.sync", (), E.CallType.INTRINSIC),
        )
        movement = S.Evaluate(
            E.Call(
                f32,
                "wmma.store.d.sync",
                (E.Load(f32, "acc", E.IntImm(0)),),
                E.CallType.INTRINSIC,
            )
        )
        ok = S.Block((fill, movement))
        assert verify_ir(ok, acc_realizations(), phase="tensorized") == []

    def test_unmapped_stores_are_exempt_from_accumulator_rule(self):
        # strict=False selection can leave a store in plain form; the
        # interpreter fallback executes it, so it must not be an error
        bad = S.Store("acc", E.IntImm(0), E.FloatImm(0.0))
        findings = verify_ir(
            bad, acc_realizations(), phase="tensorized", unmapped={"acc"}
        )
        assert "ir.accumulator-access" not in checks(findings)

    def test_lowered_phase_has_no_accumulator_rule(self):
        bad = S.Store("acc", E.IntImm(0), E.FloatImm(0.0))
        assert verify_ir(bad, acc_realizations(), phase="lowered") == []

    def test_type_kind_mismatch(self):
        realizations = {
            "q": SimpleNamespace(
                func=SimpleNamespace(dtype=i32),
                extents=(E.IntImm(8),),
                memory_type=S.MemoryType.HEAP,
            )
        }
        bad = S.Store("q", E.IntImm(0), E.FloatImm(1.5))
        findings = verify_ir(bad, realizations)
        assert "ir.type-mismatch" in checks(findings)
        assert errors(findings) != []

    def test_stride_zero_env_read(self):
        bad = alloc(
            S.Store(
                "buf", E.Variable("data.stride.0"), E.FloatImm(0.0)
            )
        )
        assert "ir.env-stride-zero" in checks(verify_ir(bad))


# -- rule-soundness lint -------------------------------------------------------


def _commute():
    x, y = PVar("x"), PVar("y")
    return rewrite(
        "commute-add", PApp("Add", (x, y)), PApp("Add", (y, x))
    )


class TestLintRulesMutations:
    def test_unbound_rhs_variable(self):
        bad = rewrite(
            "bad-rhs",
            PApp("Add", (PVar("x"), PVar("y"))),
            PVar("nowhere"),
        )
        assert "rules.unbound-rhs" in checks(lint_rule(bad))

    def test_impure_guard(self):
        bad = rewrite(
            "bad-guard",
            PApp("Add", (PVar("x"), PVar("y"))),
            PVar("x"),
            when=[GuardAtom("spawn_subprocess", (PVar("x"),))],
        )
        assert "rules.impure-guard" in checks(lint_rule(bad))

    def test_delta_safety_tamper_detected(self):
        rule = _commute()
        good = rule.compiled()
        tampered = CompiledQuery(
            good.instructions,
            good.n_regs,
            good.var_slots,
            not good.delta_safe,
            good.depth,
        )
        findings = lint_rule(rule, compiled=tampered)
        assert "rules.delta-safety" in checks(findings)

    def test_depth_tamper_detected(self):
        rule = _commute()
        good = rule.compiled()
        tampered = CompiledQuery(
            good.instructions,
            good.n_regs,
            good.var_slots,
            good.delta_safe,
            good.depth + 3,
        )
        findings = lint_rule(rule, compiled=tampered)
        assert "rules.delta-safety" in checks(findings)

    def test_untampered_rule_is_clean(self):
        assert lint_rule(_commute()) == []

    def test_shadowed_lhs_across_family(self):
        first = rewrite(
            "first", PApp("Add", (PVar("x"), PVar("y"))), PVar("x")
        )
        # alpha-renamed copy of the same query: can never contribute
        shadow = rewrite(
            "shadow", PApp("Add", (PVar("a"), PVar("b"))), PVar("a")
        )
        findings = lint_family("fam", [first, shadow])
        assert "rules.shadowed-lhs" in checks(findings)

    def test_trivial_rewrite(self):
        x, y = PVar("x"), PVar("y")
        noop = rewrite(
            "noop", PApp("Add", (x, y)), PApp("Add", (x, y))
        )
        assert "rules.trivial-rewrite" in checks(lint_rule(noop))

    def test_registered_families_are_sound(self):
        assert lint_rules() == []


# -- generated-kernel lint -----------------------------------------------------

KERNEL_HEADER = "def _kernel(buffers, env, _interp, _arena):\n"


class TestLintKernelsMutations:
    def test_dropped_give(self):
        src = (
            KERNEL_HEADER
            + "    t0 = _take(_arena, 'tmp', None, (8,), None)\n"
            + "    return None\n"
        )
        assert "kernels.arena-pairing" in checks(lint_kernel_source(src))

    def test_give_without_take(self):
        src = KERNEL_HEADER + "    _give(_arena, mystery)\n"
        assert "kernels.arena-pairing" in checks(lint_kernel_source(src))

    def test_paired_take_give_is_clean(self):
        src = (
            KERNEL_HEADER
            + "    t0 = _take(_arena, 'tmp', None, (8,), None)\n"
            + "    _give(_arena, t0)\n"
            + "    return None\n"
        )
        assert lint_kernel_source(src) == []

    def test_injected_wall_clock(self):
        src = (
            KERNEL_HEADER
            + "    import time\n"
            + "    t = time.time()\n"
            + "    return t\n"
        )
        assert "kernels.nondeterminism" in checks(lint_kernel_source(src))

    def test_hash_seeded_iteration_order(self):
        src = (
            KERNEL_HEADER
            + "    for k in set(buffers):\n"
            + "        pass\n"
        )
        assert "kernels.order-dependence" in checks(
            lint_kernel_source(src)
        )

    def test_unpublished_env_key(self):
        src = KERNEL_HEADER + "    return env['mystery.knob']\n"
        findings = lint_kernel_source(
            src, published_env={"data.stride.1"}
        )
        assert "kernels.env-key" in checks(findings)

    def test_published_env_key_is_clean(self):
        src = KERNEL_HEADER + "    return env['data.stride.1']\n"
        assert lint_kernel_source(
            src, published_env={"data.stride.1"}
        ) == []

    def test_batch_size_requires_batched_plan(self):
        src = KERNEL_HEADER + "    return env['batch.size']\n"
        published = {"data.stride.1"}
        assert "kernels.env-key" in checks(
            lint_kernel_source(src, published_env=published)
        )
        assert (
            lint_kernel_source(
                src, published_env=published, batched=True
            )
            == []
        )

    def test_syntax_error(self):
        assert "kernels.syntax" in checks(
            lint_kernel_source("def _kernel(:\n")
        )


# -- concurrency lint ----------------------------------------------------------

_COUNTER_TEMPLATE = """
import threading

class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0  # guarded-by: {lock}

    def bump(self):
        with self._lock:
            self.count += 1

    def peek(self):
        return self.count{waiver}
"""


class TestLintConcurrencyMutations:
    def test_unguarded_read(self):
        src = _COUNTER_TEMPLATE.format(lock="_lock", waiver="")
        findings = lint_source(src, "counter.py")
        assert "concurrency.guarded-by" in checks(findings)
        assert any("peek" in f.message for f in findings)

    def test_waiver_suppresses_the_finding(self):
        src = _COUNTER_TEMPLATE.format(
            lock="_lock", waiver="  # analysis: ignore[guarded-by]"
        )
        assert lint_source(src, "counter.py") == []

    def test_unknown_lock_warns(self):
        src = _COUNTER_TEMPLATE.format(
            lock="_mutex", waiver="  # analysis: ignore[guarded-by]"
        )
        findings = lint_source(src, "counter.py")
        assert "concurrency.unknown-lock" in checks(findings)

    def test_locked_suffix_convention(self):
        src = """
import threading

class Q:
    def __init__(self):
        self._lock = threading.Lock()
        self.items = []  # guarded-by: _lock

    def _drain_locked(self):
        return list(self.items)

    def drain(self):
        with self._lock:
            return self._drain_locked()
"""
        assert lint_source(src, "q.py") == []

    def test_inline_guard_comment_does_not_leak_to_next_line(self):
        src = """
import threading

class C:
    def __init__(self):
        self._lock = threading.Lock()
        self.a = 0  # guarded-by: _lock
        self.b = 0

    def read_b(self):
        return self.b
"""
        assert lint_source(src, "c.py") == []

    def test_repo_modules_are_clean(self):
        assert errors(lint_concurrency()) == []


# -- waiver plumbing -----------------------------------------------------------


def test_waiver_parse_and_apply():
    src = "x = 1\ny = 2  # analysis: ignore[out-of-bounds]\nz = 3\n"
    waivers = parse_waivers(src)
    # the short form waives the fully-qualified check id
    assert waivers.waived(2, "ir.out-of-bounds")
    assert not waivers.waived(1, "ir.out-of-bounds")
    assert not waivers.waived(2, "ir.use-before-def")

    from repro.analysis import ERROR, Finding

    hit = Finding("ir.out-of-bounds", ERROR, "m.py:2", "boom")
    miss = Finding("ir.out-of-bounds", ERROR, "m.py:3", "boom")
    kept = apply_waivers(
        [hit, miss], waivers, lambda f: int(f.site.rsplit(":", 1)[1])
    )
    assert kept == [miss]


# -- clean run: the fig-6 suite produces zero findings -------------------------


@pytest.mark.parametrize("variant", VARIANTS)
@pytest.mark.parametrize(
    "module,params",
    SIMPLE_APPS,
    ids=SIMPLE_APP_IDS,
)
def test_fig6_clean(module, params, variant):
    name = module.__name__.rsplit(".", 1)[-1]
    findings = analyze_app(name, params, variant)
    assert findings == [], "\n".join(str(f) for f in findings)


def test_fig6_table_matches_conftest():
    """The sweep's app table must track the tier-1 suite's sizes."""
    expected = {
        m.__name__.rsplit(".", 1)[-1]: p for m, p in SIMPLE_APPS
    }
    assert dict(FIG6_APPS) == expected


# -- gates ---------------------------------------------------------------------


def test_lower_verify_gate_runs_and_times():
    from repro.apps import conv1d
    from repro.lowering import lower

    app = conv1d.build("tensor", taps=8, rows=1)
    lowered = lower(app.output, verify=True)
    assert "verify" in lowered.pass_seconds


def test_select_verify_gate(tmp_path):
    from repro.apps import conv1d
    from repro.hardboiled import select_instructions
    from repro.lowering import lower

    app = conv1d.build("tensor", taps=8, rows=1)
    tensorized, _ = select_instructions(
        lower(app.output), strict=True, verify=True
    )
    assert "verify" in tensorized.pass_seconds


def test_broken_ir_raises_analysis_error():
    from repro.analysis import check_ir

    bad = alloc(store(index=64), extent=8)
    with pytest.raises(AnalysisError) as excinfo:
        check_ir(bad)
    assert "ir.out-of-bounds" in str(excinfo.value)


def test_stale_artifact_demoted_to_miss(tmp_path):
    """A tampered artifact statement fails verification on restore and
    is recompiled cold instead of being executed."""
    from repro.apps import conv1d
    from repro.lowering import lower
    from repro.service.compile import warm_select
    from repro.service.store import ArtifactStore

    app = conv1d.build("tensor", taps=8, rows=1)
    store_ = ArtifactStore(tmp_path)
    cold = warm_select(lower(app.output), store_, backend="interpret")
    assert not cold.hit
    warm = warm_select(lower(app.output), store_, backend="interpret")
    assert warm.hit

    artifact = store_.get(cold.key)
    lowered = lower(app.output)
    out_name = lowered.output.name
    bad_stmt = S.Store(out_name, E.IntImm(10**9), E.FloatImm(0.0))
    store_.put(cold.key, dataclasses.replace(artifact, stmt=bad_stmt))

    demoted = warm_select(lower(app.output), store_, backend="interpret")
    assert not demoted.hit  # verification failed -> recompiled cold
    # the recompile overwrote the poisoned artifact; next call hits
    healed = warm_select(lower(app.output), store_, backend="interpret")
    assert healed.hit


def test_verify_cost_stays_under_five_percent():
    """The warm-path gate must be cheap relative to a cold compile, or
    it could not default on in ``warm_compile``."""
    from repro.apps import attention
    from repro.hardboiled import select_instructions
    from repro.lowering import lower

    app = attention.build("tensor", length=128)
    start = time.perf_counter()
    lowered = lower(app.output)
    tensorized, _ = select_instructions(lowered, strict=True)
    compile_seconds = time.perf_counter() - start

    verify_seconds = min(
        _timed_verify(tensorized) for _ in range(3)
    )
    assert verify_seconds < 0.05 * compile_seconds, (
        f"verify_ir took {verify_seconds * 1e3:.1f} ms against a"
        f" {compile_seconds * 1e3:.1f} ms compile"
    )


def _timed_verify(tensorized):
    start = time.perf_counter()
    findings = verify_ir(
        tensorized.stmt, tensorized.realizations, phase="tensorized"
    )
    assert findings == []
    return time.perf_counter() - start


def test_batched_kernel_lookup_is_thread_safe():
    """Regression for the unlocked ``_batched`` dict: concurrent
    lookups must all observe the one cached kernel."""
    from repro.apps import conv1d

    app = conv1d.build("tensor", taps=16, rows=1)
    app.backend = "compile"
    pipe = app.compile()
    names = [p.name for p in app.inputs]
    split = frozenset([names[0], pipe.output_name])
    first = pipe.batched_kernel(split)
    assert first is not None

    results = []
    barrier = threading.Barrier(8)

    def worker():
        barrier.wait()
        results.append(pipe.batched_kernel(split))

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert all(kernel is first for kernel in results)
    assert len(pipe._batched) == 1
