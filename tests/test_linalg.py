"""Property and unit tests for the linalg substrates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import (
    build_resample_matrix,
    conv1d_reference,
    conv_toeplitz,
    dct2,
    dct_matrix,
    direct_dct_flop_count,
    downsample_toeplitz,
    fast_dct,
    fast_dct_flop_count,
    hoppe_tiled_filter,
    idct2,
    idct_matrix,
    lanczos,
    recursive_filter_serial,
    resample_2d,
    sla_decompose,
    sla_filter,
    upsample_matrix,
)


class TestToeplitz:
    @settings(max_examples=20, deadline=None)
    @given(taps=st.sampled_from([4, 8, 16]), seed=st.integers(0, 50))
    def test_property_conv_toeplitz(self, taps, seed):
        rng = np.random.default_rng(seed)
        kernel = rng.standard_normal(taps).astype(np.float32)
        outputs = 16
        signal = rng.standard_normal(outputs + taps).astype(np.float32)
        a = conv_toeplitz(kernel, outputs)
        out = signal @ a
        ref = conv1d_reference(signal, kernel)[: outputs]
        np.testing.assert_allclose(out, ref, rtol=1e-3, atol=1e-4)

    def test_downsample_toeplitz(self):
        rng = np.random.default_rng(5)
        kernel = rng.standard_normal(8).astype(np.float32)
        outputs = 8
        signal = rng.standard_normal(2 * outputs + 8).astype(np.float32)
        a = downsample_toeplitz(kernel, outputs)
        out = signal @ a
        ref = np.array(
            [(signal[2 * j : 2 * j + 8] * kernel).sum() for j in range(outputs)]
        )
        np.testing.assert_allclose(out, ref, rtol=1e-3, atol=1e-4)

    def test_upsample_matrix_phases(self):
        rng = np.random.default_rng(7)
        kernel = rng.standard_normal(8).astype(np.float32)
        in_pos = 8
        signal = rng.standard_normal(in_pos + 4).astype(np.float32)
        a = upsample_matrix(kernel, in_pos)
        out = signal @ a
        # out[2u + p] = sum_r I[u + r] * K[2r + p]
        for j in range(2 * in_pos):
            u, p = divmod(j, 2)
            ref = sum(
                signal[u + r] * kernel[2 * r + p] for r in range(4)
            )
            np.testing.assert_allclose(out[j], ref, rtol=1e-3, atol=1e-4)


class TestDCT:
    def test_orthonormal(self):
        d = dct_matrix(16)
        np.testing.assert_allclose(d @ d.T, np.eye(16), atol=1e-12)

    def test_roundtrip(self):
        rng = np.random.default_rng(11)
        x = rng.standard_normal((4, 16))
        np.testing.assert_allclose(idct2(dct2(x)), x, atol=1e-12)

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.sampled_from([2, 4, 8, 16, 32]), seed=st.integers(0, 50)
    )
    def test_property_fast_dct_matches_direct(self, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((3, n))
        np.testing.assert_allclose(fast_dct(x), dct2(x), atol=1e-10)

    def test_flop_counts_match_paper_ratio(self):
        # paper §V-E: direct 16-point DCT does ~3.6x the FLOPs of fast
        ratio = direct_dct_flop_count(16) / fast_dct_flop_count(16)
        assert 2.0 < ratio < 5.0

    def test_dc_component(self):
        x = np.full((1, 16), 2.0)
        coeffs = dct2(x)
        assert abs(coeffs[0, 0] - 2.0 * np.sqrt(16)) < 1e-10
        np.testing.assert_allclose(coeffs[0, 1:], 0, atol=1e-12)


class TestLanczos:
    def test_kernel_properties(self):
        assert lanczos(np.array([0.0]))[0] == pytest.approx(1.0)
        np.testing.assert_allclose(
            lanczos(np.array([1.0, 2.0, 3.0, 4.0])), [0, 0, 0, 0], atol=1e-12
        )

    def test_constant_image_preserved(self):
        matrix = build_resample_matrix(64, 23)
        ones = np.ones((64, 5), dtype=np.float32)
        out = matrix.apply(ones)
        np.testing.assert_allclose(out, 1.0, atol=1e-4)

    def test_block_sparse_matches_dense(self):
        rng = np.random.default_rng(13)
        matrix = build_resample_matrix(64, 23)
        columns = rng.standard_normal((64, 4)).astype(np.float32)
        np.testing.assert_allclose(
            matrix.apply(columns),
            matrix.to_dense() @ columns,
            rtol=1e-4,
            atol=1e-4,
        )

    def test_band_width_rounded_to_16(self):
        matrix = build_resample_matrix(2048, 143)
        assert matrix.width % 16 == 0

    def test_2d_resize_shape_and_smoothness(self):
        rng = np.random.default_rng(17)
        image = rng.standard_normal((64, 48)).astype(np.float32)
        out = resample_2d(image, 23, 17)
        assert out.shape == (23, 17)
        smooth = resample_2d(np.ones((64, 48), np.float32), 23, 17)
        np.testing.assert_allclose(smooth, 1.0, atol=1e-3)


class TestRecursiveFilter:
    A, B = 1.2, -0.5  # stable complex-pole pair

    def signal(self, n=512, seed=19):
        return np.random.default_rng(seed).standard_normal(n)

    def test_serial_reference(self):
        y = recursive_filter_serial(np.array([1.0, 0.0, 0.0]), 0.5, 0.0)
        np.testing.assert_allclose(y, [1.0, 0.5, 0.25])

    @settings(max_examples=15, deadline=None)
    @given(d=st.sampled_from([2, 4, 8]), seed=st.integers(0, 30))
    def test_property_sla_equals_serial(self, d, seed):
        x = np.random.default_rng(seed).standard_normal(256)
        ref = recursive_filter_serial(x, self.A, self.B)
        out = sla_filter(x, self.A, self.B, d)
        np.testing.assert_allclose(out, ref, rtol=1e-8, atol=1e-8)

    def test_sla_fir_length(self):
        fir, a_d, b_d = sla_decompose(self.A, self.B, 8)
        assert len(fir) == 2 * 8 - 1
        assert fir[0] == pytest.approx(1.0)

    @settings(max_examples=15, deadline=None)
    @given(tile=st.sampled_from([32, 64, 128]), seed=st.integers(0, 30))
    def test_property_hoppe_equals_serial(self, tile, seed):
        x = np.random.default_rng(seed).standard_normal(512)
        ref = recursive_filter_serial(x, self.A, self.B)
        out = hoppe_tiled_filter(x, self.A, self.B, tile)
        np.testing.assert_allclose(out, ref, rtol=1e-8, atol=1e-8)

    def test_unstable_dilation_still_exact(self):
        # decomposition is algebraically exact even near instability
        x = self.signal(128)
        ref = recursive_filter_serial(x, 1.8, -0.81)
        out = sla_filter(x, 1.8, -0.81, 4)
        np.testing.assert_allclose(out, ref, rtol=1e-6, atol=1e-6)
