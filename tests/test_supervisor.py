"""Supervised multi-process serving: crash/hang recovery, retry
budgets, at-most-once semantics, warm restarts, and pool lifecycle —
all driven by the deterministic fault-injection harness."""

import numpy as np
import pytest

from repro.service import CompileJob, compile_one
from repro.service.faults import KILL_EXIT_CODE, FaultPlan, FaultSpec
from repro.service.serve import RejectedError, ServerClosed
from repro.service.supervisor import (
    DeadlineExceeded,
    RemoteError,
    WorkerCrashed,
    WorkerPool,
)

pytestmark = pytest.mark.faults

#: the cuda variant skips equality saturation, so workers start fast
JOB = CompileJob.make("conv1d", "cuda", taps=8, rows=1)


@pytest.fixture(scope="module")
def reference():
    """The job's request dict and its unfaulted single-process output."""
    app = JOB.build_app()
    app.backend = "compile"
    request = {param.name: array for param, array in app.inputs.items()}
    expected = app.compile().run(request)
    return request, expected


class TestServing:
    def test_bit_identical_across_workers(self, reference):
        request, expected = reference
        with WorkerPool(JOB, workers=2) as pool:
            outputs = pool.run_many([request] * 6)
            assert all(np.array_equal(o, expected) for o in outputs)
            stats = pool.stats()
            assert stats["completed"] == 6
            assert stats["crashes"] == 0 and stats["restarts"] == 0

    def test_warm_start_from_artifact_store(self, tmp_path, reference):
        # tensor-variant job: workers re-hydrate saturation + kernel
        # artifacts from the shared store instead of recompiling
        job = CompileJob.make("conv1d", taps=8, rows=1)
        result = compile_one(job, str(tmp_path), "host")
        assert result.ok, result.error
        app = job.build_app()
        app.backend = "compile"
        request = {p.name: a for p, a in app.inputs.items()}
        expected = app.compile(cache_dir=str(tmp_path)).run(request)
        with WorkerPool(job, workers=1, cache_dir=str(tmp_path)) as pool:
            assert np.array_equal(pool.run(request), expected)


class TestCrashRecovery:
    def test_killed_worker_restarts_and_output_is_identical(
        self, reference
    ):
        """The acceptance scenario: kill a worker mid-batch, assert the
        served results are bit-identical to the unfaulted run and the
        recovery shows up in stats()."""
        request, expected = reference
        plan = FaultPlan(
            seed=3,
            specs=[
                FaultSpec(
                    "kill-worker",
                    visits=(0,),
                    scope={"incarnation": 0},
                )
            ],
        )
        with WorkerPool(
            JOB, workers=2, fault_plan=plan, retries=3
        ) as pool:
            outputs = pool.run_many([request] * 4)
            assert all(np.array_equal(o, expected) for o in outputs)
            stats = pool.stats()
            assert stats["crashes"] >= 1
            assert stats["restarts"] >= 1
            assert stats["retries"] >= 1
            assert stats["failed"] == 0
            # the replacement workers carry bumped incarnations
            assert any(
                worker["incarnation"] > 0 for worker in stats["workers"]
            )

    def test_hung_worker_killed_at_deadline(self, reference):
        """A hang longer than the budget: the worker is killed, the
        hung request's budget is spent so it expires terminally
        (retrying could never meet the latency contract), and a fresh
        request served by the respawned worker is bit-identical."""
        request, expected = reference
        plan = FaultPlan(
            specs=[
                FaultSpec(
                    "hang-kernel",
                    visits=(0,),
                    seconds=30.0,
                    scope={"incarnation": 0},
                )
            ]
        )
        with WorkerPool(
            JOB, workers=1, fault_plan=plan, retries=2, deadline=0.8
        ) as pool:
            hung = pool.submit(request)
            with pytest.raises(DeadlineExceeded):
                hung.result(timeout=60)
            after = pool.submit(request, deadline=60.0)
            assert np.array_equal(after.result(timeout=60), expected)
            stats = pool.stats()
            assert stats["deadline_kills"] >= 1
            assert stats["restarts"] >= 1
            assert stats["expired"] == 1
            assert stats["failed"] == 0  # expiry is its own terminal kind

    def test_remote_error_is_retried_in_place(self, reference):
        request, expected = reference
        plan = FaultPlan(
            specs=[
                FaultSpec(
                    "raise-in-kernel",
                    visits=(0, 1),
                    scope={"incarnation": 0},
                )
            ]
        )
        with WorkerPool(
            JOB, workers=1, fault_plan=plan, retries=3
        ) as pool:
            outputs = pool.run_many([request] * 3)
            assert all(np.array_equal(o, expected) for o in outputs)
            stats = pool.stats()
            # the worker survived: retries happened, no restarts
            assert stats["retries"] >= 1
            assert stats["crashes"] == 0 and stats["restarts"] == 0

    def test_retry_budget_exhausts_into_typed_error(self, reference):
        request, _ = reference
        # every incarnation fails every kernel call: unrecoverable
        plan = FaultPlan(
            specs=[FaultSpec("raise-in-kernel", rate=1.0)]
        )
        with WorkerPool(
            JOB, workers=1, fault_plan=plan, retries=1
        ) as pool:
            with pytest.raises(RemoteError) as excinfo:
                pool.run(request)
            assert excinfo.value.kind == "InjectedKernelError"
            assert "InjectedKernelError" in excinfo.value.remote_traceback
            stats = pool.stats()
            assert stats["failed"] == 1
            assert stats["retries"] == 1  # budget spent, then surfaced

    def test_at_most_once_is_never_redispatched(self, reference):
        request, _ = reference
        plan = FaultPlan(
            specs=[
                FaultSpec(
                    "kill-worker",
                    visits=(0,),
                    scope={"incarnation": 0},
                )
            ]
        )
        with WorkerPool(
            JOB, workers=1, fault_plan=plan, retries=3
        ) as pool:
            future = pool.submit(request, idempotent=False)
            with pytest.raises(WorkerCrashed) as excinfo:
                future.result(timeout=60)
            assert excinfo.value.exit_code == KILL_EXIT_CODE
            stats = pool.stats()
            assert stats["retries"] == 0  # at-most-once held
            assert stats["failed"] == 1


class TestLifecycle:
    def test_close_is_idempotent_and_rejects_new_work(self, reference):
        request, expected = reference
        pool = WorkerPool(JOB, workers=1)
        assert np.array_equal(pool.run(request), expected)
        pool.close()
        pool.close()
        with pytest.raises(ServerClosed, match="closed"):
            pool.submit(request)
        assert pool.stats()["closed"] is True

    def test_close_drains_in_flight_requests(self, reference):
        request, expected = reference
        pool = WorkerPool(JOB, workers=2)
        futures = [pool.submit(request) for _ in range(6)]
        pool.close()
        # nothing silently dropped: every accepted request completed
        assert all(
            np.array_equal(f.result(timeout=1), expected)
            for f in futures
        )

    def test_admission_rejects_when_full(self, reference):
        request, expected = reference
        plan = FaultPlan(
            specs=[
                FaultSpec(
                    "hang-kernel",
                    visits=(0,),
                    seconds=0.5,
                    scope={"incarnation": 0},
                )
            ]
        )
        with WorkerPool(
            JOB, workers=1, fault_plan=plan, max_pending=1
        ) as pool:
            first = pool.submit(request)  # hangs ~0.5s in the worker
            rejected = False
            for _ in range(200):
                if first.done():
                    break
                try:
                    pool.submit(request)
                except RejectedError:
                    rejected = True
                    break
            assert np.array_equal(first.result(timeout=60), expected)
            assert rejected
            assert pool.stats()["rejected"] >= 1

    def test_failed_init_eventually_fails_requests(self):
        bad_job = CompileJob.make("conv1d", "no-such-variant", taps=8, rows=1)
        with WorkerPool(bad_job, workers=1, max_restarts=4) as pool:
            future = pool.submit({})
            with pytest.raises((WorkerCrashed, Exception)):
                future.result(timeout=120)
            stats = pool.stats()
            assert stats["failed"] == 1
            assert stats["workers"] == []  # struck out, not respawned


class TestLifecycleHardening:
    def test_drain_completes_everything_then_rejects(self, reference):
        """drain(): in-flight and queued work completes, futures all
        reach terminal states, and admission is closed afterwards."""
        request, expected = reference
        pool = WorkerPool(JOB, workers=2)
        try:
            futures = [pool.submit(request) for _ in range(6)]
            assert pool.drain(timeout=120) is True
            assert all(future.done() for future in futures)
            assert all(
                np.array_equal(future.result(timeout=1), expected)
                for future in futures
            )
            with pytest.raises(ServerClosed):
                pool.submit(request)
        finally:
            pool.close()

    def test_drain_respawns_crashed_worker_to_finish_queue(
        self, reference
    ):
        """Regression: a worker crashing *during* a graceful drain is
        respawned while queued work remains — the queue must not be
        mass-failed with ``no live workers remain`` when the restart
        budget is still available."""
        request, expected = reference
        plan = FaultPlan(
            specs=[
                FaultSpec(
                    "kill-worker", visits=(0,), scope={"incarnation": 0}
                )
            ]
        )
        pool = WorkerPool(JOB, workers=1, fault_plan=plan, retries=3)
        try:
            futures = [pool.submit(request) for _ in range(4)]
            assert pool.drain(timeout=120) is True
            assert all(
                np.array_equal(future.result(timeout=1), expected)
                for future in futures
            )
            stats = pool.stats()
            assert stats["crashes"] >= 1
            assert stats["restarts"] >= 1
            assert stats["failed"] == 0
        finally:
            pool.close()

    def test_close_timeout_force_fails_stuck_requests(self, reference):
        """close(timeout=) on a wedged pool: the stuck future still
        reaches a terminal state — a typed ServerClosed — instead of
        blocking its caller forever."""
        request, _ = reference
        plan = FaultPlan(
            specs=[FaultSpec("hang-kernel", visits=(0,), seconds=30.0)]
        )
        pool = WorkerPool(
            JOB, workers=1, fault_plan=plan, hang_grace=60.0
        )
        future = pool.submit(request)
        pool.close(timeout=0.3)
        with pytest.raises(ServerClosed):
            future.result(timeout=1)
        assert pool.stats()["closed"] is True

    def test_no_live_workers_fails_queued_work_fast(self, reference):
        """With the restart budget spent and every worker dead, queued
        requests fail promptly with WorkerCrashed instead of waiting
        on a worker that will never come back."""
        request, _ = reference
        plan = FaultPlan(specs=[FaultSpec("kill-worker", rate=1.0)])
        with WorkerPool(
            JOB, workers=1, fault_plan=plan, retries=0, max_restarts=0
        ) as pool:
            future = pool.submit(request)
            with pytest.raises(WorkerCrashed):
                future.result(timeout=60)

    def test_rolling_restart_drops_nothing(self, reference):
        """rolling_restart() under a concurrent request stream: every
        request completes bit-identically, every worker comes back
        with a bumped incarnation, and the replacement is not counted
        against the crash-restart budget."""
        import threading

        request, expected = reference
        pool = WorkerPool(JOB, workers=2)
        results = []
        failures = []

        def client():
            try:
                for _ in range(12):
                    results.append(pool.run(request))
            except Exception as exc:  # pragma: no cover - fail below
                failures.append(exc)

        try:
            pool.run(request)  # workers warm before the stream starts
            thread = threading.Thread(target=client)
            thread.start()
            replaced = pool.rolling_restart(timeout=120)
            thread.join(timeout=120)
            assert not thread.is_alive()
            assert not failures, failures
            assert replaced == 2
            assert all(
                np.array_equal(result, expected) for result in results
            )
            stats = pool.stats()
            assert stats["rolling_restarts"] == 1
            assert stats["restarts"] == 0  # planned, not crash recovery
            assert stats["failed"] == 0
            assert all(
                worker["incarnation"] >= 1 for worker in stats["workers"]
            )
            assert all(worker["ready"] for worker in stats["workers"])
        finally:
            pool.close()
