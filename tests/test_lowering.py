"""End-to-end lowering tests: loop building, bounds, vectorization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import frontend as hl
from repro.ir import (
    Allocate,
    Broadcast,
    IntImm,
    Load,
    Ramp,
    Store,
    Variable,
    VectorReduce,
    collect_stores,
    contains,
    print_stmt,
)
from repro.lowering import lower
from repro.lowering.bounds import Interval, interval_of, simplify_affine
from repro.lowering.vectorize import block_repeat
from repro.runtime import Counters, Interpreter
from repro.runtime.executor import realize
from repro.targets.bfloat16 import round_to_bfloat16


class TestBounds:
    def scope(self):
        return {"i": Interval(IntImm(0), IntImm(7))}

    def test_var_in_scope(self):
        iv = interval_of(Variable("i"), self.scope())
        assert iv.lo == IntImm(0)
        assert iv.hi == IntImm(7)

    def test_affine(self):
        e = Variable("i") * 4 + 3
        iv = interval_of(e, self.scope())
        assert iv.lo == IntImm(3)
        assert iv.hi == IntImm(31)

    def test_negative_scale_flips(self):
        e = Variable("i") * -2
        iv = interval_of(e, self.scope())
        assert iv.lo == IntImm(-14)
        assert iv.hi == IntImm(0)

    def test_symbolic_outer_var_is_point(self):
        e = Variable("outer") * 256 + Variable("i")
        iv = interval_of(e, self.scope())
        assert simplify_affine(iv.extent()) == IntImm(8)

    def test_simplify_affine_cancels(self):
        x = Variable("x")
        e = (x * 256 + 255) - (x * 256) + 1
        assert simplify_affine(e) == IntImm(256)

    def test_mod_interval(self):
        e = Variable("i") % 4
        iv = interval_of(e, self.scope())
        assert iv.lo == IntImm(0)
        assert iv.hi == IntImm(3)


class TestBlockRepeat:
    def eval(self, e):
        return Interpreter({}).eval_vector(e, {})

    def check_semantics(self, e, block, times):
        before = self.eval(e)
        after = self.eval(block_repeat(e, block, times))
        expected = np.concatenate(
            [
                np.tile(before[g * block : (g + 1) * block], times)
                for g in range(len(before) // block)
            ]
        )
        np.testing.assert_array_equal(after, expected)

    def test_scalar(self):
        out = block_repeat(IntImm(7), 1, 4)
        np.testing.assert_array_equal(self.eval(out), [7, 7, 7, 7])

    def test_whole_vector(self):
        e = Ramp(IntImm(0), IntImm(1), 4)
        self.check_semantics(e, 4, 3)

    def test_ramp_stretch(self):
        e = Ramp(IntImm(0), IntImm(10), 4)
        self.check_semantics(e, 1, 3)

    def test_nested(self):
        e = Ramp(Broadcast(IntImm(5), 2), Broadcast(IntImm(1), 2), 3)
        self.check_semantics(e, 2, 2)

    @settings(max_examples=40, deadline=None)
    @given(
        base=st.integers(-5, 5),
        stride=st.integers(-3, 3),
        count=st.sampled_from([2, 4, 8]),
        times=st.sampled_from([2, 3, 4]),
        block_choice=st.sampled_from(["one", "all"]),
    )
    def test_property_ramp_block_repeat(
        self, base, stride, count, times, block_choice
    ):
        e = Ramp(IntImm(base), IntImm(stride), count)
        block = 1 if block_choice == "one" else count
        self.check_semantics(e, block, times)


class TestLowerSimple:
    def test_pointwise(self):
        inp = hl.ImageParam(hl.Float(32), 1, name="inA")
        x = hl.Var("x")
        f = hl.Func("f_pw")
        f[x] = inp[x] * 2.0 + 1.0
        f.bound(x, 0, 16)
        arr = np.arange(16, dtype=np.float32)
        out = realize(f, {inp: arr})
        np.testing.assert_allclose(out, arr * 2 + 1)

    def test_2d_transpose_like(self):
        inp = hl.ImageParam(hl.Float(32), 2, name="inB")
        x, y = hl.Var("x"), hl.Var("y")
        f = hl.Func("f_tr")
        f[x, y] = inp[y, x]
        f.bound(x, 0, 4).bound(y, 0, 3)
        arr = np.arange(12, dtype=np.float32).reshape(4, 3)  # [x, y] numpy
        out = realize(f, {inp: arr})
        np.testing.assert_array_equal(out, arr.T)

    def test_inline_producer(self):
        inp = hl.ImageParam(hl.Float(32), 1, name="inC")
        x = hl.Var("x")
        g = hl.Func("g_in")
        f = hl.Func("f_in")
        g[x] = inp[x] + 1.0
        f[x] = g[x] * g[x]
        f.bound(x, 0, 8)
        arr = np.arange(8, dtype=np.float32)
        out = realize(f, {inp: arr})
        np.testing.assert_allclose(out, (arr + 1) ** 2)
        # g is inlined: no allocation appears
        lo = lower(f)
        assert not contains(lo.stmt, lambda n: isinstance(n, Allocate))

    def test_compute_root_producer(self):
        inp = hl.ImageParam(hl.Float(32), 1, name="inD")
        x = hl.Var("x")
        g = hl.Func("g_cr")
        f = hl.Func("f_cr")
        g[x] = inp[x] + 1.0
        g.compute_root()
        f[x] = g[x] + g[x + 1]
        f.bound(x, 0, 8)
        lo = lower(f)
        # g materialized over [0, 9) — 9 elements
        info = lo.realizations["g_cr"]
        from repro.ir import as_int

        assert as_int(info.extents[0]) == 9
        arr = np.arange(16, dtype=np.float32)
        out = realize(f, {inp: arr})
        np.testing.assert_allclose(out, (arr[:8] + 1) + (arr[1:9] + 1))

    def test_compute_at_tile(self):
        inp = hl.ImageParam(hl.Float(32), 1, name="inE")
        x, xi = hl.Var("x"), hl.Var("xi")
        g = hl.Func("g_ca")
        f = hl.Func("f_ca")
        g[x] = inp[x] * 3.0
        f[x] = g[x]
        f.bound(x, 0, 32).split(x, x, xi, 8)
        g.compute_at(f, x)
        lo = lower(f)
        info = lo.realizations["g_ca"]
        from repro.ir import as_int

        assert as_int(info.extents[0]) == 8  # one tile
        arr = np.arange(32, dtype=np.float32)
        out = realize(f, {inp: arr})
        np.testing.assert_allclose(out, arr * 3)

    def test_reduction(self):
        inp = hl.ImageParam(hl.Float(32), 1, name="inF")
        x = hl.Var("x")
        r = hl.RDom(0, 8, name="r_red")
        g = hl.Func("g_red")
        g[x] = 0.0
        g[x] += inp[x + r]
        g.bound(x, 0, 8)
        arr = np.arange(16, dtype=np.float32)
        out = realize(g, {inp: arr})
        ref = np.array([arr[i : i + 8].sum() for i in range(8)])
        np.testing.assert_allclose(out, ref)

    def test_split_non_divisible_rejected(self):
        inp = hl.ImageParam(hl.Float(32), 1, name="inG")
        x, xi = hl.Var("x"), hl.Var("xi")
        f = hl.Func("f_nd")
        f[x] = inp[x]
        f.bound(x, 0, 10).split(x, x, xi, 4)
        with pytest.raises(Exception, match="divisible"):
            lower(f)

    def test_missing_bound_rejected(self):
        x = hl.Var("x")
        f = hl.Func("f_nb")
        f[x] = 1.0
        with pytest.raises(Exception, match="bound"):
            lower(f)


class TestVectorizedLowering:
    def test_vectorized_equals_serial(self):
        inp = hl.ImageParam(hl.Float(32), 1, name="inH")
        x = hl.Var("x")
        arr = np.arange(64, dtype=np.float32)

        def build(vectorized):
            f = hl.Func(f"f_vs{vectorized}")
            f[x] = inp[x] * 2.0 + inp[x + 1]
            f.bound(x, 0, 32)
            if vectorized:
                f.vectorize(x, 8)
            return realize(f, {inp: arr})

        np.testing.assert_allclose(build(True), build(False))

    def test_nested_vectorization_equals_serial(self):
        inp = hl.ImageParam(hl.Float(32), 2, name="inI")
        x, y = hl.Var("x"), hl.Var("y")
        arr = np.arange(64, dtype=np.float32).reshape(8, 8)

        def build(vectorized):
            f = hl.Func(f"f_nv{vectorized}")
            f[x, y] = inp[x, y] * 2.0 + inp[y, x]
            f.bound(x, 0, 8).bound(y, 0, 8)
            if vectorized:
                f.vectorize(x, 8).vectorize(y, 8)
            return realize(f, {inp: arr})

        np.testing.assert_allclose(build(True), build(False))

    def test_atomic_required_for_reduction_vectorize(self):
        inp = hl.ImageParam(hl.Float(32), 1, name="inJ")
        x = hl.Var("x")
        r = hl.RDom(0, 8, name="r_na")
        f = hl.Func("f_na")
        f[x] = 0.0
        f[x] += inp[x + r]
        f.bound(x, 0, 8)
        f.update().vectorize(r, 8)
        with pytest.raises(Exception, match="atomic"):
            lower(f)

    def test_atomic_reduction_produces_vector_reduce(self):
        inp = hl.ImageParam(hl.Float(32), 1, name="inK")
        x = hl.Var("x")
        r = hl.RDom(0, 8, name="r_vr")
        f = hl.Func("f_vr")
        f[x] = 0.0
        f[x] += inp[x + r]
        f.bound(x, 0, 8)
        f.update().atomic().vectorize(r, 8)
        lo = lower(f)
        assert contains(lo.stmt, lambda n: isinstance(n, VectorReduce))
        arr = np.arange(16, dtype=np.float32)
        out = realize(f, {inp: arr})
        ref = np.array([arr[i : i + 8].sum() for i in range(8)])
        np.testing.assert_allclose(out, ref)


class TestMatmulLowering:
    """The paper's §III MatMul: shapes must match Fig. 3's structure."""

    def build(self):
        A = hl.ImageParam(hl.BFloat(16), 2, name="A_mm")
        B = hl.ImageParam(hl.BFloat(16), 2, name="B_mm")
        x, y = hl.Var("x"), hl.Var("y")
        r = hl.RDom(0, 32, name="r_mm")
        mm = hl.Func("mm_t")
        mm[y, x] = 0.0
        mm[y, x] += hl.f32(A[r, x]) * hl.f32(B[y, r])
        mm.bound(x, 0, 16).bound(y, 0, 16)
        mm.vectorize(y, 16).vectorize(x, 16)
        mm.update().atomic().vectorize(r, 32).vectorize(y, 16).vectorize(
            x, 16
        )
        return mm, A, B

    def test_correctness(self):
        mm, A, B = self.build()
        rng = np.random.default_rng(0)
        a = round_to_bfloat16(rng.standard_normal((16, 32)).astype(np.float32))
        b = round_to_bfloat16(rng.standard_normal((32, 16)).astype(np.float32))
        out = realize(mm, {A: a, B: b})
        ref = a.astype(np.float32) @ b.astype(np.float32)
        np.testing.assert_allclose(out, ref, rtol=1e-2, atol=1e-2)

    def test_ir_structure(self):
        mm, A, B = self.build()
        lo = lower(mm)
        text = print_stmt(lo.stmt)
        # dense store over the 16x16 tile
        assert "mm_t[ramp(0, 1, 256)]" in text
        # the reduction collapses 8192 lanes to 256
        assert "vector_reduce_add" in text
        # B's load is obscured into a broadcast-of-load (paper §III-B)
        assert "x16(cast<float32x512>(B_mm[" in text
        stores = collect_stores(lo.stmt)
        assert len(stores) == 2  # init + update

    def test_counters_flops(self):
        mm, A, B = self.build()
        rng = np.random.default_rng(0)
        a = rng.standard_normal((16, 32)).astype(np.float32)
        b = rng.standard_normal((32, 16)).astype(np.float32)
        counters = Counters()
        realize(mm, {A: a, B: b}, counters=counters)
        # 16*16*32 MACs = 8192 mults + 8192-ish adds on general lanes
        assert counters.scalar_flops >= 2 * 16 * 16 * 32 - 256
        assert counters.tensor_macs == 0
