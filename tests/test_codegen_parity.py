"""Interpreter vs. compiled-NumPy-backend parity for every application.

The compiled backend (runtime/codegen.py) mirrors the interpreter's
NumPy semantics operation for operation, so the two backends must agree
*bit for bit* on every app and both schedule variants — allclose with
zero tolerance.  These tests also pin down that real Python/NumPy
kernels were emitted (no silent interpreter fallback).
"""

import numpy as np
import pytest

from repro.apps import (
    attention,
    conv1d,
    conv2d,
    conv_layer,
    dct_denoise,
    downsample,
    matmul,
    recursive_filter,
    resample,
    upsample,
)
from repro.runtime.kernel_cache import KernelCache

SIMPLE_APPS = [
    (conv1d, {"taps": 16, "rows": 1}),
    (conv2d, {"taps": 16, "width": 512, "rows": 4}),
    (downsample, {"taps": 16, "width": 256, "rows": 4}),
    (upsample, {"width": 256, "rows": 2}),
    (matmul, {"n": 64}),
    (conv_layer, {"rows": 2}),
    (attention, {"length": 128}),
]


def assert_backends_agree(app):
    interpreted = app.run()
    compiled = app.run(backend="compile")
    np.testing.assert_allclose(interpreted, compiled, rtol=0, atol=0)


@pytest.mark.parametrize(
    "module,params",
    SIMPLE_APPS,
    ids=[m.__name__.split(".")[-1] for m, _ in SIMPLE_APPS],
)
@pytest.mark.parametrize("variant", ["cuda", "tensor"])
class TestBackendParity:
    def test_backends_agree(self, module, params, variant):
        assert_backends_agree(module.build(variant, **params))


@pytest.mark.parametrize("variant", ["cuda", "tensor"])
class TestMultiStageBackendParity:
    def test_resample_pass(self, variant):
        assert_backends_agree(
            resample.build_pass(variant, in_size=256, out_size=57, columns=32)
        )

    def test_recursive_filter(self, variant):
        assert_backends_agree(recursive_filter.build(variant, samples=4096))

    def test_dct_denoise(self, variant):
        assert_backends_agree(dct_denoise.build(variant, num_tiles=8))


class TestQuantizedBackendParity:
    """The dp4a apps accumulate in exact int32: interpret, compile, and
    the numpy reference must agree bit for bit, not just allclose."""

    def test_matmul_int8(self):
        app = matmul.build_int8(tiles=2)
        assert_backends_agree(app)
        np.testing.assert_array_equal(
            app.run(backend="compile"), app.reference()
        )

    def test_conv_layer_int8(self):
        app = conv_layer.build_int8(width=16, rows=1)
        assert_backends_agree(app)
        np.testing.assert_array_equal(
            app.run(backend="compile"), app.reference()
        )

    def test_no_fallback_kernels(self):
        cache = KernelCache()
        app = matmul.build_int8(tiles=1)
        kernel = cache.get(app.compile().lowered)
        assert not kernel.is_fallback
        assert kernel.source is not None


class TestRealKernelsEmitted:
    """The apps must compile to real kernels, not the interpreter fallback."""

    @pytest.mark.parametrize("variant", ["cuda", "tensor"])
    def test_no_fallback(self, variant):
        cache = KernelCache()
        app = conv1d.build(variant, taps=16, rows=1)
        kernel = cache.get(app.compile().lowered)
        assert not kernel.is_fallback
        assert kernel.source is not None
        # the cuda variant is pure vector code: no interpreter at all
        if variant == "cuda":
            assert not kernel.needs_interp

    def test_compiled_output_matches_reference(self):
        # and the compiled path is still *correct*, not just self-consistent
        app = matmul.build("tensor", n=64)
        app.verify(backend="compile")
