"""Interpreter vs. compiled-NumPy-backend parity for every application.

The compiled backend (runtime/codegen.py) mirrors the interpreter's
NumPy semantics operation for operation, so the two backends must agree
*bit for bit* on every app and both schedule variants — allclose with
zero tolerance.  These tests also pin down that real Python/NumPy
kernels were emitted (no silent interpreter fallback).
"""

import numpy as np
import pytest
from conftest import INT8_APP_IDS, INT8_APPS, SIMPLE_APP_IDS, SIMPLE_APPS

from repro.apps import (
    conv1d,
    dct_denoise,
    matmul,
    recursive_filter,
    resample,
)
from repro.runtime.kernel_cache import KernelCache


def assert_backends_agree(app):
    interpreted = app.run()
    compiled = app.run(backend="compile")
    np.testing.assert_allclose(interpreted, compiled, rtol=0, atol=0)


@pytest.mark.parametrize("module,params", SIMPLE_APPS, ids=SIMPLE_APP_IDS)
@pytest.mark.parametrize("variant", ["cuda", "tensor"])
class TestBackendParity:
    def test_backends_agree(self, module, params, variant):
        assert_backends_agree(module.build(variant, **params))


@pytest.mark.parametrize("variant", ["cuda", "tensor"])
class TestMultiStageBackendParity:
    def test_resample_pass(self, variant):
        assert_backends_agree(
            resample.build_pass(variant, in_size=256, out_size=57, columns=32)
        )

    def test_recursive_filter(self, variant):
        assert_backends_agree(recursive_filter.build(variant, samples=4096))

    def test_dct_denoise(self, variant):
        assert_backends_agree(dct_denoise.build(variant, num_tiles=8))


class TestQuantizedBackendParity:
    """The dp4a apps accumulate in exact int32: interpret, compile, and
    the numpy reference must agree bit for bit, not just allclose."""

    @pytest.mark.parametrize("builder,params", INT8_APPS, ids=INT8_APP_IDS)
    def test_int8_apps_bit_exact(self, builder, params):
        app = builder(**params)
        assert_backends_agree(app)
        np.testing.assert_array_equal(
            app.run(backend="compile"), app.reference()
        )

    def test_no_fallback_kernels(self):
        cache = KernelCache()
        app = matmul.build_int8(tiles=1)
        kernel = cache.get(app.compile().lowered)
        assert not kernel.is_fallback
        assert kernel.source is not None


class TestRealKernelsEmitted:
    """The apps must compile to real kernels, not the interpreter fallback."""

    @pytest.mark.parametrize("variant", ["cuda", "tensor"])
    def test_no_fallback(self, variant):
        cache = KernelCache()
        app = conv1d.build(variant, taps=16, rows=1)
        kernel = cache.get(app.compile().lowered)
        assert not kernel.is_fallback
        assert kernel.source is not None
        # the cuda variant is pure vector code: no interpreter at all
        if variant == "cuda":
            assert not kernel.needs_interp

    def test_compiled_output_matches_reference(self):
        # and the compiled path is still *correct*, not just self-consistent
        app = matmul.build("tensor", n=64)
        app.verify(backend="compile")
