"""Generate a thumbnail via block-sparse Lanczos-3 resampling (§V-C).

Run:  python examples/thumbnail.py
      python examples/thumbnail.py --cache-dir /tmp/repro-cache   # warm start
      python examples/thumbnail.py --batch 16 --workers 2         # serve many
"""

import argparse
import time

import numpy as np

from repro.apps import resample
from repro.runtime import Counters


def serve_thumbnails(app, count: int, workers: int) -> None:
    """A thumbnailing service: same resample matrix, fresh image each
    request — the shape the serving runtime's arenas are built for."""
    rng = np.random.default_rng(2)
    # the transposed image ("ITrs") is the per-request input; the
    # block-sparse matrix structure (bands/starts) is fixed
    image_key = next(
        key for key in app.inputs if key.name.startswith("IT")
    )
    requests = [
        {
            key: (
                rng.standard_normal(value.shape).astype(value.dtype)
                if key is image_key
                else value
            )
            for key, value in app.inputs.items()
        }
        for _ in range(count)
    ]
    pipeline = app.compile()
    pipeline.run(requests[0])  # warm the kernel cache
    start = time.perf_counter()
    naive = [pipeline.run(r) for r in requests]
    naive_s = time.perf_counter() - start
    pipeline.run_many(requests[:workers], workers=workers)  # warm plans
    start = time.perf_counter()
    batched = pipeline.run_many(requests, workers=workers)
    batched_s = time.perf_counter() - start
    assert all(np.array_equal(a, b) for a, b in zip(naive, batched))
    print(
        f"served {count} thumbnails: naive loop {naive_s * 1e3:.1f} ms,"
        f" run_many({workers} workers) {batched_s * 1e3:.1f} ms"
        f" ({naive_s / batched_s:.1f}x, outputs bit-identical)"
    )


def main(cache_dir=None, batch=0, workers=2):
    in_size, out_size, columns = 512, 97, 64
    app = resample.build_pass(
        "tensor", in_size=in_size, out_size=out_size, columns=columns
    )
    app.compile(cache_dir=cache_dir)
    if cache_dir is not None:
        print(f"artifact cache: {app.report.artifact_cache}")
    print(app.description)
    counters = Counters()
    blocks = app.run(counters)
    thumb_pass = resample.assemble(blocks, out_size)
    print("one separable pass:", thumb_pass.shape)
    print(app.report.summary())
    reference = app.reference()
    print(
        "max |error| vs block-sparse reference:",
        np.abs(blocks - reference).max(),
    )
    print(
        f"tensor MACs {counters.tensor_macs:,} — the paper's point: even"
        " at ~10% Tensor Core utilization the resize wins, because the"
        " kernel becomes purely bandwidth-limited"
    )
    compiled = app.run(backend="compile")
    print(
        "compiled NumPy backend agrees bit-for-bit:",
        np.array_equal(blocks, compiled),
    )
    if batch:
        app.backend = "compile"
        serve_thumbnails(app, batch, workers)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="warm-start artifact directory (repro.service)",
    )
    parser.add_argument(
        "--batch",
        type=int,
        default=0,
        metavar="N",
        help="serve N fresh images through run_many and compare"
        " against the naive per-call loop",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker threads for --batch (default 2)",
    )
    args = parser.parse_args()
    main(args.cache_dir, batch=args.batch, workers=args.workers)
