"""Generate a thumbnail via block-sparse Lanczos-3 resampling (§V-C).

Run:  python examples/thumbnail.py
      python examples/thumbnail.py --cache-dir /tmp/repro-cache   # warm start
"""

import argparse

import numpy as np

from repro.apps import resample
from repro.linalg import build_resample_matrix
from repro.runtime import Counters


def main(cache_dir=None):
    in_size, out_size, columns = 512, 97, 64
    app = resample.build_pass(
        "tensor", in_size=in_size, out_size=out_size, columns=columns
    )
    app.compile(cache_dir=cache_dir)
    if cache_dir is not None:
        print(f"artifact cache: {app.report.artifact_cache}")
    print(app.description)
    counters = Counters()
    blocks = app.run(counters)
    thumb_pass = resample.assemble(blocks, out_size)
    print("one separable pass:", thumb_pass.shape)
    print(app.report.summary())
    reference = app.reference()
    print(
        "max |error| vs block-sparse reference:",
        np.abs(blocks - reference).max(),
    )
    print(
        f"tensor MACs {counters.tensor_macs:,} — the paper's point: even"
        " at ~10% Tensor Core utilization the resize wins, because the"
        " kernel becomes purely bandwidth-limited"
    )
    compiled = app.run(backend="compile")
    print(
        "compiled NumPy backend agrees bit-for-bit:",
        np.array_equal(blocks, compiled),
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="warm-start artifact directory (repro.service)",
    )
    main(parser.parse_args().cache_dir)
