"""DCT-domain denoising with four fused Tensor-Core MatMuls (§V-E).

Run:  python examples/denoise.py
"""

import numpy as np

from repro.apps import dct_denoise
from repro.runtime import Counters


def main():
    app = dct_denoise.build("tensor", num_tiles=16)
    counters = Counters()
    out = app.run(counters)
    ref = app.reference()
    print("transform kernel over", app.num_tiles, "windowed 16x16 tiles")
    print(app.report.summary())
    print("max |error| vs numpy DCT/coring/iDCT:", np.abs(out - ref).max())
    print(
        f"tensor MACs {counters.tensor_macs:,} across 4 MatMuls/tile;"
        f" coring ran {counters.scalar_flops:,} scalar FLOPs *between*"
        " the MatMuls, in the same kernel — the fusion a library of"
        " GEMM calls cannot express"
    )
    compiled = app.run(backend="compile")
    print(
        "compiled NumPy backend agrees bit-for-bit:",
        np.array_equal(out, compiled),
    )


if __name__ == "__main__":
    main()
