"""DCT-domain denoising with four fused Tensor-Core MatMuls (§V-E).

Run:  python examples/denoise.py
      python examples/denoise.py --cache-dir /tmp/repro-cache   # warm start
"""

import argparse

import numpy as np

from repro.apps import dct_denoise
from repro.runtime import Counters


def main(cache_dir=None):
    app = dct_denoise.build("tensor", num_tiles=16, cache_dir=cache_dir)
    if cache_dir is not None:
        print(f"artifact cache: {app.report.artifact_cache}")
    counters = Counters()
    out = app.run(counters)
    ref = app.reference()
    print("transform kernel over", app.num_tiles, "windowed 16x16 tiles")
    print(app.report.summary())
    print("max |error| vs numpy DCT/coring/iDCT:", np.abs(out - ref).max())
    print(
        f"tensor MACs {counters.tensor_macs:,} across 4 MatMuls/tile;"
        f" coring ran {counters.scalar_flops:,} scalar FLOPs *between*"
        " the MatMuls, in the same kernel — the fusion a library of"
        " GEMM calls cannot express"
    )
    compiled = app.run(backend="compile")
    print(
        "compiled NumPy backend agrees bit-for-bit:",
        np.array_equal(out, compiled),
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="warm-start artifact directory (repro.service)",
    )
    main(parser.parse_args().cache_dir)
