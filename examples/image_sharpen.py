"""Sharpen an image with a 1-D separable kernel on (simulated) Tensor Cores.

A classic image-processing task that kernel libraries cannot express:
single-channel row convolution with a custom kernel.  HARDBOILED maps it
onto m32n8k16 WMMA MMAs against a Toeplitz matrix.

Run:  python examples/image_sharpen.py
      python examples/image_sharpen.py --cache-dir /tmp/repro-cache
"""

import argparse

import numpy as np

from repro import frontend as hl
from repro.hardboiled import compile_tensorized
from repro.runtime import Counters


def main(cache_dir=None):
    taps = 16
    width, rows = 1024, 8

    K = hl.ImageParam(hl.Float(16), 1, name="K")
    I = hl.ImageParam(hl.Float(16), 2, name="I")
    x, y = hl.Var("x"), hl.Var("y")
    xi, rxi = hl.Var("xi"), hl.Var("rxi")
    rx = hl.RDom(0, taps, name="rx")
    blur = hl.Func("blur")
    sharp = hl.Func("sharp")
    blur[x, y] = 0.0
    blur[x, y] += hl.f32(K[rx]) * hl.f32(I[x + rx, y])
    # unsharp mask, fused with the tensorized convolution
    center = hl.f32(I[x + taps // 2, y])
    sharp[x, y] = center + 0.6 * (center - blur[x, y])
    sharp.bound(x, 0, width).bound(y, 0, rows)

    sharp.split(x, x, xi, 256).vectorize(xi).gpu_blocks(x, y)
    blur.compute_at(sharp, "x").store_in(hl.MemoryType.WMMA_ACCUMULATOR)
    blur.split(x, x, xi, 256).vectorize(xi)
    blur.update().split(x, x, xi, 256).split(rx, rx, rxi, 8).reorder(
        rxi, xi, rx, x
    ).atomic().vectorize(xi).vectorize(rxi)

    pipeline, report = compile_tensorized(sharp, cache_dir=cache_dir)
    print(report.summary())

    rng = np.random.default_rng(1)
    image = rng.random((rows, width + taps + 8)).astype(np.float16)
    kernel = np.hanning(taps).astype(np.float16)
    kernel /= np.float16(kernel.sum())

    counters = Counters()
    out = pipeline.run({I: image, K: kernel}, counters=counters)

    # reference: blur + unsharp in numpy
    img = image.astype(np.float32)
    k32 = kernel.astype(np.float32)
    blur_ref = np.zeros((rows, width), dtype=np.float32)
    for t in range(taps):
        blur_ref += k32[t] * img[:, t : t + width]
    center_ref = img[:, taps // 2 : taps // 2 + width]
    ref = center_ref + 0.6 * (center_ref - blur_ref)
    print("max |error| vs numpy:", np.abs(out - ref).max())
    print(
        f"tensor MACs {counters.tensor_macs:,}; the unsharp epilogue ran"
        f" {counters.scalar_flops:,} scalar FLOPs fused in-kernel"
    )
    compiled = pipeline.run({I: image, K: kernel}, backend="compile")
    print(
        "compiled NumPy backend agrees bit-for-bit:",
        np.array_equal(out, compiled),
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="warm-start artifact directory (repro.service)",
    )
    main(parser.parse_args().cache_dir)
