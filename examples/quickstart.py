"""Quickstart: the paper's §III MatMul, from algorithm to AMX tiles.

Run:  PYTHONPATH=src python examples/quickstart.py
      PYTHONPATH=src python examples/quickstart.py --backend compile
      PYTHONPATH=src python examples/quickstart.py --cache-dir /tmp/repro-cache
      PYTHONPATH=src python examples/quickstart.py --serve 64

The pipeline is executed through the selected runtime backend:
``interpret`` is the instrumented tree-walking interpreter (collects the
op/byte counters the roofline model consumes), ``compile`` is the
compiled NumPy backend (fast, uncounted), and ``both`` runs the two and
checks they agree.

With ``--cache-dir`` the compile goes through the warm-start artifact
store (``repro.service``): the first run reports an artifact-cache
*miss* and persists the selected statement + generated kernel; run the
same command again and the second process reports a *hit*, skipping
equality saturation and codegen entirely.

With ``--serve N`` the compiled pipeline then serves a batch of N
random requests through the batched serving runtime
(``repro.service.Server``: per-worker execution plans + buffer
arenas), comparing its throughput and outputs against the naive
per-call ``run()`` loop.
"""

import argparse
import time

import numpy as np

from repro import frontend as hl
from repro.hardboiled import select_instructions
from repro.ir import print_stmt
from repro.lowering import lower
from repro.runtime import Counters
from repro.runtime.executor import CompiledPipeline
from repro.targets.bfloat16 import round_to_bfloat16


def serve_batch(pipeline, A, B, count: int, workers: int = 2) -> None:
    """Serve ``count`` random same-shaped requests, naive vs. batched."""
    from repro.service import Server

    rng = np.random.default_rng(1)
    requests = [
        {
            A: round_to_bfloat16(
                rng.standard_normal((16, 32)).astype(np.float32)
            ),
            B: round_to_bfloat16(
                rng.standard_normal((32, 16)).astype(np.float32)
            ),
        }
        for _ in range(count)
    ]
    pipeline.run(requests[0], backend="compile")  # warm the kernel cache
    start = time.perf_counter()
    naive = [pipeline.run(r, backend="compile") for r in requests]
    naive_s = time.perf_counter() - start
    with Server(pipeline, workers=workers, backend="compile") as server:
        server.run_many(requests)  # bind the per-worker plans
        start = time.perf_counter()
        batched = server.run_many(requests)
        batched_s = time.perf_counter() - start
        stats = server.stats()
    assert all(np.array_equal(a, b) for a, b in zip(naive, batched))
    arena = stats["plans"][0]
    print(
        f"\n[serve]     {count} requests: naive per-call loop"
        f" {naive_s * 1e3:.1f} ms, batched {batched_s * 1e3:.1f} ms"
        f" ({naive_s / batched_s:.1f}x, {stats['workers']} workers,"
        " outputs bit-identical)"
    )
    print(
        f"[serve]     worker plan 0: {arena['buffer_reuses']} pooled"
        f" allocations, {arena['memo_hits']} operand-memo hits"
    )


def main(backend: str = "both", cache_dir=None, serve: int = 0):
    # --- the algorithm: a bf16 MatMul, written naturally -----------------
    A = hl.ImageParam(hl.BFloat(16), 2, name="A")
    B = hl.ImageParam(hl.BFloat(16), 2, name="B")
    x, y = hl.Var("x"), hl.Var("y")
    r = hl.RDom(0, 32, name="r")
    mm = hl.Func("mm")
    mm[y, x] = 0.0
    mm[y, x] += hl.f32(A[r, x]) * hl.f32(B[y, r])

    # --- the schedule: ask for AMX tile registers ------------------------
    out = mm.in_()
    out.bound(x, 0, 16).bound(y, 0, 16).vectorize(y, 16).vectorize(x, 16)
    mm.store_in(hl.MemoryType.AMX_TILE).compute_at(out, "x")
    mm.vectorize(y, 16).vectorize(x, 16)
    mm.update().atomic().vectorize(r, 32).vectorize(y, 16).vectorize(x, 16)

    # --- compile: HARDBOILED selects tensor instructions via EqSat -------
    lowered = lower(out)
    print("=== vectorized IR (before instruction selection) ===")
    print(print_stmt(lowered.stmt))
    pipeline = None
    if cache_dir is not None:
        # warm start: hit the artifact store instead of saturating
        from repro.service import ArtifactStore, compile_lowered

        start = time.perf_counter()
        pipeline, report = compile_lowered(
            lowered, ArtifactStore(cache_dir), backend="compile", strict=True
        )
        seconds = time.perf_counter() - start
        tensorized = pipeline.lowered
        print(
            f"\n[warm-start] artifact cache {report.artifact_cache} in"
            f" {seconds * 1e3:.1f} ms — run this command again to see"
            " the other path"
            if report.artifact_cache == "miss"
            else f"\n[warm-start] artifact cache hit in {seconds * 1e3:.1f}"
            " ms — equality saturation and codegen were skipped"
        )
    else:
        tensorized, report = select_instructions(lowered, strict=True)
    print("\n=== after HARDBOILED ===")
    print(print_stmt(tensorized.stmt))
    print("\n" + report.summary())

    # --- run on the AMX simulator and check against numpy ---------------
    rng = np.random.default_rng(0)
    a = round_to_bfloat16(rng.standard_normal((16, 32)).astype(np.float32))
    b = round_to_bfloat16(rng.standard_normal((32, 16)).astype(np.float32))
    inputs = {A: a, B: b}
    reference = a.astype(np.float32) @ b.astype(np.float32)
    if pipeline is None:
        pipeline = CompiledPipeline(tensorized)

    if backend in ("interpret", "both"):
        counters = Counters()
        result = pipeline.run(inputs, counters=counters)
        print("\n[interpret] max |error| vs numpy:",
              np.abs(result - reference).max())
        print(
            f"[interpret] tensor-unit MACs: {counters.tensor_macs}"
            f" (= 16*16*32 = {16 * 16 * 32}); scalar FLOPs:"
            f" {counters.scalar_flops}"
        )
    if backend in ("compile", "both"):
        compiled = pipeline.run(inputs, backend="compile")
        print("\n[compile]   max |error| vs numpy:",
              np.abs(compiled - reference).max())
    if backend == "both":
        assert np.array_equal(result, compiled), "backends disagree"
        print("[both]      backends agree bit-for-bit")

    if serve:
        serve_batch(pipeline, A, B, serve)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend",
        choices=("interpret", "compile", "both"),
        default="both",
        help="runtime execution backend (default: run and compare both)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="warm-start artifact directory; rerun with the same value"
        " to watch the second process skip saturation and codegen",
    )
    parser.add_argument(
        "--serve",
        type=int,
        default=0,
        metavar="N",
        help="after compiling, serve N random requests through the"
        " batched serving runtime and compare against the naive"
        " per-call loop",
    )
    args = parser.parse_args()
    main(args.backend, cache_dir=args.cache_dir, serve=args.serve)
