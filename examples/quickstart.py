"""Quickstart: the paper's §III MatMul, from algorithm to AMX tiles.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import frontend as hl
from repro.hardboiled import select_instructions
from repro.ir import print_stmt
from repro.lowering import lower
from repro.runtime import Counters
from repro.runtime.executor import CompiledPipeline
from repro.targets.bfloat16 import round_to_bfloat16


def main():
    # --- the algorithm: a bf16 MatMul, written naturally -----------------
    A = hl.ImageParam(hl.BFloat(16), 2, name="A")
    B = hl.ImageParam(hl.BFloat(16), 2, name="B")
    x, y = hl.Var("x"), hl.Var("y")
    r = hl.RDom(0, 32, name="r")
    mm = hl.Func("mm")
    mm[y, x] = 0.0
    mm[y, x] += hl.f32(A[r, x]) * hl.f32(B[y, r])

    # --- the schedule: ask for AMX tile registers ------------------------
    out = mm.in_()
    out.bound(x, 0, 16).bound(y, 0, 16).vectorize(y, 16).vectorize(x, 16)
    mm.store_in(hl.MemoryType.AMX_TILE).compute_at(out, "x")
    mm.vectorize(y, 16).vectorize(x, 16)
    mm.update().atomic().vectorize(r, 32).vectorize(y, 16).vectorize(x, 16)

    # --- compile: HARDBOILED selects tensor instructions via EqSat -------
    lowered = lower(out)
    print("=== vectorized IR (before instruction selection) ===")
    print(print_stmt(lowered.stmt))
    tensorized, report = select_instructions(lowered, strict=True)
    print("\n=== after HARDBOILED ===")
    print(print_stmt(tensorized.stmt))
    print("\n" + report.summary())

    # --- run on the AMX simulator and check against numpy ---------------
    rng = np.random.default_rng(0)
    a = round_to_bfloat16(rng.standard_normal((16, 32)).astype(np.float32))
    b = round_to_bfloat16(rng.standard_normal((32, 16)).astype(np.float32))
    counters = Counters()
    result = CompiledPipeline(tensorized).run({A: a, B: b}, counters=counters)
    reference = a.astype(np.float32) @ b.astype(np.float32)
    print("\nmax |error| vs numpy:", np.abs(result - reference).max())
    print(
        f"tensor-unit MACs: {counters.tensor_macs}"
        f" (= 16*16*32 = {16 * 16 * 32}); scalar FLOPs:"
        f" {counters.scalar_flops}"
    )


if __name__ == "__main__":
    main()
