"""The on-disk compile-artifact store.

One artifact is the complete output of the expensive half of a compile:
the post-selection **tensorized statement** (so a fresh process skips
equality saturation) and, for the compiled backend, the generated
**kernel payload** — NumPy source plus injected constants (so codegen
is skipped too).  Artifacts are content-addressed by
:class:`~.fingerprint.ArtifactKey` and laid out as::

    <root>/<digest[:2]>/<digest>.artifact       (checksummed pickle)
    <root>/quarantine/                          (corrupt payloads, kept)

Writes are atomic — the payload is written to a temp file in the same
directory and ``os.replace``-d into place — so concurrent compilers
(the :class:`~.batch.BatchCompiler` worker processes, or independent
services sharing a network volume) can merge into one store without a
lock and without ever exposing a torn artifact.

Reads are **hardened** for serving-tier robustness:

* every payload is framed with a SHA-256 checksum
  (:func:`~repro.runtime.kernel_cache.frame_blob`), verified before any
  bytes reach the pickle layer — bit rot and torn writes surface as a
  typed rejection, never as undefined unpickling behavior;
* rejected artifacts (bad checksum, format/key mismatch, stale kernel
  format) are moved into a ``quarantine/`` directory instead of being
  silently unlinked, so an operator can inspect what corrupted — and
  the ``quarantined`` counter in :class:`StoreStats` proves it
  happened;
* transient IO errors are retried a bounded number of times
  (``io_attempts``, short linear backoff) before the lookup degrades to
  a miss — a flaky network mount costs a retry, not a cold compile.

Every read/write passes the ``store.read`` / ``store.write`` fault
points (:mod:`repro.runtime.faultpoints`), so corruption, slow IO, and
transient errors are all injectable by a deterministic
:class:`~.faults.FaultPlan`.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..ir import Stmt
from ..runtime.faultpoints import fire
from ..runtime.kernel_cache import (
    ChecksumError,
    PICKLE_LOAD_ERRORS,
    atomic_write_bytes,
    frame_blob,
    sharded_path,
    unframe_blob,
)
from .fingerprint import ArtifactKey

#: bump when the artifact layout changes; old artifacts become misses
#: (v2: payloads are checksum-framed, rejects are quarantined)
ARTIFACT_FORMAT_VERSION = 2

#: subdirectory of the store root holding rejected payloads
QUARANTINE_DIRNAME = "quarantine"


@dataclass
class CompileArtifact:
    """Everything a warm start needs, decoupled from the live process."""

    #: the digest of the key this artifact was stored under
    key_digest: str
    #: the four key components, for post-load validation
    key: ArtifactKey
    #: the post-selection (tensorized) statement
    stmt: Stmt
    #: per-store selection outcome rows ``{"name", "kind", "mapped"}``
    store_rows: List[Dict[str, object]] = field(default_factory=list)
    #: :func:`repro.runtime.codegen.serialize_kernel` payload, or None
    #: for interpret-backend artifacts / fallback kernels
    kernel: Optional[dict] = None
    #: seconds the original (cold) selection spent in equality saturation
    cold_eqsat_seconds: float = 0.0
    #: wall-clock seconds the original cold compile paid end to end
    cold_seconds: float = 0.0
    format_version: int = ARTIFACT_FORMAT_VERSION


@dataclass
class StoreStats:
    """Lookup/write accounting for one :class:`ArtifactStore`."""

    hits: int = 0
    misses: int = 0
    #: artifacts found on disk but rejected (format/key mismatch, torn
    #: or unreadable payload) — counted *in addition to* a miss
    stale: int = 0
    #: rejected payloads preserved under ``quarantine/`` (a subset of
    #: ``stale``: rejects whose file could be moved aside for autopsy)
    quarantined: int = 0
    #: transient IO errors absorbed by the bounded read retry
    io_retries: int = 0
    writes: int = 0
    #: persists that failed (read-only mount, disk full) and were
    #: skipped — the compile itself still succeeds
    write_errors: int = 0
    load_seconds: float = 0.0
    store_seconds: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stale": self.stale,
            "quarantined": self.quarantined,
            "io_retries": self.io_retries,
            "writes": self.writes,
            "write_errors": self.write_errors,
            "load_seconds": self.load_seconds,
            "store_seconds": self.store_seconds,
        }


class ArtifactStore:
    """A content-addressed, multi-process-safe artifact directory.

    ``io_attempts``/``io_retry_delay`` bound the retry loop around
    transient read errors (a flaky mount): each failed attempt sleeps
    ``io_retry_delay * attempt`` before retrying, and exhaustion
    degrades the lookup to a miss.
    """

    def __init__(
        self,
        root: str,
        io_attempts: int = 3,
        io_retry_delay: float = 0.01,
    ) -> None:
        self.root = str(root)
        self.io_attempts = max(1, int(io_attempts))
        self.io_retry_delay = float(io_retry_delay)
        os.makedirs(self.root, exist_ok=True)
        self.stats = StoreStats()

    def __repr__(self) -> str:
        return f"ArtifactStore({self.root!r}, {len(self)} artifacts)"

    def path_for(self, digest: str) -> str:
        return sharded_path(self.root, digest, ".artifact")

    @property
    def quarantine_dir(self) -> str:
        return os.path.join(self.root, QUARANTINE_DIRNAME)

    # -- hardened IO -----------------------------------------------------------

    def _read_bytes(self, path: str) -> bytes:
        """Read ``path`` with bounded retry on transient IO errors.

        ``FileNotFoundError`` propagates immediately (a plain miss);
        any other ``OSError`` is retried up to ``io_attempts`` times
        with a short linear backoff, then re-raised.
        """
        last: Optional[OSError] = None
        for attempt in range(self.io_attempts):
            try:
                fire("store.read", path=path)
                with open(path, "rb") as handle:
                    return handle.read()
            except FileNotFoundError:
                raise
            except OSError as exc:
                last = exc
                if attempt + 1 < self.io_attempts:
                    self.stats.io_retries += 1
                    time.sleep(self.io_retry_delay * (attempt + 1))
        assert last is not None
        raise last

    def _load(self, path: str):
        """Read, checksum-verify, and unpickle one payload file."""
        data = self._read_bytes(path)
        return pickle.loads(unframe_blob(data))

    def _write(self, path: str, payload: object) -> None:
        """Frame and atomically persist one payload file."""
        fire("store.write", path=path)
        atomic_write_bytes(
            path,
            frame_blob(
                pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
            ),
        )

    # -- lookup ----------------------------------------------------------------

    def get(self, key: ArtifactKey) -> Optional[CompileArtifact]:
        """The artifact for ``key``, or None (miss, stale, or unreadable)."""
        digest = key.digest
        path = self.path_for(digest)
        start = time.perf_counter()
        try:
            artifact = self._load(path)
        except FileNotFoundError:
            self.stats.misses += 1
            self.stats.load_seconds += time.perf_counter() - start
            return None
        except (ChecksumError, *PICKLE_LOAD_ERRORS) as exc:
            if isinstance(exc, OSError):
                # transient IO exhausted the retry budget: the file may
                # be fine — degrade to a miss without quarantining it
                self.stats.misses += 1
            else:
                self._reject(path)
            self.stats.load_seconds += time.perf_counter() - start
            return None
        if (
            not isinstance(artifact, CompileArtifact)
            or artifact.format_version != ARTIFACT_FORMAT_VERSION
            or artifact.key_digest != digest
            or artifact.key != key
        ):
            self._reject(path)
            self.stats.load_seconds += time.perf_counter() - start
            return None
        self.stats.hits += 1
        self.stats.load_seconds += time.perf_counter() - start
        return artifact

    def _reject(self, path: str) -> None:
        """Count a stale artifact and quarantine it for autopsy."""
        self.stats.stale += 1
        self.stats.misses += 1
        try:
            os.makedirs(self.quarantine_dir, exist_ok=True)
            os.replace(
                path,
                os.path.join(self.quarantine_dir, os.path.basename(path)),
            )
            self.stats.quarantined += 1
        except OSError:
            # quarantine unavailable (read-only mount, cross-device):
            # fall back to dropping the file so it is never re-served
            try:
                os.unlink(path)
            except OSError:
                pass

    def quarantined_files(self) -> List[str]:
        """Paths of every quarantined payload (newest last)."""
        try:
            entries = sorted(os.listdir(self.quarantine_dir))
        except OSError:
            return []
        return [os.path.join(self.quarantine_dir, e) for e in entries]

    def demote_hit(self, key: ArtifactKey) -> None:
        """Reclassify the most recent hit on ``key`` as stale.

        For callers that discover *after* a successful ``get`` that the
        artifact is unusable (e.g. its embedded kernel payload predates
        the current kernel format): the served-artifact is quarantined
        and the counters read as if the lookup had missed, so the two
        telemetry surfaces (store stats, ``SelectionReport``) agree.
        """
        self.stats.hits -= 1
        self._reject(self.path_for(key.digest))

    # -- storage ---------------------------------------------------------------

    def put(self, key: ArtifactKey, artifact: CompileArtifact) -> str:
        """Persist ``artifact`` under ``key`` atomically; returns the path.

        Last writer wins; because the store is content-addressed, any
        two writers racing on one digest are persisting equivalent
        compiles of the same statement under the same rules.
        """
        digest = key.digest
        artifact.key_digest = digest
        artifact.key = key
        start = time.perf_counter()
        path = self.path_for(digest)
        self._write(path, artifact)
        self.stats.writes += 1
        self.stats.store_seconds += time.perf_counter() - start
        return path

    def try_put(
        self, key: ArtifactKey, artifact: CompileArtifact
    ) -> Optional[str]:
        """:meth:`put`, but an unwritable store degrades to "not cached".

        A serving replica on a read-only mount (or a full disk) must
        still be able to *compile* — it just cannot warm anyone else.
        Returns the path, or None when the write was skipped.
        """
        try:
            return self.put(key, artifact)
        except OSError:
            self.stats.write_errors += 1
            return None

    # -- batch-axis kernels ----------------------------------------------------

    def kernel_path_for(self, key: str) -> str:
        """The on-disk location for a standalone kernel payload.

        Batched-kernel keys (:func:`~repro.runtime.kernel_cache
        .batched_key`) embed the stacked-input split, so the key itself
        is digested for the filename — the layout stays uniform no
        matter how keys evolve.
        """
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return sharded_path(self.root, digest, ".bkernel")

    def get_kernel(self, key: str):
        """Re-hydrate the batch-axis kernel stored under ``key``.

        Returns a ready :class:`~repro.runtime.codegen.CompiledKernel`,
        or None on a miss.  A payload whose checksum fails, whose
        embedded key disagrees, or whose kernel format predates the
        current ``KERNEL_FORMAT_VERSION`` is stale: rejected,
        quarantined, and counted — never served.
        """
        from ..runtime.codegen import CodegenError, deserialize_kernel

        path = self.kernel_path_for(key)
        start = time.perf_counter()
        try:
            payload = self._load(path)
        except FileNotFoundError:
            self.stats.misses += 1
            self.stats.load_seconds += time.perf_counter() - start
            return None
        except (ChecksumError, *PICKLE_LOAD_ERRORS) as exc:
            if isinstance(exc, OSError):
                self.stats.misses += 1
            else:
                self._reject(path)
            self.stats.load_seconds += time.perf_counter() - start
            return None
        if not isinstance(payload, dict) or payload.get("key") != key:
            self._reject(path)
            self.stats.load_seconds += time.perf_counter() - start
            return None
        try:
            kernel = deserialize_kernel(payload)
        except (CodegenError, *PICKLE_LOAD_ERRORS):
            self._reject(path)
            self.stats.load_seconds += time.perf_counter() - start
            return None
        self.stats.hits += 1
        self.stats.load_seconds += time.perf_counter() - start
        return kernel

    def put_kernel(self, key: str, kernel) -> Optional[str]:
        """Persist a batch-axis kernel atomically; returns the path.

        Same degradation contract as :meth:`try_put` — an unwritable
        store (read-only replica, full disk) is "not cached", never an
        error on the compile path.  Returns None when the kernel is not
        serializable or the write was skipped.
        """
        from ..runtime.codegen import serialize_kernel

        payload = serialize_kernel(kernel)
        if payload is None:
            return None
        start = time.perf_counter()
        path = self.kernel_path_for(key)
        try:
            self._write(path, dict(payload, key=key))
        except OSError:
            self.stats.write_errors += 1
            return None
        self.stats.writes += 1
        self.stats.store_seconds += time.perf_counter() - start
        return path

    # -- maintenance -----------------------------------------------------------

    def digests(self) -> Iterator[str]:
        """All artifact digests currently on disk (quarantine excluded)."""
        if not os.path.isdir(self.root):
            return
        for shard in sorted(os.listdir(self.root)):
            if shard == QUARANTINE_DIRNAME:
                continue
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for entry in sorted(os.listdir(shard_dir)):
                if entry.endswith(".artifact"):
                    yield entry[: -len(".artifact")]

    def __len__(self) -> int:
        return sum(1 for _ in self.digests())

    def clear(self) -> None:
        """Remove every artifact (leaves the directory in place)."""
        for digest in list(self.digests()):
            try:
                os.unlink(self.path_for(digest))
            except OSError:
                pass
