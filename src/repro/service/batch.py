"""The parallel batch driver: compile many apps into one shared store.

A production service does not compile pipelines one at a time on the
serving path — it precompiles its catalog into the artifact store
(deploy time, cron, or a warming sidecar) so serving processes only
ever take the hit path.  :class:`BatchCompiler` is that driver: it fans
a list of :class:`CompileJob` specs out over ``concurrent.futures``
worker *processes* (saturation is pure Python and CPU-bound, so threads
would serialize on the GIL) and each worker merges its artifacts into
the shared store with atomic writes — concurrent workers never corrupt
it, and two workers racing on the same key simply persist equivalent
artifacts.

Jobs are *specs* (app module, builder, params), not live ``App``
objects: an ``App`` closes over its NumPy reference function and is not
picklable, while a spec crosses the process boundary trivially and the
worker rebuilds the app from the registry — the same shape as a compile
request arriving over the wire.
"""

from __future__ import annotations

import importlib
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .store import ArtifactStore


@dataclass(frozen=True)
class CompileJob:
    """One compile request: ``repro.apps.<app>.<builder>(variant, **params)``."""

    #: module name under ``repro.apps`` (e.g. ``"conv1d"``)
    app: str
    #: builder variant: ``"cuda"`` or ``"tensor"`` (None for builders
    #: that take no variant, e.g. ``matmul.build_amx``)
    variant: Optional[str] = "tensor"
    #: builder function name inside the app module
    builder: str = "build"
    #: keyword arguments for the builder (must be picklable)
    params: tuple = ()
    #: execution backend the artifact targets
    backend: str = "compile"

    @classmethod
    def make(
        cls,
        app: str,
        variant: Optional[str] = "tensor",
        builder: str = "build",
        backend: str = "compile",
        **params,
    ) -> "CompileJob":
        return cls(
            app=app,
            variant=variant,
            builder=builder,
            params=tuple(sorted(params.items())),
            backend=backend,
        )

    @property
    def label(self) -> str:
        args = [repr(self.variant)] if self.variant is not None else []
        args += [f"{k}={v!r}" for k, v in self.params]
        return f"{self.app}.{self.builder}({', '.join(args)})"

    def build_app(self):
        """Materialize the App this job describes (in this process)."""
        module = importlib.import_module(f"repro.apps.{self.app}")
        builder = getattr(module, self.builder)
        params = dict(self.params)
        if self.variant is not None:
            return builder(self.variant, **params)
        return builder(**params)


@dataclass
class JobResult:
    """Per-job telemetry returned from a worker."""

    job: CompileJob
    #: ``"hit"`` / ``"miss"`` (None when the job errored)
    cache: Optional[str] = None
    #: worker-side wall-clock seconds for lower + warm compile
    seconds: float = 0.0
    #: saturation seconds actually paid (0.0 on a hit)
    eqsat_seconds: float = 0.0
    num_stores: int = 0
    all_mapped: bool = True
    key_digest: str = ""
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def compile_one(job: CompileJob, store_root: str, device: str) -> JobResult:
    """Compile one job into the store (runs inside a worker process)."""
    from ..lowering import lower
    from .compile import warm_select

    try:
        start = time.perf_counter()
        app = job.build_app()
        lowered = lower(app.output)
        result = warm_select(
            lowered,
            ArtifactStore(store_root),
            backend=job.backend,
            device=device,
            strict=True,
        )
        report = result.report
        return JobResult(
            job=job,
            cache=report.artifact_cache,
            seconds=time.perf_counter() - start,
            eqsat_seconds=report.eqsat_seconds,
            num_stores=report.num_stores,
            all_mapped=report.all_mapped,
            key_digest=result.key.digest,
        )
    except Exception as exc:  # crossing a process boundary: flatten
        return JobResult(job=job, error=f"{type(exc).__name__}: {exc}")


@dataclass
class BatchReport:
    results: List[JobResult] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def hits(self) -> int:
        return sum(1 for r in self.results if r.cache == "hit")

    @property
    def misses(self) -> int:
        return sum(1 for r in self.results if r.cache == "miss")

    @property
    def errors(self) -> List[JobResult]:
        return [r for r in self.results if not r.ok]

    def summary(self) -> Dict[str, float]:
        return {
            "jobs": len(self.results),
            "hits": self.hits,
            "misses": self.misses,
            "errors": len(self.errors),
            "wall_seconds": self.wall_seconds,
            "worker_seconds": sum(r.seconds for r in self.results),
            "eqsat_seconds": sum(r.eqsat_seconds for r in self.results),
        }


class BatchCompiler:
    """Compile a catalog of jobs into one shared artifact store."""

    def __init__(
        self,
        store_root: str,
        max_workers: Optional[int] = None,
        device: object = "host",
    ) -> None:
        self.store_root = str(store_root)
        self.max_workers = max_workers
        self.device = getattr(device, "name", None) or str(device)
        # create the root eagerly so workers never race on mkdir
        ArtifactStore(self.store_root)

    def compile_many(self, jobs: Sequence[CompileJob]) -> BatchReport:
        """Run every job; in-process when ``max_workers == 1``, else in
        a ``concurrent.futures`` process pool.  Job failures are
        captured per-result, never raised out of the batch."""
        start = time.perf_counter()
        if self.max_workers == 1 or len(jobs) <= 1:
            results = [
                compile_one(job, self.store_root, self.device) for job in jobs
            ]
        else:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                futures = [
                    pool.submit(compile_one, job, self.store_root, self.device)
                    for job in jobs
                ]
                results = []
                for job, future in zip(jobs, futures):
                    try:
                        results.append(future.result())
                    except Exception as exc:
                        # a worker died outright (OOM-kill, segfault):
                        # the pool is broken but completed results and
                        # the per-job error contract survive
                        results.append(
                            JobResult(
                                job=job,
                                error=f"{type(exc).__name__}: {exc}",
                            )
                        )
        return BatchReport(results, wall_seconds=time.perf_counter() - start)
