"""Chaos-soak harness: randomized fault compositions + invariants.

The deterministic fault harness (:mod:`repro.service.faults`) injects
*point* faults — one mode, one site, chosen by the test.  Production
failure is messier: faults compose, land mid-batch, overlap a rolling
restart, and hit requests whose deadline budgets are half spent.  This
module closes that gap with a seeded soak:

* :func:`random_fault_plan` draws a random composition of every fault
  mode (kill / hang / raise / corrupt-artifact / corrupt-shm-slot /
  slow-io / io-error / alloc-fail) from one integer seed — same seed,
  same plan, bit for bit;
* :func:`run_soak` drives a long mixed stream (two shape buckets,
  random deadline budgets, priority classes, and idempotence flags)
  through a fully armed :class:`~repro.service.router.Router` while
  the plan fires, optionally rolling-restarts the pools mid-stream,
  then gracefully drains;
* the invariant checker asserts what must hold *no matter what the
  fault plan did*:

  1. every submitted request reaches exactly one terminal outcome
     (result, typed failure, shed, rejection, or expiry — never an
     unresolved future, never two verdicts);
  2. every success is bitwise identical to the single-process
     unfaulted reference;
  3. at-most-once holds for ``idempotent=False`` requests (checked
     against the pools' dispatch event logs);
  4. stats obey conservation: ``offered == completed + failed +
     rejected + shed + expired`` with nothing left pending, and the
     harness's own per-request ledger matches the router's counters;
  5. teardown leaves no orphan worker processes and no leaked
     ``/dev/shm`` segments.

A failed invariant is a bug in the serving stack, not in the plan —
the report carries the seed, so every violation replays exactly.
"""

from __future__ import annotations

import multiprocessing
import random
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .batch import CompileJob
from .faults import FaultPlan, FaultSpec
from .router import Router, job_fingerprint
from .serve import RejectedError, ServerClosed, ShedError
from .supervisor import DeadlineExceeded
from . import shm as shm_transport

__all__ = [
    "SoakReport",
    "default_jobs",
    "random_fault_plan",
    "run_soak",
]

#: modes safe to draw with a firing *rate* — they are transient (the
#: request retries) or absorbed by a subsystem (store quarantine, frame
#: CRC), so any composition still converges
_RATE_MODES = (
    "raise-in-kernel",
    "alloc-fail",
    "corrupt-artifact",
    "corrupt-shm-slot",
    "slow-io",
    "io-error",
)

#: modes that take a worker down (or wedge it) — drawn with pinned
#: visit indices and an incarnation scope so a random plan cannot put
#: every future incarnation into a crash loop
_DISRUPTIVE_MODES = ("kill-worker", "hang-kernel")

#: a budget this small is spent before any flusher pass can run — the
#: soak uses it to prove expired requests never reach a worker
TINY_BUDGET = 1e-6


def default_jobs() -> List[CompileJob]:
    """Two fast-starting conv1d shapes: two buckets, one app."""
    return [
        CompileJob.make("conv1d", "cuda", taps=8, rows=1),
        CompileJob.make("conv1d", "cuda", taps=16, rows=1),
    ]


def random_fault_plan(
    seed: int,
    max_specs: int = 3,
    modes: Optional[Sequence[str]] = None,
) -> FaultPlan:
    """Draw a reproducible random composition of fault specs.

    Disruptive modes (kill/hang) get pinned visit indices and an
    incarnation scope; transient modes get a bounded rate and fire
    cap.  The draw is a pure function of ``seed``.
    """
    rng = random.Random(f"chaos-plan-{seed}")
    specs: List[FaultSpec] = []
    for _ in range(rng.randint(1, max_specs)):
        mode = rng.choice(list(modes) if modes else list(_RATE_MODES + _DISRUPTIVE_MODES))
        if mode in _DISRUPTIVE_MODES:
            visits = tuple(
                sorted({rng.randint(0, 6) for _ in range(rng.randint(1, 2))})
            )
            spec = FaultSpec(
                mode,
                visits=visits,
                seconds=0.25 if mode == "hang-kernel" else None,
                scope={"incarnation": rng.randint(0, 1)},
            )
        else:
            spec = FaultSpec(
                mode,
                rate=rng.choice([0.02, 0.05, 0.1]),
                max_fires=rng.randint(1, 4),
                seconds=0.02 if mode == "slow-io" else None,
            )
        specs.append(spec)
    return FaultPlan(seed=seed, specs=specs)


@dataclass
class _StreamItem:
    """One request of the soak workload, with its reference output."""

    job_key: str
    inputs: dict
    reference: np.ndarray
    deadline: Optional[float]
    priority: str
    idempotent: bool


@dataclass
class SoakReport:
    """Everything one soak did, and every invariant it violated."""

    seed: int
    plan: List[str]
    action: Optional[str]
    submitted: int
    completed: int
    failed: int
    rejected: int
    shed: int
    expired: int
    drained: bool
    elapsed: float
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def _build_requests(app, count: int, np_rng) -> List[dict]:
    """Serving-idiom requests: fresh data for the first input param,
    the app's own arrays (same objects — shared weights) for the rest."""
    params = list(app.inputs.items())
    requests = []
    for _ in range(count):
        request = {}
        for position, (param, array) in enumerate(params):
            if position == 0:
                fresh = np_rng.standard_normal(array.shape)
                request[param.name] = fresh.astype(array.dtype)
            else:
                request[param.name] = array
        requests.append(request)
    return requests


def _build_stream(
    seed: int, jobs: Sequence[CompileJob], count: int, pool_size: int = 6
) -> List[_StreamItem]:
    """The mixed workload: random job, deadline class, priority, and
    idempotence per item; references from unfaulted in-process runs."""
    py_rng = random.Random(f"chaos-stream-{seed}")
    np_rng = np.random.default_rng(seed)
    per_job: Dict[str, Tuple[List[dict], List[np.ndarray]]] = {}
    for job in jobs:
        app = job.build_app()
        app.backend = job.backend
        requests = _build_requests(app, pool_size, np_rng)
        pipeline = app.compile()
        references = [pipeline.run(request) for request in requests]
        per_job[job_fingerprint(job)] = (requests, references)
    keys = list(per_job)
    stream: List[_StreamItem] = []
    for index in range(count):
        job_key = py_rng.choice(keys)
        requests, references = per_job[job_key]
        which = index % len(requests)
        draw = py_rng.random()
        if draw < 0.12:
            deadline: Optional[float] = TINY_BUDGET  # must expire
        elif draw < 0.3:
            deadline = 5.0
        else:
            deadline = None
        stream.append(
            _StreamItem(
                job_key=job_key,
                inputs=requests[which],
                reference=references[which],
                deadline=deadline,
                priority=(
                    "interactive"
                    if py_rng.random() < 0.7
                    else "best-effort"
                ),
                idempotent=py_rng.random() < 0.9,
            )
        )
    # the expired-never-dispatched invariant needs witnesses: make sure
    # every stream carries at least two tiny-budget requests
    tiny = sum(1 for item in stream if item.deadline == TINY_BUDGET)
    for index in (0, len(stream) // 2):
        if tiny >= 2:
            break
        if stream[index].deadline != TINY_BUDGET:
            stream[index].deadline = TINY_BUDGET
            tiny += 1
    return stream


def _check_events(pool, violations: List[str], label: str) -> None:
    """Pool-side invariants from the lifecycle event log: exactly one
    terminal event per request id, at-most-once dispatch for
    ``idempotent=False``."""
    terminal: Dict[int, int] = {}
    dispatches: Dict[int, int] = {}
    non_idempotent: set = set()
    for event in pool.event_log():
        kind, rid = event[0], event[1]
        if kind == "dispatch":
            dispatches[rid] = dispatches.get(rid, 0) + 1
            if not event[2]:
                non_idempotent.add(rid)
        elif kind in ("complete", "fail", "expire"):
            terminal[rid] = terminal.get(rid, 0) + 1
    for rid, times in terminal.items():
        if times != 1:
            violations.append(
                f"{label}: request {rid} reached {times} terminal"
                f" outcomes (expected exactly 1)"
            )
    for rid in non_idempotent:
        if dispatches.get(rid, 0) > 1:
            violations.append(
                f"{label}: idempotent=False request {rid} dispatched"
                f" {dispatches[rid]} times (at-most-once violated)"
            )


def _check_hygiene(violations: List[str], grace: float = 8.0) -> None:
    """No orphan worker processes, no leaked shm segments."""
    deadline = time.monotonic() + grace
    while True:
        orphans = [
            process.name
            for process in multiprocessing.active_children()
            if process.name.startswith("repro-worker")
        ]
        leaked = shm_transport.leaked_segments()
        if not orphans and not leaked:
            return
        if time.monotonic() >= deadline:
            if orphans:
                violations.append(f"orphan worker processes: {orphans}")
            if leaked:
                violations.append(f"leaked shm segments: {leaked}")
            return
        time.sleep(0.05)


def run_soak(
    seed: int,
    cache_dir: Optional[str] = None,
    requests_total: int = 40,
    workers: int = 2,
    jobs: Optional[Sequence[CompileJob]] = None,
    drain_timeout: float = 180.0,
) -> SoakReport:
    """One seeded chaos soak: workload + faults + lifecycle + checks.

    Deterministic in its inputs: the fault plan, workload, priorities,
    deadlines, and the mid-stream lifecycle action are all drawn from
    ``seed``.  Returns a :class:`SoakReport`; ``report.ok`` is the
    pass/fail verdict and ``report.violations`` names each broken
    invariant.
    """
    jobs = list(jobs) if jobs is not None else default_jobs()
    plan = random_fault_plan(seed)
    stream = _build_stream(seed, jobs, requests_total)
    py_rng = random.Random(f"chaos-actions-{seed}")
    action = "rolling-restart" if py_rng.random() < 0.35 else None
    started = time.monotonic()
    violations: List[str] = []

    router = Router(
        jobs,
        workers=workers,
        cache_dir=cache_dir,
        fault_plan=plan,
        retries=3,
        max_batch=4,
        flush_interval=0.002,
        bucket_cap=24,
        shed_target=0.05,
        shed_interval=0.05,
        hang_grace=2.0,
        record_events=True,
    )
    futures: List[Tuple[_StreamItem, object]] = []
    counts = {"shed": 0, "rejected": 0}
    tiny_outcomes: List[Tuple[int, str]] = []
    try:
        halfway = len(stream) // 2
        for index, item in enumerate(stream):
            if action == "rolling-restart" and index == halfway:
                try:
                    router.rolling_restart(timeout=90.0)
                except Exception as exc:  # noqa: BLE001 - verdict below
                    violations.append(f"rolling restart failed: {exc!r}")
            try:
                future = router.submit(
                    item.job_key,
                    item.inputs,
                    deadline=item.deadline,
                    idempotent=item.idempotent,
                    priority=item.priority,
                )
            except ShedError:
                counts["shed"] += 1
                continue
            except RejectedError:
                counts["rejected"] += 1
                continue
            futures.append((item, future))
            time.sleep(py_rng.random() * 0.002)
        drained = router.drain(timeout=drain_timeout)
        if not drained:
            violations.append(
                f"drain did not complete within {drain_timeout}s"
            )
        counts["completed"] = counts["failed"] = counts["expired"] = 0
        for index, (item, future) in enumerate(futures):
            try:
                output = future.result(timeout=30.0)
            except FutureTimeoutError:
                violations.append(
                    f"request {index} never reached a terminal outcome"
                )
                continue
            except DeadlineExceeded:
                counts["expired"] += 1
                if item.deadline == TINY_BUDGET:
                    tiny_outcomes.append((index, "expired"))
                continue
            except ShedError:
                counts["shed"] += 1
                continue
            except Exception:  # noqa: BLE001 - any typed failure is terminal
                counts["failed"] += 1
                if item.deadline == TINY_BUDGET:
                    tiny_outcomes.append((index, "failed"))
                continue
            counts["completed"] += 1
            if item.deadline == TINY_BUDGET:
                tiny_outcomes.append((index, "ok"))
            if not np.array_equal(output, item.reference):
                violations.append(
                    f"request {index} output differs from the"
                    f" single-process reference (parity violated)"
                )
        stats = router.stats()
        pools = router.pools()
    finally:
        router.close(timeout=30.0)

    # tiny-budget requests that were admitted must expire — completing
    # or failing would mean an already-expired request reached a worker
    for index, outcome in tiny_outcomes:
        if outcome != "expired":
            violations.append(
                f"tiny-budget request {index} ended {outcome!r}"
                f" instead of expiring before dispatch"
            )
    # conservation: the router's ledger balances, and matches ours
    offered = stats["offered"]
    accounted = (
        stats["completed"]
        + stats["failed"]
        + stats["rejected"]
        + stats["shed"]
        + stats["expired"]
    )
    if offered != accounted or stats["pending"] != 0:
        violations.append(
            f"stats conservation violated: offered={offered},"
            f" accounted={accounted}, pending={stats['pending']}"
        )
    for key in ("completed", "failed", "expired"):
        if counts[key] != stats[key]:
            violations.append(
                f"harness counted {counts[key]} {key} but the router"
                f" reports {stats[key]}"
            )
    if counts["shed"] != stats["shed"] or (
        counts["rejected"] != stats["rejected"]
    ):
        violations.append(
            f"harness shed/rejected ({counts['shed']}/"
            f"{counts['rejected']}) disagree with the router"
            f" ({stats['shed']}/{stats['rejected']})"
        )
    for key, pool in pools.items():
        _check_events(pool, violations, f"pool {key[:8]}")
    _check_hygiene(violations)

    return SoakReport(
        seed=seed,
        plan=[spec.label for spec in plan.specs],
        action=action,
        submitted=len(futures),
        completed=counts["completed"],
        failed=counts["failed"],
        rejected=counts["rejected"],
        shed=counts["shed"],
        expired=counts["expired"],
        drained=drained,
        elapsed=time.monotonic() - started,
        violations=violations,
    )
