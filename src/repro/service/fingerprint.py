"""Content-addressed keys for compile artifacts.

A warm start is only sound if the key captures *everything* the cached
result depends on:

* the **lowered statement** — a structural fingerprint of the
  pre-selection vector IR (:func:`repro.runtime.kernel_cache
  .fingerprint_stmt`): any algorithm or schedule change alters it;
* the **rule set** — a stable hash over every rewrite rule HARDBOILED
  can fire (axiomatic, supporting, and all accelerator families): any
  edit to a rule file changes the hash, so stale artifacts selected
  under the old rules are never served;
* the **backend** — compiled artifacts additionally embed generated
  kernel source, interpret artifacts do not;
* the **device spec** — selection is device-independent today, but
  artifacts are pinned to a device name so future device-dependent cost
  models invalidate cleanly (and so one store can serve a device fleet).

The rule hash covers the rules as *data* (name, query atoms, actions —
all frozen dataclasses with complete, deterministic reprs), plus the
relation vocabulary each family declares.  It deliberately does not
hash the compiled register programs: those are derived from the same
data by a deterministic compiler, and hashing the source of truth keeps
the fingerprint independent of compilation order.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Optional, Sequence, Tuple

from ..lowering.pipeline import Lowered
from ..runtime.kernel_cache import fingerprint_stmt

def _default_families() -> Tuple[Tuple[str, Callable], ...]:
    """Every rule family selection can fire, in a deterministic order.

    Derived from the tile extractor's own registry (``_APP_RULES`` plus
    the axiomatic/supporting core it always runs), not re-enumerated
    here — a new accelerator family registered for selection changes
    the fingerprint automatically, which is the whole staleness
    guarantee.  Each entry is ``(family name, zero-arg builder)``
    returning ``(rules, relations)``.
    """
    from ..hardboiled.rules_axiomatic import axiomatic_rules
    from ..hardboiled.rules_supporting import supporting_rules
    from ..hardboiled.tile_extractor import _APP_RULES

    return (
        ("axiomatic", axiomatic_rules),
        ("supporting", supporting_rules),
        *sorted(_APP_RULES.items()),
    )


def rule_fingerprint(rule) -> str:
    """A stable hash of one rule's declarative content."""
    payload = repr((rule.name, rule.query, rule.actions))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def fingerprint_families(families) -> str:
    """Hash ``(family name, rules, relations)`` triples in order."""
    digest = hashlib.sha256()
    for name, builder in families:
        rules, relations = builder()
        digest.update(name.encode("utf-8"))
        digest.update(repr(sorted(relations)).encode("utf-8"))
        for rule in rules:
            digest.update(rule_fingerprint(rule).encode("utf-8"))
    return digest.hexdigest()


@lru_cache(maxsize=1)
def ruleset_fingerprint() -> str:
    """The stable hash of HARDBOILED's complete rule set.

    Computed once per process (building + hashing every family costs
    ~10 ms).  Tests that mutate rule families should call
    ``ruleset_fingerprint.cache_clear()``.
    """
    return fingerprint_families(_default_families())


@dataclass(frozen=True)
class ArtifactKey:
    """The key a compile artifact is addressed by."""

    #: structural fingerprint of the *pre-selection* lowered statement
    stmt: str
    #: :func:`ruleset_fingerprint` at compile time
    rules: str
    #: execution backend the artifact targets ("interpret" | "compile")
    backend: str
    #: device-spec name (or "host" for device-independent compiles)
    device: str
    #: saturation-schedule length the selection ran at — a shallower
    #: compile can legitimately map fewer stores, so artifacts at
    #: different depths must never be shared
    iterations: int = 14

    @property
    def digest(self) -> str:
        """The content address: sha256 over every component."""
        payload = "\n".join(
            (self.stmt, self.rules, self.backend, self.device,
             str(self.iterations))
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    @classmethod
    def for_lowered(
        cls,
        lowered: Lowered,
        backend: str = "interpret",
        device: object = "host",
        rules: Optional[str] = None,
        iterations: int = 14,
    ) -> "ArtifactKey":
        """Key a lowered (pre-selection) pipeline for lookup or storage.

        ``device`` may be a string or anything with a ``name`` attribute
        (e.g. :class:`repro.targets.device.DeviceSpec`).
        """
        from ..runtime.executor import _check_backend

        device_name = getattr(device, "name", None) or str(device)
        return cls(
            stmt=fingerprint_stmt(lowered.stmt),
            rules=rules if rules is not None else ruleset_fingerprint(),
            backend=_check_backend(backend),
            device=device_name,
            iterations=iterations,
        )
