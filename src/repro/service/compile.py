"""Warm-start compilation: skip saturation *and* codegen on a hit.

The cold path (what every process used to pay) is::

    lower() -> select_instructions() -> compile_stmt() -> run

``select_instructions`` runs equality saturation per accelerator store
and dominates compile time; ``compile_stmt`` emits the NumPy kernel.
The warm path keys the *pre-selection* lowered statement (plus rule-set
fingerprint, backend, and device — see :mod:`.fingerprint`) into an
:class:`~.store.ArtifactStore` and, on a hit, restores the tensorized
statement and the ready-to-exec kernel directly::

    lower() -> [artifact hit] -> run

Misses fall through to the real compiler and persist what it produced,
so the first process to compile a pipeline warms every later one.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Optional, Tuple

from ..hardboiled import SelectionError, SelectionReport, select_instructions
from ..lowering.pipeline import Lowered
from ..runtime.codegen import (
    CodegenError,
    CompiledKernel,
    compile_stmt,
    deserialize_kernel,
    serialize_kernel,
)
from ..runtime.executor import CompiledPipeline, KernelCache, _check_backend
from ..runtime.kernel_cache import PICKLE_LOAD_ERRORS, fingerprint_stmt
from .fingerprint import ArtifactKey
from .store import ArtifactStore, CompileArtifact


@dataclass
class WarmCompileResult:
    """Outcome of one warm-start compile."""

    #: the tensorized (post-selection) pipeline
    lowered: Lowered
    #: selection report; ``artifact_cache`` is ``"hit"`` or ``"miss"``
    report: SelectionReport
    #: re-hydrated (hit) or freshly compiled (miss) kernel; None for
    #: the interpret backend and for interpreter-fallback statements
    kernel: Optional[CompiledKernel]
    #: the key the artifact was looked up / stored under
    key: ArtifactKey

    @property
    def hit(self) -> bool:
        return self.report.artifact_cache == "hit"


def _strict_check(report: SelectionReport) -> None:
    if not report.all_mapped:
        failed = [
            row["name"] for row in report.store_rows() if not row["mapped"]
        ]
        raise SelectionError(
            "instruction selection failed for accelerator-scheduled"
            f" stores into {failed} — no lowering rule matched"
        )


def warm_select(
    lowered: Lowered,
    store: ArtifactStore,
    *,
    backend: str = "interpret",
    device: object = "host",
    iterations: int = 14,
    strict: bool = True,
    verify: bool = True,
) -> WarmCompileResult:
    """Instruction selection through the artifact store.

    On a hit the saturation and codegen stages are skipped entirely;
    on a miss they run and the result is persisted (atomically) so the
    next process hits.  ``strict`` behaves exactly as in
    :func:`repro.hardboiled.select_instructions` — a restored artifact
    whose recorded selection left stores unmapped raises
    :class:`SelectionError` just as the live compiler would.

    ``verify`` (default **on**) runs the static IR verifier
    (:mod:`repro.analysis`) over the restored tensorized statement.  A
    stale or corrupt artifact — one whose statement no longer passes
    well-formedness — is demoted to a miss and recompiled cold instead
    of being handed to the user's kernel; verification costs
    milliseconds against a multi-second cold compile (asserted by
    ``tests/test_analysis.py``).
    """
    backend = _check_backend(backend)
    key = ArtifactKey.for_lowered(
        lowered, backend=backend, device=device, iterations=iterations
    )
    start = time.perf_counter()
    artifact = store.get(key)
    if artifact is not None and artifact.kernel is not None:
        try:
            kernel = deserialize_kernel(artifact.kernel)
        except (CodegenError, *PICKLE_LOAD_ERRORS):
            # format drift or a torn/bit-rotted payload the pickle layer
            # could not catch: the whole artifact is stale — demote the
            # lookup to a miss and recompile cold (overwriting it)
            # rather than crashing warm starts
            store.demote_hit(key)
            artifact = None
            kernel = None
    else:
        kernel = None
    if artifact is not None and verify:
        from ..analysis import errors, verify_ir

        findings = verify_ir(
            artifact.stmt,
            lowered.realizations,
            phase="tensorized",
            context=f"artifact:{key.digest[:12]}",
            unmapped={
                row["name"]
                for row in artifact.store_rows
                if not row.get("mapped")
            },
        )
        if errors(findings):
            # the restored statement fails static verification — same
            # treatment as a torn payload: demote and recompile cold
            store.demote_hit(key)
            artifact = None
            kernel = None
    if artifact is not None:
        restore_seconds = time.perf_counter() - start
        tensorized = dataclasses.replace(lowered, stmt=artifact.stmt)
        tensorized.pass_seconds = dict(lowered.pass_seconds)
        tensorized.pass_seconds["artifact_restore"] = restore_seconds
        report = SelectionReport(
            artifact_cache="hit",
            artifact_key=key.digest,
            restore_seconds=restore_seconds,
            restored_stores=[dict(r) for r in artifact.store_rows],
        )
        if strict:
            _strict_check(report)
        return WarmCompileResult(tensorized, report, kernel, key)

    # -- miss: run the real compiler, then persist its output ----------------
    tensorized, report = select_instructions(
        lowered, iterations=iterations, strict=strict, verify=verify
    )
    kernel = None
    kernel_payload = None
    if backend == "compile":
        kernel = compile_stmt(
            tensorized.stmt, key=fingerprint_stmt(tensorized.stmt)
        )
        kernel_payload = serialize_kernel(kernel)
    cold_seconds = time.perf_counter() - start
    report.artifact_cache = "miss"
    report.artifact_key = key.digest
    store.try_put(
        key,
        CompileArtifact(
            key_digest=key.digest,
            key=key,
            stmt=tensorized.stmt,
            store_rows=report.store_rows(),
            kernel=kernel_payload,
            cold_eqsat_seconds=report.eqsat_seconds,
            cold_seconds=cold_seconds,
        ),
    )
    return WarmCompileResult(tensorized, report, kernel, key)


def compile_lowered(
    lowered: Lowered,
    store: ArtifactStore,
    *,
    backend: str = "interpret",
    device: object = "host",
    iterations: int = 14,
    strict: bool = True,
    verify: bool = True,
    kernel_cache: Optional[KernelCache] = None,
) -> Tuple[CompiledPipeline, SelectionReport]:
    """Warm-start a lowered pipeline into a ready :class:`CompiledPipeline`.

    The returned pipeline's kernel cache is pre-seeded with the restored
    (or just-compiled) kernel, so its first ``run`` on the compiled
    backend executes immediately — no saturation, no codegen.
    ``verify`` gates restored artifacts through the static IR verifier
    (see :func:`warm_select`).
    """
    result = warm_select(
        lowered,
        store,
        backend=backend,
        device=device,
        iterations=iterations,
        strict=strict,
        verify=verify,
    )
    pipeline = CompiledPipeline(
        result.lowered, backend=backend, kernel_cache=kernel_cache
    )
    # batch-axis kernel variants compiled by this pipeline persist into
    # (and restore from) the same store, so a warm process skips their
    # codegen too — see CompiledPipeline.batched_kernel
    pipeline.artifact_store = store
    if result.kernel is not None:
        pipeline.seed_kernel(result.kernel)
    return pipeline, result.report


def warm_compile(
    lowered: Lowered,
    cache_dir: str,
    *,
    backend: str = "interpret",
    device: object = "host",
    iterations: int = 14,
    strict: bool = True,
    verify: bool = True,
) -> Tuple[CompiledPipeline, SelectionReport]:
    """:func:`compile_lowered` with the store opened from a directory.

    The single entry point every ``cache_dir=`` parameter in the
    codebase routes through (``App.compile``, ``compile_tensorized``,
    the self-compiling apps), so warm-path defaults live in one place —
    including the default-on static verification of restored artifacts.
    """
    return compile_lowered(
        lowered,
        ArtifactStore(cache_dir),
        backend=backend,
        device=device,
        iterations=iterations,
        strict=strict,
        verify=verify,
    )
