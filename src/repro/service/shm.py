"""Shared-memory ring-buffer transport for tensor payloads.

The supervised :class:`~repro.service.supervisor.WorkerPool` moves
requests across the process boundary; before this module, every tensor
rode the duplex pipe as a pickled bytes blob — a serialize + copy +
deserialize tax paid per request.  :class:`ShmRing` replaces the *data
plane* with a fixed-slot arena in ``multiprocessing.shared_memory``:

* the **writer** claims a free slot, copies the tensors of a whole
  micro-batch into it once (the only copy on the request path), and
  publishes it;
* the **reader** maps the slot's payload as **zero-copy NumPy views**
  — no pickling, no second copy — and runs kernels directly on them;
* the *control plane* (request ids, shapes, dtypes, slot indices)
  stays on the pipe, where tiny picklable tuples belong.

Slot handoff is **seqlock-style**: each slot carries a sequence
counter that is odd while the writer mutates the slot and even once
published; a reader that observes an odd sequence, or a sequence that
changed across its read, rejects the frame as torn.  Published frames
additionally carry a CRC-32 over the payload, so a corrupted slot (bit
rot, a scribbling bug, or the ``corrupt-shm-slot`` injected fault) is
rejected with a typed :class:`ShmCorruption` instead of silently
feeding garbage into a kernel.

Capacity is fixed at creation — slots are sized from the first
bucket's shape signature — and exhaustion is a *backpressure signal*:
:meth:`ShmRing.try_claim` returns ``None`` instead of blocking, and
callers fall back to the pipe path (a frame larger than a slot does
the same).  When shared memory itself is unavailable (no ``/dev/shm``,
a locked-down container), :func:`available` reports it and the pool
serves over pipes exactly as before.

Frames
------

One frame carries one micro-batch of name->array request dicts.
Tensors are deduplicated by object identity: an array that is the
*same object* in every request of the batch (the serving idiom for
weights) is written once and every unpacked request maps the same
view object — which is exactly what the batch-axis kernel's
shared/stacked split keys on.

Fault-injection seams: :func:`repro.runtime.faultpoints.fire` is
visited at ``shm.write`` (before a frame is published) and ``shm.read``
(after the payload view is mapped, before the CRC check) — see
:mod:`repro.service.faults`.
"""

from __future__ import annotations

import struct
import threading
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..runtime.faultpoints import fire

__all__ = [
    "FramePlan",
    "RingFull",
    "ShmCorruption",
    "ShmRing",
    "ShmRingSpec",
    "ShmUnavailable",
    "available",
    "leaked_segments",
    "plan_frame",
    "read_frame",
    "write_frame",
]

#: per-ring header: magic, slot count, slot capacity, checksum flag
_RING_HEADER = struct.Struct("<IIQB")
_RING_HEADER_BYTES = 64
#: per-slot header: seq (seqlock), payload length, state, crc32
_SLOT_HEADER = struct.Struct("<QQII")
_SLOT_HEADER_BYTES = 64
_MAGIC = 0x53524E47  # "SRNG"

#: slot states — writer owns FREE->WRITING->READY, reader READY->READING->FREE
FREE, WRITING, READY, READING = 0, 1, 2, 3

_ALIGN = 64


def _align(n: int, to: int = _ALIGN) -> int:
    return (n + to - 1) // to * to


class ShmCorruption(RuntimeError):
    """A published frame failed its CRC or seqlock validation."""


class RingFull(RuntimeError):
    """Every slot is in flight — backpressure the writer."""


class ShmUnavailable(RuntimeError):
    """Shared memory cannot be created on this host."""


@dataclass(frozen=True)
class ShmRingSpec:
    """The picklable description a reader attaches from."""

    name: str
    slots: int
    slot_bytes: int
    checksum: bool = True


def _untrack(shm) -> None:
    """Detach ``shm`` from this process's resource tracker.

    ``SharedMemory`` registers every segment it touches with the
    resource tracker, which unlinks it when *this* process exits — for
    an attached (non-owning) handle that would destroy a segment the
    creator still uses, which is precisely the worker-crash case the
    supervisor must survive.  Best-effort: the private API may move.
    """
    try:  # pragma: no cover - depends on stdlib internals
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


#: every segment this process ever created, by name — hygiene ledger
_SEGMENTS_LOCK = threading.Lock()
_SEGMENTS: set = set()  # guarded-by: _SEGMENTS_LOCK


def _segment_exists(name: str) -> bool:
    """Whether a shared-memory segment with ``name`` still exists."""
    import os

    path = os.path.join("/dev/shm", name.lstrip("/"))
    if os.path.isdir("/dev/shm"):
        return os.path.exists(path)
    try:  # pragma: no cover - non-tmpfs hosts
        from multiprocessing import shared_memory

        probe = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:  # pragma: no cover
        return False
    except Exception:  # pragma: no cover
        return False
    _untrack(probe)  # pragma: no cover
    probe.close()  # pragma: no cover
    return True  # pragma: no cover


def leaked_segments() -> List[str]:
    """Segments created by this process that still exist on the host.

    The hygiene check behind the chaos-soak teardown invariant and the
    test-session fixture: after every ring owner has destroyed its
    segments this is empty.  Confirmed-gone names are dropped from the
    ledger so repeated calls stay cheap.
    """
    with _SEGMENTS_LOCK:
        names = sorted(_SEGMENTS)
    leaked = []
    for name in names:
        if _segment_exists(name):
            leaked.append(name)
        else:
            with _SEGMENTS_LOCK:
                _SEGMENTS.discard(name)
    return leaked


def available(probe_bytes: int = 1024) -> bool:
    """Whether a shared-memory segment can actually be created here."""
    try:
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(create=True, size=probe_bytes)
    except Exception:
        return False
    try:
        segment.close()
        segment.unlink()
    except Exception:  # pragma: no cover - teardown best-effort
        pass
    return True


class ShmRing:
    """A fixed-slot shared-memory arena with seqlock slot handoff.

    One process creates the ring (:meth:`create`) and owns the
    segment's lifetime (:meth:`unlink`); the peer attaches from the
    picklable :attr:`spec`.  The protocol is single-writer /
    single-reader: the writer claims, fills, and publishes slots; the
    reader maps, validates, and releases them.  Which side created the
    segment is independent of which side writes.

    All slot state lives *in* the shared memory, so "the reader freed
    a slot" is visible to the writer without any message traffic.
    """

    def __init__(self, shm, spec: ShmRingSpec, owner: bool) -> None:
        self._shm = shm
        self._spec = spec
        self._owner = owner
        self._buf = shm.buf
        self._cursor = 0  # writer-side scan position
        self._lock = threading.Lock()
        self.writes = 0  # guarded-by: _lock
        self.reads = 0  # guarded-by: _lock
        self.full_events = 0  # guarded-by: _lock
        self.corruptions = 0  # guarded-by: _lock
        self.reclaims = 0  # guarded-by: _lock

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def create(
        cls, slots: int, slot_bytes: int, checksum: bool = True
    ) -> "ShmRing":
        """Allocate a fresh ring; raises :class:`ShmUnavailable` when
        the host cannot back shared memory."""
        if slots < 1:
            raise ValueError("slots must be >= 1")
        slot_bytes = _align(max(int(slot_bytes), _ALIGN))
        size = _RING_HEADER_BYTES + slots * (_SLOT_HEADER_BYTES + slot_bytes)
        try:
            from multiprocessing import shared_memory

            segment = shared_memory.SharedMemory(create=True, size=size)
        except Exception as exc:
            raise ShmUnavailable(
                f"cannot create a {size}-byte shared-memory ring: {exc}"
            ) from exc
        spec = ShmRingSpec(segment.name, int(slots), slot_bytes, checksum)
        with _SEGMENTS_LOCK:
            _SEGMENTS.add(segment.name)
        _RING_HEADER.pack_into(
            segment.buf, 0, _MAGIC, spec.slots, spec.slot_bytes,
            1 if checksum else 0,
        )
        ring = cls(segment, spec, owner=True)
        for slot in range(spec.slots):
            ring._set_header(slot, 0, 0, FREE, 0)
        return ring

    @classmethod
    def attach(cls, spec: ShmRingSpec) -> "ShmRing":
        """Map an existing ring from its spec (non-owning handle)."""
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(name=spec.name)
        _untrack(segment)
        magic, slots, slot_bytes, _check = _RING_HEADER.unpack_from(
            segment.buf, 0
        )
        if magic != _MAGIC or slots != spec.slots or (
            slot_bytes != spec.slot_bytes
        ):
            segment.close()
            raise ValueError(
                f"shared-memory segment {spec.name!r} does not match"
                f" spec {spec}"
            )
        return cls(segment, spec, owner=False)

    @property
    def spec(self) -> ShmRingSpec:
        return self._spec

    @property
    def slots(self) -> int:
        return self._spec.slots

    @property
    def slot_bytes(self) -> int:
        return self._spec.slot_bytes

    def close(self) -> None:
        """Drop this process's mapping (idempotent).

        Zero-copy views handed out by :meth:`payload`/:meth:`read` may
        outlive the ring (a cached plan keeps its last-bound buffers);
        the mapping then cannot be unmapped.  In that case the handle
        is disarmed and the OS reclaims the mapping at process exit —
        a second attempt from ``SharedMemory.__del__`` would only
        spray "Exception ignored" noise.
        """
        if self._shm is not None:
            self._buf = None
            segment, self._shm = self._shm, None
            try:
                segment.close()
            except BufferError:
                try:  # pragma: no cover - depends on stdlib internals
                    segment._buf = None
                    segment._mmap = None
                except Exception:
                    pass
            except Exception:  # pragma: no cover - teardown best-effort
                pass

    def unlink(self) -> None:
        """Destroy the segment (owner only; idempotent)."""
        if self._owner and self._spec is not None:
            try:
                from multiprocessing import shared_memory

                segment = shared_memory.SharedMemory(name=self._spec.name)
                segment.close()
                segment.unlink()
            except Exception:
                pass
            if not _segment_exists(self._spec.name):
                with _SEGMENTS_LOCK:
                    _SEGMENTS.discard(self._spec.name)

    def destroy(self) -> None:
        """``close()`` then ``unlink()`` — the owner's teardown."""
        self.close()
        self.unlink()

    # -- slot headers --------------------------------------------------------

    def _slot_base(self, slot: int) -> int:
        return _RING_HEADER_BYTES + slot * (
            _SLOT_HEADER_BYTES + self._spec.slot_bytes
        )

    def _header(self, slot: int) -> Tuple[int, int, int, int]:
        """``(seq, length, state, crc)`` of one slot."""
        return _SLOT_HEADER.unpack_from(self._buf, self._slot_base(slot))

    def _set_header(
        self, slot: int, seq: int, length: int, state: int, crc: int
    ) -> None:
        _SLOT_HEADER.pack_into(
            self._buf, self._slot_base(slot), seq, length, state, crc
        )

    def payload(self, slot: int) -> np.ndarray:
        """The slot's full-capacity payload as a mutable uint8 view."""
        base = self._slot_base(slot) + _SLOT_HEADER_BYTES
        return np.frombuffer(
            self._buf, dtype=np.uint8, count=self._spec.slot_bytes,
            offset=base,
        )

    # -- writer side ---------------------------------------------------------

    def try_claim(self) -> Optional[int]:
        """Claim a free slot for writing, or ``None`` (backpressure).

        The claimed slot's sequence is bumped to odd — readers that
        race the handoff see a write in progress, never a torn frame.
        """
        for probe in range(self._spec.slots):
            slot = (self._cursor + probe) % self._spec.slots
            seq, _length, state, _crc = self._header(slot)
            if state == FREE:
                self._set_header(slot, seq + 1, 0, WRITING, 0)
                self._cursor = (slot + 1) % self._spec.slots
                return slot
        with self._lock:
            self.full_events += 1
        return None

    def publish(self, slot: int, length: int) -> None:
        """Seal a written slot: CRC it, mark READY, even out the seq."""
        if length > self._spec.slot_bytes:
            raise ValueError(
                f"frame of {length} bytes exceeds slot capacity"
                f" {self._spec.slot_bytes}"
            )
        seq, _length, state, _crc = self._header(slot)
        if state != WRITING:
            raise RuntimeError(f"publish of unclaimed slot {slot}")
        fire("shm.write", ring=self, slot=slot, buf=self.payload(slot)[:length])
        crc = 0
        if self._spec.checksum:
            crc = zlib.crc32(self.payload(slot)[:length]) & 0xFFFFFFFF
        self._set_header(slot, seq + 1, length, READY, crc)
        with self._lock:
            self.writes += 1

    def cancel(self, slot: int) -> None:
        """Writer-side abort of a claimed/published but undelivered slot."""
        seq, _length, _state, _crc = self._header(slot)
        self._set_header(slot, (seq + 1) | 1, 0, WRITING, 0)
        self._set_header(slot, (seq + 2) & ~1, 0, FREE, 0)

    def reclaim(self) -> int:
        """Writer-side crash recovery: free every slot the (dead)
        reader still held.  Returns the number of slots reclaimed."""
        count = 0
        for slot in range(self._spec.slots):
            seq, _length, state, _crc = self._header(slot)
            if state in (READY, READING):
                self._set_header(slot, (seq + 2) & ~1, 0, FREE, 0)
                count += 1
        if count:
            with self._lock:
                self.reclaims += count
        return count

    # -- reader side ---------------------------------------------------------

    def read(self, slot: int) -> np.ndarray:
        """Validate and map a published slot's payload (zero-copy).

        Seqlock discipline: the sequence is sampled before the payload
        is mapped and re-checked afterwards; an odd or changed
        sequence, a non-READY state, or a CRC mismatch raises
        :class:`ShmCorruption`.  On success the slot is marked READING
        and stays mapped until :meth:`release`.
        """
        seq_before, length, state, crc = self._header(slot)
        if state != READY or seq_before % 2 == 1:
            with self._lock:
                self.corruptions += 1
            raise ShmCorruption(
                f"slot {slot} not readable (state={state}, seq={seq_before})"
            )
        view = self.payload(slot)[:length]
        fire("shm.read", ring=self, slot=slot, buf=view)
        if self._spec.checksum:
            actual = zlib.crc32(view) & 0xFFFFFFFF
            if actual != crc:
                with self._lock:
                    self.corruptions += 1
                raise ShmCorruption(
                    f"slot {slot} checksum mismatch"
                    f" (stored {crc:#010x}, computed {actual:#010x})"
                )
        seq_after, _length, _state, _crc = self._header(slot)
        if seq_after != seq_before:
            with self._lock:
                self.corruptions += 1
            raise ShmCorruption(
                f"slot {slot} torn read (seq {seq_before} -> {seq_after})"
            )
        self._set_header(slot, seq_before, length, READING, crc)
        with self._lock:
            self.reads += 1
        return view

    def release(self, slot: int) -> None:
        """Reader done: hand the slot back to the writer."""
        seq, _length, _state, _crc = self._header(slot)
        self._set_header(slot, seq, 0, FREE, 0)

    # -- telemetry -----------------------------------------------------------

    def states(self) -> List[int]:
        """Per-slot state codes (FREE/WRITING/READY/READING)."""
        return [self._header(slot)[2] for slot in range(self._spec.slots)]

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "slots": self._spec.slots,
                "slot_bytes": self._spec.slot_bytes,
                "writes": self.writes,
                "reads": self.reads,
                "full_events": self.full_events,
                "corruptions": self.corruptions,
                "reclaims": self.reclaims,
            }

    def __repr__(self) -> str:
        return (
            f"ShmRing({self._spec.name!r}, slots={self._spec.slots},"
            f" slot_bytes={self._spec.slot_bytes})"
        )


# -- tensor frames ---------------------------------------------------------------


@dataclass
class FramePlan:
    """A batch of request dicts laid out as one frame.

    ``meta`` is the small picklable description that rides the control
    pipe; ``sources`` holds the live arrays to copy, one per *unique*
    tensor (shared weights appear once no matter how many requests
    reference them); ``length`` is the payload size in bytes.
    """

    meta: dict
    sources: List[np.ndarray]
    length: int


def plan_frame(requests: Sequence[dict]) -> Optional[FramePlan]:
    """Lay a batch out as one frame, or ``None`` when it cannot ride
    shared memory (non-string keys, non-array or object-dtype values)
    — the caller then falls back to the pipe path."""
    tensors: List[Tuple[str, tuple, int, int]] = []
    sources: List[np.ndarray] = []
    index_of: Dict[int, int] = {}
    request_maps: List[List[Tuple[str, int]]] = []
    offset = 0
    for request in requests:
        if not isinstance(request, dict):
            return None
        entry: List[Tuple[str, int]] = []
        for name, array in request.items():
            if not isinstance(name, str):
                return None
            if not isinstance(array, np.ndarray) or array.dtype.hasobject:
                return None
            tensor_index = index_of.get(id(array))
            if tensor_index is None:
                start = _align(offset)
                tensors.append(
                    (array.dtype.str, tuple(array.shape), start, array.nbytes)
                )
                sources.append(array)
                tensor_index = len(tensors) - 1
                index_of[id(array)] = tensor_index
                offset = start + array.nbytes
            entry.append((name, tensor_index))
        request_maps.append(entry)
    meta = {"tensors": tensors, "requests": request_maps}
    return FramePlan(meta=meta, sources=sources, length=offset)


def write_frame(ring: ShmRing, plan: FramePlan) -> Optional[int]:
    """Copy a planned frame into a claimed slot and publish it.

    Returns the slot index, or ``None`` when the frame exceeds the
    slot capacity or every slot is in flight (backpressure) — both are
    routing signals for the pipe fallback, not errors.
    """
    if plan.length > ring.slot_bytes:
        return None
    slot = ring.try_claim()
    if slot is None:
        return None
    payload = ring.payload(slot)
    for (dtype_str, shape, start, nbytes), array in zip(
        plan.meta["tensors"], plan.sources
    ):
        view = payload[start:start + nbytes].view(np.dtype(dtype_str))
        np.copyto(view.reshape(shape), array)
    ring.publish(slot, plan.length)
    return slot


def read_frame(
    ring: ShmRing, slot: int, meta: dict, copy: bool = False
) -> List[Dict[str, np.ndarray]]:
    """Rebuild the batch's request dicts from a published slot.

    ``copy=False`` returns zero-copy views into the slot (read-only;
    valid until :meth:`ShmRing.release`); shared tensors come back as
    the *same view object* in every request, preserving the identity
    the batch-axis shared/stacked split keys on.  ``copy=True``
    materializes private arrays that outlive the slot.  Raises
    :class:`ShmCorruption` via :meth:`ShmRing.read` on a bad frame.
    """
    payload = ring.read(slot)
    arrays: List[np.ndarray] = []
    for dtype_str, shape, start, nbytes in meta["tensors"]:
        view = payload[start:start + nbytes].view(np.dtype(dtype_str))
        view = view.reshape(shape)
        if copy:
            view = view.copy()
        else:
            view.flags.writeable = False
        arrays.append(view)
    return [
        {name: arrays[tensor_index] for name, tensor_index in entry}
        for entry in meta["requests"]
    ]
