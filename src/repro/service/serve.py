"""The batched serving front-end: persistent workers over one pipeline.

``CompiledPipeline.run_many`` builds its worker plans per batch; a
:class:`Server` keeps them alive across batches, which is what a real
serving process wants — the kernel stays bound, the stride env stays
built, the arenas stay warm (pooled tile buffers, cached shuffle
matrices), and every request after the first pays only kernel time.

::

    from repro.service import Server

    with Server(app.compile(), workers=4) as server:
        outputs = server.run_many(requests)        # ordered, parallel
        one = server.run(request)                  # single, synchronous
        future = server.submit(request)            # overlap with caller

Each worker thread owns one :class:`~repro.runtime.plan.ExecutionPlan`
(created lazily on the thread's first request), so no plan is ever
shared between threads; the pipeline's :class:`KernelCache` is
thread-safe and shared.  Outputs are bit-identical to sequential
``pipeline.run`` on either backend — asserted by the serving benchmark
and test suite.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..runtime.executor import CompiledPipeline, InputMap, _check_backend
from ..runtime.plan import ExecutionPlan


class Server:
    """Serve one compiled pipeline from a pool of plan-holding workers.

    Parameters
    ----------
    pipeline:
        A :class:`CompiledPipeline`, or anything with a ``.compile()``
        returning one (an :class:`repro.apps.common.App`).
    workers:
        Worker-thread count; defaults to the machine's CPU count.
    backend:
        Execution backend for every request; defaults to the
        pipeline's.  Counters are not supported on the serving path —
        use ``pipeline.run(counters=...)`` for instrumented runs.
    """

    def __init__(
        self,
        pipeline,
        workers: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> None:
        if not isinstance(pipeline, CompiledPipeline):
            pipeline = pipeline.compile()
        self.pipeline = pipeline
        self.backend = (
            _check_backend(backend) if backend is not None else pipeline.backend
        )
        import os

        self.workers = (
            int(workers) if workers is not None else (os.cpu_count() or 1)
        )
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )
        self._local = threading.local()
        self._lock = threading.Lock()
        self._plans: List[ExecutionPlan] = []
        self._closed = False
        self.requests_served = 0
        self.batches_served = 0

    # -- worker-side ---------------------------------------------------------

    def _plan(self) -> ExecutionPlan:
        plan = getattr(self._local, "plan", None)
        if plan is None:
            plan = self.pipeline.plan(backend=self.backend)
            self._local.plan = plan
            with self._lock:
                self._plans.append(plan)
        return plan

    def _run_one(
        self, request: Optional[InputMap], out: Optional[np.ndarray]
    ) -> np.ndarray:
        result = self._plan().run(request, out=out)
        with self._lock:
            self.requests_served += 1
        return result

    # -- public API ----------------------------------------------------------

    def submit(
        self,
        request: Optional[InputMap],
        out: Optional[np.ndarray] = None,
    ) -> "Future[np.ndarray]":
        """Enqueue one request; the future resolves to its output array.

        Input arrays are bound **zero-copy** — the worker reads the
        caller's memory while the request is in flight.  Do not mutate
        a request's arrays (or a passed ``out``) until the future has
        resolved; ``run``/``run_many`` block, so this only concerns
        ``submit`` callers overlapping their own work.
        """
        if self._closed:
            raise RuntimeError("server is closed")
        return self._pool.submit(self._run_one, request, out)

    def run(self, request: Optional[InputMap] = None) -> np.ndarray:
        """Run one request synchronously on the worker pool."""
        return self.submit(request).result()

    def run_many(
        self, requests: Sequence[Optional[InputMap]]
    ) -> List[np.ndarray]:
        """Fan a batch over the pool; outputs come back in request order."""
        futures = [self.submit(request) for request in requests]
        results = [future.result() for future in futures]
        with self._lock:
            self.batches_served += 1
        return results

    def stats(self) -> Dict[str, object]:
        """Serving counters plus per-worker plan/arena statistics."""
        with self._lock:
            return {
                "workers": self.workers,
                "requests": self.requests_served,
                "batches": self.batches_served,
                "plans": [plan.stats() for plan in self._plans],
            }

    def close(self) -> None:
        """Drain outstanding requests and stop the workers (idempotent)."""
        if not self._closed:
            self._closed = True
            self._pool.shutdown(wait=True)

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"Server({self.pipeline.output_name!r}, workers={self.workers},"
            f" backend={self.backend!r}, requests={self.requests_served})"
        )
