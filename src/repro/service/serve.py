"""The batched serving front-end: persistent workers over one pipeline.

``CompiledPipeline.run_many`` builds its worker plans per batch; a
:class:`Server` keeps them alive across batches, which is what a real
serving process wants — the kernel stays bound, the stride env stays
built, the arenas stay warm (pooled tile buffers, cached shuffle
matrices), and every request after the first pays only kernel time.

::

    from repro.service import Server

    with Server(app.compile(), workers=4) as server:
        outputs = server.run_many(requests)        # ordered, parallel
        one = server.run(request)                  # single, synchronous
        future = server.submit(request)            # overlap with caller

Each worker thread owns one :class:`~repro.runtime.plan.ExecutionPlan`
(created lazily on the thread's first request), so no plan is ever
shared between threads; the pipeline's :class:`KernelCache` is
thread-safe and shared.  Outputs are bit-identical to sequential
``pipeline.run`` on either backend — asserted by the serving benchmark
and test suite.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..runtime.executor import CompiledPipeline, InputMap, _check_backend
from ..runtime.plan import (
    BatchedExecutionPlan,
    BatchingUnsupported,
    ExecutionPlan,
)


class Server:
    """Serve one compiled pipeline from a pool of plan-holding workers.

    Parameters
    ----------
    pipeline:
        A :class:`CompiledPipeline`, or anything with a ``.compile()``
        returning one (an :class:`repro.apps.common.App`).
    workers:
        Worker-thread count; defaults to the machine's CPU count.
    backend:
        Execution backend for every request; defaults to the
        pipeline's.  Counters are not supported on the serving path —
        use ``pipeline.run(counters=...)`` for instrumented runs.
    batch_axis:
        Batch routing policy for :meth:`run_many`.  ``None`` (default)
        tries the one-kernel-call batched path on the compiled backend
        and silently falls back to the worker pool when a bucket is
        unbatchable (ragged shapes, per-request weights feeding
        shuffles); ``False`` always fans out over the pool;
        ``True`` requires the batched path and raises
        :class:`~repro.runtime.plan.BatchingUnsupported` otherwise.
    """

    def __init__(
        self,
        pipeline,
        workers: Optional[int] = None,
        backend: Optional[str] = None,
        batch_axis: Optional[bool] = None,
    ) -> None:
        if not isinstance(pipeline, CompiledPipeline):
            pipeline = pipeline.compile()
        self.pipeline = pipeline
        self.backend = (
            _check_backend(backend) if backend is not None else pipeline.backend
        )
        import os

        self.workers = (
            int(workers) if workers is not None else (os.cpu_count() or 1)
        )
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )
        self._local = threading.local()
        self._lock = threading.Lock()
        self._plans: List[ExecutionPlan] = []
        self._closed = False
        self.batch_axis = batch_axis
        self._batch_lock = threading.Lock()
        self._batched_plan: Optional[BatchedExecutionPlan] = None
        self.requests_served = 0
        self.batches_served = 0
        self.batched_batches = 0

    # -- worker-side ---------------------------------------------------------

    def _plan(self) -> ExecutionPlan:
        plan = getattr(self._local, "plan", None)
        if plan is None:
            plan = self.pipeline.plan(backend=self.backend)
            self._local.plan = plan
            with self._lock:
                self._plans.append(plan)
        return plan

    def _run_one(
        self, request: Optional[InputMap], out: Optional[np.ndarray]
    ) -> np.ndarray:
        result = self._plan().run(request, out=out)
        with self._lock:
            self.requests_served += 1
        return result

    # -- public API ----------------------------------------------------------

    def submit(
        self,
        request: Optional[InputMap],
        out: Optional[np.ndarray] = None,
    ) -> "Future[np.ndarray]":
        """Enqueue one request; the future resolves to its output array.

        Input arrays are bound **zero-copy** — the worker reads the
        caller's memory while the request is in flight.  Do not mutate
        a request's arrays (or a passed ``out``) until the future has
        resolved; ``run``/``run_many`` block, so this only concerns
        ``submit`` callers overlapping their own work.
        """
        if self._closed:
            raise RuntimeError("server is closed")
        return self._pool.submit(self._run_one, request, out)

    def run(self, request: Optional[InputMap] = None) -> np.ndarray:
        """Run one request synchronously on the worker pool."""
        return self.submit(request).result()

    def _run_batched(
        self, requests: List[Optional[InputMap]]
    ) -> List[np.ndarray]:
        """One batch-axis kernel call for the whole bucket.

        The batched plan is stateful (staging buffers, bound kernel),
        so concurrent ``run_many`` callers serialize on it; singleton
        requests and unbatchable buckets take the pool path instead.
        """
        with self._batch_lock:
            if self._batched_plan is None:
                self._batched_plan = BatchedExecutionPlan(self.pipeline)
            results = self._batched_plan.run(requests)
        with self._lock:
            self.requests_served += len(requests)
            self.batches_served += 1
            self.batched_batches += 1
        return results

    def run_many(
        self,
        requests: Sequence[Optional[InputMap]],
        batch_axis: Optional[bool] = None,
    ) -> List[np.ndarray]:
        """Run a batch; outputs come back in request order.

        Same-shape buckets on the compiled backend go through **one**
        batch-axis kernel call (weights shared, data inputs stacked
        ``[B, ...]``); anything the batched path cannot take falls back
        to fanning out over the worker pool.  ``batch_axis`` overrides
        the server-wide policy for this call (see the constructor).
        """
        if self._closed:
            raise RuntimeError("server is closed")
        requests = list(requests)
        if not requests:
            return []
        if batch_axis is None:
            batch_axis = self.batch_axis
        explicit = batch_axis is True
        if batch_axis is None:
            batch_axis = self.backend == "compile"
        if batch_axis:
            if self.backend != "compile":
                raise BatchingUnsupported(
                    "batch-axis serving requires the compiled backend"
                )
            try:
                return self._run_batched(requests)
            except BatchingUnsupported:
                if explicit:
                    raise
        futures = [self.submit(request) for request in requests]
        results = [future.result() for future in futures]
        with self._lock:
            self.batches_served += 1
        return results

    def stats(self) -> Dict[str, object]:
        """Serving counters plus per-worker plan/arena statistics."""
        with self._lock:
            stats = {
                "workers": self.workers,
                "requests": self.requests_served,
                "batches": self.batches_served,
                "batched_batches": self.batched_batches,
                "plans": [plan.stats() for plan in self._plans],
            }
        with self._batch_lock:
            if self._batched_plan is not None:
                stats["batched_plan"] = self._batched_plan.stats()
        return stats

    def close(self) -> None:
        """Drain outstanding requests and stop the workers (idempotent)."""
        if not self._closed:
            self._closed = True
            self._pool.shutdown(wait=True)

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"Server({self.pipeline.output_name!r}, workers={self.workers},"
            f" backend={self.backend!r}, requests={self.requests_served})"
        )
