"""The batched serving front-end: persistent workers over one pipeline.

``CompiledPipeline.run_many`` builds its worker plans per batch; a
:class:`Server` keeps them alive across batches, which is what a real
serving process wants — the kernel stays bound, the stride env stays
built, the arenas stay warm (pooled tile buffers, cached shuffle
matrices), and every request after the first pays only kernel time.

::

    from repro.service import Server

    with Server(app.compile(), workers=4) as server:
        outputs = server.run_many(requests)        # ordered, parallel
        one = server.run(request)                  # single, synchronous
        future = server.submit(request)            # overlap with caller

Each worker thread owns one :class:`~repro.runtime.plan.ExecutionPlan`
(created lazily on the thread's first request), so no plan is ever
shared between threads; the pipeline's :class:`KernelCache` is
thread-safe and shared.  Outputs are bit-identical to sequential
``pipeline.run`` on either backend — asserted by the serving benchmark
and test suite.

Fault tolerance
---------------

The server survives faulty kernels instead of propagating every
failure to the caller:

* each request gets ``retries`` extra attempts (the compute is pure,
  so re-running is always safe);
* a :class:`~repro.service.faults.CircuitBreaker` per degradable path:
  repeated *consecutive* failures of the compiled backend degrade the
  server to the interpreter (bit-identical outputs, slower), and
  repeated batch-axis failures route ``run_many`` through the
  per-request worker pool;
* ``max_pending`` bounds admission — ``submit`` blocks for
  backpressure or raises :class:`RejectedError` with ``block=False``;
* ``close()`` is idempotent and drains in-flight work; submissions
  racing a close get a typed :class:`ServerClosed`.

Every recovery action is counted in :meth:`Server.stats`.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..runtime.executor import (
    CompiledPipeline,
    InputMap,
    RequestError,
    _check_backend,
)
from ..runtime.plan import (
    BatchedExecutionPlan,
    BatchingUnsupported,
    ExecutionPlan,
)
from .faults import CircuitBreaker


class ServerClosed(RuntimeError):
    """The server is closed — no new work is accepted."""

    def __init__(self, message: str = "server is closed") -> None:
        super().__init__(message)


class RejectedError(RuntimeError):
    """Admission control rejected the request (pending queue full)."""


class ShedError(RejectedError):
    """Adaptive overload shedding rejected (or evicted) the request.

    A subclass of :class:`RejectedError` so existing shed-on-reject
    callers keep working; raised by the router's queue-sojourn shedder,
    per-bucket depth caps, and best-effort lane eviction rather than
    the static ``max_pending`` bound.
    """


class Server:
    """Serve one compiled pipeline from a pool of plan-holding workers.

    Parameters
    ----------
    pipeline:
        A :class:`CompiledPipeline`, or anything with a ``.compile()``
        returning one (an :class:`repro.apps.common.App`).
    workers:
        Worker-thread count; defaults to the machine's CPU count.
    backend:
        Execution backend for every request; defaults to the
        pipeline's.  Counters are not supported on the serving path —
        use ``pipeline.run(counters=...)`` for instrumented runs.
    batch_axis:
        Batch routing policy for :meth:`run_many`.  ``None`` (default)
        tries the one-kernel-call batched path on the compiled backend
        and silently falls back to the worker pool when a bucket is
        unbatchable (ragged shapes, per-request weights feeding
        shuffles); ``False`` always fans out over the pool;
        ``True`` requires the batched path and raises
        :class:`~repro.runtime.plan.BatchingUnsupported` otherwise.
    retries:
        Extra attempts per request after a failure (default 1).  The
        pipeline is pure compute, so a retry can never double-apply
        anything; a failed attempt also rebuilds the worker's plan in
        case the failure left partial buffer state.
    retry_delay:
        Base backoff between attempts, scaled linearly per attempt.
    max_pending:
        Admission bound: at most this many requests may be in flight
        (queued + running).  ``None`` (default) is unbounded.  When
        full, ``submit(block=True)`` applies backpressure and
        ``submit(block=False)`` raises :class:`RejectedError`.
    breaker_threshold:
        Consecutive failures before a circuit breaker trips (see
        module docstring).
    """

    def __init__(
        self,
        pipeline,
        workers: Optional[int] = None,
        backend: Optional[str] = None,
        batch_axis: Optional[bool] = None,
        retries: int = 1,
        retry_delay: float = 0.005,
        max_pending: Optional[int] = None,
        breaker_threshold: int = 3,
    ) -> None:
        if not isinstance(pipeline, CompiledPipeline):
            pipeline = pipeline.compile()
        self.pipeline = pipeline
        self.backend = (
            _check_backend(backend) if backend is not None else pipeline.backend
        )
        import os

        self.workers = (
            int(workers) if workers is not None else (os.cpu_count() or 1)
        )
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be >= 1 (or None)")
        self.retries = int(retries)
        self.retry_delay = float(retry_delay)
        self.max_pending = max_pending
        self._admission = (
            threading.Semaphore(max_pending)
            if max_pending is not None
            else None
        )
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )
        self._local = threading.local()
        self._lock = threading.Lock()
        #: lifecycle lock makes the closed-check + pool submit atomic
        #: against close(); never held while blocking on admission or
        #: while draining, so submitters cannot deadlock a closer.
        self._lifecycle = threading.Lock()
        self._plans: List[ExecutionPlan] = []  # guarded-by: _lock
        self._closed = False  # guarded-by: _lifecycle
        self.batch_axis = batch_axis
        self._batch_lock = threading.Lock()
        # guarded-by: _batch_lock
        self._batched_plan: Optional[BatchedExecutionPlan] = None
        self.requests_served = 0  # guarded-by: _lock
        self.batches_served = 0  # guarded-by: _lock
        self.batched_batches = 0  # guarded-by: _lock
        self.failures = 0  # guarded-by: _lock
        self.retries_performed = 0  # guarded-by: _lock
        self.rejected = 0  # guarded-by: _lock
        #: trips -> plans degrade from the compiled backend to the
        #: interpreter (same outputs; see the parity test suite)
        self.backend_breaker = CircuitBreaker(
            threshold=breaker_threshold, name="backend"
        )
        #: trips -> run_many stops attempting the batch-axis kernel
        #: and fans buckets over the per-request worker pool
        self.batch_breaker = CircuitBreaker(
            threshold=breaker_threshold, name="batch-axis"
        )
        self._degraded_backend: Optional[str] = None  # guarded-by: _lock
        #: bumped whenever the effective backend changes so worker
        #: threads drop their cached plan and rebuild on the new path
        self._plan_generation = 0  # guarded-by: _lock

    # -- worker-side ---------------------------------------------------------

    def _effective_backend(self) -> str:
        with self._lock:
            return self._degraded_backend or self.backend

    def _plan(self) -> ExecutionPlan:
        with self._lock:
            generation = self._plan_generation
            backend = self._degraded_backend or self.backend
        entry = getattr(self._local, "plan_entry", None)
        if entry is not None and entry[0] == generation:
            return entry[1]
        plan = self.pipeline.plan(backend=backend)
        self._local.plan_entry = (generation, plan)
        with self._lock:
            self._plans.append(plan)
        return plan

    def _record_backend_failure(self) -> None:
        tripped = self.backend_breaker.record_failure()
        if tripped and self._effective_backend() == "compile":
            with self._lock:
                self._degraded_backend = "interpret"
                self._plan_generation += 1
            # the degraded path starts with a clean failure streak;
            # the trip stays counted in breaker stats
            self.backend_breaker.reset()

    def _run_one(
        self, request: Optional[InputMap], out: Optional[np.ndarray]
    ) -> np.ndarray:
        attempts = self.retries + 1
        for attempt in range(attempts):
            try:
                result = self._plan().run(request, out=out)
            except Exception:
                with self._lock:
                    self.failures += 1
                self._record_backend_failure()
                # the failed run may have left partial buffer state in
                # the plan; drop it so the next attempt rebuilds (cheap
                # — the kernel is a cache hit)
                self._local.plan_entry = None
                if attempt + 1 >= attempts:
                    raise
                with self._lock:
                    self.retries_performed += 1
                time.sleep(self.retry_delay * (attempt + 1))
            else:
                self.backend_breaker.record_success()
                with self._lock:
                    self.requests_served += 1
                return result
        raise AssertionError("unreachable")  # pragma: no cover

    # -- public API ----------------------------------------------------------

    def submit(
        self,
        request: Optional[InputMap],
        out: Optional[np.ndarray] = None,
        block: bool = True,
        timeout: Optional[float] = None,
    ) -> "Future[np.ndarray]":
        """Enqueue one request; the future resolves to its output array.

        Input arrays are bound **zero-copy** — the worker reads the
        caller's memory while the request is in flight.  Do not mutate
        a request's arrays (or a passed ``out``) until the future has
        resolved; ``run``/``run_many`` block, so this only concerns
        ``submit`` callers overlapping their own work.

        With ``max_pending`` set, a full server blocks the caller
        (backpressure) until a slot frees, up to ``timeout`` seconds;
        ``block=False`` raises :class:`RejectedError` immediately
        instead.  A closed server raises :class:`ServerClosed`.
        """
        acquired = False
        if self._admission is not None:
            if block:
                acquired = (
                    self._admission.acquire(timeout=timeout)
                    if timeout is not None
                    else self._admission.acquire()
                )
            else:
                acquired = self._admission.acquire(blocking=False)
            if not acquired:
                with self._lock:
                    self.rejected += 1
                raise RejectedError(
                    f"admission queue full ({self.max_pending} pending)"
                )
        try:
            with self._lifecycle:
                if self._closed:
                    raise ServerClosed()
                try:
                    future = self._pool.submit(self._run_one, request, out)
                except RuntimeError as exc:
                    # pool shut down between flag-set and our check —
                    # cannot happen while we hold the lifecycle lock,
                    # but keep the typed error as a belt-and-braces
                    raise ServerClosed() from exc
        except BaseException:
            if acquired:
                self._admission.release()
            raise
        if self._admission is not None:
            future.add_done_callback(lambda _f: self._admission.release())
        return future

    def run(self, request: Optional[InputMap] = None) -> np.ndarray:
        """Run one request synchronously on the worker pool."""
        return self.submit(request).result()

    def _run_batched(
        self, requests: List[Optional[InputMap]]
    ) -> List[np.ndarray]:
        """One batch-axis kernel call for the whole bucket.

        The batched plan is stateful (staging buffers, bound kernel),
        so concurrent ``run_many`` callers serialize on it; singleton
        requests and unbatchable buckets take the pool path instead.
        """
        with self._batch_lock:
            if self._batched_plan is None:
                self._batched_plan = BatchedExecutionPlan(self.pipeline)
            results = self._batched_plan.run(requests)
        with self._lock:
            self.requests_served += len(requests)
            self.batches_served += 1
            self.batched_batches += 1
        return results

    def run_many(
        self,
        requests: Sequence[Optional[InputMap]],
        batch_axis: Optional[bool] = None,
        on_error: str = "raise",
    ) -> List[np.ndarray]:
        """Run a batch; outputs come back in request order.

        Same-shape buckets on the compiled backend go through **one**
        batch-axis kernel call (weights shared, data inputs stacked
        ``[B, ...]``); anything the batched path cannot take falls back
        to fanning out over the worker pool.  ``batch_axis`` overrides
        the server-wide policy for this call (see the constructor).

        A batch-axis kernel *failure* (as opposed to an unsupported
        bucket) also falls back to the pool — one kernel call covers
        every request, so per-request isolation and retries require the
        looped path — and feeds the batch breaker; once tripped, later
        buckets skip the batched attempt entirely.  ``on_error="return"``
        isolates failures per request: the result list carries a
        :class:`~repro.runtime.executor.RequestError` at each failed
        index instead of raising.
        """
        if on_error not in ("raise", "return"):
            raise ValueError(
                f"on_error must be 'raise' or 'return', got {on_error!r}"
            )
        with self._lifecycle:
            if self._closed:
                raise ServerClosed()
        requests = list(requests)
        if not requests:
            return []
        if batch_axis is None:
            batch_axis = self.batch_axis
        explicit = batch_axis is True
        if batch_axis is None:
            batch_axis = self.backend == "compile"
        if batch_axis:
            if self.backend != "compile":
                raise BatchingUnsupported(
                    "batch-axis serving requires the compiled backend"
                )
            healthy = (
                self._effective_backend() == "compile"
                and self.batch_breaker.allow()
            )
            if not healthy and explicit:
                raise BatchingUnsupported(
                    "batch-axis path disabled (backend degraded or"
                    " batch breaker open)"
                )
            if healthy:
                try:
                    results = self._run_batched(requests)
                except BatchingUnsupported:
                    if explicit:
                        raise
                except Exception:
                    with self._lock:
                        self.failures += 1
                    self.batch_breaker.record_failure()
                    if explicit:
                        raise
                    # fall through: the pool path retries per request
                else:
                    self.batch_breaker.record_success()
                    return results
        futures = [self.submit(request) for request in requests]
        results: List[np.ndarray] = []
        for index, future in enumerate(futures):
            try:
                results.append(future.result())
            except Exception as exc:
                if on_error == "raise":
                    raise
                results.append(RequestError(index, exc))
        with self._lock:
            self.batches_served += 1
        return results

    def stats(self) -> Dict[str, object]:
        """Serving counters plus per-worker plan/arena statistics.

        Beyond throughput counters this reports every recovery action:
        ``retries`` / ``failures`` / ``rejected``, the effective
        backend after any degradation, both circuit breakers (trip
        counts included), and — when the pipeline has an artifact
        store — its IO-retry and quarantine counters.
        """
        with self._lock:
            stats: Dict[str, object] = {
                "workers": self.workers,
                "requests": self.requests_served,
                "batches": self.batches_served,
                "batched_batches": self.batched_batches,
                "failures": self.failures,
                "retries": self.retries_performed,
                "rejected": self.rejected,
                "backend": self.backend,
                "effective_backend": self._degraded_backend or self.backend,
                "degraded": self._degraded_backend is not None,
                "max_pending": self.max_pending,
                "plans": [plan.stats() for plan in self._plans],
            }
        stats["breakers"] = {
            "backend": self.backend_breaker.stats(),
            "batch_axis": self.batch_breaker.stats(),
        }
        if self.pipeline.artifact_store is not None:
            stats["store"] = self.pipeline.artifact_store.stats.as_dict()
        with self._batch_lock:
            if self._batched_plan is not None:
                stats["batched_plan"] = self._batched_plan.stats()
        return stats

    def reset_breakers(self) -> None:
        """Operator action: close both breakers and un-degrade.

        Trip counts survive (see :meth:`CircuitBreaker.reset`); worker
        plans rebuild on the restored backend at their next request.
        """
        self.backend_breaker.reset()
        self.batch_breaker.reset()
        with self._lock:
            if self._degraded_backend is not None:
                self._degraded_backend = None
                self._plan_generation += 1

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admission and complete every accepted request.

        The graceful lifecycle verb, mirroring ``Router.drain`` /
        ``WorkerPool.drain``.  For the thread-pool server a close
        already drains (the executor finishes queued + running work),
        so this is :meth:`close` with the drain guarantee spelled out:
        once it returns, every future handed out by :meth:`submit` is
        terminal.  ``timeout`` is accepted for interface symmetry; the
        executor shutdown itself is not interruptible, and the return
        value is always ``True``.
        """
        del timeout  # thread workers always finish; nothing to abort
        self.close()
        return True

    def close(self) -> None:
        """Drain in-flight requests and stop the workers (idempotent).

        The closed flag flips under the lifecycle lock — atomically
        against :meth:`submit` — so a submission racing a close either
        lands before the drain (and completes) or gets a typed
        :class:`ServerClosed`; work is never silently dropped.
        """
        with self._lifecycle:
            already = self._closed
            self._closed = True
        if not already:
            self._pool.shutdown(wait=True)

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        with self._lock:
            served = self.requests_served
        return (
            f"Server({self.pipeline.output_name!r}, workers={self.workers},"
            f" backend={self.backend!r}, requests={served})"
        )
