"""Supervised multi-process serving: crash-isolated workers.

The thread-pool :class:`~repro.service.serve.Server` shares one address
space — a segfaulting kernel, a wedged extension, or an ``os._exit``
takes the whole process down.  :class:`WorkerPool` puts each worker in
its own *process*, supervised over a duplex pipe:

* **crashes** are detected the moment the worker process dies (its
  pipe hits EOF / its sentinel fires) and the worker is restarted with
  a bumped incarnation number;
* **hangs** are detected two ways: a per-request ``deadline`` measured
  from dispatch, and heartbeat staleness for a process wedged hard
  enough that its heartbeat thread stops (e.g. a C loop holding the
  GIL).  Either kills and restarts the worker;
* the in-flight request of a dead worker is **re-dispatched** under a
  bounded retry budget with exponential backoff and deterministic
  jitter — unless it was submitted ``idempotent=False``, in which case
  at-most-once semantics apply and the caller gets the typed error;
* workers **warm-start** from the shared artifact store
  (``cache_dir``), so a restart re-hydrates kernels instead of paying
  saturation and codegen again.

Requests cross the process boundary as picklable name->array dicts
(the same shape :func:`tests.conftest.build_requests` produces), and
jobs as :class:`~repro.service.batch.CompileJob` specs — an ``App``
itself is not picklable.

Every recovery action — restarts, retries, deadline and heartbeat
kills, crash counts — is reported by :meth:`WorkerPool.stats`.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import threading
import time
import traceback
from collections import deque
from concurrent.futures import Future
from multiprocessing.connection import wait as connection_wait
from typing import Deque, Dict, List, Optional, Sequence

import numpy as np

from ..runtime.executor import RequestError
from .batch import CompileJob
from .faults import FaultPlan
from .serve import RejectedError, ServerClosed


class WorkerCrashed(RuntimeError):
    """A worker process died while (or before) serving a request."""

    def __init__(self, message: str, exit_code: Optional[int] = None) -> None:
        super().__init__(message)
        self.exit_code = exit_code


class DeadlineExceeded(RuntimeError):
    """A request overran its deadline; the worker was killed."""


class RemoteError(RuntimeError):
    """An exception raised inside a worker, carried back by type name.

    The original traceback text is on :attr:`remote_traceback` — the
    exception object itself never crosses the process boundary (it may
    not be picklable), so the supervisor re-raises this typed wrapper.
    """

    def __init__(self, kind: str, message: str, remote_traceback: str) -> None:
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        self.remote_traceback = remote_traceback


class WorkerInitFailed(RuntimeError):
    """A worker could not build its pipeline (bad job, poisoned store)."""


# -- worker process ------------------------------------------------------------


def _worker_main(
    worker_id: int,
    incarnation: int,
    conn,
    job: CompileJob,
    backend: str,
    cache_dir: Optional[str],
    fault_plan: Optional[FaultPlan],
    heartbeat_interval: float,
) -> None:
    """Entry point of one worker process.

    Protocol (worker -> supervisor): ``("hb",)`` heartbeats on a side
    thread, ``("ready", incarnation)`` once the pipeline is built, then
    one ``("ok", req_id, output)`` or ``("err", req_id, kind, msg,
    tb)`` per ``("req", req_id, inputs)`` received.  ``("init_err",
    tb)`` replaces ``ready`` when the build fails.
    """
    send_lock = threading.Lock()

    def send(message) -> None:
        try:
            with send_lock:
                conn.send(message)
        except (BrokenPipeError, OSError):
            raise SystemExit(0)  # supervisor is gone; nothing to serve

    stop_beat = threading.Event()

    def beat() -> None:
        while not stop_beat.wait(heartbeat_interval):
            try:
                send(("hb",))
            except SystemExit:
                return

    # beat from the very start so a hang *during init* is visible too;
    # the heartbeat thread survives kernel runs (NumPy releases the GIL)
    threading.Thread(target=beat, daemon=True).start()
    try:
        if fault_plan is not None:
            from . import faults

            faults.install(
                fault_plan,
                scope={"worker": worker_id, "incarnation": incarnation},
            )
        app = job.build_app()
        app.backend = backend
        pipeline = app.compile(cache_dir=cache_dir)
    except BaseException:
        send(("init_err", traceback.format_exc()))
        return
    send(("ready", incarnation))
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message[0] == "stop":
            break
        _, req_id, inputs = message
        try:
            output = pipeline.run(inputs)
        except BaseException as exc:
            send(
                (
                    "err",
                    req_id,
                    type(exc).__name__,
                    str(exc),
                    traceback.format_exc(),
                )
            )
        else:
            send(("ok", req_id, output))
    stop_beat.set()


# -- supervisor-side bookkeeping -----------------------------------------------


class _Request:
    __slots__ = (
        "id",
        "inputs",
        "future",
        "attempts",
        "idempotent",
        "deadline",
        "not_before",
    )

    def __init__(self, req_id, inputs, idempotent, deadline):
        self.id = req_id
        self.inputs = inputs
        self.future: "Future[np.ndarray]" = Future()
        self.attempts = 0  # dispatches so far
        self.idempotent = idempotent
        self.deadline = deadline
        self.not_before = 0.0  # retry backoff gate (monotonic time)


class _Worker:
    __slots__ = (
        "id",
        "incarnation",
        "process",
        "conn",
        "ready",
        "request",
        "dispatched_at",
        "last_heartbeat",
        "init_strikes",
    )

    def __init__(self, wid, incarnation, process, conn, init_strikes, now):
        self.id = wid
        self.incarnation = incarnation
        self.process = process
        self.conn = conn
        self.ready = False
        self.request: Optional[_Request] = None
        self.dispatched_at = 0.0
        self.last_heartbeat = now
        self.init_strikes = init_strikes


def _jitter_fraction(req_id: int, attempt: int) -> float:
    """Deterministic jitter in ``[0, 1)`` — reproducible backoff."""
    digest = hashlib.sha256(f"{req_id}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


class WorkerPool:
    """Serve one :class:`CompileJob` from supervised worker processes.

    Parameters
    ----------
    job:
        The pipeline to serve, as a picklable compile spec.
    workers:
        Worker-process count (default 2).
    backend:
        Execution backend inside each worker; defaults to the job's.
    cache_dir:
        Shared artifact-store root for warm starts.  Strongly
        recommended: restarted workers re-hydrate kernels from it.
    fault_plan:
        A :class:`~repro.service.faults.FaultPlan` installed in every
        worker (scoped ``{"worker": id, "incarnation": n}``) — the
        deterministic fault-injection harness for tests/benchmarks.
    retries:
        Extra dispatches allowed per request (default 2).  Applies to
        worker crashes, deadline kills, and in-worker exceptions alike.
    retry_base_delay / retry_max_delay:
        Exponential-backoff envelope between dispatches; the actual
        delay is ``min(max, base * 2**(attempt-1)) * (0.5 + 0.5 *
        jitter)`` with deterministic per-request jitter.
    deadline:
        Default per-request deadline in seconds, measured from
        dispatch; ``None`` disables.  Overridable per :meth:`submit`.
    heartbeat_interval:
        Worker heartbeat period; staleness beyond ``hang_grace``
        (default ``max(1s, 10x interval)``) kills the worker.
    max_pending:
        Admission bound on queued+in-flight requests; a full pool
        raises :class:`~repro.service.serve.RejectedError`.
    max_restarts:
        Total restart budget; once spent, further deaths are final.
    mp_context:
        Multiprocessing start-method name (``"fork"``/``"spawn"``) or
        context object; default is the platform default.
    """

    _POLL = 0.02  # supervisor loop granularity (seconds)
    _INIT_STRIKE_LIMIT = 3

    def __init__(
        self,
        job: CompileJob,
        workers: int = 2,
        backend: Optional[str] = None,
        cache_dir: Optional[str] = None,
        fault_plan: Optional[FaultPlan] = None,
        retries: int = 2,
        retry_base_delay: float = 0.02,
        retry_max_delay: float = 0.25,
        deadline: Optional[float] = None,
        heartbeat_interval: float = 0.05,
        hang_grace: Optional[float] = None,
        max_pending: Optional[int] = None,
        max_restarts: int = 16,
        mp_context=None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.job = job
        self.backend = backend if backend is not None else job.backend
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.fault_plan = fault_plan
        self.retries = int(retries)
        self.retry_base_delay = float(retry_base_delay)
        self.retry_max_delay = float(retry_max_delay)
        self.deadline = deadline
        self.heartbeat_interval = float(heartbeat_interval)
        self.hang_grace = (
            float(hang_grace)
            if hang_grace is not None
            else max(1.0, 10.0 * self.heartbeat_interval)
        )
        self.max_pending = max_pending
        self.max_restarts = int(max_restarts)
        if isinstance(mp_context, str):
            self._ctx = multiprocessing.get_context(mp_context)
        else:
            self._ctx = mp_context or multiprocessing.get_context()

        self._mu = threading.Lock()
        self._queue: Deque[_Request] = deque()  # guarded-by: _mu
        self._workers: Dict[int, _Worker] = {}  # guarded-by: _mu
        self._closed = False  # guarded-by: _mu
        self._drained = threading.Event()
        self._req_ids = itertools.count()
        self._wakeup_r, self._wakeup_w = self._ctx.Pipe(duplex=False)

        self.restarts = 0  # guarded-by: _mu
        self.crashes = 0  # guarded-by: _mu
        self.deadline_kills = 0  # guarded-by: _mu
        self.heartbeat_kills = 0  # guarded-by: _mu
        self.retries_performed = 0  # guarded-by: _mu
        self.completed = 0  # guarded-by: _mu
        self.failed = 0  # guarded-by: _mu
        self.rejected = 0  # guarded-by: _mu

        # no supervisor thread exists yet, so these spawns race nothing
        for wid in range(int(workers)):
            self._spawn_locked(wid, 0, init_strikes=0)
        self._thread = threading.Thread(
            target=self._supervise, daemon=True, name="repro-supervisor"
        )
        self._thread.start()

    # -- lifecycle -------------------------------------------------------------

    def _spawn_locked(
        self, wid: int, incarnation: int, init_strikes: int
    ) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                wid,
                incarnation,
                child_conn,
                self.job,
                self.backend,
                self.cache_dir,
                self.fault_plan,
                self.heartbeat_interval,
            ),
            daemon=True,
            name=f"repro-worker-{wid}.{incarnation}",
        )
        process.start()
        child_conn.close()
        self._workers[wid] = _Worker(
            wid, incarnation, process, parent_conn, init_strikes,
            time.monotonic(),
        )

    def _nudge(self) -> None:
        try:
            self._wakeup_w.send(None)
        except (BrokenPipeError, OSError):  # pragma: no cover - teardown race
            pass

    def close(self, timeout: float = 30.0) -> None:
        """Stop accepting work, drain, and shut the workers down.

        Idempotent.  Queued and in-flight requests complete (with their
        normal retry semantics) before the workers are stopped; a
        submit racing the close gets a typed
        :class:`~repro.service.serve.ServerClosed`.
        """
        with self._mu:
            self._closed = True
        self._nudge()
        self._drained.wait(timeout)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- public API ------------------------------------------------------------

    def submit(
        self,
        inputs: Optional[Dict[str, np.ndarray]],
        deadline: Optional[float] = None,
        idempotent: bool = True,
    ) -> "Future[np.ndarray]":
        """Enqueue one request; the future resolves to its output.

        ``idempotent=False`` requests are dispatched **at most once**:
        if the owning worker crashes or blows its deadline mid-request
        the future fails with the typed error instead of re-running
        work whose side effects may have partially applied.
        """
        with self._mu:
            if self._closed:
                raise ServerClosed("worker pool is closed")
            if (
                self.max_pending is not None
                and self._pending_locked() >= self.max_pending
            ):
                self.rejected += 1
                raise RejectedError(
                    f"admission queue full ({self.max_pending} pending)"
                )
            request = _Request(
                next(self._req_ids),
                inputs,
                idempotent,
                deadline if deadline is not None else self.deadline,
            )
            self._queue.append(request)
        self._nudge()
        return request.future

    def run(
        self,
        inputs: Optional[Dict[str, np.ndarray]] = None,
        deadline: Optional[float] = None,
    ) -> np.ndarray:
        return self.submit(inputs, deadline=deadline).result()

    def run_many(
        self,
        requests: Sequence[Optional[Dict[str, np.ndarray]]],
        deadline: Optional[float] = None,
        on_error: str = "raise",
    ) -> List[np.ndarray]:
        """Run a batch over the pool; outputs in request order.

        ``on_error="return"`` isolates failures per request — the
        result list carries a
        :class:`~repro.runtime.executor.RequestError` at each failed
        index instead of raising on the first.
        """
        if on_error not in ("raise", "return"):
            raise ValueError(
                f"on_error must be 'raise' or 'return', got {on_error!r}"
            )
        futures = [
            self.submit(inputs, deadline=deadline) for inputs in requests
        ]
        results: List[np.ndarray] = []
        for index, future in enumerate(futures):
            try:
                results.append(future.result())
            except Exception as exc:
                if on_error == "raise":
                    raise
                results.append(RequestError(index, exc))
        return results

    def stats(self) -> Dict[str, object]:
        """Recovery and throughput counters plus per-worker state."""
        with self._mu:
            return {
                "workers": [
                    {
                        "id": worker.id,
                        "incarnation": worker.incarnation,
                        "ready": worker.ready,
                        "busy": worker.request is not None,
                        "alive": worker.process.is_alive(),
                    }
                    for worker in self._workers.values()
                ],
                "restarts": self.restarts,
                "crashes": self.crashes,
                "deadline_kills": self.deadline_kills,
                "heartbeat_kills": self.heartbeat_kills,
                "retries": self.retries_performed,
                "completed": self.completed,
                "failed": self.failed,
                "rejected": self.rejected,
                "pending": self._pending_locked(),
                "closed": self._closed,
            }

    # -- supervisor internals --------------------------------------------------

    def _pending_locked(self) -> int:
        inflight = sum(
            1 for worker in self._workers.values() if worker.request
        )
        return len(self._queue) + inflight

    def _backoff(self, request: _Request) -> float:
        base = min(
            self.retry_max_delay,
            self.retry_base_delay * (2 ** max(0, request.attempts - 1)),
        )
        return base * (0.5 + 0.5 * _jitter_fraction(request.id, request.attempts))

    def _fail_locked(self, request: _Request, error: BaseException) -> None:
        self.failed += 1
        request.future.set_exception(error)

    def _retry_or_fail_locked(
        self, request: _Request, error: BaseException
    ) -> None:
        """Re-queue a failed dispatch, or surface the error.

        ``request.attempts`` already counts the dispatch that failed.
        """
        if not request.idempotent:
            # at-most-once: the attempt may have (partially) run
            self._fail_locked(request, error)
            return
        if request.attempts > self.retries:
            self._fail_locked(request, error)
            return
        self.retries_performed += 1
        request.not_before = time.monotonic() + self._backoff(request)
        self._queue.appendleft(request)

    def _reap_locked(
        self,
        worker: _Worker,
        error: BaseException,
        counter: str,
        respawn: bool = True,
    ) -> None:
        """Bury a dead/hung worker, requeue its request, restart it."""
        setattr(self, counter, getattr(self, counter) + 1)
        request, worker.request = worker.request, None
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():  # pragma: no cover - stuck SIGTERM
                worker.process.kill()
                worker.process.join(timeout=1.0)
        else:
            worker.process.join(timeout=1.0)
        if request is not None:
            self._retry_or_fail_locked(request, error)
        del self._workers[worker.id]
        strikes = worker.init_strikes + (0 if worker.ready else 1)
        if (
            respawn
            and not self._closed
            and self.restarts < self.max_restarts
            and strikes < self._INIT_STRIKE_LIMIT
        ):
            self.restarts += 1
            self._spawn_locked(worker.id, worker.incarnation + 1, strikes)
        elif not self._workers:
            # nobody left to serve: fail everything still queued
            while self._queue:
                self._fail_locked(
                    self._queue.popleft(),
                    WorkerCrashed("no live workers remain"),
                )

    def _handle_message_locked(self, worker: _Worker, message) -> None:
        kind = message[0]
        now = time.monotonic()
        worker.last_heartbeat = now
        if kind == "hb":
            return
        if kind == "ready":
            worker.ready = True
            worker.init_strikes = 0
            return
        if kind == "init_err":
            # the worker exits right after sending this; reap it now
            # with the remote traceback as the cause
            self._reap_locked(
                worker,
                WorkerInitFailed(
                    f"worker {worker.id} failed to initialize:\n{message[1]}"
                ),
                "crashes",
            )
            return
        request = worker.request
        if kind == "ok":
            _, req_id, output = message
            if request is not None and request.id == req_id:
                worker.request = None
                self.completed += 1
                request.future.set_result(output)
            return
        if kind == "err":
            _, req_id, err_kind, err_msg, err_tb = message
            if request is not None and request.id == req_id:
                worker.request = None
                self._retry_or_fail_locked(
                    request, RemoteError(err_kind, err_msg, err_tb)
                )
            return

    def _dispatch_locked(self, now: float) -> None:
        idle = [
            worker
            for worker in self._workers.values()
            if worker.ready
            and worker.request is None
            and worker.process.is_alive()
        ]
        deferred: List[_Request] = []
        while idle and self._queue:
            request = self._queue.popleft()
            if request.not_before > now:
                deferred.append(request)
                continue
            worker = idle.pop()
            request.attempts += 1
            try:
                worker.conn.send(("req", request.id, request.inputs))
            except (BrokenPipeError, OSError):
                # worker died between poll and dispatch; the reap below
                # (next loop pass) restarts it — requeue undispatched
                request.attempts -= 1
                deferred.append(request)
                continue
            worker.request = request
            worker.dispatched_at = now
        for request in deferred:
            self._queue.appendleft(request)

    def _supervise(self) -> None:
        while True:
            with self._mu:
                now = time.monotonic()
                # drain every worker conn, then check for deaths/hangs
                for worker in list(self._workers.values()):
                    try:
                        while worker.conn.poll():
                            self._handle_message_locked(
                                worker, worker.conn.recv()
                            )
                            if worker.id not in self._workers:
                                break  # reaped (init_err)
                    except (EOFError, OSError):
                        pass  # death handled below via is_alive
                for worker in list(self._workers.values()):
                    if not worker.process.is_alive():
                        code = worker.process.exitcode
                        self._reap_locked(
                            worker,
                            WorkerCrashed(
                                f"worker {worker.id} (incarnation"
                                f" {worker.incarnation}) died with exit"
                                f" code {code}",
                                exit_code=code,
                            ),
                            "crashes",
                        )
                        continue
                    request = worker.request
                    if (
                        request is not None
                        and request.deadline is not None
                        and now - worker.dispatched_at > request.deadline
                    ):
                        self._reap_locked(
                            worker,
                            DeadlineExceeded(
                                f"request {request.id} exceeded its"
                                f" {request.deadline:.3f}s deadline on"
                                f" worker {worker.id}"
                            ),
                            "deadline_kills",
                        )
                        continue
                    if now - worker.last_heartbeat > self.hang_grace:
                        self._reap_locked(
                            worker,
                            WorkerCrashed(
                                f"worker {worker.id} heartbeat stale"
                                f" (> {self.hang_grace:.2f}s); killed"
                            ),
                            "heartbeat_kills",
                        )
                        continue
                self._dispatch_locked(now)
                if (
                    self._closed
                    and not self._queue
                    and not any(
                        worker.request for worker in self._workers.values()
                    )
                ):
                    workers = list(self._workers.values())
                    self._workers.clear()
                    break
                conns = [worker.conn for worker in self._workers.values()]
                sentinels = [
                    worker.process.sentinel
                    for worker in self._workers.values()
                ]
            connection_wait(
                conns + sentinels + [self._wakeup_r], timeout=self._POLL
            )
            try:
                while self._wakeup_r.poll():
                    self._wakeup_r.recv()
            except (EOFError, OSError):  # pragma: no cover - teardown race
                pass
        # shutdown: polite stop, then force
        for worker in workers:
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for worker in workers:
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
        self._drained.set()

    def __repr__(self) -> str:
        with self._mu:
            workers = len(self._workers)
            completed = self.completed
        return (
            f"WorkerPool({self.job.label!r}, workers={workers},"
            f" backend={self.backend!r}, completed={completed})"
        )
