"""Supervised multi-process serving: crash-isolated workers.

The thread-pool :class:`~repro.service.serve.Server` shares one address
space — a segfaulting kernel, a wedged extension, or an ``os._exit``
takes the whole process down.  :class:`WorkerPool` puts each worker in
its own *process*, supervised over a duplex pipe:

* **crashes** are detected the moment the worker process dies (its
  pipe hits EOF / its sentinel fires) and the worker is restarted with
  a bumped incarnation number;
* **hangs** are detected two ways: a per-request wall-clock *budget*
  (``deadline``, measured from submission and decremented through
  queue wait and execution alike — a request whose budget expires
  while still queued fails fast without ever occupying a worker), and
  heartbeat staleness for a process wedged hard enough that its
  heartbeat thread stops (e.g. a C loop holding the GIL).  Either
  kills and restarts the worker;
* the in-flight requests of a dead worker are **re-dispatched** under
  a bounded retry budget with exponential backoff and deterministic
  jitter — unless a request was submitted ``idempotent=False``, in
  which case at-most-once semantics apply and the caller gets the
  typed error;
* workers **warm-start** from the shared artifact store
  (``cache_dir``), so a restart re-hydrates kernels instead of paying
  saturation and codegen again.

Transport is split into two planes.  The **control plane** — request
ids, shape/dtype metadata, slot indices, error reports — always rides
the duplex pipe as small picklable tuples.  The **data plane** —
tensor payloads — rides a pair of :class:`~repro.service.shm.ShmRing`
shared-memory rings per worker (requests one way, responses the
other), written once and mapped as zero-copy NumPy views on the far
side, with no per-request pickling.  When shared memory is
unavailable, a frame outgrows its slot, or every slot is in flight,
that batch transparently falls back to the legacy pipe path (whole
batch as *one* pickle message, preserving intra-batch array identity);
``transport="pipe"`` disables shared memory outright.

Requests are queued as **batches**: :meth:`WorkerPool.submit` enqueues
a singleton, :meth:`WorkerPool.submit_many` a micro-batch that a
worker executes through the batch-axis
:meth:`~repro.runtime.executor.CompiledPipeline.run_many` path (shared
weights stay shared across the boundary because frames deduplicate
tensors by identity).  Retries always re-queue as singletons so one
poisoned request cannot re-fail its batch-mates.

Jobs cross the boundary as :class:`~repro.service.batch.CompileJob`
specs — an ``App`` itself is not picklable.  Every recovery action —
restarts, retries, deadline and heartbeat kills, crash counts — and
every transport decision is reported by :meth:`WorkerPool.stats`.

Lifecycle verbs: :meth:`WorkerPool.drain` stops admission and lets
every accepted request reach its normal terminal state before the
workers stop; :meth:`WorkerPool.close` drains with a timeout and then
turns forceful, failing whatever is left with
:class:`~repro.service.serve.ServerClosed` so no future is ever left
unresolved; :meth:`WorkerPool.rolling_restart` replaces workers one at
a time — drain, retire, respawn, health-probe — with zero dropped
requests, for planned restarts (artifact refresh, config rollout)
rather than crash recovery.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import threading
import time
import traceback
from collections import deque
from concurrent.futures import Future
from multiprocessing import resource_tracker
from multiprocessing.connection import wait as connection_wait
from typing import Deque, Dict, List, Optional, Sequence

import numpy as np

from ..runtime.executor import RequestError
from .batch import CompileJob
from .faults import FaultPlan
from .serve import RejectedError, ServerClosed
from . import shm as shm_transport


class WorkerCrashed(RuntimeError):
    """A worker process died while (or before) serving a request."""

    def __init__(self, message: str, exit_code: Optional[int] = None) -> None:
        super().__init__(message)
        self.exit_code = exit_code


class DeadlineExceeded(RuntimeError):
    """A request overran its deadline; the worker was killed."""


class RemoteError(RuntimeError):
    """An exception raised inside a worker, carried back by type name.

    The original traceback text is on :attr:`remote_traceback` — the
    exception object itself never crosses the process boundary (it may
    not be picklable), so the supervisor re-raises this typed wrapper.
    For a request that failed inside a worker-side batch, the traceback
    is the *original* per-request one recovered from
    :class:`~repro.runtime.executor.RequestError`, not the batch
    wrapper's.
    """

    def __init__(self, kind: str, message: str, remote_traceback: str) -> None:
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        self.remote_traceback = remote_traceback


class WorkerInitFailed(RuntimeError):
    """A worker could not build its pipeline (bad job, poisoned store)."""


# -- worker process ------------------------------------------------------------


def _format_remote(exc: BaseException) -> tuple:
    """``(kind, message, traceback_text)`` for one worker-side error,
    unwrapping :class:`RequestError` to the request's original failure
    so callers see the real traceback, not the batch wrapper's."""
    if isinstance(exc, RequestError):
        exc = exc.original
    tb = "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__)
    )
    return type(exc).__name__, str(exc), tb


def _serve_batch(pipeline, rids, requests, resp_ring) -> dict:
    """Run one batch in the worker and lay out the reply payload.

    Singletons take the exact per-request :meth:`CompiledPipeline.run`
    path; larger batches go through :meth:`run_many` (batch-axis kernel
    with its transparent looped fallback) under ``on_error="return"``
    so one poisoned request fails alone.  Successful outputs ride the
    response ring when they fit (``"shm"``), the pipe otherwise
    (``"inline"``); failures always ride the pipe (``"errs"``).
    """
    errs: List[tuple] = []
    ok: List[tuple] = []
    if len(requests) == 1:
        try:
            ok.append((rids[0], pipeline.run(requests[0])))
        except BaseException as exc:
            errs.append((rids[0],) + _format_remote(exc))
    else:
        try:
            outputs = pipeline.run_many(
                requests, workers=1, on_error="return"
            )
        except BaseException as exc:
            remote = _format_remote(exc)
            return {
                "shm": None,
                "inline": [],
                "errs": [(rid,) + remote for rid in rids],
            }
        for rid, output in zip(rids, outputs):
            if isinstance(output, RequestError):
                errs.append((rid,) + _format_remote(output))
            else:
                ok.append((rid, output))
    shm_part = None
    if resp_ring is not None and ok:
        plan = shm_transport.plan_frame([{"o": out} for _, out in ok])
        if plan is not None:
            slot = shm_transport.write_frame(resp_ring, plan)
            if slot is not None:
                shm_part = (slot, [rid for rid, _ in ok], plan.meta)
                ok = []
    return {"shm": shm_part, "inline": ok, "errs": errs}


def _worker_main(
    worker_id: int,
    incarnation: int,
    conn,
    job: CompileJob,
    backend: str,
    cache_dir: Optional[str],
    fault_plan: Optional[FaultPlan],
    heartbeat_interval: float,
) -> None:
    """Entry point of one worker process.

    Protocol (worker -> supervisor): ``("hb",)`` heartbeats on a side
    thread, ``("ready", incarnation, out_nbytes)`` once the pipeline is
    built, ``("attached",)`` / ``("attach_err", tb)`` answering a ring
    handoff, then one ``("done", payload)`` per batch received.
    ``("init_err", tb)`` replaces ``ready`` when the build fails.

    Protocol (supervisor -> worker): ``("attach", req_spec,
    resp_spec)`` hands over the shared-memory rings, ``("reqs",
    [(rid, inputs), ...])`` carries a batch over the pipe,
    ``("reqs_shm", slot, rids, meta)`` points at a published
    request-ring frame, ``("stop",)`` shuts down.
    """
    # Fork-safety: a forked child inherits the multiprocessing resource
    # tracker's RLock *state*.  Workers are forked from the supervisor
    # thread, so if any other parent thread (a sibling pool creating or
    # destroying rings) held that lock at fork time, this process would
    # deadlock inside ensure_running() on its first SharedMemory attach
    # — while the heartbeat side-thread keeps it looking healthy.  The
    # holder does not exist in this process, so a fresh lock is safe;
    # the inherited fd still points at the parent's live tracker.
    tracker = getattr(resource_tracker, "_resource_tracker", None)
    if tracker is not None and hasattr(tracker, "_lock"):
        tracker._lock = threading.RLock()
    send_lock = threading.Lock()

    def send(message) -> None:
        try:
            with send_lock:
                conn.send(message)
        except (BrokenPipeError, OSError):
            raise SystemExit(0)  # supervisor is gone; nothing to serve

    stop_beat = threading.Event()

    def beat() -> None:
        while not stop_beat.wait(heartbeat_interval):
            try:
                send(("hb",))
            except SystemExit:
                return

    # beat from the very start so a hang *during init* is visible too;
    # the heartbeat thread survives kernel runs (NumPy releases the GIL)
    threading.Thread(target=beat, daemon=True).start()
    try:
        if fault_plan is not None:
            from . import faults

            faults.install(
                fault_plan,
                scope={"worker": worker_id, "incarnation": incarnation},
            )
        app = job.build_app()
        app.backend = backend
        pipeline = app.compile(cache_dir=cache_dir)
        out_nbytes = int(
            np.prod(pipeline.output_extents, dtype=np.int64)
        ) * np.dtype(pipeline.output_dtype.to_numpy()).itemsize
    except BaseException:
        send(("init_err", traceback.format_exc()))
        return
    send(("ready", incarnation, out_nbytes))
    req_ring: Optional[shm_transport.ShmRing] = None
    resp_ring: Optional[shm_transport.ShmRing] = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "stop":
            break
        if kind == "attach":
            _, req_spec, resp_spec = message
            try:
                req_ring = shm_transport.ShmRing.attach(req_spec)
                resp_ring = shm_transport.ShmRing.attach(resp_spec)
            except Exception:
                req_ring = resp_ring = None
                send(("attach_err", traceback.format_exc()))
            else:
                send(("attached",))
            continue
        if kind == "reqs":
            _, packed = message
            rids = [rid for rid, _ in packed]
            requests = [inputs for _, inputs in packed]
            slot = None
        else:  # "reqs_shm"
            _, slot, rids, meta = message
            try:
                requests = shm_transport.read_frame(req_ring, slot, meta)
            except shm_transport.ShmCorruption:
                remote = _format_remote(
                    shm_transport.ShmCorruption(
                        f"request frame in slot {slot} rejected"
                    )
                )
                req_ring.release(slot)  # corrupt or not, free the slot
                send(
                    (
                        "done",
                        {
                            "shm": None,
                            "inline": [],
                            "errs": [(rid,) + remote for rid in rids],
                        },
                    )
                )
                continue
        payload = _serve_batch(pipeline, rids, requests, resp_ring)
        if slot is not None:
            # the kernel may read zero-copy views until the run above
            # returned; only now is the slot safe to hand back
            req_ring.release(slot)
        send(("done", payload))
    stop_beat.set()
    for ring in (req_ring, resp_ring):
        if ring is not None:
            ring.close()


# -- supervisor-side bookkeeping -----------------------------------------------


class _Request:
    __slots__ = (
        "id",
        "inputs",
        "future",
        "attempts",
        "idempotent",
        "expires_at",
        "not_before",
    )

    def __init__(self, req_id, inputs, idempotent, expires_at):
        self.id = req_id
        self.inputs = inputs
        self.future: "Future[np.ndarray]" = Future()
        self.attempts = 0  # dispatches so far
        self.idempotent = idempotent
        self.expires_at = expires_at  # absolute monotonic expiry, or None
        self.not_before = 0.0  # retry backoff gate (monotonic time)


class _Batch:
    """The queue/dispatch unit: one or more requests served together."""

    __slots__ = ("requests",)

    def __init__(self, requests: List[_Request]) -> None:
        self.requests = requests

    @property
    def not_before(self) -> float:
        return max(request.not_before for request in self.requests)

    @property
    def expires_at(self) -> Optional[float]:
        """Tightest member expiry — the batch runs as one dispatch.
        Expired members are swept out *before* dispatch, so this never
        inherits a budget a live member did not ask for."""
        expiries = [
            request.expires_at
            for request in self.requests
            if request.expires_at is not None
        ]
        return min(expiries) if expiries else None


class _Rolling:
    """In-progress :meth:`WorkerPool.rolling_restart` bookkeeping.

    All fields are guarded by the pool's ``_mu`` except ``done``
    (an event the caller waits on outside the lock).
    """

    __slots__ = (
        "pending",
        "phase",
        "old_incarnation",
        "probe_started",
        "replaced",
        "error",
        "done",
    )

    def __init__(self, worker_ids: List[int]) -> None:
        self.pending = list(worker_ids)
        self.phase = "draining"  # "draining" | "probing"
        self.old_incarnation: Optional[int] = None
        self.probe_started = 0.0
        self.replaced = 0
        self.error: Optional[str] = None
        self.done = threading.Event()


class _Worker:
    __slots__ = (
        "id",
        "incarnation",
        "process",
        "conn",
        "ready",
        "batch",
        "dispatched_at",
        "last_heartbeat",
        "init_strikes",
        "out_nbytes",
        "req_ring",
        "resp_ring",
        "shm_state",  # "none" | "pending" | "ready" | "broken"
        "draining",
    )

    def __init__(self, wid, incarnation, process, conn, init_strikes, now):
        self.id = wid
        self.incarnation = incarnation
        self.process = process
        self.conn = conn
        self.ready = False
        self.batch: Optional[_Batch] = None
        self.draining = False  # rolling restart: no new dispatches
        self.dispatched_at = 0.0
        self.last_heartbeat = now
        self.init_strikes = init_strikes
        self.out_nbytes: Optional[int] = None
        self.req_ring: Optional[shm_transport.ShmRing] = None
        self.resp_ring: Optional[shm_transport.ShmRing] = None
        self.shm_state = "none"


def _jitter_fraction(req_id: int, attempt: int) -> float:
    """Deterministic jitter in ``[0, 1)`` — reproducible backoff."""
    digest = hashlib.sha256(f"{req_id}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


class WorkerPool:
    """Serve one :class:`CompileJob` from supervised worker processes.

    Parameters
    ----------
    job:
        The pipeline to serve, as a picklable compile spec.
    workers:
        Worker-process count (default 2).
    backend:
        Execution backend inside each worker; defaults to the job's.
    cache_dir:
        Shared artifact-store root for warm starts.  Strongly
        recommended: restarted workers re-hydrate kernels from it.
    fault_plan:
        A :class:`~repro.service.faults.FaultPlan` installed in every
        worker (scoped ``{"worker": id, "incarnation": n}``) — the
        deterministic fault-injection harness for tests/benchmarks.
    retries:
        Extra dispatches allowed per request (default 2).  Applies to
        worker crashes, deadline kills, and in-worker exceptions alike.
    retry_base_delay / retry_max_delay:
        Exponential-backoff envelope between dispatches; the actual
        delay is ``min(max, base * 2**(attempt-1)) * (0.5 + 0.5 *
        jitter)`` with deterministic per-request jitter.
    deadline:
        Default per-request wall-clock *budget* in seconds, measured
        from submission; ``None`` disables.  Overridable per
        :meth:`submit`.  The budget is decremented through queue wait
        and execution alike: a request still queued when its budget
        runs out fails fast with :class:`DeadlineExceeded` without
        ever occupying a worker, and a dispatched batch is killed at
        its tightest *live* member expiry (expired members are swept
        out before dispatch, never inherited).
    record_events:
        When true, keep a bounded in-memory log of request lifecycle
        events (``("dispatch"|"complete"|"fail"|"expire", rid, ...)``)
        readable via :meth:`event_log` — the chaos harness uses it to
        check at-most-once and exactly-one-terminal-outcome.
    heartbeat_interval:
        Worker heartbeat period; staleness beyond ``hang_grace``
        (default ``max(1s, 10x interval)``) kills the worker.
    max_pending:
        Admission bound on queued+in-flight requests; a full pool
        raises :class:`~repro.service.serve.RejectedError`.
    max_restarts:
        Total restart budget; once spent, further deaths are final.
    transport:
        ``"auto"`` (default) uses shared-memory rings when the host
        supports them, with per-batch pipe fallback; ``"shm"`` insists
        (raises :class:`~repro.service.shm.ShmUnavailable` up front
        when the host cannot); ``"pipe"`` never touches shared memory.
    batch_max:
        Largest batch one dispatch may carry (:meth:`submit_many`
        chunks above it).
    mp_context:
        Multiprocessing start-method name (``"fork"``/``"spawn"``) or
        context object; default is the platform default.
    """

    _POLL = 0.02  # supervisor loop granularity (seconds)
    _INIT_STRIKE_LIMIT = 3
    _RING_SLOTS = 2  # one frame in flight + one being written

    def __init__(
        self,
        job: CompileJob,
        workers: int = 2,
        backend: Optional[str] = None,
        cache_dir: Optional[str] = None,
        fault_plan: Optional[FaultPlan] = None,
        retries: int = 2,
        retry_base_delay: float = 0.02,
        retry_max_delay: float = 0.25,
        deadline: Optional[float] = None,
        heartbeat_interval: float = 0.05,
        hang_grace: Optional[float] = None,
        max_pending: Optional[int] = None,
        max_restarts: int = 16,
        transport: str = "auto",
        batch_max: int = 32,
        mp_context=None,
        record_events: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if transport not in ("auto", "shm", "pipe"):
            raise ValueError(
                f"transport must be 'auto', 'shm', or 'pipe',"
                f" got {transport!r}"
            )
        if batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        self.job = job
        self.backend = backend if backend is not None else job.backend
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.fault_plan = fault_plan
        self.retries = int(retries)
        self.retry_base_delay = float(retry_base_delay)
        self.retry_max_delay = float(retry_max_delay)
        self.deadline = deadline
        self.heartbeat_interval = float(heartbeat_interval)
        self.hang_grace = (
            float(hang_grace)
            if hang_grace is not None
            else max(1.0, 10.0 * self.heartbeat_interval)
        )
        self.max_pending = max_pending
        self.max_restarts = int(max_restarts)
        self.batch_max = int(batch_max)
        if transport == "shm" and not shm_transport.available():
            raise shm_transport.ShmUnavailable(
                "transport='shm' requested but this host cannot back"
                " shared memory"
            )
        if transport == "auto" and not shm_transport.available():
            transport = "pipe"
        self.transport = transport
        if isinstance(mp_context, str):
            self._ctx = multiprocessing.get_context(mp_context)
        else:
            self._ctx = mp_context or multiprocessing.get_context()

        self._mu = threading.Lock()
        self._queue: Deque[_Batch] = deque()  # guarded-by: _mu
        self._workers: Dict[int, _Worker] = {}  # guarded-by: _mu
        self._closed = False  # guarded-by: _mu
        self._aborted = False  # guarded-by: _mu
        self._rolling: Optional[_Rolling] = None  # guarded-by: _mu
        self._drained = threading.Event()
        self._req_ids = itertools.count()
        self._wakeup_r, self._wakeup_w = self._ctx.Pipe(duplex=False)
        self.record_events = bool(record_events)
        self._events: Deque[tuple] = deque(maxlen=65536)  # guarded-by: _mu

        self.restarts = 0  # guarded-by: _mu
        self.crashes = 0  # guarded-by: _mu
        self.deadline_kills = 0  # guarded-by: _mu
        self.heartbeat_kills = 0  # guarded-by: _mu
        self.retries_performed = 0  # guarded-by: _mu
        self.completed = 0  # guarded-by: _mu
        self.failed = 0  # guarded-by: _mu
        self.expired = 0  # guarded-by: _mu
        self.rejected = 0  # guarded-by: _mu
        self.rolling_restarts = 0  # guarded-by: _mu
        self.shm_batches = 0  # guarded-by: _mu
        self.shm_requests = 0  # guarded-by: _mu
        self.pipe_batches = 0  # guarded-by: _mu
        self.pipe_payloads = 0  # guarded-by: _mu
        self.shm_fallbacks = 0  # guarded-by: _mu
        self.shm_corruptions = 0  # guarded-by: _mu

        # no supervisor thread exists yet, so these spawns race nothing
        for wid in range(int(workers)):
            self._spawn_locked(wid, 0, init_strikes=0)
        self._thread = threading.Thread(
            target=self._supervise, daemon=True, name="repro-supervisor"
        )
        self._thread.start()

    # -- lifecycle -------------------------------------------------------------

    def _spawn_locked(
        self, wid: int, incarnation: int, init_strikes: int
    ) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                wid,
                incarnation,
                child_conn,
                self.job,
                self.backend,
                self.cache_dir,
                self.fault_plan,
                self.heartbeat_interval,
            ),
            daemon=True,
            name=f"repro-worker-{wid}.{incarnation}",
        )
        process.start()
        child_conn.close()
        self._workers[wid] = _Worker(
            wid, incarnation, process, parent_conn, init_strikes,
            time.monotonic(),
        )

    def _destroy_rings(self, worker: _Worker) -> None:
        """Tear down one worker's rings (supervisor owns the segments)."""
        for ring in (worker.req_ring, worker.resp_ring):
            if ring is not None:
                ring.destroy()
        worker.req_ring = None
        worker.resp_ring = None

    def _nudge(self) -> None:
        try:
            self._wakeup_w.send(None)
        except (BrokenPipeError, OSError):  # pragma: no cover - teardown race
            pass

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admission, complete queued + in-flight work, shut down.

        The graceful lifecycle verb: every already-accepted request
        reaches its normal terminal state (success, retry-exhausted
        failure, or expiry) before the workers stop.  Returns ``True``
        once fully drained, ``False`` on timeout (work may still be
        completing; futures stay owned by the pool).  Idempotent.
        """
        with self._mu:
            self._closed = True
        self._nudge()
        return self._drained.wait(timeout)

    def close(self, timeout: float = 30.0) -> None:
        """Stop accepting work, drain, and shut the workers down.

        Idempotent.  Queued and in-flight requests complete (with their
        normal retry semantics) before the workers are stopped; a
        submit racing the close gets a typed
        :class:`~repro.service.serve.ServerClosed`.  If the drain does
        not finish within ``timeout`` the close turns forceful: every
        still-pending future is failed with
        :class:`~repro.service.serve.ServerClosed` and the workers are
        killed — no future is ever left unresolved.
        """
        with self._mu:
            self._closed = True
        self._nudge()
        if not self._drained.wait(timeout):
            with self._mu:
                self._aborted = True
            self._nudge()
            self._drained.wait(10.0)

    def rolling_restart(self, timeout: float = 120.0) -> int:
        """Replace every worker, one at a time, with zero dropped work.

        Each worker in turn is drained (no new dispatches; its
        in-flight batch completes), stopped, and respawned with a
        bumped incarnation; the replacement warm-starts from
        ``cache_dir`` and must health-probe ``ready`` before the next
        worker is touched.  Admission stays open throughout and queued
        requests keep flowing to the other workers.  Returns the
        number of workers replaced; raises on timeout or when no
        replacement comes up.
        """
        with self._mu:
            if self._closed:
                raise ServerClosed("worker pool is closed")
            if self._rolling is not None:
                raise RuntimeError("a rolling restart is already in progress")
            rolling = _Rolling(sorted(self._workers))
            self._rolling = rolling
        self._nudge()
        if not rolling.done.wait(timeout):
            with self._mu:
                if self._rolling is rolling:
                    self._rolling = None
                for worker in self._workers.values():
                    worker.draining = False
            raise TimeoutError(
                f"rolling restart did not complete within {timeout}s"
                f" ({rolling.replaced} workers replaced)"
            )
        if rolling.error is not None:
            raise WorkerInitFailed(rolling.error)
        return rolling.replaced

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- public API ------------------------------------------------------------

    def submit(
        self,
        inputs: Optional[Dict[str, np.ndarray]],
        deadline: Optional[float] = None,
        idempotent: bool = True,
    ) -> "Future[np.ndarray]":
        """Enqueue one request; the future resolves to its output.

        ``idempotent=False`` requests are dispatched **at most once**:
        if the owning worker crashes or blows its deadline mid-request
        the future fails with the typed error instead of re-running
        work whose side effects may have partially applied.
        """
        return self.submit_many(
            [inputs], deadline=deadline, idempotent=idempotent
        )[0]

    def submit_many(
        self,
        requests: Sequence[Optional[Dict[str, np.ndarray]]],
        deadline: Optional[float] = None,
        idempotent: bool = True,
        expires_at: Optional[Sequence[Optional[float]]] = None,
    ) -> "List[Future[np.ndarray]]":
        """Enqueue a micro-batch; one future per request, in order.

        The batch is chunked across idle workers (never beyond
        ``batch_max`` per chunk) and each chunk runs as one batch-axis
        dispatch inside a worker.  Admission is all-or-nothing: when
        ``max_pending`` cannot absorb the whole batch, every request is
        rejected and counted.

        ``deadline`` is a per-request wall-clock budget from *now*;
        ``expires_at`` instead passes pre-computed absolute monotonic
        expiries, one per request (the router uses this so queue time
        already spent upstream keeps counting against the budget).
        """
        requests = list(requests)
        if not requests:
            return []
        now = time.monotonic()
        if expires_at is None:
            budget = deadline if deadline is not None else self.deadline
            expiries: List[Optional[float]] = [
                now + budget if budget is not None else None
            ] * len(requests)
        else:
            expiries = list(expires_at)
            if len(expiries) != len(requests):
                raise ValueError(
                    f"expires_at must match requests: got {len(expiries)}"
                    f" expiries for {len(requests)} requests"
                )
        with self._mu:
            if self._closed:
                raise ServerClosed("worker pool is closed")
            if (
                self.max_pending is not None
                and self._pending_locked() + len(requests) > self.max_pending
            ):
                self.rejected += len(requests)
                raise RejectedError(
                    f"admission queue full ({self.max_pending} pending)"
                )
            members = [
                _Request(
                    next(self._req_ids),
                    inputs,
                    idempotent,
                    expiry,
                )
                for inputs, expiry in zip(requests, expiries)
            ]
            spread = max(1, len(self._workers))
            chunk = max(
                1, min(self.batch_max, -(-len(members) // spread))
            )
            for start in range(0, len(members), chunk):
                self._queue.append(_Batch(members[start:start + chunk]))
        self._nudge()
        return [member.future for member in members]

    def run(
        self,
        inputs: Optional[Dict[str, np.ndarray]] = None,
        deadline: Optional[float] = None,
    ) -> np.ndarray:
        return self.submit(inputs, deadline=deadline).result()

    def run_many(
        self,
        requests: Sequence[Optional[Dict[str, np.ndarray]]],
        deadline: Optional[float] = None,
        on_error: str = "raise",
    ) -> List[np.ndarray]:
        """Run a batch over the pool; outputs in request order.

        Each request is submitted as its own dispatch (use
        :meth:`submit_many` for micro-batched dispatch); tensor
        payloads still ride the shared-memory data plane.
        ``on_error="return"`` isolates failures per request — the
        result list carries a
        :class:`~repro.runtime.executor.RequestError` at each failed
        index instead of raising on the first, with the worker-side
        traceback preserved on its ``original``
        (:class:`RemoteError`).
        """
        if on_error not in ("raise", "return"):
            raise ValueError(
                f"on_error must be 'raise' or 'return', got {on_error!r}"
            )
        items: List[object] = []
        for index, inputs in enumerate(requests):
            try:
                items.append(self.submit(inputs, deadline=deadline))
            except (RejectedError, ServerClosed) as exc:
                if on_error == "return":
                    items.append(RequestError(index, exc))
                    continue
                # deterministic partial-submit semantics: await what was
                # already admitted (their outcomes are the pool's to
                # resolve), then surface the admission error
                for item in items:
                    if isinstance(item, Future):
                        try:
                            item.result()
                        except Exception:
                            pass
                raise
        results: List[np.ndarray] = []
        for index, item in enumerate(items):
            if isinstance(item, RequestError):
                results.append(item)
                continue
            try:
                results.append(item.result())
            except Exception as exc:
                if on_error == "raise":
                    raise
                results.append(RequestError(index, exc))
        return results

    def event_log(self) -> List[tuple]:
        """Snapshot of the lifecycle event log (``record_events=True``).

        Entries are ``("dispatch", rid, idempotent, attempt)``,
        ``("complete", rid)``, ``("fail", rid, error_kind)``, and
        ``("expire", rid)`` in supervisor order — the terminal kinds
        appear exactly once per request id.
        """
        with self._mu:
            return list(self._events)

    def stats(self) -> Dict[str, object]:
        """Recovery and throughput counters plus per-worker state."""
        with self._mu:
            rings = [
                ring.stats()
                for worker in self._workers.values()
                for ring in (worker.req_ring, worker.resp_ring)
                if ring is not None
            ]
            return {
                "workers": [
                    {
                        "id": worker.id,
                        "incarnation": worker.incarnation,
                        "ready": worker.ready,
                        "busy": worker.batch is not None,
                        "alive": worker.process.is_alive(),
                        "shm": worker.shm_state,
                        "draining": worker.draining,
                    }
                    for worker in self._workers.values()
                ],
                "restarts": self.restarts,
                "rolling_restarts": self.rolling_restarts,
                "crashes": self.crashes,
                "deadline_kills": self.deadline_kills,
                "heartbeat_kills": self.heartbeat_kills,
                "retries": self.retries_performed,
                "completed": self.completed,
                "failed": self.failed,
                "expired": self.expired,
                "rejected": self.rejected,
                "pending": self._pending_locked(),
                "closed": self._closed,
                "transport": {
                    "mode": self.transport,
                    "shm_batches": self.shm_batches,
                    "shm_requests": self.shm_requests,
                    "pipe_batches": self.pipe_batches,
                    "pipe_payloads": self.pipe_payloads,
                    "shm_fallbacks": self.shm_fallbacks,
                    "shm_corruptions": self.shm_corruptions,
                    "rings": rings,
                },
            }

    # -- supervisor internals --------------------------------------------------

    def _pending_locked(self) -> int:
        inflight = sum(
            len(worker.batch.requests)
            for worker in self._workers.values()
            if worker.batch is not None
        )
        return sum(len(batch.requests) for batch in self._queue) + inflight

    def _backoff(self, request: _Request) -> float:
        base = min(
            self.retry_max_delay,
            self.retry_base_delay * (2 ** max(0, request.attempts - 1)),
        )
        return base * (0.5 + 0.5 * _jitter_fraction(request.id, request.attempts))

    def _fail_locked(self, request: _Request, error: BaseException) -> None:
        self.failed += 1
        if self.record_events:
            self._events.append(("fail", request.id, type(error).__name__))
        request.future.set_exception(error)

    def _expire_locked(self, request: _Request, where: str) -> None:
        """Terminal budget expiry: counted apart from failures."""
        self.expired += 1
        if self.record_events:
            self._events.append(("expire", request.id))
        request.future.set_exception(
            DeadlineExceeded(
                f"request {request.id} budget expired {where}"
            )
        )

    def _retry_or_fail_locked(
        self, request: _Request, error: BaseException
    ) -> None:
        """Re-queue a failed dispatch (as a singleton batch, so it
        cannot re-fail batch-mates), or surface the error.

        ``request.attempts`` already counts the dispatch that failed.
        """
        if (
            request.expires_at is not None
            and time.monotonic() >= request.expires_at
        ):
            # the budget is spent; a retry could never meet it
            self._expire_locked(request, "during dispatch")
            return
        if not request.idempotent:
            # at-most-once: the attempt may have (partially) run
            self._fail_locked(request, error)
            return
        if request.attempts > self.retries:
            self._fail_locked(request, error)
            return
        self.retries_performed += 1
        request.not_before = time.monotonic() + self._backoff(request)
        self._queue.appendleft(_Batch([request]))

    def _reap_locked(
        self,
        worker: _Worker,
        error: BaseException,
        counter: str,
        respawn: bool = True,
    ) -> None:
        """Bury a dead/hung worker, requeue its batch, restart it."""
        setattr(self, counter, getattr(self, counter) + 1)
        batch, worker.batch = worker.batch, None
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():  # pragma: no cover - stuck SIGTERM
                worker.process.kill()
                worker.process.join(timeout=1.0)
        else:
            worker.process.join(timeout=1.0)
        self._destroy_rings(worker)
        if batch is not None:
            for request in batch.requests:
                self._retry_or_fail_locked(request, error)
        del self._workers[worker.id]
        strikes = worker.init_strikes + (0 if worker.ready else 1)
        # a graceful drain (closed, not aborted) still owes terminal
        # results for queued work, so crashes keep respawning until the
        # queue is empty; an abort has already failed everything
        if (
            respawn
            and not self._aborted
            and (not self._closed or self._queue)
            and self.restarts < self.max_restarts
            and strikes < self._INIT_STRIKE_LIMIT
        ):
            self.restarts += 1
            self._spawn_locked(worker.id, worker.incarnation + 1, strikes)
        elif not self._workers:
            # nobody left to serve: fail everything still queued
            while self._queue:
                for request in self._queue.popleft().requests:
                    self._fail_locked(
                        request, WorkerCrashed("no live workers remain")
                    )

    def _handle_message_locked(self, worker: _Worker, message) -> None:
        kind = message[0]
        now = time.monotonic()
        worker.last_heartbeat = now
        if kind == "hb":
            return
        if kind == "ready":
            worker.ready = True
            worker.init_strikes = 0
            worker.out_nbytes = message[2]
            return
        if kind == "attached":
            if worker.shm_state == "pending":
                worker.shm_state = "ready"
            return
        if kind == "attach_err":
            worker.shm_state = "broken"
            self.shm_fallbacks += 1
            self._destroy_rings(worker)
            return
        if kind == "init_err":
            # the worker exits right after sending this; reap it now
            # with the remote traceback as the cause
            self._reap_locked(
                worker,
                WorkerInitFailed(
                    f"worker {worker.id} failed to initialize:\n{message[1]}"
                ),
                "crashes",
            )
            return
        if kind == "done":
            self._finish_batch_locked(worker, message[1])

    def _finish_batch_locked(self, worker: _Worker, payload: dict) -> None:
        """Resolve one dispatched batch from its reply payload."""
        batch, worker.batch = worker.batch, None
        if batch is None:  # stale reply from a reaped dispatch
            return
        by_id = {request.id: request for request in batch.requests}
        outputs: Dict[int, np.ndarray] = {}
        shm_part = payload.get("shm")
        if shm_part is not None:
            slot, rids, meta = shm_part
            try:
                frames = shm_transport.read_frame(
                    worker.resp_ring, slot, meta, copy=True
                )
            except shm_transport.ShmCorruption as exc:
                self.shm_corruptions += 1
                worker.resp_ring.release(slot)
                for rid in rids:
                    request = by_id.pop(rid, None)
                    if request is not None:
                        self._retry_or_fail_locked(request, exc)
            else:
                worker.resp_ring.release(slot)
                for rid, frame in zip(rids, frames):
                    outputs[rid] = frame["o"]
        for rid, output in payload.get("inline", ()):
            outputs[rid] = output
        for rid, err_kind, err_msg, err_tb in payload.get("errs", ()):
            request = by_id.pop(rid, None)
            if request is not None:
                if err_kind == "ShmCorruption":
                    self.shm_corruptions += 1
                self._retry_or_fail_locked(
                    request, RemoteError(err_kind, err_msg, err_tb)
                )
        for rid, output in outputs.items():
            request = by_id.pop(rid, None)
            if request is not None:
                self.completed += 1
                if self.record_events:
                    self._events.append(("complete", rid))
                request.future.set_result(output)
        for request in by_id.values():  # no verdict at all: treat as lost
            self._retry_or_fail_locked(
                request,
                WorkerCrashed(
                    f"worker {worker.id} returned no result for request"
                    f" {request.id}"
                ),
            )

    def _setup_rings_locked(self, worker: _Worker, inputs: List) -> None:
        """Create this worker's rings and start the attach handshake.

        Slot capacity is sized from the batch's shape signature: one
        request's frame (its unique tensors, shared weights included)
        times ``batch_max``, with alignment slack.  Ring creation
        failure marks the worker's transport broken — it serves over
        the pipe for the rest of its incarnation.
        """
        if worker.out_nbytes is None or not inputs:
            return
        probe = shm_transport.plan_frame(inputs[:1])
        if probe is None:
            return  # not tensor traffic; stay on the pipe for now
        slack = 64 * (self.batch_max + 4)
        req_bytes = probe.length * self.batch_max + slack
        resp_bytes = worker.out_nbytes * self.batch_max + slack
        try:
            worker.req_ring = shm_transport.ShmRing.create(
                self._RING_SLOTS, req_bytes
            )
            worker.resp_ring = shm_transport.ShmRing.create(
                self._RING_SLOTS, resp_bytes
            )
            worker.conn.send(
                ("attach", worker.req_ring.spec, worker.resp_ring.spec)
            )
        except (shm_transport.ShmUnavailable, BrokenPipeError, OSError):
            self._destroy_rings(worker)
            worker.shm_state = "broken"
            self.shm_fallbacks += 1
            return
        worker.shm_state = "pending"

    def _send_batch_locked(self, worker: _Worker, batch: _Batch) -> bool:
        """Dispatch one batch, choosing the data plane.

        Shared memory when the worker's rings are up and the frame
        fits; the pipe otherwise (whole batch as one message, so
        intra-batch array identity — shared weights — survives
        pickling).  Returns ``False`` when the worker's pipe is dead.
        """
        rids = [request.id for request in batch.requests]
        inputs = [request.inputs for request in batch.requests]
        if self.transport != "pipe" and worker.shm_state != "broken":
            if worker.req_ring is None and worker.shm_state == "none":
                self._setup_rings_locked(worker, inputs)
            if worker.shm_state == "ready":
                plan = shm_transport.plan_frame(inputs)
                slot = None
                if plan is not None:
                    slot = shm_transport.write_frame(worker.req_ring, plan)
                if slot is not None:
                    try:
                        worker.conn.send(("reqs_shm", slot, rids, plan.meta))
                    except (BrokenPipeError, OSError):
                        return False  # reap (next pass) frees the rings
                    self.shm_batches += 1
                    self.shm_requests += len(rids)
                    return True
                self.shm_fallbacks += 1
        try:
            worker.conn.send(("reqs", list(zip(rids, inputs))))
        except (BrokenPipeError, OSError):
            return False
        self.pipe_batches += 1
        self.pipe_payloads += len(rids)
        return True

    def _sweep_expired_locked(self, now: float) -> None:
        """Fail-fast every queued request whose budget is spent.

        Runs before each dispatch pass, so an expired request never
        occupies a worker and a batch's dispatch deadline is the
        tightest *live* member expiry, never an expired one's.
        """
        if not self._queue:
            return
        survivors: Deque[_Batch] = deque()
        for batch in self._queue:
            live: List[_Request] = []
            for request in batch.requests:
                if (
                    request.expires_at is not None
                    and request.expires_at <= now
                ):
                    self._expire_locked(request, "while queued")
                else:
                    live.append(request)
            if live:
                batch.requests = live
                survivors.append(batch)
        self._queue = survivors

    def _dispatch_locked(self, now: float) -> None:
        self._sweep_expired_locked(now)
        idle = [
            worker
            for worker in self._workers.values()
            if worker.ready
            and worker.batch is None
            and not worker.draining
            and worker.process.is_alive()
        ]
        deferred: List[_Batch] = []
        while idle and self._queue:
            batch = self._queue.popleft()
            if batch.not_before > now:
                deferred.append(batch)
                continue
            worker = idle.pop()
            for request in batch.requests:
                request.attempts += 1
            if not self._send_batch_locked(worker, batch):
                # worker died between poll and dispatch; the reap below
                # (next loop pass) restarts it — requeue undispatched
                for request in batch.requests:
                    request.attempts -= 1
                deferred.append(batch)
                continue
            if self.record_events:
                for request in batch.requests:
                    self._events.append(
                        (
                            "dispatch",
                            request.id,
                            request.idempotent,
                            request.attempts,
                        )
                    )
            worker.batch = batch
            worker.dispatched_at = now
        for batch in deferred:
            self._queue.appendleft(batch)

    def _abort_locked(self) -> None:
        """Forceful close: fail everything pending with ServerClosed.

        Runs when :meth:`close` gave up waiting for a graceful drain —
        every queued and in-flight future reaches a terminal state
        before the workers are torn down, so no caller blocks forever.
        """
        error = ServerClosed("worker pool closed before completion")
        while self._queue:
            for request in self._queue.popleft().requests:
                self._fail_locked(request, error)
        for worker in self._workers.values():
            batch, worker.batch = worker.batch, None
            if batch is not None:
                for request in batch.requests:
                    self._fail_locked(request, error)

    def _rolling_step_locked(self, now: float) -> None:
        """Advance an in-progress rolling restart by one state step.

        One worker at a time: mark it draining (no new dispatches; its
        in-flight batch completes), retire it, spawn the replacement
        with a bumped incarnation, and only move to the next worker
        once the replacement health-probes ``ready``.  A crash during
        the probe rides the normal reap/respawn path; a replacement
        that strikes out fails the whole rolling restart.
        """
        rolling = self._rolling
        if rolling is None:
            return
        while rolling.pending:
            wid = rolling.pending[0]
            worker = self._workers.get(wid)
            if worker is None:
                rolling.error = (
                    f"worker {wid} is gone and was not respawned; cannot"
                    " complete the rolling restart"
                )
                break
            if rolling.phase == "draining":
                if rolling.old_incarnation is None:
                    rolling.old_incarnation = worker.incarnation
                if worker.incarnation > rolling.old_incarnation:
                    # a crash already replaced it mid-drain: treat the
                    # respawn as the replacement and health-probe it
                    rolling.phase = "probing"
                    rolling.probe_started = now
                    continue
                worker.draining = True
                if worker.batch is not None:
                    return  # its in-flight batch finishes first
                try:
                    worker.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
                worker.process.join(timeout=2.0)
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(timeout=1.0)
                try:
                    worker.conn.close()
                except OSError:  # pragma: no cover
                    pass
                self._destroy_rings(worker)
                del self._workers[wid]
                self._spawn_locked(wid, worker.incarnation + 1, 0)
                rolling.phase = "probing"
                rolling.probe_started = now
                return
            # probing: wait for the replacement's ready health probe
            if worker.ready:
                worker.draining = False
                rolling.replaced += 1
                rolling.pending.pop(0)
                rolling.phase = "draining"
                rolling.old_incarnation = None
                continue
            return
        self._rolling = None
        if rolling.error is None:
            self.rolling_restarts += 1
        rolling.done.set()

    def _supervise(self) -> None:
        while True:
            with self._mu:
                now = time.monotonic()
                # drain every worker conn, then check for deaths/hangs
                for worker in list(self._workers.values()):
                    try:
                        while worker.conn.poll():
                            self._handle_message_locked(
                                worker, worker.conn.recv()
                            )
                            if worker.id not in self._workers:
                                break  # reaped (init_err)
                    except (EOFError, OSError):
                        pass  # death handled below via is_alive
                if self._aborted:
                    self._abort_locked()
                for worker in list(self._workers.values()):
                    if not worker.process.is_alive():
                        code = worker.process.exitcode
                        self._reap_locked(
                            worker,
                            WorkerCrashed(
                                f"worker {worker.id} (incarnation"
                                f" {worker.incarnation}) died with exit"
                                f" code {code}",
                                exit_code=code,
                            ),
                            "crashes",
                        )
                        continue
                    batch = worker.batch
                    expiry = batch.expires_at if batch is not None else None
                    if expiry is not None and now > expiry:
                        self._reap_locked(
                            worker,
                            DeadlineExceeded(
                                f"batch of {len(batch.requests)} overran"
                                f" its budget mid-execution on worker"
                                f" {worker.id}"
                            ),
                            "deadline_kills",
                        )
                        continue
                    if now - worker.last_heartbeat > self.hang_grace:
                        self._reap_locked(
                            worker,
                            WorkerCrashed(
                                f"worker {worker.id} heartbeat stale"
                                f" (> {self.hang_grace:.2f}s); killed"
                            ),
                            "heartbeat_kills",
                        )
                        continue
                if not self._workers and self._queue:
                    # the restart budget is spent and nobody can serve:
                    # fail queued work now instead of letting it hang
                    while self._queue:
                        for request in self._queue.popleft().requests:
                            self._fail_locked(
                                request,
                                WorkerCrashed("no live workers remain"),
                            )
                self._rolling_step_locked(now)
                self._dispatch_locked(now)
                if (
                    self._closed
                    and not self._queue
                    and not any(
                        worker.batch for worker in self._workers.values()
                    )
                ):
                    if self._rolling is not None:
                        rolling, self._rolling = self._rolling, None
                        rolling.error = (
                            rolling.error
                            or "pool closed during rolling restart"
                        )
                        rolling.done.set()
                    workers = list(self._workers.values())
                    self._workers.clear()
                    break
                conns = [worker.conn for worker in self._workers.values()]
                sentinels = [
                    worker.process.sentinel
                    for worker in self._workers.values()
                ]
            connection_wait(
                conns + sentinels + [self._wakeup_r], timeout=self._POLL
            )
            try:
                while self._wakeup_r.poll():
                    self._wakeup_r.recv()
            except (EOFError, OSError):  # pragma: no cover - teardown race
                pass
        # shutdown: polite stop, then force
        for worker in workers:
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for worker in workers:
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            if worker.process.is_alive():  # pragma: no cover - stuck SIGTERM
                worker.process.kill()
                worker.process.join(timeout=1.0)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
            self._destroy_rings(worker)
        self._drained.set()

    def __repr__(self) -> str:
        with self._mu:
            workers = len(self._workers)
            completed = self.completed
        return (
            f"WorkerPool({self.job.label!r}, workers={workers},"
            f" backend={self.backend!r}, completed={completed})"
        )
