"""The warm-start compile service (compile once, serve many).

Every process used to pay full equality-saturation and codegen cost
from scratch; this package adds the persistence and batching layer on
top of the compiler:

* :mod:`.fingerprint` — content-addressed artifact keys: pre-selection
  statement fingerprint x rule-set fingerprint x backend x device.
* :mod:`.store` — the on-disk :class:`ArtifactStore`: atomic writes,
  stale/corrupt artifacts rejected on read, safe for any number of
  concurrent compilers.
* :mod:`.compile` — :func:`warm_select` / :func:`compile_lowered`: the
  hit path restores the tensorized statement and the generated NumPy
  kernel, skipping saturation *and* codegen entirely.
* :mod:`.batch` — :class:`BatchCompiler`: precompile a catalog of apps
  into one shared store over worker processes.
* :mod:`.serve` — :class:`Server`: the execution-side counterpart —
  persistent worker threads, each holding a warm
  :class:`~repro.runtime.plan.ExecutionPlan`, serving batches of
  same-shaped requests, with retries, admission control, and circuit
  breakers that degrade to slower-but-equivalent paths on repeated
  failure.
* :mod:`.supervisor` — :class:`WorkerPool`: crash-isolated worker
  *processes* supervised over pipes — heartbeats, deadlines, automatic
  restarts, and bounded re-dispatch of in-flight requests.
* :mod:`.shm` — :class:`ShmRing`: the zero-copy shared-memory data
  plane under the pool — fixed-slot ring buffers with seqlock handoff
  and checksummed tensor frames, falling back to the pipe gracefully.
* :mod:`.router` — :class:`Router`: the mixed-stream front end —
  buckets requests by (app fingerprint, shape signature, backend),
  micro-batches each bucket into the batch-axis kernels, and reports
  per-bucket p50/p99 latency and throughput.
* :mod:`.faults` — the deterministic fault-injection harness
  (:class:`FaultPlan`) and the :class:`CircuitBreaker` primitive the
  serving tier degrades with.
* :mod:`.chaos` — the seeded chaos-soak harness: random fault
  compositions against long mixed workloads, checked against the
  lifecycle invariants (exactly-one terminal outcome, bitwise parity,
  at-most-once, stats conservation, clean teardown).

Quick tour::

    from repro.lowering import lower
    from repro.service import ArtifactStore, compile_lowered

    store = ArtifactStore("/var/cache/repro-artifacts")
    pipeline, report = compile_lowered(
        lower(out), store, backend="compile", strict=True
    )
    print(report.artifact_cache)      # "miss" the first time, then "hit"
    result = pipeline.run(inputs)     # kernel already seeded on a hit
"""

from .batch import BatchCompiler, BatchReport, CompileJob, JobResult, compile_one
from .compile import (
    WarmCompileResult,
    compile_lowered,
    warm_compile,
    warm_select,
)
from .fingerprint import (
    ArtifactKey,
    fingerprint_families,
    rule_fingerprint,
    ruleset_fingerprint,
)
from .faults import CircuitBreaker, FaultPlan, FaultSpec, InjectedFault
from .serve import RejectedError, Server, ServerClosed, ShedError
from .store import (
    ARTIFACT_FORMAT_VERSION,
    ArtifactStore,
    CompileArtifact,
    StoreStats,
)
from .router import Router, job_fingerprint, shape_signature
from .shm import (
    ShmCorruption,
    ShmRing,
    ShmRingSpec,
    ShmUnavailable,
    leaked_segments,
)
from .supervisor import (
    DeadlineExceeded,
    RemoteError,
    WorkerCrashed,
    WorkerInitFailed,
    WorkerPool,
)
from .chaos import SoakReport, random_fault_plan, run_soak

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "ArtifactKey",
    "ArtifactStore",
    "BatchCompiler",
    "BatchReport",
    "CircuitBreaker",
    "CompileArtifact",
    "CompileJob",
    "DeadlineExceeded",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "JobResult",
    "RejectedError",
    "RemoteError",
    "Router",
    "Server",
    "ServerClosed",
    "ShedError",
    "ShmCorruption",
    "ShmRing",
    "ShmRingSpec",
    "ShmUnavailable",
    "SoakReport",
    "StoreStats",
    "WarmCompileResult",
    "WorkerCrashed",
    "WorkerInitFailed",
    "WorkerPool",
    "compile_lowered",
    "compile_one",
    "fingerprint_families",
    "job_fingerprint",
    "leaked_segments",
    "random_fault_plan",
    "rule_fingerprint",
    "ruleset_fingerprint",
    "run_soak",
    "shape_signature",
    "warm_compile",
    "warm_select",
]
