"""Shape-bucketed micro-batching front end over supervised workers.

A serving tier sees a *mixed* stream: many apps, many input shapes,
one request at a time.  The batch-axis kernels
(:meth:`~repro.runtime.executor.CompiledPipeline.run_many`) only pay
off when same-shaped requests arrive together, and the shared-memory
transport (:mod:`repro.service.shm`) only sizes its slots sensibly
when a dispatch carries one shape signature.  :class:`Router` is the
piece that turns the mixed stream into that shape:

* every request is **bucketed** by ``(app fingerprint, input-shape
  signature, backend)``;
* each bucket **micro-batches**: it holds requests until it has
  ``max_batch`` of them or the oldest has waited ``flush_interval``
  seconds (the deadline-based flush), then dispatches the whole bucket
  as one :meth:`~repro.service.supervisor.WorkerPool.submit_many`
  batch — one batch-axis kernel call per serving bucket, tensors over
  shared memory;
* **admission control** bounds the total of queued + in-flight
  requests; beyond ``max_pending`` a submit raises the same
  :class:`~repro.service.serve.RejectedError` the thread-pool
  :class:`~repro.service.serve.Server` uses, so callers shed load the
  same way on either front end;
* per-bucket **p50/p99 latency and throughput** ride
  :meth:`Router.stats`, shaped alongside ``Server.stats`` /
  ``WorkerPool.stats`` so dashboards read all three the same way.

Lock discipline: the router's ``_mu`` is always *inner* — completion
callbacks fire under a pool's ``_mu`` and then take ``_mu``, so no
router method may call into a pool while holding ``_mu`` (the flusher
drains a bucket under ``_mu``, releases it, and only then dispatches).
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..runtime.executor import RequestError
from .batch import CompileJob
from .faults import FaultPlan
from .serve import RejectedError, ServerClosed
from .supervisor import WorkerPool

__all__ = ["Router", "job_fingerprint", "shape_signature"]


def job_fingerprint(job: CompileJob) -> str:
    """Stable short digest identifying one app/variant/params/backend."""
    blob = repr((job.app, job.variant, job.builder, job.params, job.backend))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def shape_signature(inputs: Optional[dict]) -> tuple:
    """The bucket-forming view of one request's inputs: sorted
    ``(name, dtype, shape)`` triples (non-array values by type name,
    ``()`` for a ``None`` request)."""
    if not isinstance(inputs, dict):
        return ()
    signature = []
    for name in sorted(inputs, key=repr):
        value = inputs[name]
        if isinstance(value, np.ndarray):
            signature.append((name, value.dtype.str, value.shape))
        else:
            signature.append((name, type(value).__name__, ()))
    return tuple(signature)


class _Entry:
    """One queued request: the caller's future plus flush metadata."""

    __slots__ = ("future", "inputs", "deadline", "idempotent", "queued_at")

    def __init__(self, inputs, deadline, idempotent, queued_at):
        self.future: "Future[np.ndarray]" = Future()
        self.inputs = inputs
        self.deadline = deadline
        self.idempotent = idempotent
        self.queued_at = queued_at


class _Bucket:
    """One ``(fingerprint, shape signature, backend)`` serving bucket.

    All mutable state is guarded by the router's ``_mu``.
    """

    __slots__ = (
        "key",
        "job_key",
        "queue",
        "latencies",
        "submitted",
        "completed",
        "failed",
        "rejected",
        "flushes",
        "largest_flush",
        "first_submit",
        "last_done",
    )

    def __init__(self, key: tuple, job_key: str, window: int) -> None:
        self.key = key
        self.job_key = job_key
        self.queue: Deque[_Entry] = deque()
        self.latencies: Deque[float] = deque(maxlen=window)
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.rejected = 0
        self.flushes = 0
        self.largest_flush = 0
        self.first_submit: Optional[float] = None
        self.last_done: Optional[float] = None


class Router:
    """Route a mixed request stream into micro-batched worker pools.

    Parameters
    ----------
    jobs:
        The serving catalog: one :class:`CompileJob` per app; one
        supervised :class:`WorkerPool` is spawned per distinct job.
    workers:
        Worker-process count **per pool** (default 2).
    backend:
        Execution backend inside the workers; defaults to each job's.
    cache_dir:
        Shared artifact-store root for worker warm starts.
    max_batch:
        Bucket flush threshold and largest batch per dispatch
        (default 8).
    flush_interval:
        Deadline-based flush: a non-empty bucket is dispatched once its
        oldest request has waited this long (seconds, default 0.005).
    max_pending:
        Admission bound on queued + in-flight requests across the
        whole router; beyond it :meth:`submit` raises
        :class:`~repro.service.serve.RejectedError`.
    transport / fault_plan / deadline / retries / heartbeat_interval /
    hang_grace / max_restarts / mp_context:
        Forwarded to every :class:`WorkerPool` (see there).
    latency_window:
        Per-bucket latency samples kept for the p50/p99 estimate
        (default 2048).
    """

    def __init__(
        self,
        jobs: Sequence[CompileJob],
        workers: int = 2,
        backend: Optional[str] = None,
        cache_dir: Optional[str] = None,
        max_batch: int = 8,
        flush_interval: float = 0.005,
        max_pending: Optional[int] = None,
        transport: str = "auto",
        fault_plan: Optional[FaultPlan] = None,
        deadline: Optional[float] = None,
        retries: int = 2,
        heartbeat_interval: float = 0.05,
        hang_grace: Optional[float] = None,
        max_restarts: int = 16,
        mp_context=None,
        latency_window: int = 2048,
    ) -> None:
        jobs = list(jobs)
        if not jobs:
            raise ValueError("a Router needs at least one job")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if flush_interval <= 0:
            raise ValueError("flush_interval must be > 0")
        self.max_batch = int(max_batch)
        self.flush_interval = float(flush_interval)
        self.max_pending = max_pending
        self.latency_window = int(latency_window)

        self._jobs: Dict[str, CompileJob] = {}
        self._pools: Dict[str, WorkerPool] = {}
        for job in jobs:
            key = job_fingerprint(job)
            if key in self._jobs:
                continue
            self._jobs[key] = job
            self._pools[key] = WorkerPool(
                job,
                workers=workers,
                backend=backend,
                cache_dir=cache_dir,
                fault_plan=fault_plan,
                retries=retries,
                deadline=deadline,
                heartbeat_interval=heartbeat_interval,
                hang_grace=hang_grace,
                max_restarts=max_restarts,
                transport=transport,
                batch_max=self.max_batch,
                mp_context=mp_context,
            )

        self._mu = threading.Lock()
        self._buckets: Dict[tuple, _Bucket] = {}  # guarded-by: _mu
        self._pending = 0  # guarded-by: _mu
        self._closed = False  # guarded-by: _mu
        self.submitted = 0  # guarded-by: _mu
        self.completed = 0  # guarded-by: _mu
        self.failed = 0  # guarded-by: _mu
        self.rejected = 0  # guarded-by: _mu

        self._wake = threading.Event()
        self._drained = threading.Event()
        self._flusher = threading.Thread(
            target=self._flush_loop, daemon=True, name="repro-router-flush"
        )
        self._flusher.start()

    # -- lifecycle -------------------------------------------------------------

    def close(self, timeout: float = 30.0) -> None:
        """Flush every bucket, drain the pools, shut down.  Idempotent."""
        with self._mu:
            self._closed = True
        self._wake.set()
        self._drained.wait(timeout)
        for pool in self._pools.values():
            pool.close(timeout=timeout)

    def __enter__(self) -> "Router":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- public API ------------------------------------------------------------

    def _job_key(self, job: Union[CompileJob, str]) -> str:
        key = job if isinstance(job, str) else job_fingerprint(job)
        if key not in self._pools:
            raise KeyError(f"job {job!r} is not in this router's catalog")
        return key

    def submit(
        self,
        job: Union[CompileJob, str],
        inputs: Optional[Dict[str, np.ndarray]],
        deadline: Optional[float] = None,
        idempotent: bool = True,
    ) -> "Future[np.ndarray]":
        """Enqueue one request into its bucket; resolves on flush+run.

        ``job`` is a catalog :class:`CompileJob` (or its fingerprint).
        Raises :class:`RejectedError` beyond ``max_pending`` and
        :class:`ServerClosed` after :meth:`close`.
        """
        job_key = self._job_key(job)
        now = time.monotonic()
        entry = _Entry(inputs, deadline, idempotent, now)
        with self._mu:
            if self._closed:
                raise ServerClosed("router is closed")
            bucket_key = (job_key, shape_signature(inputs))
            bucket = self._buckets.get(bucket_key)
            if bucket is None:
                bucket = _Bucket(
                    bucket_key + (self._pools[job_key].backend,),
                    job_key,
                    self.latency_window,
                )
                self._buckets[bucket_key] = bucket
            if (
                self.max_pending is not None
                and self._pending >= self.max_pending
            ):
                self.rejected += 1
                bucket.rejected += 1
                raise RejectedError(
                    f"admission queue full ({self.max_pending} pending)"
                )
            bucket.queue.append(entry)
            bucket.submitted += 1
            if bucket.first_submit is None:
                bucket.first_submit = now
            self.submitted += 1
            self._pending += 1
            full = len(bucket.queue) >= self.max_batch
        if full:
            self._wake.set()
        return entry.future

    def run(
        self,
        job: Union[CompileJob, str],
        inputs: Optional[Dict[str, np.ndarray]] = None,
        deadline: Optional[float] = None,
    ) -> np.ndarray:
        return self.submit(job, inputs, deadline=deadline).result()

    def run_many(
        self,
        job: Union[CompileJob, str],
        requests: Sequence[Optional[Dict[str, np.ndarray]]],
        deadline: Optional[float] = None,
        on_error: str = "raise",
    ) -> List[np.ndarray]:
        """Route a stream of requests; outputs in submission order.

        ``on_error="return"`` puts a
        :class:`~repro.runtime.executor.RequestError` at each failed
        index instead of raising on the first.
        """
        if on_error not in ("raise", "return"):
            raise ValueError(
                f"on_error must be 'raise' or 'return', got {on_error!r}"
            )
        futures = [
            self.submit(job, inputs, deadline=deadline) for inputs in requests
        ]
        results: List[np.ndarray] = []
        for index, future in enumerate(futures):
            try:
                results.append(future.result())
            except Exception as exc:
                if on_error == "raise":
                    raise
                results.append(RequestError(index, exc))
        return results

    def stats(self) -> Dict[str, object]:
        """Router counters, per-bucket latency/throughput, pool stats."""
        with self._mu:
            buckets = [
                self._bucket_stats_locked(bucket)
                for bucket in self._buckets.values()
            ]
            summary = {
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "rejected": self.rejected,
                "pending": self._pending,
                "closed": self._closed,
            }
        summary["buckets"] = buckets
        summary["jobs"] = {
            key: job.label for key, job in self._jobs.items()
        }
        summary["pools"] = {
            key: pool.stats() for key, pool in self._pools.items()
        }
        return summary

    def _bucket_stats_locked(self, bucket: _Bucket) -> Dict[str, object]:
        job_key, signature = bucket.key[0], bucket.key[1]
        latencies = np.asarray(bucket.latencies, dtype=np.float64)
        p50 = p99 = None
        if latencies.size:
            p50 = float(np.percentile(latencies, 50) * 1e3)
            p99 = float(np.percentile(latencies, 99) * 1e3)
        throughput = None
        if (
            bucket.completed
            and bucket.first_submit is not None
            and bucket.last_done is not None
            and bucket.last_done > bucket.first_submit
        ):
            throughput = bucket.completed / (
                bucket.last_done - bucket.first_submit
            )
        return {
            "job": self._jobs[job_key].label,
            "fingerprint": job_key,
            "signature": signature,
            "backend": bucket.key[2],
            "submitted": bucket.submitted,
            "completed": bucket.completed,
            "failed": bucket.failed,
            "rejected": bucket.rejected,
            "flushes": bucket.flushes,
            "largest_flush": bucket.largest_flush,
            "queued": len(bucket.queue),
            "p50_ms": p50,
            "p99_ms": p99,
            "throughput_rps": throughput,
        }

    # -- flushing --------------------------------------------------------------

    def _due_locked(self, now: float, closing: bool) -> List[_Bucket]:
        """Buckets whose queue must dispatch now: full, aged past the
        flush window, or a close is draining everything."""
        due = []
        for bucket in self._buckets.values():
            if not bucket.queue:
                continue
            if (
                closing
                or len(bucket.queue) >= self.max_batch
                or now - bucket.queue[0].queued_at >= self.flush_interval
            ):
                due.append(bucket)
        return due

    def _flush_loop(self) -> None:
        poll = max(self.flush_interval / 2.0, 0.0005)
        while True:
            self._wake.wait(timeout=poll)
            self._wake.clear()
            now = time.monotonic()
            with self._mu:
                closing = self._closed
                due = self._due_locked(now, closing)
                drained = [
                    (bucket, list(bucket.queue)) for bucket in due
                ]
                for bucket, entries in drained:
                    bucket.queue.clear()
                    bucket.flushes += 1
                    bucket.largest_flush = max(
                        bucket.largest_flush, len(entries)
                    )
            for bucket, entries in drained:
                self._dispatch(bucket, entries)
            if closing and not drained:
                with self._mu:
                    empty = all(
                        not bucket.queue for bucket in self._buckets.values()
                    )
                if empty:
                    break
        self._drained.set()

    def _dispatch(self, bucket: _Bucket, entries: List[_Entry]) -> None:
        """Hand one drained bucket to its pool (never under ``_mu``).

        Entries with distinct (deadline, idempotent) knobs become
        separate ``submit_many`` calls — the pool applies those
        per-batch.  A pool-side rejection or close fails the affected
        entries with the pool's typed error.
        """
        pool = self._pools[bucket.job_key]
        groups: Dict[Tuple, List[_Entry]] = {}
        for entry in entries:
            groups.setdefault((entry.deadline, entry.idempotent), []).append(
                entry
            )
        for (deadline, idempotent), group in groups.items():
            try:
                pool_futures = pool.submit_many(
                    [entry.inputs for entry in group],
                    deadline=deadline,
                    idempotent=idempotent,
                )
            except (RejectedError, ServerClosed) as exc:
                with self._mu:
                    self._pending -= len(group)
                    self.failed += len(group)
                    bucket.failed += len(group)
                    if isinstance(exc, RejectedError):
                        self.rejected += len(group)
                        bucket.rejected += len(group)
                for entry in group:
                    entry.future.set_exception(exc)
                continue
            for entry, pool_future in zip(group, pool_futures):
                pool_future.add_done_callback(
                    lambda pf, entry=entry, bucket=bucket: self._complete(
                        bucket, entry, pf
                    )
                )

    def _complete(self, bucket: _Bucket, entry: _Entry, pool_future) -> None:
        """Resolve one caller future from its pool future.

        Runs under the pool's ``_mu`` (supervisor thread) — it must
        only touch router state and the caller's future, never call
        back into any pool.
        """
        error = pool_future.exception()
        now = time.monotonic()
        with self._mu:
            self._pending -= 1
            if error is None:
                self.completed += 1
                bucket.completed += 1
                bucket.latencies.append(now - entry.queued_at)
                bucket.last_done = now
            else:
                self.failed += 1
                bucket.failed += 1
        if error is None:
            entry.future.set_result(pool_future.result())
        else:
            entry.future.set_exception(error)

    def __repr__(self) -> str:
        with self._mu:
            buckets = len(self._buckets)
            pending = self._pending
            completed = self.completed
        return (
            f"Router(jobs={len(self._jobs)}, buckets={buckets},"
            f" pending={pending}, completed={completed})"
        )
