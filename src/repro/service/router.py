"""Shape-bucketed micro-batching front end over supervised workers.

A serving tier sees a *mixed* stream: many apps, many input shapes,
one request at a time.  The batch-axis kernels
(:meth:`~repro.runtime.executor.CompiledPipeline.run_many`) only pay
off when same-shaped requests arrive together, and the shared-memory
transport (:mod:`repro.service.shm`) only sizes its slots sensibly
when a dispatch carries one shape signature.  :class:`Router` is the
piece that turns the mixed stream into that shape:

* every request is **bucketed** by ``(app fingerprint, input-shape
  signature, backend)``;
* each bucket **micro-batches**: it holds requests until it has
  ``max_batch`` of them or the oldest has waited ``flush_interval``
  seconds (the deadline-based flush), then dispatches the whole bucket
  as one :meth:`~repro.service.supervisor.WorkerPool.submit_many`
  batch — one batch-axis kernel call per serving bucket, tensors over
  shared memory;
* every request carries a wall-clock **deadline budget** measured from
  submission: queue wait, bucket flush, pool dispatch, and worker
  execution all decrement the same budget, and a request whose budget
  expires while still bucketed (or still queued in the pool) fails
  fast with :class:`~repro.service.supervisor.DeadlineExceeded`
  without ever occupying a worker;
* **admission control** is layered: the static ``max_pending`` bound
  (same :class:`~repro.service.serve.RejectedError` contract as the
  thread-pool :class:`~repro.service.serve.Server`), a per-bucket
  depth cap, and CoDel-style queue-sojourn shedding — when a bucket's
  head-of-queue wait stays over ``shed_target`` for ``shed_interval``,
  incoming best-effort traffic is shed with a typed
  :class:`~repro.service.serve.ShedError` until the queue decongests.
  Two priority lanes (``"interactive"`` / ``"best-effort"``) keep
  interactive goodput near capacity under sustained overload:
  interactive arrivals may evict the newest queued best-effort entry
  when the bucket is full, and interactive entries always flush first;
* per-bucket **p50/p99 latency and throughput** ride
  :meth:`Router.stats`, shaped alongside ``Server.stats`` /
  ``WorkerPool.stats`` so dashboards read all three the same way.

Lifecycle verbs: :meth:`Router.drain` stops admission, flushes every
bucket, and completes all in-flight work before closing (outstanding
futures always reach a terminal state); :meth:`Router.close` drains
with a timeout and then turns forceful, failing whatever is left with
:class:`~repro.service.serve.ServerClosed`;
:meth:`Router.rolling_restart` replaces every pool's workers one at a
time with zero dropped requests.

Lock discipline: the router's ``_mu`` is always *inner* — completion
callbacks fire under a pool's ``_mu`` and then take ``_mu``, so no
router method may call into a pool while holding ``_mu`` (the flusher
drains a bucket under ``_mu``, releases it, and only then dispatches).
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..runtime.executor import RequestError
from .batch import CompileJob
from .faults import FaultPlan
from .serve import RejectedError, ServerClosed, ShedError
from .supervisor import DeadlineExceeded, WorkerPool

__all__ = ["Router", "job_fingerprint", "shape_signature"]


def job_fingerprint(job: CompileJob) -> str:
    """Stable short digest identifying one app/variant/params/backend."""
    blob = repr((job.app, job.variant, job.builder, job.params, job.backend))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def shape_signature(inputs: Optional[dict]) -> tuple:
    """The bucket-forming view of one request's inputs: sorted
    ``(name, dtype, shape)`` triples (non-array values by type name,
    ``()`` for a ``None`` request)."""
    if not isinstance(inputs, dict):
        return ()
    signature = []
    for name in sorted(inputs, key=repr):
        value = inputs[name]
        if isinstance(value, np.ndarray):
            signature.append((name, value.dtype.str, value.shape))
        else:
            signature.append((name, type(value).__name__, ()))
    return tuple(signature)


class _Entry:
    """One queued request: the caller's future plus flush metadata."""

    __slots__ = (
        "future",
        "inputs",
        "expires_at",
        "idempotent",
        "queued_at",
        "lane",
    )

    def __init__(self, inputs, expires_at, idempotent, queued_at, lane):
        self.future: "Future[np.ndarray]" = Future()
        self.inputs = inputs
        self.expires_at = expires_at  # absolute monotonic expiry, or None
        self.idempotent = idempotent
        self.queued_at = queued_at
        self.lane = lane  # 0 = interactive, 1 = best-effort


class _Bucket:
    """One ``(fingerprint, shape signature, backend)`` serving bucket.

    All mutable state is guarded by the router's ``_mu``.  The queue is
    two priority lanes — interactive entries flush first and may evict
    queued best-effort entries when the bucket is at its depth cap.
    """

    __slots__ = (
        "key",
        "job_key",
        "lanes",
        "latencies",
        "submitted",
        "completed",
        "failed",
        "rejected",
        "shed",
        "expired",
        "flushes",
        "largest_flush",
        "first_submit",
        "last_done",
        "above_since",
        "shedding",
    )

    def __init__(self, key: tuple, job_key: str, window: int) -> None:
        self.key = key
        self.job_key = job_key
        self.lanes: Tuple[Deque[_Entry], Deque[_Entry]] = (deque(), deque())
        self.latencies: Deque[float] = deque(maxlen=window)
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.rejected = 0
        self.shed = 0
        self.expired = 0
        self.flushes = 0
        self.largest_flush = 0
        self.first_submit: Optional[float] = None
        self.last_done: Optional[float] = None
        self.above_since: Optional[float] = None  # CoDel: first over-target
        self.shedding = False  # CoDel: shedding best-effort arrivals

    def qlen(self) -> int:
        return len(self.lanes[0]) + len(self.lanes[1])

    def head_queued_at(self) -> Optional[float]:
        """Arrival time of the oldest queued entry across both lanes."""
        heads = [lane[0].queued_at for lane in self.lanes if lane]
        return min(heads) if heads else None

    def take(self, limit: int) -> List[_Entry]:
        """Pop up to ``limit`` entries for dispatch, interactive first,
        FIFO within each lane."""
        taken: List[_Entry] = []
        for lane in self.lanes:
            while lane and len(taken) < limit:
                taken.append(lane.popleft())
            if len(taken) >= limit:
                break
        return taken


class Router:
    """Route a mixed request stream into micro-batched worker pools.

    Parameters
    ----------
    jobs:
        The serving catalog: one :class:`CompileJob` per app; one
        supervised :class:`WorkerPool` is spawned per distinct job.
    workers:
        Worker-process count **per pool** (default 2).
    backend:
        Execution backend inside the workers; defaults to each job's.
    cache_dir:
        Shared artifact-store root for worker warm starts.
    max_batch:
        Bucket flush threshold and largest batch per dispatch
        (default 8).
    flush_interval:
        Deadline-based flush: a non-empty bucket is dispatched once its
        oldest request has waited this long (seconds, default 0.005).
    max_pending:
        Admission bound on queued + in-flight requests across the
        whole router; beyond it :meth:`submit` raises
        :class:`~repro.service.serve.RejectedError`.
    deadline:
        Default per-request wall-clock budget (seconds) measured from
        submission; ``None`` disables.  Overridable per :meth:`submit`.
        The budget counts router queue wait, flush, pool dispatch, and
        worker execution; an expired request fails fast with
        :class:`~repro.service.supervisor.DeadlineExceeded` and never
        occupies a worker.
    bucket_cap:
        Per-bucket queue-depth cap.  A full bucket sheds incoming
        best-effort entries with :class:`ShedError`; an interactive
        arrival instead evicts the newest queued best-effort entry
        when one exists.  ``None`` (default) disables.
    shed_target / shed_interval:
        CoDel-style sojourn shedding: once a bucket's head-of-queue
        wait has stayed at or above ``shed_target`` seconds for
        ``shed_interval`` seconds, incoming best-effort entries are
        shed until the head wait drops back under target.  ``None``
        target (default) disables.
    max_inflight:
        Per-job bound on requests handed to a pool but not yet
        resolved.  This is the backpressure signal the shedder needs:
        without it the flusher would happily move an unbounded backlog
        into the pool queue and bucket sojourn would never reflect
        overload.  Default ``workers * max_batch * 2``.
    record_events:
        Forwarded to every pool: keep per-request lifecycle event logs
        (see :meth:`WorkerPool.event_log`) for invariant checking.
    transport / fault_plan / retries / heartbeat_interval /
    hang_grace / max_restarts / mp_context:
        Forwarded to every :class:`WorkerPool` (see there).
    latency_window:
        Per-bucket latency samples kept for the p50/p99 estimate
        (default 2048).
    """

    #: submit() priority classes, in flush order
    PRIORITIES = ("interactive", "best-effort")

    def __init__(
        self,
        jobs: Sequence[CompileJob],
        workers: int = 2,
        backend: Optional[str] = None,
        cache_dir: Optional[str] = None,
        max_batch: int = 8,
        flush_interval: float = 0.005,
        max_pending: Optional[int] = None,
        transport: str = "auto",
        fault_plan: Optional[FaultPlan] = None,
        deadline: Optional[float] = None,
        retries: int = 2,
        heartbeat_interval: float = 0.05,
        hang_grace: Optional[float] = None,
        max_restarts: int = 16,
        mp_context=None,
        latency_window: int = 2048,
        bucket_cap: Optional[int] = None,
        shed_target: Optional[float] = None,
        shed_interval: float = 0.1,
        max_inflight: Optional[int] = None,
        record_events: bool = False,
    ) -> None:
        jobs = list(jobs)
        if not jobs:
            raise ValueError("a Router needs at least one job")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if flush_interval <= 0:
            raise ValueError("flush_interval must be > 0")
        if bucket_cap is not None and bucket_cap < 1:
            raise ValueError("bucket_cap must be >= 1")
        if shed_target is not None and shed_target <= 0:
            raise ValueError("shed_target must be > 0")
        if shed_interval <= 0:
            raise ValueError("shed_interval must be > 0")
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.max_batch = int(max_batch)
        self.flush_interval = float(flush_interval)
        self.max_pending = max_pending
        self.deadline = deadline
        self.bucket_cap = bucket_cap
        self.shed_target = shed_target
        self.shed_interval = float(shed_interval)
        self.max_inflight = (
            int(max_inflight)
            if max_inflight is not None
            else int(workers) * self.max_batch * 2
        )
        self.latency_window = int(latency_window)

        self._jobs: Dict[str, CompileJob] = {}
        self._pools: Dict[str, WorkerPool] = {}
        for job in jobs:
            key = job_fingerprint(job)
            if key in self._jobs:
                continue
            self._jobs[key] = job
            self._pools[key] = WorkerPool(
                job,
                workers=workers,
                backend=backend,
                cache_dir=cache_dir,
                fault_plan=fault_plan,
                retries=retries,
                heartbeat_interval=heartbeat_interval,
                hang_grace=hang_grace,
                max_restarts=max_restarts,
                transport=transport,
                batch_max=self.max_batch,
                mp_context=mp_context,
                record_events=record_events,
            )

        self._mu = threading.Lock()
        self._buckets: Dict[tuple, _Bucket] = {}  # guarded-by: _mu
        self._inflight: Dict[str, int] = {}  # guarded-by: _mu
        self._pending = 0  # guarded-by: _mu
        self._closed = False  # guarded-by: _mu
        self.offered = 0  # guarded-by: _mu
        self.submitted = 0  # guarded-by: _mu
        self.completed = 0  # guarded-by: _mu
        self.failed = 0  # guarded-by: _mu
        self.rejected = 0  # guarded-by: _mu
        self.shed = 0  # guarded-by: _mu
        self.expired = 0  # guarded-by: _mu

        self._wake = threading.Event()
        self._drained = threading.Event()
        self._flusher = threading.Thread(
            target=self._flush_loop, daemon=True, name="repro-router-flush"
        )
        self._flusher.start()

    # -- lifecycle -------------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admission, flush every bucket, complete in-flight work,
        and shut the pools down.

        The graceful lifecycle verb: every future handed out before the
        drain reaches its normal terminal state (result, typed error,
        or expiry).  Returns ``True`` once everything drained within
        ``timeout`` (``None`` waits indefinitely), ``False`` otherwise.
        Idempotent, and safe to follow with :meth:`close`.
        """
        start = time.monotonic()
        with self._mu:
            self._closed = True
        self._wake.set()
        ok = self._drained.wait(timeout)
        for pool in self._pools.values():
            remaining = None
            if timeout is not None:
                remaining = max(0.0, timeout - (time.monotonic() - start))
            ok = pool.drain(remaining) and ok
        return ok

    def close(self, timeout: float = 30.0) -> None:
        """Flush every bucket, drain the pools, shut down.  Idempotent.

        If the drain does not finish within ``timeout`` the close turns
        forceful: entries still bucketed are failed with
        :class:`~repro.service.serve.ServerClosed`, and each pool's
        :meth:`~repro.service.supervisor.WorkerPool.close` applies the
        same guarantee to anything already dispatched — no future is
        ever left unresolved.
        """
        with self._mu:
            self._closed = True
        self._wake.set()
        if not self._drained.wait(timeout):
            stranded: List[_Entry] = []
            with self._mu:
                for bucket in self._buckets.values():
                    count = 0
                    for lane in bucket.lanes:
                        stranded.extend(lane)
                        count += len(lane)
                        lane.clear()
                    bucket.failed += count
                self._pending -= len(stranded)
                self.failed += len(stranded)
            error = ServerClosed("router closed before completion")
            for entry in stranded:
                entry.future.set_exception(error)
            self._wake.set()
            self._drained.wait(10.0)
        for pool in self._pools.values():
            pool.close(timeout=timeout)

    def rolling_restart(self, timeout: float = 120.0) -> int:
        """Rolling-restart every pool's workers, one pool at a time.

        Serving continues throughout; returns the total number of
        workers replaced.  See
        :meth:`~repro.service.supervisor.WorkerPool.rolling_restart`.
        """
        replaced = 0
        for pool in self._pools.values():
            replaced += pool.rolling_restart(timeout=timeout)
        return replaced

    def pools(self) -> Dict[str, WorkerPool]:
        """The live pools by job fingerprint (snapshot copy)."""
        return dict(self._pools)

    def __enter__(self) -> "Router":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- public API ------------------------------------------------------------

    def _job_key(self, job: Union[CompileJob, str]) -> str:
        key = job if isinstance(job, str) else job_fingerprint(job)
        if key not in self._pools:
            raise KeyError(f"job {job!r} is not in this router's catalog")
        return key

    def submit(
        self,
        job: Union[CompileJob, str],
        inputs: Optional[Dict[str, np.ndarray]],
        deadline: Optional[float] = None,
        idempotent: bool = True,
        priority: str = "interactive",
    ) -> "Future[np.ndarray]":
        """Enqueue one request into its bucket; resolves on flush+run.

        ``job`` is a catalog :class:`CompileJob` (or its fingerprint).
        ``deadline`` is a wall-clock budget from now (falls back to the
        router default); ``priority`` is one of :attr:`PRIORITIES` —
        best-effort entries are the ones adaptive shedding drops first.
        Raises :class:`RejectedError` beyond ``max_pending``,
        :class:`ShedError` when overload control sheds the request, and
        :class:`ServerClosed` after :meth:`close`.
        """
        job_key = self._job_key(job)
        try:
            lane = self.PRIORITIES.index(priority)
        except ValueError:
            raise ValueError(
                f"priority must be one of {self.PRIORITIES},"
                f" got {priority!r}"
            ) from None
        now = time.monotonic()
        budget = deadline if deadline is not None else self.deadline
        entry = _Entry(
            inputs,
            now + budget if budget is not None else None,
            idempotent,
            now,
            lane,
        )
        evicted: Optional[_Entry] = None
        with self._mu:
            if self._closed:
                raise ServerClosed("router is closed")
            self.offered += 1
            bucket_key = (job_key, shape_signature(inputs))
            bucket = self._buckets.get(bucket_key)
            if bucket is None:
                bucket = _Bucket(
                    bucket_key + (self._pools[job_key].backend,),
                    job_key,
                    self.latency_window,
                )
                self._buckets[bucket_key] = bucket
            if (
                self.max_pending is not None
                and self._pending >= self.max_pending
            ):
                self.rejected += 1
                bucket.rejected += 1
                raise RejectedError(
                    f"admission queue full ({self.max_pending} pending)"
                )
            if bucket.shedding and lane == 1:
                self.shed += 1
                bucket.shed += 1
                raise ShedError(
                    "bucket head-of-queue wait over target; shedding"
                    " best-effort load"
                )
            if (
                self.bucket_cap is not None
                and bucket.qlen() >= self.bucket_cap
            ):
                if lane == 0 and bucket.lanes[1]:
                    # interactive displaces the newest best-effort entry
                    evicted = bucket.lanes[1].pop()
                    self.shed += 1
                    bucket.shed += 1
                    self._pending -= 1
                else:
                    self.shed += 1
                    bucket.shed += 1
                    raise ShedError(
                        f"bucket queue full ({self.bucket_cap} queued)"
                    )
            bucket.lanes[lane].append(entry)
            bucket.submitted += 1
            if bucket.first_submit is None:
                bucket.first_submit = now
            self.submitted += 1
            self._pending += 1
            full = bucket.qlen() >= self.max_batch
        if evicted is not None:
            evicted.future.set_exception(
                ShedError(
                    "evicted from a full bucket by an interactive request"
                )
            )
        if full:
            self._wake.set()
        return entry.future

    def run(
        self,
        job: Union[CompileJob, str],
        inputs: Optional[Dict[str, np.ndarray]] = None,
        deadline: Optional[float] = None,
        priority: str = "interactive",
    ) -> np.ndarray:
        return self.submit(
            job, inputs, deadline=deadline, priority=priority
        ).result()

    def run_many(
        self,
        job: Union[CompileJob, str],
        requests: Sequence[Optional[Dict[str, np.ndarray]]],
        deadline: Optional[float] = None,
        on_error: str = "raise",
        priority: str = "interactive",
    ) -> List[np.ndarray]:
        """Route a stream of requests; outputs in submission order.

        ``on_error="return"`` puts a
        :class:`~repro.runtime.executor.RequestError` at each failed
        index instead of raising on the first — including requests the
        admission layer rejected or shed mid-stream.  With
        ``on_error="raise"`` a mid-stream rejection first awaits every
        already-submitted future (their work is the router's to finish
        either way), then re-raises the admission error — submitted
        work is never silently abandoned.
        """
        if on_error not in ("raise", "return"):
            raise ValueError(
                f"on_error must be 'raise' or 'return', got {on_error!r}"
            )
        items: List[object] = []
        for index, inputs in enumerate(requests):
            try:
                items.append(
                    self.submit(
                        job, inputs, deadline=deadline, priority=priority
                    )
                )
            except (RejectedError, ServerClosed) as exc:
                if on_error == "return":
                    items.append(RequestError(index, exc))
                    continue
                for item in items:
                    if isinstance(item, Future):
                        try:
                            item.result()
                        except Exception:
                            pass
                raise
        results: List[np.ndarray] = []
        for index, item in enumerate(items):
            if isinstance(item, RequestError):
                results.append(item)
                continue
            try:
                results.append(item.result())
            except Exception as exc:
                if on_error == "raise":
                    raise
                results.append(RequestError(index, exc))
        return results

    def stats(self) -> Dict[str, object]:
        """Router counters, per-bucket latency/throughput, pool stats.

        Conservation invariant (checked by the chaos harness): at
        quiescence ``offered == completed + failed + rejected + shed +
        expired`` and ``pending == 0``.
        """
        with self._mu:
            buckets = [
                self._bucket_stats_locked(bucket)
                for bucket in self._buckets.values()
            ]
            summary = {
                "offered": self.offered,
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "rejected": self.rejected,
                "shed": self.shed,
                "expired": self.expired,
                "pending": self._pending,
                "closed": self._closed,
            }
        summary["buckets"] = buckets
        summary["jobs"] = {
            key: job.label for key, job in self._jobs.items()
        }
        summary["pools"] = {
            key: pool.stats() for key, pool in self._pools.items()
        }
        return summary

    def _bucket_stats_locked(self, bucket: _Bucket) -> Dict[str, object]:
        job_key, signature = bucket.key[0], bucket.key[1]
        latencies = np.asarray(bucket.latencies, dtype=np.float64)
        p50 = p99 = None
        if latencies.size:
            p50 = float(np.percentile(latencies, 50) * 1e3)
            p99 = float(np.percentile(latencies, 99) * 1e3)
        throughput = None
        if (
            bucket.completed
            and bucket.first_submit is not None
            and bucket.last_done is not None
            and bucket.last_done > bucket.first_submit
        ):
            throughput = bucket.completed / (
                bucket.last_done - bucket.first_submit
            )
        return {
            "job": self._jobs[job_key].label,
            "fingerprint": job_key,
            "signature": signature,
            "backend": bucket.key[2],
            "submitted": bucket.submitted,
            "completed": bucket.completed,
            "failed": bucket.failed,
            "rejected": bucket.rejected,
            "shed": bucket.shed,
            "expired": bucket.expired,
            "flushes": bucket.flushes,
            "largest_flush": bucket.largest_flush,
            "queued": bucket.qlen(),
            "queued_interactive": len(bucket.lanes[0]),
            "queued_best_effort": len(bucket.lanes[1]),
            "shedding": bucket.shedding,
            "inflight": self._inflight.get(job_key, 0),
            "p50_ms": p50,
            "p99_ms": p99,
            "throughput_rps": throughput,
        }

    # -- flushing --------------------------------------------------------------

    def _expire_bucket_locked(
        self, bucket: _Bucket, now: float
    ) -> List[_Entry]:
        """Pull every entry whose budget is spent out of the bucket.

        Their futures are resolved by the caller *outside* ``_mu`` —
        a done callback may grab arbitrary user locks.
        """
        expired: List[_Entry] = []
        for lane in bucket.lanes:
            if not any(
                entry.expires_at is not None and entry.expires_at <= now
                for entry in lane
            ):
                continue
            keep: List[_Entry] = []
            for entry in lane:
                if entry.expires_at is not None and entry.expires_at <= now:
                    expired.append(entry)
                else:
                    keep.append(entry)
            lane.clear()
            lane.extend(keep)
        if expired:
            self._pending -= len(expired)
            self.expired += len(expired)
            bucket.expired += len(expired)
        return expired

    def _shed_control_locked(self, bucket: _Bucket, now: float) -> None:
        """CoDel-style state update: head sojourn at/over target for a
        full interval turns shedding on; dropping under target turns it
        off (and resets the interval clock)."""
        if self.shed_target is None:
            return
        head = bucket.head_queued_at()
        if head is None or now - head < self.shed_target:
            bucket.above_since = None
            bucket.shedding = False
            return
        if bucket.above_since is None:
            bucket.above_since = now
        elif now - bucket.above_since >= self.shed_interval:
            bucket.shedding = True

    def _dispatch_budget_locked(self, job_key: str) -> int:
        return self.max_inflight - self._inflight.get(job_key, 0)

    def _due_locked(self, now: float, closing: bool) -> List[_Bucket]:
        """Buckets whose queue must dispatch now: full, aged past the
        flush window, or a close is draining everything — and whose
        pool still has in-flight budget (backpressure otherwise holds
        the queue here, where sojourn shedding can see it)."""
        due = []
        for bucket in self._buckets.values():
            if not bucket.qlen():
                continue
            if self._dispatch_budget_locked(bucket.job_key) <= 0:
                continue
            head = bucket.head_queued_at()
            if (
                closing
                or bucket.qlen() >= self.max_batch
                or now - head >= self.flush_interval
            ):
                due.append(bucket)
        return due

    def _flush_loop(self) -> None:
        poll = max(self.flush_interval / 2.0, 0.0005)
        while True:
            self._wake.wait(timeout=poll)
            self._wake.clear()
            now = time.monotonic()
            expired_entries: List[_Entry] = []
            with self._mu:
                closing = self._closed
                for bucket in self._buckets.values():
                    expired_entries.extend(
                        self._expire_bucket_locked(bucket, now)
                    )
                    self._shed_control_locked(bucket, now)
                due = self._due_locked(now, closing)
                drained = []
                taken: Dict[str, int] = {}
                for bucket in due:
                    budget = self._dispatch_budget_locked(
                        bucket.job_key
                    ) - taken.get(bucket.job_key, 0)
                    entries = bucket.take(budget) if budget > 0 else []
                    if not entries:
                        continue
                    taken[bucket.job_key] = (
                        taken.get(bucket.job_key, 0) + len(entries)
                    )
                    bucket.flushes += 1
                    bucket.largest_flush = max(
                        bucket.largest_flush, len(entries)
                    )
                    drained.append((bucket, entries))
            for entry in expired_entries:
                entry.future.set_exception(
                    DeadlineExceeded(
                        "request budget expired before its bucket flushed"
                    )
                )
            for bucket, entries in drained:
                self._dispatch(bucket, entries)
            if closing and not drained:
                with self._mu:
                    empty = all(
                        not bucket.qlen()
                        for bucket in self._buckets.values()
                    )
                if empty:
                    break
        self._drained.set()

    def _dispatch(self, bucket: _Bucket, entries: List[_Entry]) -> None:
        """Hand one drained bucket to its pool (never under ``_mu``).

        Entries are grouped by idempotence (a pool batch carries one
        flag); each request's absolute expiry rides along, so budget
        already spent in the router keeps counting in the pool.  A
        pool-side rejection or close fails the affected entries with
        the pool's typed error.
        """
        pool = self._pools[bucket.job_key]
        groups: Dict[bool, List[_Entry]] = {}
        for entry in entries:
            groups.setdefault(entry.idempotent, []).append(entry)
        for idempotent, group in groups.items():
            with self._mu:
                self._inflight[bucket.job_key] = (
                    self._inflight.get(bucket.job_key, 0) + len(group)
                )
            try:
                pool_futures = pool.submit_many(
                    [entry.inputs for entry in group],
                    idempotent=idempotent,
                    expires_at=[entry.expires_at for entry in group],
                )
            except (RejectedError, ServerClosed) as exc:
                with self._mu:
                    self._inflight[bucket.job_key] -= len(group)
                    self._pending -= len(group)
                    self.failed += len(group)
                    bucket.failed += len(group)
                    if isinstance(exc, RejectedError):
                        self.rejected += len(group)
                        bucket.rejected += len(group)
                for entry in group:
                    entry.future.set_exception(exc)
                continue
            for entry, pool_future in zip(group, pool_futures):
                pool_future.add_done_callback(
                    lambda pf, entry=entry, bucket=bucket: self._complete(
                        bucket, entry, pf
                    )
                )

    def _complete(self, bucket: _Bucket, entry: _Entry, pool_future) -> None:
        """Resolve one caller future from its pool future.

        Runs under the pool's ``_mu`` (supervisor thread) — it must
        only touch router state and the caller's future, never call
        back into any pool.
        """
        error = pool_future.exception()
        now = time.monotonic()
        with self._mu:
            self._pending -= 1
            self._inflight[bucket.job_key] -= 1
            if error is None:
                self.completed += 1
                bucket.completed += 1
                bucket.latencies.append(now - entry.queued_at)
                bucket.last_done = now
            elif isinstance(error, DeadlineExceeded):
                self.expired += 1
                bucket.expired += 1
            else:
                self.failed += 1
                bucket.failed += 1
        # in-flight budget freed: the flusher may owe a deferred dispatch
        self._wake.set()
        if error is None:
            entry.future.set_result(pool_future.result())
        else:
            entry.future.set_exception(error)

    def __repr__(self) -> str:
        with self._mu:
            buckets = len(self._buckets)
            pending = self._pending
            completed = self.completed
        return (
            f"Router(jobs={len(self._jobs)}, buckets={buckets},"
            f" pending={pending}, completed={completed})"
        )
