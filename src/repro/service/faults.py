"""Deterministic, seed-driven fault injection for the serving tier.

Every recovery path in the service layer — worker restart, request
retry, circuit-breaker degradation, artifact quarantine — is only
trustworthy if the failure that exercises it is *reproducible*.  This
module provides that: a :class:`FaultPlan` is a picklable, seeded
description of which faults fire at which visits to which runtime
seams, and two runs with the same plan and the same visit sequence
inject exactly the same faults.

The runtime seams call :func:`repro.runtime.faultpoints.fire` (a no-op
by default); :func:`install` hooks the plan into it for this process.
Worker processes re-install the plan themselves
(:mod:`repro.service.supervisor` passes it down), with a *scope* that
records the worker id and incarnation — so a spec can target "the
first life of any worker" and a restarted worker does not re-fire it.

Fault modes
-----------

======================  ==============  ==================================
mode                    default site    effect when it fires
======================  ==============  ==================================
``raise-in-kernel``     kernel.compile  raises :class:`InjectedKernelError`
``hang-kernel``         kernel.compile  sleeps ``seconds`` (default 30)
``kill-worker``         kernel.compile  ``os._exit(KILL_EXIT_CODE)``
``alloc-fail``          arena.alloc     raises :class:`InjectedAllocFailure`
                                        (a ``MemoryError``)
``corrupt-artifact``    store.read      deterministically flips bytes of
                                        the file about to be read
``slow-io``             store.read      sleeps ``seconds`` (default 0.05)
``io-error``            store.read      raises :class:`InjectedIOError`
                                        (an ``OSError``; the store's
                                        bounded retry absorbs transients)
``corrupt-shm-slot``    shm.read        deterministically flips bytes of
                                        the shared-memory frame being
                                        read, after the reader mapped it
                                        but before its CRC check — a
                                        checksummed ring must reject it
======================  ==============  ==================================

Example::

    from repro.service import faults
    from repro.service.faults import FaultPlan, FaultSpec

    plan = FaultPlan(seed=7, specs=[
        FaultSpec("raise-in-kernel", rate=0.10),       # 10% of visits
        FaultSpec("kill-worker", visits=(2,),          # 3rd kernel call,
                  scope={"incarnation": 0}),           # original workers only
    ])
    with faults.active(plan):
        server.run_many(requests)          # recovery paths exercised
    print(plan.stats())                    # what actually fired
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..runtime import faultpoints

#: exit status used by an injected worker kill — distinguishable from a
#: real segfault (negative signal codes) and from a clean exit (0)
KILL_EXIT_CODE = 66

MODES = (
    "raise-in-kernel",
    "hang-kernel",
    "kill-worker",
    "alloc-fail",
    "corrupt-artifact",
    "slow-io",
    "io-error",
    "corrupt-shm-slot",
)

#: where each mode attaches unless the spec names a site explicitly
DEFAULT_SITES = {
    "raise-in-kernel": "kernel.compile",
    "hang-kernel": "kernel.compile",
    "kill-worker": "kernel.compile",
    "alloc-fail": "arena.alloc",
    "corrupt-artifact": "store.read",
    "slow-io": "store.read",
    "io-error": "store.read",
    "corrupt-shm-slot": "shm.read",
}

#: per-mode default sleep for the time-based faults
DEFAULT_SECONDS = {"hang-kernel": 30.0, "slow-io": 0.05}


class InjectedFault(RuntimeError):
    """Base class of every error raised by an injected fault."""


class InjectedKernelError(InjectedFault):
    """An injected in-kernel failure (``raise-in-kernel``)."""


class InjectedAllocFailure(InjectedFault, MemoryError):
    """An injected allocation failure (``alloc-fail``)."""


class InjectedIOError(InjectedFault, OSError):
    """An injected (transient) IO error (``io-error``)."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault: a mode, where it attaches, and when it fires.

    ``visits`` pins firing to exact visit indices of the site (0-based,
    counted per spec) — the precise form tests want.  Without it,
    ``rate`` is the per-visit firing probability, decided by a seeded
    hash so the pattern is identical on every run.  ``max_fires`` caps
    total fires either way.  ``scope`` restricts the spec to processes
    whose install-time scope matches every given key (e.g.
    ``{"worker": 0}`` or ``{"incarnation": 0}``).
    """

    mode: str
    site: Optional[str] = None
    rate: float = 1.0
    visits: Optional[Tuple[int, ...]] = None
    max_fires: Optional[int] = None
    seconds: Optional[float] = None
    scope: Optional[dict] = None

    def __post_init__(self):
        if self.mode not in MODES:
            raise ValueError(
                f"unknown fault mode {self.mode!r}; expected one of {MODES}"
            )
        if self.visits is not None:
            object.__setattr__(
                self, "visits", tuple(int(v) for v in self.visits)
            )

    @property
    def resolved_site(self) -> str:
        return self.site or DEFAULT_SITES[self.mode]

    @property
    def resolved_seconds(self) -> float:
        if self.seconds is not None:
            return self.seconds
        return DEFAULT_SECONDS.get(self.mode, 0.05)

    @property
    def label(self) -> str:
        """A compact one-line description for soak reports and logs."""
        bits = [f"{self.mode}@{self.resolved_site}"]
        if self.visits is not None:
            bits.append(f"visits={list(self.visits)}")
        else:
            bits.append(f"rate={self.rate:g}")
        if self.max_fires is not None:
            bits.append(f"max_fires={self.max_fires}")
        if self.mode in DEFAULT_SECONDS:
            bits.append(f"seconds={self.resolved_seconds:g}")
        if self.scope:
            bits.append(f"scope={self.scope}")
        return " ".join(bits)


class FaultPlan:
    """A seeded, reproducible set of :class:`FaultSpec` injections.

    Picklable (it crosses the process boundary into supervised
    workers); visit counters and the fire log are per-process state and
    reset on unpickle, so every worker incarnation starts from visit 0
    — which is what makes restarts deterministic.
    """

    def __init__(self, seed: int = 0, specs: Sequence[FaultSpec] = ()) -> None:
        self.seed = int(seed)
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise TypeError(f"expected FaultSpec, got {type(spec)!r}")
        self._reset_state()

    def _reset_state(self) -> None:
        # construction / unpickle time: the plan is not yet visible to
        # other threads, so the guarded fields may be seeded unlocked
        self._lock = threading.Lock()
        # guarded-by: _lock
        self._visits = [0] * len(self.specs)  # analysis: ignore[guarded-by]
        # guarded-by: _lock
        self._fires = [0] * len(self.specs)  # analysis: ignore[guarded-by]
        #: every fault that fired: (site, mode, visit index)
        # guarded-by: _lock
        self.log: List[Tuple[str, str, int]] = []  # analysis: ignore[guarded-by]

    def __getstate__(self):
        return {"seed": self.seed, "specs": self.specs}

    def __setstate__(self, state):
        self.seed = state["seed"]
        self.specs = state["specs"]
        self._reset_state()

    def __repr__(self) -> str:
        with self._lock:
            fired = sum(self._fires)
        return (
            f"FaultPlan(seed={self.seed}, specs={len(self.specs)},"
            f" fired={fired})"
        )

    # -- firing decision -----------------------------------------------------

    def _fraction(self, index: int, visit: int) -> float:
        """A stable pseudo-random fraction in [0, 1) for one visit."""
        digest = hashlib.sha256(
            f"{self.seed}:{index}:{visit}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2.0**64

    def fire(
        self, site: str, scope: Optional[dict] = None, **context
    ) -> None:
        """Visit ``site``; execute every matching spec that decides to fire."""
        for index, spec in enumerate(self.specs):
            if spec.resolved_site != site:
                continue
            if spec.scope:
                probe = scope or {}
                if any(probe.get(k) != v for k, v in spec.scope.items()):
                    continue
            with self._lock:
                visit = self._visits[index]
                self._visits[index] += 1
                if (
                    spec.max_fires is not None
                    and self._fires[index] >= spec.max_fires
                ):
                    continue
                if spec.visits is not None:
                    should = visit in spec.visits
                else:
                    should = (
                        spec.rate >= 1.0
                        or self._fraction(index, visit) < spec.rate
                    )
                if not should:
                    continue
                self._fires[index] += 1
                self.log.append((site, spec.mode, visit))
            self._execute(spec, site, visit, context)

    # -- fault behaviors -----------------------------------------------------

    def _execute(
        self, spec: FaultSpec, site: str, visit: int, context: dict
    ) -> None:
        label = f"injected {spec.mode} at {site}#{visit}"
        if spec.mode == "raise-in-kernel":
            raise InjectedKernelError(label)
        if spec.mode == "alloc-fail":
            raise InjectedAllocFailure(label)
        if spec.mode == "io-error":
            raise InjectedIOError(label)
        if spec.mode in ("hang-kernel", "slow-io"):
            time.sleep(spec.resolved_seconds)
            return
        if spec.mode == "kill-worker":
            os._exit(KILL_EXIT_CODE)
        if spec.mode == "corrupt-artifact":
            self._corrupt_file(context.get("path"), visit)
        if spec.mode == "corrupt-shm-slot":
            self._corrupt_slot(context.get("buf"), visit)

    def _corrupt_slot(self, buf, visit: int) -> None:
        """Deterministically flip a run of bytes in a mapped
        shared-memory frame (a writable uint8 view, or absent)."""
        if buf is None or getattr(buf, "size", 0) == 0:
            return
        garbage = hashlib.sha256(
            f"{self.seed}:corrupt-shm:{visit}".encode("utf-8")
        ).digest()
        offset = buf.size // 3
        span = min(len(garbage), buf.size - offset)
        # XOR with a non-zero mask guarantees the bytes change
        import numpy as np

        mask = bytes((g | 0x01) for g in garbage[:span])
        try:
            buf[offset:offset + span] ^= np.frombuffer(mask, dtype=np.uint8)
        except (TypeError, ValueError):  # read-only or exotic view
            return

    def _corrupt_file(self, path: Optional[str], visit: int) -> None:
        """Deterministically flip a run of bytes in ``path`` (if present)."""
        if not path:
            return
        try:
            size = os.path.getsize(path)
        except OSError:
            return
        if size == 0:
            return
        garbage = hashlib.sha256(
            f"{self.seed}:corrupt:{visit}".encode("utf-8")
        ).digest()
        offset = size // 3
        try:
            with open(path, "r+b") as handle:
                handle.seek(offset)
                original = handle.read(len(garbage))
                handle.seek(offset)
                # XOR with a non-zero mask guarantees the bytes change
                handle.write(
                    bytes(
                        b ^ (g | 0x01)
                        for b, g in zip(original, garbage)
                    )
                )
        except OSError:
            return

    # -- telemetry -----------------------------------------------------------

    def fired(self, mode: Optional[str] = None) -> int:
        """Total fires, optionally restricted to one mode."""
        with self._lock:
            if mode is None:
                return sum(self._fires)
            return sum(1 for _, m, _ in self.log if m == mode)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "seed": self.seed,
                "visits": list(self._visits),
                "fires": list(self._fires),
                "log": list(self.log),
            }


# -- process-wide installation --------------------------------------------------

_ACTIVE: Optional[FaultPlan] = None
_SCOPE: Optional[dict] = None


def _dispatch(site: str, **context) -> None:
    plan = _ACTIVE
    if plan is not None:
        plan.fire(site, scope=_SCOPE, **context)


def install(plan: FaultPlan, scope: Optional[dict] = None) -> FaultPlan:
    """Activate ``plan`` for this process (replacing any active plan).

    ``scope`` labels this process for spec matching — the supervisor
    installs ``{"worker": id, "incarnation": n}`` inside each worker.
    """
    global _ACTIVE, _SCOPE
    _ACTIVE = plan
    _SCOPE = dict(scope) if scope else None
    faultpoints._fire = _dispatch
    return plan


def uninstall() -> None:
    """Deactivate fault injection for this process."""
    global _ACTIVE, _SCOPE
    _ACTIVE = None
    _SCOPE = None
    faultpoints._fire = None


@contextmanager
def active(
    plan: FaultPlan, scope: Optional[dict] = None
) -> Iterator[FaultPlan]:
    """Install ``plan`` for the duration of a ``with`` block."""
    install(plan, scope=scope)
    try:
        yield plan
    finally:
        uninstall()


# -- degraded-mode primitive ----------------------------------------------------


@dataclass
class CircuitBreaker:
    """Trip after ``threshold`` *consecutive* failures; stay open.

    The serving tier uses one per degradable path (batch-axis kernel,
    compiled backend): while closed, the fast path is tried and a
    success resets the failure streak; once open, callers route the
    degraded path until :meth:`reset`.  Thread-safe; every transition
    is counted so ``stats()`` can prove a trip happened.
    """

    threshold: int = 3
    name: str = ""
    consecutive_failures: int = 0  # guarded-by: _lock
    total_failures: int = 0  # guarded-by: _lock
    trips: int = 0  # guarded-by: _lock
    open: bool = False  # guarded-by: _lock
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def allow(self) -> bool:
        """Whether the protected path should be attempted."""
        with self._lock:
            return not self.open

    def record_success(self) -> None:
        with self._lock:
            self.consecutive_failures = 0

    def record_failure(self) -> bool:
        """Count a failure; returns True when *this* failure trips it."""
        with self._lock:
            self.consecutive_failures += 1
            self.total_failures += 1
            if not self.open and self.consecutive_failures >= self.threshold:
                self.open = True
                self.trips += 1
                return True
            return False

    def reset(self) -> None:
        """Close the breaker (an operator action; trips stay counted)."""
        with self._lock:
            self.open = False
            self.consecutive_failures = 0

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "open": self.open,
                "trips": self.trips,
                "consecutive_failures": self.consecutive_failures,
                "total_failures": self.total_failures,
                "threshold": self.threshold,
            }
