"""Linear-algebra substrates: Toeplitz, DCT, Lanczos, recursive filters."""

from .dct import (
    dct2,
    dct_matrix,
    direct_dct_flop_count,
    fast_dct,
    fast_dct_flop_count,
    idct2,
    idct_matrix,
)
from .lanczos import (
    ResampleMatrix,
    build_resample_matrix,
    lanczos,
    resample_2d,
    resample_coefficients,
)
from .recfilter import (
    dilated_recurrence,
    homogeneous_response,
    hoppe_tiled_filter,
    recursive_filter_serial,
    sla_decompose,
    sla_filter,
)
from .toeplitz import (
    conv1d_reference,
    conv_toeplitz,
    downsample_toeplitz,
    kway_interleave,
    toeplitz_from_kernel,
    upsample_matrix,
)

__all__ = [name for name in dir() if not name.startswith("_")]
