"""Recursive-filter math for the audio case study (paper §V-D).

A second-order recursive filter ``y[t] = x[t] + a*y[t-1] + b*y[t-2]`` is
parallelized two ways, exactly as in the paper:

* **Scattered-lookahead (SLA)** interpolation (Parhi & Messerschmitt):
  for a dilation ``d``, the filter factors into a *non-recursive* FIR
  prefilter of ``2d - 1`` taps followed by a dilated recurrence
  ``y[t] = u[t] + a_d*y[t-d] + b_d*y[t-2d]`` whose steps are independent
  across ``t mod d`` — an inner parallel loop of width ``d``.
* **Hoppe tiling** (Nehab et al.): tiles are filtered independently from
  zero state, then a fix-up pass adds each previous tile's tail
  propagated through the homogeneous response — an outer parallel loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


def recursive_filter_serial(
    x: np.ndarray, a: float, b: float
) -> np.ndarray:
    """The direct, fully serial reference filter."""
    x = np.asarray(x, dtype=np.float64)
    y = np.empty_like(x)
    y_1 = 0.0
    y_2 = 0.0
    for t in range(len(x)):
        y[t] = x[t] + a * y_1 + b * y_2
        y_2 = y_1
        y_1 = y[t]
    return y


def sla_decompose(a: float, b: float, d: int) -> Tuple[np.ndarray, float, float]:
    """Scattered-lookahead decomposition with dilation ``d``.

    Returns ``(fir, a_d, b_d)``: the FIR prefilter (2d-1 taps, index 0 is
    the current sample) and the dilated recurrence coefficients.  The
    characteristic roots ``p, q`` of ``1 - a z^-1 - b z^-2`` become
    ``p^d, q^d``; the FIR is the exact polynomial quotient
    ``(1 - a_d z^-d - b_d z^-2d) / (1 - a z^-1 - b z^-2)``.
    """
    roots = np.roots([1.0, -a, -b]).astype(complex)
    p, q = roots
    a_d = (p**d + q**d).real
    b_d = -((p * q) ** d).real
    # divide A_d(z) (in z^-1, degree 2d) by A(z) (degree 2)
    a_big = np.zeros(2 * d + 1)
    a_big[0] = 1.0
    a_big[d] = -a_d
    a_big[2 * d] = -b_d
    a_small = np.array([1.0, -a, -b])
    fir, remainder = np.polydiv(a_big, a_small)
    if np.max(np.abs(remainder)) > 1e-8:
        raise ValueError(
            f"SLA decomposition inexact for a={a}, b={b}, d={d}:"
            f" remainder {np.max(np.abs(remainder)):.2e}"
        )
    return fir.astype(np.float64), float(a_d), float(b_d)


def dilated_recurrence(
    u: np.ndarray, a_d: float, b_d: float, d: int
) -> np.ndarray:
    """``y[t] = u[t] + a_d*y[t-d] + b_d*y[t-2d]``; parallel across t%d."""
    u = np.asarray(u, dtype=np.float64)
    y = u.copy()
    for t in range(d, len(u)):
        if t >= 2 * d:
            y[t] += a_d * y[t - d] + b_d * y[t - 2 * d]
        else:
            y[t] += a_d * y[t - d]
    return y


def sla_filter(x: np.ndarray, a: float, b: float, d: int) -> np.ndarray:
    """The full SLA pipeline: FIR prefilter then dilated recurrence."""
    fir, a_d, b_d = sla_decompose(a, b, d)
    x = np.asarray(x, dtype=np.float64)
    padded = np.concatenate([np.zeros(len(fir) - 1), x])
    u = np.convolve(padded, fir, mode="valid")
    return dilated_recurrence(u, a_d, b_d, d)


@dataclass
class HomogeneousResponse:
    """Impulse responses of the two filter states over one tile."""

    h1: np.ndarray  # response to y[-1] = 1
    h2: np.ndarray  # response to y[-2] = 1


def homogeneous_response(a: float, b: float, tile: int) -> HomogeneousResponse:
    h1 = np.zeros(tile)
    h2 = np.zeros(tile)
    y1, y2 = 1.0, 0.0
    z1, z2 = 0.0, 1.0
    for t in range(tile):
        h1[t] = a * y1 + b * y2
        h2[t] = a * z1 + b * z2
        y2, y1 = y1, h1[t]
        z2, z1 = z1, h2[t]
    return HomogeneousResponse(h1, h2)


def hoppe_tiled_filter(
    x: np.ndarray, a: float, b: float, tile: int
) -> np.ndarray:
    """Hoppe-style tiled filtering: independent tiles + serial fix-up.

    Pass 1 (parallel across tiles): filter each tile from zero state.
    Pass 2 (serial scan over tiles, parallel within): add the previous
    tile's true tail propagated through the homogeneous response.
    """
    x = np.asarray(x, dtype=np.float64)
    n = len(x)
    if n % tile != 0:
        raise ValueError(f"signal length {n} not divisible by tile {tile}")
    num_tiles = n // tile
    partial = np.empty_like(x)
    for i in range(num_tiles):  # parallel on real hardware
        partial[i * tile : (i + 1) * tile] = recursive_filter_serial(
            x[i * tile : (i + 1) * tile], a, b
        )
    response = homogeneous_response(a, b, tile)
    out = partial.copy()
    for i in range(1, num_tiles):  # the fix-up scan
        tail1 = out[i * tile - 1]
        tail2 = out[i * tile - 2]
        out[i * tile : (i + 1) * tile] += (
            tail1 * response.h1 + tail2 * response.h2
        )
    return out
