"""Discrete cosine transforms for the denoising case study (paper §V-E).

Provides the orthonormal DCT-II matrix (the "direct" variant multiplies
tiles by this matrix on Tensor Cores) and the recursive fast DCT of
Plonka & Tasche (2005) used by the "fast" CUDA variant: an N-point DCT-II
split into an N/2 DCT-II on butterfly sums and an N/2 DCT-IV-like stage
on butterfly differences, O(N log N) instead of O(N^2).
"""

from __future__ import annotations

import numpy as np


def dct_matrix(n: int) -> np.ndarray:
    """The orthonormal DCT-II matrix D: ``X = D @ x``."""
    k = np.arange(n)[:, None]
    i = np.arange(n)[None, :]
    mat = np.cos(np.pi * (2 * i + 1) * k / (2 * n))
    mat *= np.sqrt(2.0 / n)
    mat[0, :] *= np.sqrt(0.5)
    return mat.astype(np.float64)


def idct_matrix(n: int) -> np.ndarray:
    """Inverse (= transpose, by orthonormality)."""
    return dct_matrix(n).T.copy()


def dct2(x: np.ndarray) -> np.ndarray:
    """Orthonormal DCT-II along the last axis."""
    n = x.shape[-1]
    return x @ dct_matrix(n).T


def idct2(x: np.ndarray) -> np.ndarray:
    n = x.shape[-1]
    return x @ idct_matrix(n).T


def _dct_iv(x: np.ndarray) -> np.ndarray:
    """Orthonormal DCT-IV along the last axis (dense; used by fast DCT)."""
    n = x.shape[-1]
    k = np.arange(n)[:, None]
    i = np.arange(n)[None, :]
    mat = np.sqrt(2.0 / n) * np.cos(np.pi * (2 * i + 1) * (2 * k + 1) / (4 * n))
    return x @ mat.T


def fast_dct(x: np.ndarray) -> np.ndarray:
    """Plonka–Tasche recursive fast DCT-II along the last axis.

    Butterfly split: with ``u = x[:n/2] + x[reversed n/2:]`` and
    ``v = x[:n/2] - x[reversed n/2:]``, the even DCT-II coefficients are
    ``DCT-II(u)/sqrt(2)``-scaled and the odd ones come from ``DCT-IV(v)``.
    Matches :func:`dct2` to numerical precision.
    """
    x = np.asarray(x, dtype=np.float64)
    n = x.shape[-1]
    if n == 1:
        return x.copy()
    if n % 2 != 0:
        return dct2(x)
    half = n // 2
    front = x[..., :half]
    back = x[..., :half - n - 1 : -1] if half > 0 else x[..., :0]
    back = x[..., n - 1 : half - 1 : -1]
    u = (front + back) / np.sqrt(2.0)
    v = (front - back) / np.sqrt(2.0)
    even = fast_dct(u)
    odd = _dct_iv(v)
    out = np.empty_like(x)
    out[..., 0::2] = even
    out[..., 1::2] = odd
    return out


def fast_dct_flop_count(n: int) -> int:
    """Arithmetic ops of one n-point fast DCT (recursive butterfly count).

    Each level does n adds + n/2 scalings plus a dense half-size DCT-IV
    (the fully unrolled 16-point network in the paper); this analytic
    count backs the "3.6x more FLOPs" comparison of §V-E.
    """
    if n == 1:
        return 0
    half = n // 2
    butterflies = 2 * half + n  # adds/subs + scaling
    dct_iv_cost = 2 * half * half  # dense half-size DCT-IV
    return butterflies + dct_iv_cost + fast_dct_flop_count(half)


def direct_dct_flop_count(n: int) -> int:
    """Arithmetic ops of one n-point direct (matrix) DCT."""
    return 2 * n * n
