"""Lanczos resampling support (paper §V-C).

Non-integer-factor resizing convolves with a three-lobed Lanczos
pre-filter sized to the output rate, then samples at the lower rate.
Because every column of the image undergoes the same linear
transformation, the filter evaluations are precomputed into one sparse
(banded) matrix per axis; re-banding it into *block*-sparse form (groups
of 16 rows sharing a start column) is what makes it tileable — and
tensor-core friendly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

LOBES = 3


def lanczos(x: np.ndarray, lobes: int = LOBES) -> np.ndarray:
    """The Lanczos window: sinc(x) * sinc(x / lobes) on [-lobes, lobes]."""
    x = np.asarray(x, dtype=np.float64)
    out = np.sinc(x) * np.sinc(x / lobes)
    return np.where(np.abs(x) < lobes, out, 0.0)


@dataclass
class ResampleMatrix:
    """A banded resampling matrix in block-sparse form.

    ``starts[b]`` is the first input row used by output-row block ``b``;
    ``bands[b]`` is a dense ``(block, width)`` coefficient block.  Output
    block ``b`` is ``bands[b] @ input[starts[b] : starts[b] + width]``.
    """

    out_size: int
    in_size: int
    block: int
    width: int
    starts: np.ndarray  # (num_blocks,)
    bands: np.ndarray  # (num_blocks, block, width)

    @property
    def num_blocks(self) -> int:
        return len(self.starts)

    def to_dense(self) -> np.ndarray:
        dense = np.zeros((self.out_size, self.in_size), dtype=np.float32)
        for b in range(self.num_blocks):
            lo = self.starts[b]
            rows = slice(b * self.block, min((b + 1) * self.block, self.out_size))
            n_rows = rows.stop - rows.start
            width = min(self.width, self.in_size - lo)
            dense[rows, lo : lo + width] = self.bands[b, :n_rows, :width]
        return dense

    def apply(self, columns: np.ndarray) -> np.ndarray:
        """Resample along axis 0 of ``columns`` (shape (in_size, ...))."""
        out_shape = (self.out_size,) + columns.shape[1:]
        out = np.zeros(out_shape, dtype=np.float32)
        for b in range(self.num_blocks):
            lo = int(self.starts[b])
            hi = min(lo + self.width, self.in_size)
            segment = columns[lo:hi]
            if hi - lo < self.width:
                pad = np.zeros(
                    (self.width - (hi - lo),) + columns.shape[1:],
                    dtype=columns.dtype,
                )
                segment = np.concatenate([segment, pad], axis=0)
            rows = slice(b * self.block, min((b + 1) * self.block, self.out_size))
            out[rows] = np.tensordot(
                self.bands[b, : rows.stop - rows.start], segment, axes=(1, 0)
            )
        return out


def resample_coefficients(
    in_size: int, out_size: int, lobes: int = LOBES
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-output-row (start, taps) of the Lanczos pre-filter.

    The filter footprint scales with the downsampling ratio so that the
    pre-filter rejects frequencies unrepresentable at the output rate.
    """
    ratio = in_size / out_size
    support = lobes * max(ratio, 1.0)
    taps = int(np.ceil(2 * support)) + 1
    starts = np.empty(out_size, dtype=np.int64)
    coeffs = np.zeros((out_size, taps), dtype=np.float64)
    for o in range(out_size):
        center = (o + 0.5) * ratio - 0.5
        lo = int(np.floor(center - support + 0.5))
        starts[o] = lo
        positions = lo + np.arange(taps)
        weights = lanczos((positions - center) / max(ratio, 1.0), lobes)
        total = weights.sum()
        if total != 0:
            weights = weights / total
        coeffs[o] = weights
    return starts, coeffs


def build_resample_matrix(
    in_size: int, out_size: int, block: int = 16, lobes: int = LOBES
) -> ResampleMatrix:
    """Block-sparse Lanczos resampling matrix (§V-C).

    Groups of ``block`` output rows share a start column; the band
    widens to cover every row in the group (the "unnecessary
    multiplications by zero" the paper accepts for tileability).
    """
    starts, coeffs = resample_coefficients(in_size, out_size, lobes)
    taps = coeffs.shape[1]
    num_blocks = (out_size + block - 1) // block
    block_starts = np.empty(num_blocks, dtype=np.int64)
    widths = []
    for b in range(num_blocks):
        rows = range(b * block, min((b + 1) * block, out_size))
        lo = min(starts[o] for o in rows)
        hi = max(starts[o] + taps for o in rows)
        block_starts[b] = max(lo, 0)
        widths.append(hi - block_starts[b])
    width = int(max(widths))
    # round up to a multiple of 16 so tiles map onto WMMA k-dim cleanly
    width = ((width + 15) // 16) * 16
    bands = np.zeros((num_blocks, block, width), dtype=np.float32)
    for b in range(num_blocks):
        for i, o in enumerate(
            range(b * block, min((b + 1) * block, out_size))
        ):
            for t in range(taps):
                # clamp out-of-range source samples to the image edge
                src = min(max(starts[o] + t, 0), in_size - 1)
                col = src - block_starts[b]
                if 0 <= col < width:
                    bands[b, i, col] += coeffs[o, t]
    return ResampleMatrix(
        out_size=out_size,
        in_size=in_size,
        block=block,
        width=width,
        starts=block_starts,
        bands=bands,
    )


def resample_2d(
    image: np.ndarray, out_h: int, out_w: int, block: int = 16
) -> np.ndarray:
    """Separable resize: vertical then horizontal block-sparse passes."""
    vertical = build_resample_matrix(image.shape[0], out_h, block)
    horizontal = build_resample_matrix(image.shape[1], out_w, block)
    tmp = vertical.apply(image.astype(np.float32))
    return horizontal.apply(tmp.T).T
