"""Host-side Toeplitz constructions (paper §V-A/V-B).

These mirror the shuffle intrinsics HARDBOILED emits
(:mod:`repro.hardboiled.intrinsics`) and serve as the mathematical
reference implementations for tests and the resampling application.
"""

from __future__ import annotations

import numpy as np

from ..hardboiled.intrinsics import kway_interleave, toeplitz_from_kernel


def conv_toeplitz(kernel: np.ndarray, outputs: int) -> np.ndarray:
    """A_K of §V-A: ``(outputs + taps) x outputs`` with
    ``A[c, j] = K[c - j]``; ``windows @ A_K`` computes the convolution."""
    taps = len(kernel)
    return toeplitz_from_kernel(
        np.asarray(kernel, np.float32), outputs + taps, outputs, stride=1
    )


def downsample_toeplitz(kernel: np.ndarray, outputs: int) -> np.ndarray:
    """A_down of §V-B: stride-2 Toeplitz, ``(2*outputs + taps) x outputs``."""
    taps = len(kernel)
    return toeplitz_from_kernel(
        np.asarray(kernel, np.float32), 2 * outputs + taps, outputs, stride=2
    )


def upsample_matrix(kernel: np.ndarray, in_positions: int) -> np.ndarray:
    """A_up of §V-B for factor-2 upsampling (1-D).

    Output column ``j = 2u + p`` produces output pixel ``2u + p`` from
    input offset ``u`` with phase ``p``; entry ``[c, j]`` holds
    ``K[2*(c - u) + p]``.  Shape: ``(in_positions + taps//2) x
    (2 * in_positions)``.
    """
    kernel = np.asarray(kernel, np.float32)
    taps = len(kernel)
    half = taps // 2
    rows = in_positions + half
    cols = 2 * in_positions
    out = np.zeros((rows, cols), dtype=np.float32)
    for c in range(rows):
        for j in range(cols):
            u, p = divmod(j, 2)
            t = 2 * (c - u) + p
            if 0 <= t < taps:
                out[c, j] = kernel[t]
    return out


def conv1d_reference(signal: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Direct 1-D convolution: ``out[x] = sum_t signal[x+t] * kernel[t]``."""
    signal = np.asarray(signal, np.float32)
    kernel = np.asarray(kernel, np.float32)
    n = len(signal) - len(kernel) + 1
    return np.array(
        [signal[i : i + len(kernel)] @ kernel for i in range(n)],
        dtype=np.float32,
    )


__all__ = [
    "conv_toeplitz",
    "conv1d_reference",
    "downsample_toeplitz",
    "kway_interleave",
    "toeplitz_from_kernel",
    "upsample_matrix",
]
