"""Funcs, image parameters, and scheduling directives (the Halide surface).

An *algorithm* is written as pure/update definitions::

    mm = Func("mm")
    mm[y, x] = 0.0
    mm[y, x] += cast(Float(32), A[r, x]) * cast(Float(32), B[y, r])

A *schedule* is attached with chained directives::

    mm.store_in(MemoryType.AMX_TILE).compute_at(mm.in_(), x)
    mm.update().atomic().vectorize(r, 32).vectorize(y, 16).vectorize(x, 16)

Dims are kept innermost-first, matching Halide's convention that the first
argument is the fastest-varying dimension.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..ir import (
    Call,
    CallType,
    DataType,
    Expr,
    Float,
    ForKind,
    MemoryType,
    Variable,
    free_variables,
    substitute,
)
from .var import RDom, RVAR_REGISTRY as _RVAR_REGISTRY, RVar, Var, to_expr, unique_name


@dataclass
class Split:
    old: str
    outer: str
    inner: str
    factor: int


@dataclass
class Dim:
    var: str
    kind: ForKind = ForKind.SERIAL


class Stage:
    """One definition of a Func (pure or update) plus its loop schedule."""

    def __init__(
        self,
        func: "Func",
        args: Sequence[Expr],
        value: Expr,
        is_update: bool,
    ) -> None:
        self.func = func
        self.args: Tuple[Expr, ...] = tuple(args)
        self.value = value
        self.is_update = is_update
        self.splits: List[Split] = []
        self.atomic_flag = False
        self.rvars: Dict[str, RVar] = {}
        if is_update:
            free = set()
            for a in self.args:
                free |= free_variables(a)
            free |= free_variables(value)
            for name in free:
                rvar = _RVAR_REGISTRY.get(name)
                if rvar is not None:
                    self.rvars[name] = rvar
        # dim order, innermost first: reduction vars innermost, then the
        # pure variables in argument order
        dims: List[Dim] = []
        if self.rvars:
            for name in self._rvar_order():
                dims.append(Dim(name))
        for a in self.args:
            for name in sorted(free_variables(a)):
                if name not in self.rvars and all(
                    d.var != name for d in dims
                ):
                    dims.append(Dim(name))
        self.dims = dims

    def _rvar_order(self) -> List[str]:
        # reduction vars in their order of appearance in the value
        order: List[str] = []

        def scan(e: Expr):
            from ..ir.visitor import IRVisitor

            class V(IRVisitor):
                def visit_Variable(v_self, node):
                    if node.name in self.rvars and node.name not in order:
                        order.append(node.name)

            V().visit(e)

        scan(self.value)
        for name in self.rvars:
            if name not in order:
                order.append(name)
        return order

    # -- directives (each returns self for chaining) --------------------------

    def _dim_index(self, var) -> int:
        name = var.name if isinstance(var, (Var, RDom)) else str(var)
        for i, d in enumerate(self.dims):
            if d.var == name:
                return i
        raise KeyError(
            f"no dimension {name!r} in stage of {self.func.name!r}; have "
            f"{[d.var for d in self.dims]}"
        )

    def split(self, old, outer, inner, factor: int) -> "Stage":
        i = self._dim_index(old)
        old_name = self.dims[i].var
        outer_name = outer.name if isinstance(outer, (Var, RDom)) else str(outer)
        inner_name = inner.name if isinstance(inner, (Var, RDom)) else str(inner)
        self.splits.append(Split(old_name, outer_name, inner_name, int(factor)))
        kind = self.dims[i].kind
        self.dims[i : i + 1] = [Dim(inner_name, kind), Dim(outer_name, kind)]
        return self

    def reorder(self, *vars) -> "Stage":
        """Reorder dims; arguments are listed innermost first."""
        names = [v.name if isinstance(v, (Var, RDom)) else str(v) for v in vars]
        indices = sorted(self._dim_index(n) for n in names)
        listed = [self.dims[self._dim_index(n)] for n in names]
        for pos, dim in zip(indices, listed):
            self.dims[pos] = dim
        return self

    def _set_kind(self, var, kind: ForKind, factor: Optional[int]) -> "Stage":
        if factor is not None:
            name = var.name if isinstance(var, (Var, RDom)) else str(var)
            inner = f"{name}.{kind.name.lower()[:1]}i"
            self.split(var, name, inner, factor)
            self.dims[self._dim_index(inner)].kind = kind
        else:
            self.dims[self._dim_index(var)].kind = kind
        return self

    def vectorize(self, var, factor: Optional[int] = None) -> "Stage":
        return self._set_kind(var, ForKind.VECTORIZED, factor)

    def unroll(self, var, factor: Optional[int] = None) -> "Stage":
        return self._set_kind(var, ForKind.UNROLLED, factor)

    def parallel(self, var) -> "Stage":
        return self._set_kind(var, ForKind.PARALLEL, None)

    def gpu_blocks(self, *vars) -> "Stage":
        for v in vars:
            self._set_kind(v, ForKind.GPU_BLOCK, None)
        return self

    def gpu_threads(self, *vars) -> "Stage":
        for v in vars:
            self._set_kind(v, ForKind.GPU_THREAD, None)
        return self

    def atomic(self) -> "Stage":
        """Permit vectorizing reduction dimensions (emits VectorReduce)."""
        self.atomic_flag = True
        return self

    # convenience passthroughs so schedules can chain through func methods
    def vectorize_inner(self) -> "Stage":
        return self.vectorize(self.dims[0].var)

    def __repr__(self) -> str:
        kind = "update" if self.is_update else "pure"
        return f"<Stage {self.func.name} ({kind}): {[d.var for d in self.dims]}>"


class _UpdateToken:
    """Marker returned by ``FuncRef.__iadd__`` (the update is registered)."""


@dataclass(frozen=True)
class FuncCall(Call):
    """A Call that remembers which Func object it refers to.

    Lowering needs the object (not just the name) to walk the Func DAG and
    read schedules; storage flattening replaces these with Loads.
    """

    func: object = None


class FuncRef:
    """``f[y, x]`` — usable in expressions and as an update target."""

    def __init__(self, func: "Func", args: Tuple) -> None:
        self.func = func
        self.args = tuple(args)

    def to_expr(self) -> Expr:
        if self.func.pure is None:
            raise ValueError(f"Func {self.func.name!r} used before definition")
        return FuncCall(
            self.func.dtype,
            self.func.name,
            tuple(to_expr(a) for a in self.args),
            CallType.HALIDE,
            self.func,
        )

    def __iadd__(self, rhs):
        self.func._define_update(self.args, self.to_expr() + to_expr(rhs))
        return _UpdateToken()

    # arithmetic: coerce to Expr
    def __add__(self, other):
        return self.to_expr() + to_expr(other)

    def __radd__(self, other):
        return to_expr(other) + self.to_expr()

    def __sub__(self, other):
        return self.to_expr() - to_expr(other)

    def __rsub__(self, other):
        return to_expr(other) - self.to_expr()

    def __mul__(self, other):
        return self.to_expr() * to_expr(other)

    def __rmul__(self, other):
        return to_expr(other) * self.to_expr()

    def __truediv__(self, other):
        return self.to_expr() / to_expr(other)

    def __neg__(self):
        return -self.to_expr()


ComputeLevel = Union[str, Tuple["Func", str]]


class Func:
    """A pipeline stage: functional definition(s) plus a schedule."""

    def __init__(self, name: Optional[str] = None) -> None:
        self.name = name or unique_name("f")
        self.pure: Optional[Stage] = None
        self.updates: List[Stage] = []
        #: "inline", "root", or (consumer Func, loop var name)
        self.compute_level: ComputeLevel = "inline"
        self.memory_type: MemoryType = MemoryType.AUTO
        self.explicit_bounds: Dict[str, Tuple[int, int]] = {}
        self.storage_order: Optional[List[str]] = None
        self._wrapper: Optional["Func"] = None

    # -- definition ------------------------------------------------------------

    def __getitem__(self, keys) -> FuncRef:
        if not isinstance(keys, tuple):
            keys = (keys,)
        return FuncRef(self, keys)

    def __call__(self, *keys) -> FuncRef:
        return FuncRef(self, keys)

    def __setitem__(self, keys, value) -> None:
        if isinstance(value, _UpdateToken):
            return  # update was registered by __iadd__
        if not isinstance(keys, tuple):
            keys = (keys,)
        if self.pure is None:
            arg_names = []
            for k in keys:
                if not isinstance(k, Var) or isinstance(k, RVar):
                    raise TypeError(
                        f"pure definition of {self.name!r} needs plain Vars,"
                        f" got {k!r}"
                    )
                arg_names.append(k.name)
            if len(set(arg_names)) != len(arg_names):
                raise ValueError("duplicate pure args")
            value_expr = to_expr(value)
            if value_expr.type.lanes != 1:
                raise ValueError("definitions must be scalar-valued")
            self.pure = Stage(
                self,
                tuple(Variable(n) for n in arg_names),
                value_expr,
                is_update=False,
            )
        else:
            self._define_update(keys, to_expr(value))

    def _define_update(self, args, value: Expr) -> None:
        if self.pure is None:
            raise ValueError(
                f"update on {self.name!r} before its pure definition"
            )
        arg_exprs = tuple(to_expr(a) for a in args)
        if len(arg_exprs) != self.dimensions:
            raise ValueError(
                f"update on {self.name!r} has {len(arg_exprs)} args, "
                f"expected {self.dimensions}"
            )
        self.updates.append(Stage(self, arg_exprs, value, is_update=True))

    # -- properties --------------------------------------------------------------

    @property
    def defined(self) -> bool:
        return self.pure is not None

    @property
    def dtype(self) -> DataType:
        if self.pure is None:
            return Float(32)
        return self.pure.value.type

    @property
    def dimensions(self) -> int:
        if self.pure is None:
            raise ValueError(f"Func {self.name!r} is not defined")
        return len(self.pure.args)

    @property
    def arg_names(self) -> List[str]:
        return [a.name for a in self.pure.args]

    def stages(self) -> List[Stage]:
        return [self.pure, *self.updates]

    # -- schedule: stage selection -------------------------------------------------

    def update(self, index: int = 0) -> Stage:
        return self.updates[index]

    def in_(self) -> "Func":
        """A wrapper Func that loads this one (Halide's ``f.in()``)."""
        if self._wrapper is None:
            wrapper = Func(f"{self.name}_wrapper")
            args = [Var(n) for n in self.arg_names]
            wrapper[tuple(args)] = FuncRef(self, tuple(args))
            self._wrapper = wrapper
        return self._wrapper

    # -- schedule: func-level directives --------------------------------------------

    def compute_at(self, consumer: "Func", var) -> "Func":
        name = var.name if isinstance(var, (Var, RDom)) else str(var)
        self.compute_level = (consumer, name)
        return self

    def compute_root(self) -> "Func":
        self.compute_level = "root"
        return self

    def store_in(self, memory_type: MemoryType) -> "Func":
        self.memory_type = memory_type
        return self

    def bound(self, var, min_value: int, extent: int) -> "Func":
        name = var.name if isinstance(var, (Var, RDom)) else str(var)
        if name not in self.arg_names:
            raise KeyError(f"{name!r} is not an argument of {self.name!r}")
        self.explicit_bounds[name] = (int(min_value), int(extent))
        return self

    def reorder_storage(self, *vars) -> "Func":
        names = [v.name if isinstance(v, (Var, RDom)) else str(v) for v in vars]
        if sorted(names) != sorted(self.arg_names):
            raise ValueError(
                "reorder_storage must mention every dimension exactly once"
            )
        self.storage_order = names
        return self

    # -- schedule: pure-stage passthroughs -------------------------------------------

    def split(self, *args, **kwargs) -> "Func":
        self.pure.split(*args, **kwargs)
        return self

    def tile(self, x, y, xi, yi, xfactor: int, yfactor: int) -> "Func":
        """Split both dims and reorder so the tile is innermost."""
        xname = x.name if isinstance(x, (Var, RDom)) else str(x)
        yname = y.name if isinstance(y, (Var, RDom)) else str(y)
        self.pure.split(x, xname, xi, xfactor)
        self.pure.split(y, yname, yi, yfactor)
        self.pure.reorder(xi, yi, xname, yname)
        return self

    def reorder(self, *vars) -> "Func":
        self.pure.reorder(*vars)
        return self

    def vectorize(self, var, factor: Optional[int] = None) -> "Func":
        self.pure.vectorize(var, factor)
        return self

    def unroll(self, var, factor: Optional[int] = None) -> "Func":
        self.pure.unroll(var, factor)
        return self

    def parallel(self, var) -> "Func":
        self.pure.parallel(var)
        return self

    def gpu_blocks(self, *vars) -> "Func":
        self.pure.gpu_blocks(*vars)
        return self

    def gpu_threads(self, *vars) -> "Func":
        self.pure.gpu_threads(*vars)
        return self

    def atomic(self) -> "Func":
        self.pure.atomic()
        return self

    def __repr__(self) -> str:
        state = "defined" if self.defined else "undefined"
        return f"Func({self.name!r}, {state})"


class ImageParam:
    """An external input image/buffer."""

    def __init__(
        self, dtype: DataType, dimensions: int, name: Optional[str] = None
    ) -> None:
        self.dtype = dtype
        self.dimensions = dimensions
        self.name = name or unique_name("img")

    def __getitem__(self, keys) -> Expr:
        if not isinstance(keys, tuple):
            keys = (keys,)
        if len(keys) != self.dimensions:
            raise ValueError(
                f"{self.name!r} has {self.dimensions} dims, got {len(keys)}"
            )
        return Call(
            self.dtype,
            self.name,
            tuple(to_expr(k) for k in keys),
            CallType.IMAGE,
        )

    def __call__(self, *keys) -> Expr:
        return self[keys]

    def __repr__(self) -> str:
        return f"ImageParam({self.dtype}, {self.dimensions}, {self.name!r})"
