"""The user-schedulable frontend: algorithms + schedules, Halide style."""

from ..ir import (
    BFloat,
    Bool,
    DataType,
    Expr,
    Float,
    Int,
    MemoryType,
    UInt,
)
from ..ir import builders as _builders
from .func import Func, FuncRef, ImageParam, Stage
from .var import RDom, RVar, Var, to_expr


def cast(dtype: DataType, value) -> Expr:
    """Explicit type conversion (``cast<float>(x)``)."""
    return _builders.cast(dtype, to_expr(value))


def select(condition, true_value, false_value) -> Expr:
    return _builders.make_select(
        to_expr(condition), to_expr(true_value), to_expr(false_value)
    )


def minimum(a, b) -> Expr:
    return _builders.make_min(to_expr(a), to_expr(b))


def maximum(a, b) -> Expr:
    return _builders.make_max(to_expr(a), to_expr(b))


def _unary_intrinsic(name: str):
    from ..ir import Call, CallType

    def fn(value) -> Expr:
        e = to_expr(value)
        dtype = e.type if e.type.is_float() else Float(32, e.type.lanes)
        return Call(dtype, name, (cast(dtype, e),), CallType.INTRINSIC)

    fn.__name__ = name
    fn.__doc__ = f"Pointwise {name}(x)."
    return fn


exp = _unary_intrinsic("exp")
log = _unary_intrinsic("log")
sqrt = _unary_intrinsic("sqrt")
abs_ = _unary_intrinsic("abs")
sin = _unary_intrinsic("sin")
cos = _unary_intrinsic("cos")
floor = _unary_intrinsic("floor")


def f32(value) -> Expr:
    """Shorthand for ``cast(Float(32), value)``."""
    return cast(Float(32), value)


def f16(value) -> Expr:
    return cast(Float(16), value)


def bf16(value) -> Expr:
    return cast(BFloat(16), value)


def i32(value) -> Expr:
    """Shorthand for ``cast(Int(32), value)`` (quantized accumulation)."""
    return cast(Int(32), value)


__all__ = [
    "BFloat",
    "Bool",
    "DataType",
    "Expr",
    "Float",
    "Func",
    "FuncRef",
    "ImageParam",
    "Int",
    "MemoryType",
    "RDom",
    "RVar",
    "Stage",
    "UInt",
    "Var",
    "abs_",
    "bf16",
    "cast",
    "cos",
    "exp",
    "f16",
    "f32",
    "floor",
    "i32",
    "log",
    "maximum",
    "minimum",
    "select",
    "sin",
    "sqrt",
    "to_expr",
]
