"""Loop variables and reduction domains of the user-facing DSL."""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple, Union

from ..ir import Expr, Int, Variable

_name_counter = itertools.count()


def unique_name(prefix: str) -> str:
    return f"{prefix}${next(_name_counter)}"


class Var:
    """A pure loop variable."""

    def __init__(self, name: Optional[str] = None) -> None:
        self.name = name or unique_name("v")

    def to_expr(self) -> Expr:
        return Variable(self.name, Int(32))

    def __repr__(self) -> str:
        return f"Var({self.name!r})"

    # arithmetic on Vars builds IR expressions
    def _expr(self):
        return self.to_expr()

    def __add__(self, other):
        return self._expr() + other

    def __radd__(self, other):
        return other + self._expr()

    def __sub__(self, other):
        return self._expr() - other

    def __rsub__(self, other):
        return other - self._expr()

    def __mul__(self, other):
        return self._expr() * other

    def __rmul__(self, other):
        return other * self._expr()

    def __floordiv__(self, other):
        return self._expr() / other

    def __truediv__(self, other):
        return self._expr() / other

    def __mod__(self, other):
        return self._expr() % other

    def __lt__(self, other):
        return self._expr() < other

    def __le__(self, other):
        return self._expr() <= other

    def __gt__(self, other):
        return self._expr() > other

    def __ge__(self, other):
        return self._expr() >= other


#: live reduction variables by name; update definitions scan their free
#: variables against this registry to recover reduction extents
RVAR_REGISTRY: dict = {}


class RVar(Var):
    """One dimension of a reduction domain."""

    def __init__(self, name: str, min_value: int, extent: int) -> None:
        super().__init__(name)
        self.min_value = int(min_value)
        self.extent = int(extent)
        RVAR_REGISTRY[self.name] = self

    def __repr__(self) -> str:
        return f"RVar({self.name!r}, {self.min_value}, {self.extent})"


class RDom:
    """A (possibly multi-dimensional) reduction domain.

    ``RDom(0, 16)`` is one-dimensional and can be used directly as a
    variable; ``RDom([(0, 3), (0, 3)], name="r")`` exposes ``r[0]``,
    ``r[1]`` (and ``r.x``, ``r.y``).
    """

    def __init__(
        self,
        min_or_ranges: Union[int, Sequence[Tuple[int, int]]],
        extent: Optional[int] = None,
        name: Optional[str] = None,
    ) -> None:
        base = name or unique_name("r")
        if extent is not None:
            ranges = [(int(min_or_ranges), int(extent))]
        else:
            ranges = [(int(lo), int(ext)) for lo, ext in min_or_ranges]
        suffixes = ["x", "y", "z", "w"]
        self.rvars: List[RVar] = []
        for i, (lo, ext) in enumerate(ranges):
            if len(ranges) == 1:
                rname = base
            else:
                rname = f"{base}.{suffixes[i] if i < 4 else i}"
            self.rvars.append(RVar(rname, lo, ext))

    def __len__(self) -> int:
        return len(self.rvars)

    def __getitem__(self, i: int) -> RVar:
        return self.rvars[i]

    @property
    def x(self) -> RVar:
        return self.rvars[0]

    @property
    def y(self) -> RVar:
        return self.rvars[1]

    # 1-D RDoms behave like their single RVar
    def _single(self) -> RVar:
        if len(self.rvars) != 1:
            raise TypeError(
                "multi-dimensional RDom used as a variable; index it"
            )
        return self.rvars[0]

    @property
    def name(self) -> str:
        return self._single().name

    def to_expr(self) -> Expr:
        return self._single().to_expr()

    def __add__(self, other):
        return self._single() + other

    def __radd__(self, other):
        return other + self._single().to_expr()

    def __mul__(self, other):
        return self._single() * other

    def __rmul__(self, other):
        return other * self._single().to_expr()

    def __sub__(self, other):
        return self._single() - other

    def __mod__(self, other):
        return self._single() % other

    def __floordiv__(self, other):
        return self._single() / other

    def __truediv__(self, other):
        return self._single() / other

    def __repr__(self) -> str:
        ranges = ", ".join(
            f"[{r.min_value},{r.min_value + r.extent})" for r in self.rvars
        )
        return f"RDom({ranges})"


VarLike = Union[Var, RVar, RDom]


def to_expr(value) -> Expr:
    """Coerce DSL values (Var, RDom, FuncRef, numbers, Expr) to IR."""
    from ..ir import builders

    if isinstance(value, Expr):
        return value
    if isinstance(value, (Var, RDom)):
        return value.to_expr()
    if hasattr(value, "to_expr"):
        return value.to_expr()
    if isinstance(value, (int, float, bool)):
        return builders.wrap(value, Int(32))
    raise TypeError(f"cannot convert {value!r} to an expression")
