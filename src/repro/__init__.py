"""repro — a reproduction of HARDBOILED (CGO 2026).

"Pushing Tensor Accelerators beyond MatMul in a User-Schedulable
Language": a Halide-like user-schedulable DSL, an egglog-style equality
saturation engine, a tensor instruction selector targeting simulated
Intel AMX and Nvidia Tensor Core (WMMA) accelerators, and the paper's
signal/image-processing case studies.

Quick start::

    from repro import frontend as hl

    A = hl.ImageParam(hl.BFloat(16), 2, name="A")
    B = hl.ImageParam(hl.BFloat(16), 2, name="B")
    x, y = hl.Var("x"), hl.Var("y")
    r = hl.RDom(0, 32, name="r")
    mm = hl.Func("mm")
    mm[y, x] = 0.0
    mm[y, x] += hl.cast(hl.Float(32), A[r, x]) * hl.cast(hl.Float(32), B[y, r])

See ``examples/quickstart.py`` for the full scheduling + compilation flow.
"""

__version__ = "1.0.0"
