"""Functional simulator for Nvidia Tensor Core WMMA operations.

Models warp-level matrix-multiply-accumulate as HARDBOILED emits it:
``wmma.mma.sync`` consumes fp16 A/B fragments and an fp32 accumulator
fragment and produces ``C + A @ B``.  Supported fragment geometries are
the hardware's fp16 shapes: m16n16k16, m32n8k16, and m8n32k16.

In simulation a *fragment* is the whole collective tile (a flattened
row-major numpy array); the per-thread distribution across the 32 lanes
of a warp is an implementation detail the instruction selector never
observes.  The tile extractor still wraps WMMA statements in a warp-level
``gpu_lane`` loop (paper §III-D.1), which the interpreter executes once
per warp for exactly this reason.

Intrinsic signatures:

* ``wmma.fill.sync(m, n, value)``
* ``wmma.load.a.sync(buffer, base, row_stride, m, k)`` — row-major
* ``wmma.load.b.sync(buffer, base, row_stride, k, n)`` — row-major
* ``wmma.mma.sync(C, A, B, m, n, k)``
* ``wmma.store.d.sync(buffer, base, row_stride, m, n, tile)``
"""

from __future__ import annotations

import numpy as np

from ..ir import expr as E
from ..runtime.interpreter import (
    Interpreter,
    memory_level,
    register_intrinsic,
    tile_index,
)

#: fp16 WMMA fragment shapes (m, n, k)
SUPPORTED_SHAPES = {(16, 16, 16), (32, 8, 16), (8, 32, 16)}

WARP_SIZE = 32


class WMMAError(RuntimeError):
    pass


def check_shape(m: int, n: int, k: int) -> None:
    if (m, n, k) not in SUPPORTED_SHAPES:
        raise WMMAError(
            f"unsupported WMMA shape m{m}n{n}k{k}; fp16 WMMA supports "
            + ", ".join(f"m{a}n{b}k{c}" for a, b, c in sorted(SUPPORTED_SHAPES))
        )


def mma_sync(
    c: np.ndarray, a: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """C + A @ B with fp16 operands and fp32 accumulation."""
    a16 = np.asarray(a).astype(np.float16)
    b16 = np.asarray(b).astype(np.float16)
    return np.asarray(c, dtype=np.float32) + (
        a16.astype(np.float32) @ b16.astype(np.float32)
    )


def _load_tile(interp: Interpreter, call: E.Call, env, rows_i: int, cols_i: int):
    name_expr = call.args[0]
    if not isinstance(name_expr, E.StringImm):
        raise WMMAError("wmma load expects a buffer name as first argument")
    buf = interp.buffer(name_expr.value)
    base = interp.eval_int(call.args[1], env)
    stride = interp.eval_int(call.args[2], env)
    rows = interp.eval_int(call.args[rows_i], env)
    cols = interp.eval_int(call.args[cols_i], env)
    idx = tile_index(base, stride, rows, cols)
    if np.any(idx < 0) or np.any(idx >= buf.size):
        raise WMMAError(
            f"wmma load out of bounds on {buf.name!r}:"
            f" [{idx.min()}, {idx.max()}] vs size {buf.size}"
        )
    values = buf.gather(idx)
    interp.counters.add_load(
        memory_level(buf), idx.size * buf.dtype.bytes_per_lane()
    )
    return values.astype(np.float32, copy=False)


@register_intrinsic("wmma.fill.sync")
def _fill(interp: Interpreter, call: E.Call, env):
    m = interp.eval_int(call.args[0], env)
    n = interp.eval_int(call.args[1], env)
    value = interp.eval_expr(call.args[2], env)
    return np.full(m * n, value, dtype=np.float32)


@register_intrinsic("wmma.load.a.sync")
def _load_a(interp: Interpreter, call: E.Call, env):
    return _load_tile(interp, call, env, 3, 4)


@register_intrinsic("wmma.load.b.sync")
def _load_b(interp: Interpreter, call: E.Call, env):
    return _load_tile(interp, call, env, 3, 4)


@register_intrinsic("wmma.mma.sync")
def _mma(interp: Interpreter, call: E.Call, env):
    c = interp.eval_vector(call.args[0], env)
    a = interp.eval_vector(call.args[1], env)
    b = interp.eval_vector(call.args[2], env)
    m = interp.eval_int(call.args[3], env)
    n = interp.eval_int(call.args[4], env)
    k = interp.eval_int(call.args[5], env)
    check_shape(m, n, k)
    interp.counters.tensor_macs += m * n * k
    return mma_sync(
        np.asarray(c, np.float32).reshape(m, n),
        np.asarray(a, np.float32).reshape(m, k),
        np.asarray(b, np.float32).reshape(k, n),
    ).ravel()


@register_intrinsic("wmma.store.d.sync")
def _store_d(interp: Interpreter, call: E.Call, env):
    name_expr = call.args[0]
    if not isinstance(name_expr, E.StringImm):
        raise WMMAError("wmma store expects a buffer name as first argument")
    buf = interp.buffer(name_expr.value)
    base = interp.eval_int(call.args[1], env)
    stride = interp.eval_int(call.args[2], env)
    m = interp.eval_int(call.args[3], env)
    n = interp.eval_int(call.args[4], env)
    tile = interp.eval_vector(call.args[5], env)
    idx = tile_index(base, stride, m, n)
    if np.any(idx < 0) or np.any(idx >= buf.size):
        raise WMMAError(
            f"wmma store out of bounds on {buf.name!r}:"
            f" [{idx.min()}, {idx.max()}] vs size {buf.size}"
        )
    buf.scatter(idx, np.asarray(tile, dtype=buf.data.dtype))
    interp.counters.add_store(
        memory_level(buf), idx.size * buf.dtype.bytes_per_lane()
    )
    return np.float32(0.0)
