"""bfloat16 emulation on top of numpy.

numpy has no native bfloat16, so bf16 values are *stored* as float32 whose
mantissa has been truncated to bf16 precision.  Rounding uses
round-to-nearest-even on the upper 16 bits of the IEEE-754 float32
representation, which is what AMX / modern hardware implements.
"""

from __future__ import annotations

import numpy as np


def round_to_bfloat16(values: np.ndarray) -> np.ndarray:
    """Round float32 values to the nearest representable bfloat16.

    Returns float32 storage holding exactly-representable bf16 values.
    """
    f32 = np.asarray(values, dtype=np.float32)
    bits = f32.view(np.uint32)
    # round-to-nearest-even: add 0x7FFF + LSB of the upper half
    lsb = (bits >> 16) & 1
    rounded = bits + 0x7FFF + lsb
    truncated = rounded & np.uint32(0xFFFF0000)
    out = truncated.view(np.float32).copy()
    # NaN payloads must stay NaN (the rounding add can overflow them)
    nan_mask = np.isnan(f32)
    if np.any(nan_mask):
        out[nan_mask] = np.float32(np.nan)
    return out.reshape(f32.shape)


def is_bfloat16_exact(values: np.ndarray) -> np.ndarray:
    """True where a float32 value is exactly representable in bf16."""
    f32 = np.asarray(values, dtype=np.float32)
    bits = f32.view(np.uint32)
    return (bits & 0xFFFF) == 0


def bfloat16_ulp(value: float) -> float:
    """The distance to the next representable bf16 above ``value``."""
    f32 = np.float32(value)
    bits = f32.view(np.uint32) if isinstance(f32, np.ndarray) else np.array(
        [f32], dtype=np.float32
    ).view(np.uint32)
    step = np.uint32(0x10000)
    upper = (bits + step).view(np.float32)
    return float(upper[0] - f32)
