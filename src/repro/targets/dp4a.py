"""Functional simulator for int8 dot-product accelerators (VNNI/DP4A).

Models the 4-way int8 multiply-accumulate family — Intel AVX512-VNNI's
``VPDPBSSD``/AMX-INT8 and NVIDIA's ``DP4A``/IMMA — the way
:mod:`repro.targets.amx` models TDPBF16PS:

* an accumulator tile holds 16x16 int32 values;
* ``dp4a_matmul`` computes ``C += A @ B`` where A is 16x64 int8
  (row-major), B is 64x16 int8 in the *VNNI-4* layout (groups of four
  logical rows interleaved element-wise — ``KWayInterleave`` with
  ``k = 4``), and C is 16x16 int32;
* products are formed in int8, accumulated in int32 with wraparound (no
  saturation), exactly like the hardware instructions.

Unlike AMX tiles, DP4A accumulators live in ordinary vector registers:
reading one pointwise (the ``DP4A2Mem`` marker) is legal, which is how
quantized epilogues (bias add, ReLU, requantization) consume them.

Intrinsic signatures (as emitted by :mod:`repro.hardboiled`):

* ``dp4a_zero(rows, cols)``
* ``dp4a_load(buffer, base, row_stride, rows, cols)``
* ``dp4a_matmul(C, A, B_vnni4, m, n, k)``
* ``dp4a_store(buffer, base, row_stride, rows, cols, tile)``
"""

from __future__ import annotations

import numpy as np

from ..ir import expr as E
from ..runtime.interpreter import (
    Interpreter,
    memory_level,
    register_intrinsic,
    tile_index,
)

#: the interleave factor: one instruction consumes 4 int8 values per lane
K_GROUP = 4

#: architectural limits mirrored from the AMX tile file (a 64-byte row
#: holds 64 int8 or 16 int32 lanes)
MAX_ROWS = 16
MAX_BYTES_PER_ROW = 64

#: the dp4a_matmul macro-tile: C[16,16] i32 += A[16,64] i8 . B[64,16] i8
DP_M = 16
DP_N = 16
DP_K = 64


class DP4AError(RuntimeError):
    pass


def check_tile_shape(rows: int, cols: int, bytes_per_element: int) -> None:
    if rows > MAX_ROWS:
        raise DP4AError(f"DP4A tile rows {rows} > {MAX_ROWS}")
    if cols * bytes_per_element > MAX_BYTES_PER_ROW:
        raise DP4AError(
            f"DP4A tile row of {cols} x {bytes_per_element}B exceeds"
            f" {MAX_BYTES_PER_ROW} bytes"
        )


def vnni4_pack(b: np.ndarray) -> np.ndarray:
    """Pack a (K, N) matrix into the VNNI-4 layout (K/4, 4N).

    Groups of four rows are interleaved element-wise:
    ``vnni[p, 4j + t]`` holds ``b[4p + t, j]`` — the int8 analogue of
    AMX's pair-interleaved bf16 layout, produced by ``KWayInterleave``
    with ``k = 4``.
    """
    k, n = b.shape
    if k % K_GROUP != 0:
        raise DP4AError(f"VNNI-4 pack needs K divisible by 4, got {k}")
    out = np.empty((k // K_GROUP, K_GROUP * n), dtype=b.dtype)
    for t in range(K_GROUP):
        out[:, t::K_GROUP] = b[t::K_GROUP, :]
    return out


def vnni4_unpack(vnni: np.ndarray) -> np.ndarray:
    """Inverse of :func:`vnni4_pack`: (..., K/4, 4N) -> (..., K, N).

    Rank-polymorphic over leading axes so batched ``[B, K/4, 4N]``
    operands unpack in one call (batch-axis kernels).
    """
    kp, n4 = vnni.shape[-2], vnni.shape[-1]
    if n4 % K_GROUP != 0:
        raise DP4AError(f"VNNI-4 unpack needs 4N row length, got {n4}")
    n = n4 // K_GROUP
    out = np.empty(vnni.shape[:-2] + (kp * K_GROUP, n), dtype=vnni.dtype)
    for t in range(K_GROUP):
        out[..., t::K_GROUP, :] = vnni[..., :, t::K_GROUP]
    return out


def dp4a_mac(c: np.ndarray, a: np.ndarray, b_vnni4: np.ndarray) -> np.ndarray:
    """The dp4a macro-instruction: C += A @ unpack(B_vnni4), int8 inputs.

    Hardware multiplies int8 pairs and accumulates in int32 with
    wraparound; truncating the inputs to int8 here reproduces that
    behaviour for out-of-range values.

    Rank-polymorphic like :func:`repro.targets.amx.tdpbf16ps`: operands
    may carry a leading batch axis; the int8 truncation and int32
    wraparound apply elementwise per batch slice, bit-identical to the
    2-D call.
    """
    a8 = np.asarray(a).astype(np.int8).astype(np.int32)
    b = vnni4_unpack(np.asarray(b_vnni4).astype(np.int8)).astype(np.int32)
    if a8.shape[-1] != b.shape[-2]:
        raise DP4AError(
            f"dp4a_matmul shape mismatch: A {a8.shape} vs B {b.shape}"
        )
    return np.asarray(c, dtype=np.int32) + a8 @ b


# -- intrinsic handlers ---------------------------------------------------------


@register_intrinsic("dp4a_zero")
def _dp4a_zero(interp: Interpreter, call: E.Call, env):
    rows = interp.eval_int(call.args[0], env)
    cols = interp.eval_int(call.args[1], env)
    check_tile_shape(rows, cols, 4)
    return np.zeros(rows * cols, dtype=np.int32)


@register_intrinsic("dp4a_load")
def _dp4a_load(interp: Interpreter, call: E.Call, env):
    name_expr = call.args[0]
    if not isinstance(name_expr, E.StringImm):
        raise DP4AError("dp4a_load expects a buffer name as first argument")
    buf = interp.buffer(name_expr.value)
    base = interp.eval_int(call.args[1], env)
    stride = interp.eval_int(call.args[2], env)
    rows = interp.eval_int(call.args[3], env)
    cols = interp.eval_int(call.args[4], env)
    check_tile_shape(rows, cols, buf.dtype.bytes_per_lane())
    idx = tile_index(base, stride, rows, cols)
    if np.any(idx < 0) or np.any(idx >= buf.size):
        raise DP4AError(
            f"dp4a_load out of bounds on {buf.name!r}:"
            f" [{idx.min()}, {idx.max()}] vs size {buf.size}"
        )
    values = buf.gather(idx)
    interp.counters.add_load(
        memory_level(buf), idx.size * buf.dtype.bytes_per_lane()
    )
    return values.astype(np.int32, copy=False)


@register_intrinsic("dp4a_matmul")
def _dp4a_matmul(interp: Interpreter, call: E.Call, env):
    c = interp.eval_vector(call.args[0], env)
    a = interp.eval_vector(call.args[1], env)
    b = interp.eval_vector(call.args[2], env)
    m = interp.eval_int(call.args[3], env)
    n = interp.eval_int(call.args[4], env)
    k = interp.eval_int(call.args[5], env)
    if (m, n, k) != (DP_M, DP_N, DP_K):
        raise DP4AError(
            f"dp4a_matmul supports m{DP_M}n{DP_N}k{DP_K}, got m{m}n{n}k{k}"
        )
    c2 = np.asarray(c, dtype=np.int32).reshape(m, n)
    a2 = np.asarray(a).reshape(m, k)
    b2 = np.asarray(b).reshape(k // K_GROUP, K_GROUP * n)
    interp.counters.int8_macs += m * n * k
    return dp4a_mac(c2, a2, b2).ravel()


@register_intrinsic("dp4a_store")
def _dp4a_store(interp: Interpreter, call: E.Call, env):
    name_expr = call.args[0]
    if not isinstance(name_expr, E.StringImm):
        raise DP4AError("dp4a_store expects a buffer name as first argument")
    buf = interp.buffer(name_expr.value)
    base = interp.eval_int(call.args[1], env)
    stride = interp.eval_int(call.args[2], env)
    rows = interp.eval_int(call.args[3], env)
    cols = interp.eval_int(call.args[4], env)
    tile = interp.eval_vector(call.args[5], env)
    idx = tile_index(base, stride, rows, cols)
    if np.any(idx < 0) or np.any(idx >= buf.size):
        raise DP4AError(
            f"dp4a_store out of bounds on {buf.name!r}:"
            f" [{idx.min()}, {idx.max()}] vs size {buf.size}"
        )
    buf.scatter(idx, np.asarray(tile, dtype=buf.data.dtype))
    interp.counters.add_store(
        memory_level(buf), idx.size * buf.dtype.bytes_per_lane()
    )
    return np.int32(0)


@register_intrinsic("DP4A2Mem")
def _dp4a2mem(interp: Interpreter, call: E.Call, env):
    """Accumulator -> register read; identity in simulation.

    Survives selection when a quantized epilogue (bias, ReLU, requant)
    consumes an accumulator tile pointwise instead of via dp4a_store.
    """
    return interp.eval_expr(call.args[0], env)
