"""Device models used by the roofline performance model.

Numbers come from the sources the paper cites: the A100 whitepaper
(156 TFMA/s fp16 tensor throughput, 2 TB/s HBM) and the Ada whitepaper
scaled to the RTX 4070 SUPER's tensor-core count (36 TFMA/s, 504.2 GB/s)
— see paper §IV and footnote 6.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceSpec:
    """Peak rates for one device (FMA/s; a MAC/FMA is two FLOPs)."""

    name: str
    #: tensor-unit throughput, fp16/bf16 multiply-accumulates per second
    tensor_macs_per_s: float
    #: general-purpose (CUDA/SIMD) fp32 multiply-accumulates per second
    cuda_macs_per_s: float
    #: DRAM bandwidth, bytes per second
    dram_bytes_per_s: float
    #: aggregate L1/shared bandwidth, bytes per second
    l1_bytes_per_s: float
    #: fixed kernel-launch overhead per kernel, seconds
    launch_overhead_s: float = 3e-6
    #: int8 dot-product-unit throughput (VNNI/DP4A/IMMA), MACs per
    #: second; 0 means "unspecified" and falls back to the common 2x
    #: fp16 ratio via :meth:`int8_rate`
    int8_macs_per_s: float = 0.0

    def tensor_flops_per_s(self) -> float:
        return 2.0 * self.tensor_macs_per_s

    def cuda_flops_per_s(self) -> float:
        return 2.0 * self.cuda_macs_per_s

    def int8_rate(self) -> float:
        """int8 MAC throughput; every listed device doubles fp16."""
        return self.int8_macs_per_s or 2.0 * self.tensor_macs_per_s


#: Nvidia A100 80GB SXM (paper §IV: 156 TFMA/s fp16 tensor, 2 TB/s)
A100 = DeviceSpec(
    name="A100-SXM-80GB",
    tensor_macs_per_s=156e12,
    cuda_macs_per_s=9.75e12,  # 19.5 TFLOPS fp32
    dram_bytes_per_s=2.0e12,
    l1_bytes_per_s=19.4e12,  # 108 SM x 128 B/clk x 1.41 GHz
    int8_macs_per_s=312e12,  # 624 TOPS INT8 tensor (A100 whitepaper)
)

#: Nvidia GeForce RTX 4070 SUPER (paper footnote 6: 36 TFMA/s tensor,
#: 504.2 GB/s; CUDA fp32 throughput from the Ada whitepaper)
RTX4070S = DeviceSpec(
    name="RTX-4070-SUPER",
    tensor_macs_per_s=36e12,
    cuda_macs_per_s=17.7e12,  # 35.5 TFLOPS fp32
    dram_bytes_per_s=504.2e9,
    l1_bytes_per_s=17.8e12,  # 56 SM x 128 B/clk x 2.48 GHz
    int8_macs_per_s=72e12,  # Ada: INT8 tensor runs at 2x the fp16 rate
)

#: An AMX-capable Sapphire Rapids core complex (functional validation
#: target; the paper validates AMX through Intel SDE, not silicon)
SPR_AMX = DeviceSpec(
    name="SapphireRapids-AMX",
    tensor_macs_per_s=2e12,
    cuda_macs_per_s=0.5e12,
    dram_bytes_per_s=300e9,
    l1_bytes_per_s=6e12,
    launch_overhead_s=0.0,
    int8_macs_per_s=4e12,  # AMX-INT8 (TDPBSSD) doubles the bf16 rate
)

DEVICES = {spec.name: spec for spec in (A100, RTX4070S, SPR_AMX)}
