"""Functional simulator for Intel AMX (Advanced Matrix Extensions).

Models the architectural contract HARDBOILED's lowering rules rely on:

* tile registers hold up to 16 rows x 64 bytes (16x32 bf16, 16x16 fp32);
* ``TDPBF16PS`` computes ``C += A @ B`` where A is 16x32 bf16 (row-major),
  B is 16x32 bf16 in the *VNNI* layout (pairs of logical rows
  interleaved), and C is 16x16 fp32;
* ``tile_load``/``tile_store`` move tiles between memory and registers
  with a row base/stride addressing scheme.

Tiles flow through the interpreter as flattened numpy arrays (row-major),
so the simulator is value-oriented: each intrinsic consumes and produces
tile values.  The register-file limit (8 tiles) is checked by the
instruction selector, not here.

Intrinsic signatures (as emitted by :mod:`repro.hardboiled`):

* ``tile_zero(rows, cols)``
* ``tile_load(buffer, base, row_stride, rows, cols)``
* ``tile_matmul(C, A, B_vnni, m, n, k)`` — TDPBF16PS
* ``tile_store(buffer, base, row_stride, rows, cols, tile)``
"""

from __future__ import annotations

import numpy as np

from ..ir import expr as E
from ..runtime.interpreter import (
    Interpreter,
    memory_level,
    register_intrinsic,
    tile_index,
)
from .bfloat16 import round_to_bfloat16

#: architectural limits (Sapphire Rapids AMX)
MAX_ROWS = 16
MAX_BYTES_PER_ROW = 64
NUM_TILE_REGISTERS = 8

#: the TDPBF16PS tile shape: C[16,16] f32 += A[16,32] bf16 . B[32,16] bf16
TDP_M = 16
TDP_N = 16
TDP_K = 32


class AMXError(RuntimeError):
    pass


def check_tile_shape(rows: int, cols: int, bytes_per_element: int) -> None:
    if rows > MAX_ROWS:
        raise AMXError(f"AMX tile rows {rows} > {MAX_ROWS}")
    if cols * bytes_per_element > MAX_BYTES_PER_ROW:
        raise AMXError(
            f"AMX tile row of {cols} x {bytes_per_element}B exceeds"
            f" {MAX_BYTES_PER_ROW} bytes"
        )


def vnni_pack(b: np.ndarray) -> np.ndarray:
    """Pack a (K, N) matrix into the VNNI layout (K/2, 2N).

    Row pairs are interleaved element-wise: ``vnni[p, 2j + t]`` holds
    ``b[2p + t, j]``.
    """
    k, n = b.shape
    if k % 2 != 0:
        raise AMXError(f"VNNI pack needs even K, got {k}")
    out = np.empty((k // 2, 2 * n), dtype=b.dtype)
    out[:, 0::2] = b[0::2, :]
    out[:, 1::2] = b[1::2, :]
    return out


def vnni_unpack(vnni: np.ndarray) -> np.ndarray:
    """Inverse of :func:`vnni_pack`: (..., K/2, 2N) -> (..., K, N).

    Rank-polymorphic over leading axes, so a ``[B, K/2, 2N]`` stack of
    per-request operands unpacks in one call — the batch-axis kernels
    rely on this.
    """
    kp, n2 = vnni.shape[-2], vnni.shape[-1]
    if n2 % 2 != 0:
        raise AMXError(f"VNNI unpack needs even row length, got {n2}")
    n = n2 // 2
    out = np.empty(vnni.shape[:-2] + (kp * 2, n), dtype=vnni.dtype)
    out[..., 0::2, :] = vnni[..., :, 0::2]
    out[..., 1::2, :] = vnni[..., :, 1::2]
    return out


def tdpbf16ps(
    c: np.ndarray, a: np.ndarray, b_vnni: np.ndarray
) -> np.ndarray:
    """The TDPBF16PS instruction: C += A @ unpack(B_vnni), bf16 inputs.

    Hardware multiplies bf16 pairs and accumulates in fp32; rounding the
    inputs to bf16 here reproduces that precision.

    Rank-polymorphic: any operand may carry leading batch axes
    (``[B, m, k]`` etc.); mixed batched/shared operands broadcast the
    way ``np.matmul`` does, and each batch slice is bit-identical to
    the 2-D call on that slice.
    """
    a32 = round_to_bfloat16(np.asarray(a, dtype=np.float32))
    b = vnni_unpack(round_to_bfloat16(np.asarray(b_vnni, dtype=np.float32)))
    if a32.shape[-1] != b.shape[-2]:
        raise AMXError(
            f"TDPBF16PS shape mismatch: A {a32.shape} vs B {b.shape}"
        )
    return np.asarray(c, dtype=np.float32) + a32 @ b


# -- intrinsic handlers ---------------------------------------------------------


def _tile_args(interp: Interpreter, call: E.Call, env, n: int):
    return [interp.eval_expr(a, env) for a in call.args[:n]]


@register_intrinsic("tile_zero")
def _tile_zero(interp: Interpreter, call: E.Call, env):
    rows = interp.eval_int(call.args[0], env)
    cols = interp.eval_int(call.args[1], env)
    check_tile_shape(rows, cols, 4)
    return np.zeros(rows * cols, dtype=np.float32)


@register_intrinsic("tile_load")
def _tile_load(interp: Interpreter, call: E.Call, env):
    name_expr = call.args[0]
    if not isinstance(name_expr, E.StringImm):
        raise AMXError("tile_load expects a buffer name as first argument")
    buf = interp.buffer(name_expr.value)
    base = interp.eval_int(call.args[1], env)
    stride = interp.eval_int(call.args[2], env)
    rows = interp.eval_int(call.args[3], env)
    cols = interp.eval_int(call.args[4], env)
    check_tile_shape(rows, cols, buf.dtype.bytes_per_lane())
    idx = tile_index(base, stride, rows, cols)
    if np.any(idx < 0) or np.any(idx >= buf.size):
        raise AMXError(
            f"tile_load out of bounds on {buf.name!r}:"
            f" [{idx.min()}, {idx.max()}] vs size {buf.size}"
        )
    values = buf.gather(idx)
    interp.counters.add_load(
        memory_level(buf), idx.size * buf.dtype.bytes_per_lane()
    )
    return values.astype(np.float32, copy=False)


@register_intrinsic("tile_matmul")
def _tile_matmul(interp: Interpreter, call: E.Call, env):
    c = interp.eval_vector(call.args[0], env)
    a = interp.eval_vector(call.args[1], env)
    b = interp.eval_vector(call.args[2], env)
    m = interp.eval_int(call.args[3], env)
    n = interp.eval_int(call.args[4], env)
    k = interp.eval_int(call.args[5], env)
    if (m, n, k) != (TDP_M, TDP_N, TDP_K):
        raise AMXError(
            f"TDPBF16PS supports m{TDP_M}n{TDP_N}k{TDP_K}, got m{m}n{n}k{k}"
        )
    c2 = np.asarray(c, dtype=np.float32).reshape(m, n)
    a2 = np.asarray(a, dtype=np.float32).reshape(m, k)
    b2 = np.asarray(b, dtype=np.float32).reshape(k // 2, 2 * n)
    interp.counters.tensor_macs += m * n * k
    return tdpbf16ps(c2, a2, b2).ravel()


@register_intrinsic("tile_store")
def _tile_store(interp: Interpreter, call: E.Call, env):
    name_expr = call.args[0]
    if not isinstance(name_expr, E.StringImm):
        raise AMXError("tile_store expects a buffer name as first argument")
    buf = interp.buffer(name_expr.value)
    base = interp.eval_int(call.args[1], env)
    stride = interp.eval_int(call.args[2], env)
    rows = interp.eval_int(call.args[3], env)
    cols = interp.eval_int(call.args[4], env)
    tile = interp.eval_vector(call.args[5], env)
    idx = tile_index(base, stride, rows, cols)
    if np.any(idx < 0) or np.any(idx >= buf.size):
        raise AMXError(
            f"tile_store out of bounds on {buf.name!r}:"
            f" [{idx.min()}, {idx.max()}] vs size {buf.size}"
        )
    buf.scatter(idx, np.asarray(tile, dtype=buf.data.dtype))
    interp.counters.add_store(
        memory_level(buf), idx.size * buf.dtype.bytes_per_lane()
    )
    return np.float32(0.0)
