"""Hardware target simulators and device models."""

from .bfloat16 import is_bfloat16_exact, round_to_bfloat16

__all__ = ["is_bfloat16_exact", "round_to_bfloat16"]
