"""Static lint over codegen'd kernel source (scalar and batched).

The compiled backend emits plain Python (``def _kernel(buffers, env,
_interp, _arena)``); this lint parses that source with :mod:`ast` and
checks the invariants the emitter is supposed to maintain:

``kernels.arena-pairing``
    Every ``X = _take(...)``/``_take_b(...)`` allocation must have a
    matching ``_give(_arena, X)`` release (and vice versa).  A dropped
    give is a silent arena leak — under steady-state serving the pool
    grows without bound.
``kernels.nondeterminism``
    References to wall-clock, RNG, or identity-based sources
    (``time.*``, ``random.*``, ``os.*``, ``secrets``/``uuid``,
    ``hash``/``id``).  Kernels must be pure functions of their buffers
    and env — serving replays, retries, and the differential parity
    suite all assume bit-reproducibility.
``kernels.order-dependence``
    Iteration over an unordered collection (``set(...)``,
    ``globals()``/``vars()``/``dir()``) — output would depend on hash
    order, breaking cross-process reproducibility.
``kernels.env-key``
    An ``env[...]`` read of a key the execution plan does not publish.
    Plans publish ``{name}.stride.{d}`` for ``d > 0`` per bound buffer
    (:func:`repro.runtime.plan.stride_env`) plus ``batch.size`` on the
    batched path; any other read raises ``KeyError`` at serve time.

Interpreter-fallback kernels carry no source (``kernel.source is
None``) and are skipped — there is nothing static to check.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from .findings import ERROR, Finding

__all__ = ["lint_kernel", "lint_kernel_source"]

_TAKE_FUNCS = {"_take", "_take_b"}
_GIVE_FUNC = "_give"

#: module roots whose mere mention makes a kernel nondeterministic
_IMPURE_MODULES = {"time", "random", "secrets", "uuid", "os"}
#: builtins whose results depend on interpreter identity/hash state
_IMPURE_BUILTINS = {"hash", "id", "globals", "vars", "input"}
#: call results that are unordered collections
_UNORDERED_CALLS = {"set", "frozenset", "globals", "vars", "dir"}


def _call_root(node: ast.expr) -> Optional[str]:
    """The leftmost name of a call target (``time.time`` -> ``time``)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def lint_kernel_source(
    source: str,
    *,
    published_env: Optional[Iterable[str]] = None,
    batched: bool = False,
    context: str = "kernel",
) -> List[Finding]:
    """Lint one kernel's emitted source text.

    ``published_env`` is the set of env keys the caller's execution
    plan will provide; when ``None``, keys are checked against the
    publishable *shape* (``{name}.stride.{d>0}`` / ``batch.size``)
    instead of an exact set.
    """
    findings: List[Finding] = []
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                "kernels.syntax",
                ERROR,
                f"{context}:{exc.lineno}",
                f"emitted source does not parse: {exc.msg}",
                "this is an emitter bug — file it against runtime.codegen",
            )
        ]
    published: Optional[Set[str]] = (
        set(published_env) if published_env is not None else None
    )
    if published is not None and batched:
        published.add("batch.size")

    taken: dict = {}
    given: dict = {}

    for node in ast.walk(tree):
        # -- arena pairing ---------------------------------------------------
        if isinstance(node, ast.Assign) and isinstance(
            node.value, ast.Call
        ):
            root = _call_root(node.value.func)
            if root in _TAKE_FUNCS and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    taken[target.id] = node.lineno
        if isinstance(node, ast.Call):
            root = _call_root(node.func)
            if (
                root == _GIVE_FUNC
                and len(node.args) == 2
                and isinstance(node.args[1], ast.Name)
            ):
                given[node.args[1].id] = node.lineno

            # -- nondeterminism ---------------------------------------------
            if root in _IMPURE_BUILTINS and isinstance(node.func, ast.Name):
                findings.append(
                    Finding(
                        "kernels.nondeterminism",
                        ERROR,
                        f"{context}:{node.lineno}",
                        f"call to {root}() — result depends on interpreter"
                        " identity/hash state",
                        "compute the value at compile time and embed it as"
                        " a constant",
                    )
                )

        # -- impure module references ----------------------------------------
        if isinstance(node, ast.Name) and node.id in _IMPURE_MODULES:
            findings.append(
                Finding(
                    "kernels.nondeterminism",
                    ERROR,
                    f"{context}:{node.lineno}",
                    f"reference to module {node.id!r} — kernels must be"
                    " pure functions of (buffers, env)",
                    "remove the wall-clock/RNG/OS dependence; randomness"
                    " belongs in counted-RNG inputs",
                )
            )
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            names = [a.name.split(".")[0] for a in node.names]
            bad = sorted(set(names) & _IMPURE_MODULES)
            if bad:
                findings.append(
                    Finding(
                        "kernels.nondeterminism",
                        ERROR,
                        f"{context}:{node.lineno}",
                        f"import of impure module(s) {bad}",
                        "kernels may only use the injected helper globals",
                    )
                )

        # -- unordered iteration ---------------------------------------------
        if isinstance(node, (ast.For, ast.comprehension)):
            it = node.iter
            if isinstance(it, ast.Call):
                root = _call_root(it.func)
                if root in _UNORDERED_CALLS:
                    findings.append(
                        Finding(
                            "kernels.order-dependence",
                            ERROR,
                            f"{context}:{getattr(node, 'lineno', it.lineno)}",
                            f"iteration over {root}(...) — element order"
                            " depends on hash seeding",
                            "iterate a sorted() or insertion-ordered"
                            " collection instead",
                        )
                    )

        # -- env key reads ----------------------------------------------------
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == "env"
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            key = node.slice.value
            if published is not None:
                if key not in published:
                    findings.append(
                        Finding(
                            "kernels.env-key",
                            ERROR,
                            f"{context}:{node.lineno}",
                            f"env key {key!r} is not published by the"
                            " execution plan"
                            f" ({len(published)} published keys)",
                            "publish the key in stride_env or drop the"
                            " read",
                        )
                    )
            else:
                parts = key.rsplit(".stride.", 1)
                stride_ok = (
                    len(parts) == 2
                    and parts[1].isdigit()
                    and int(parts[1]) > 0
                )
                if not stride_ok and key != "batch.size":
                    findings.append(
                        Finding(
                            "kernels.env-key",
                            ERROR,
                            f"{context}:{node.lineno}",
                            f"env key {key!r} has no publishable form"
                            " (expected '<buffer>.stride.<d>' with d > 0,"
                            " or 'batch.size')",
                            "plans only publish positive-dimension strides"
                            " and the batch size",
                        )
                    )

    for name, lineno in taken.items():
        if name not in given:
            findings.append(
                Finding(
                    "kernels.arena-pairing",
                    ERROR,
                    f"{context}:{lineno}",
                    f"arena allocation {name} = _take(...) has no matching"
                    " _give — the buffer leaks out of the pool on every"
                    " call",
                    "emit _give(_arena, ...) at Allocate scope exit",
                )
            )
    for name, lineno in given.items():
        if name not in taken:
            findings.append(
                Finding(
                    "kernels.arena-pairing",
                    ERROR,
                    f"{context}:{lineno}",
                    f"_give(_arena, {name}) releases a buffer no _take in"
                    " this kernel produced",
                    "pair every give with the allocation that owns the"
                    " buffer",
                )
            )
    return findings


def lint_kernel(
    kernel,
    *,
    published_env: Optional[Iterable[str]] = None,
    batched: bool = False,
    context: str = "",
) -> List[Finding]:
    """Lint a :class:`~repro.runtime.codegen.CompiledKernel`.

    Interpreter-fallback kernels (``source is None``) produce no
    findings — they have no emitted source to check.
    """
    source = getattr(kernel, "source", None)
    if source is None:
        return []
    name = context or (getattr(kernel, "key", "") or "kernel")[:12]
    return lint_kernel_source(
        source,
        published_env=published_env,
        batched=batched,
        context=name,
    )
