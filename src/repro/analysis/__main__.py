"""CLI: ``python -m repro.analysis [--all | sections...]``.

Sections:

* ``rules`` — soundness lint over every registered rewrite family
* ``concurrency`` — guarded-by discipline in the serving/runtime modules
* ``ir`` / ``kernels`` — compile the analysis app set and verify the
  lowered + tensorized IR and the emitted (scalar and batched) kernels

``--all`` (also the default with no sections) runs everything.
``--fig6`` widens the app set from the quick pair to the full fig-6
suite.  Exit status is 1 when any error-severity finding survives,
0 otherwise (warnings never fail the gate).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

from .findings import Finding, errors, format_findings, warnings
from .lint_concurrency import lint_concurrency
from .lint_rules import lint_rules
from .sweep import FIG6_APPS, QUICK_APPS, sweep


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="static verification over the compile/serve stack",
    )
    parser.add_argument(
        "sections",
        nargs="*",
        metavar="section",
        help="rules | concurrency | ir | kernels (default: all)",
    )
    parser.add_argument(
        "--all", action="store_true", help="run every analyzer"
    )
    parser.add_argument(
        "--fig6",
        action="store_true",
        help="verify the full fig-6 app suite (slower) instead of the"
        " quick pair",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit findings as JSON"
    )
    args = parser.parse_args(argv)

    valid = {"rules", "concurrency", "ir", "kernels"}
    sections = set(args.sections)
    unknown = sections - valid
    if unknown:
        parser.error(f"unknown section(s) {sorted(unknown)}")
    if args.all or not sections:
        sections = {"rules", "concurrency", "ir", "kernels"}

    findings: List[Finding] = []
    if "rules" in sections:
        findings.extend(lint_rules())
    if "concurrency" in sections:
        findings.extend(lint_concurrency())
    if sections & {"ir", "kernels"}:
        # one sweep covers both: verify_ir on the lowered/tensorized
        # statements and the kernel lint on their emitted source
        apps = FIG6_APPS if args.fig6 else QUICK_APPS
        findings.extend(sweep(apps))

    if args.json:
        print(
            json.dumps(
                [f.__dict__ for f in findings], indent=2, sort_keys=True
            )
        )
    elif findings:
        print(format_findings(findings))

    n_errors = len(errors(findings))
    n_warnings = len(warnings(findings))
    print(
        f"repro.analysis: {len(sections)} section(s),"
        f" {n_errors} error(s), {n_warnings} warning(s)"
    )
    return 1 if n_errors else 0


if __name__ == "__main__":
    sys.exit(main())
