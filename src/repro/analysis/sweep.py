"""Whole-pipeline analysis sweeps: verify and lint real applications.

``analyze_app`` runs one fig-6 application through the full static
pipeline — lower, verify the lowered IR, select instructions (tensor
variant), verify the tensorized IR, compile the scalar kernel and lint
its source against the plan's published env, then attempt the
batch-axis kernel and lint that too.  ``sweep`` fans it over an app
list; the CLI and the clean-run self-test are both built on it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .findings import Finding
from .lint_kernels import lint_kernel
from .verify_ir import verify_ir

#: (module name, params) — small instances for the CLI's quick gate
QUICK_APPS: Sequence[Tuple[str, Dict]] = (
    ("conv1d", {"taps": 8, "rows": 1}),
    ("matmul", {"n": 32}),
)

#: the fig-6 suite at the test sizes used across the repo's test suite
FIG6_APPS: Sequence[Tuple[str, Dict]] = (
    ("conv1d", {"taps": 16, "rows": 1}),
    ("conv2d", {"taps": 16, "width": 512, "rows": 4}),
    ("downsample", {"taps": 16, "width": 256, "rows": 4}),
    ("upsample", {"width": 256, "rows": 2}),
    ("matmul", {"n": 64}),
    ("conv_layer", {"rows": 2}),
    ("attention", {"length": 128}),
)

VARIANTS = ("cuda", "tensor")


def analyze_app(
    module_name: str,
    params: Optional[Dict] = None,
    variant: str = "tensor",
) -> List[Finding]:
    """Run every applicable analyzer over one application."""
    import importlib

    from ..hardboiled import select_instructions
    from ..lowering import lower
    from ..runtime.buffer import Buffer
    from ..runtime.codegen import (
        CodegenError,
        compile_batched_stmt,
        compile_stmt,
    )
    from ..runtime.kernel_cache import fingerprint_stmt
    from ..runtime.plan import bind_inputs, stride_env

    module = importlib.import_module(f"repro.apps.{module_name}")
    app = module.build(variant, **(params or {}))
    label = f"{module_name}[{variant}]"
    findings: List[Finding] = []

    lowered = lower(app.output)
    findings.extend(
        verify_ir(
            lowered.stmt,
            lowered.realizations,
            phase="lowered",
            context=label,
        )
    )
    if variant == "tensor":
        lowered, _ = select_instructions(lowered, strict=True)
        findings.extend(
            verify_ir(
                lowered.stmt,
                lowered.realizations,
                phase="tensorized",
                context=label,
            )
        )

    # published env keys for the exact buffers a run would bind
    buffers, _ = bind_inputs(app.inputs)
    output = app.output
    info = lowered.realizations[output.name]
    from ..ir import as_int

    buffers[output.name] = Buffer(
        output.name,
        output.dtype.element_of(),
        tuple(as_int(e) for e in info.extents),
        is_external=True,
    )
    published = set(stride_env(buffers))

    kernel = compile_stmt(
        lowered.stmt, key=fingerprint_stmt(lowered.stmt)
    )
    findings.extend(
        lint_kernel(
            kernel, published_env=published, context=f"{label}/kernel"
        )
    )

    stacked = frozenset(buffers)
    try:
        batched = compile_batched_stmt(lowered.stmt, stacked)
    except CodegenError:
        batched = None  # unbatchable split: the looped path serves it
    if batched is not None:
        findings.extend(
            lint_kernel(
                batched,
                published_env=published,
                batched=True,
                context=f"{label}/bkernel",
            )
        )
    return findings


def sweep(
    apps: Sequence[Tuple[str, Dict]] = QUICK_APPS,
    variants: Sequence[str] = VARIANTS,
) -> List[Finding]:
    """Analyze every (app, variant) combination; returns all findings."""
    findings: List[Finding] = []
    for module_name, params in apps:
        for variant in variants:
            findings.extend(analyze_app(module_name, params, variant))
    return findings
