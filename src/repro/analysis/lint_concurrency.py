"""Guarded-by discipline checking for the lock-heavy runtime modules.

Fields annotated with a ``# guarded-by: <lock>`` comment — on the
assignment line or the line directly above, in ``__init__`` or as a
dataclass field — must only be touched inside a matching ``with
self.<lock>:`` block::

    self.hits = 0          # guarded-by: _lock
    ...
    with self._lock:
        self.hits += 1     # ok
    self.hits += 1         # concurrency.guarded-by finding

Conventions honored:

* methods whose name ends in ``_locked`` assume their caller already
  holds the lock (the :class:`~repro.service.supervisor.WorkerPool`
  idiom) and are not checked;
* ``__init__``/``__post_init__`` are construction — the object is not
  yet published to other threads, so unguarded writes there are fine;
* a deliberate unguarded access is waived in place with
  ``# analysis: ignore[guarded-by]`` (counted, not silently dropped).

Checks:

``concurrency.guarded-by``
    A guarded field read or written outside its lock.
``concurrency.unknown-lock``
    A ``guarded-by`` annotation naming a lock the class never assigns.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .findings import ERROR, WARNING, Finding, parse_waivers

__all__ = ["lint_source", "lint_file", "lint_concurrency", "DEFAULT_MODULES"]

_GUARD_RE = re.compile(r"#\s*guarded-by:\s*(\w+)")

_PKG_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: the modules whose locking discipline the repo commits to
DEFAULT_MODULES = (
    os.path.join(_PKG_ROOT, "service", "serve.py"),
    os.path.join(_PKG_ROOT, "service", "supervisor.py"),
    os.path.join(_PKG_ROOT, "service", "faults.py"),
    os.path.join(_PKG_ROOT, "service", "shm.py"),
    os.path.join(_PKG_ROOT, "service", "router.py"),
    os.path.join(_PKG_ROOT, "runtime", "kernel_cache.py"),
    os.path.join(_PKG_ROOT, "runtime", "executor.py"),
)

_CONSTRUCTORS = {"__init__", "__post_init__"}


def _guard_comments(source: str) -> Dict[int, "Tuple[str, bool]"]:
    """line number (1-based) -> (lock name, comment stands alone).

    An inline comment annotates the assignment on its own line only; a
    standalone comment line annotates the assignment directly below.
    """
    out: Dict[int, Tuple[str, bool]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _GUARD_RE.search(line)
        if match:
            out[lineno] = (match.group(1), line.lstrip().startswith("#"))
    return out


def _self_attr(node: ast.expr) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _ClassLint:
    def __init__(
        self,
        cls: ast.ClassDef,
        comments: Dict[int, str],
        filename: str,
    ) -> None:
        self.cls = cls
        self.comments = comments
        self.filename = filename
        self.guards: Dict[str, str] = {}  # field -> lock
        self.guard_lines: Dict[str, int] = {}
        self.assigned: Set[str] = set()
        self.findings: List[Finding] = []

    def _guard_for_line(self, lineno: int) -> Optional[str]:
        entry = self.comments.get(lineno)
        if entry is not None:
            return entry[0]
        above = self.comments.get(lineno - 1)
        if above is not None and above[1]:
            return above[0]
        return None

    def collect(self) -> None:
        for node in self.cls.body:
            # dataclass-style class-level field: ``x: int = 0  # guarded-by``
            if isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                self.assigned.add(node.target.id)
                lock = self._guard_for_line(node.lineno)
                if lock:
                    self.guards[node.target.id] = lock
                    self.guard_lines[node.target.id] = node.lineno
        for node in ast.walk(self.cls):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for target in targets:
                attr = _self_attr(target)
                if attr is None:
                    continue
                self.assigned.add(attr)
                lock = self._guard_for_line(target.lineno)
                if lock:
                    self.guards.setdefault(attr, lock)
                    self.guard_lines.setdefault(attr, target.lineno)

    def check(self) -> List[Finding]:
        self.collect()
        if not self.guards:
            return self.findings
        for field, lock in sorted(self.guards.items()):
            if lock not in self.assigned:
                self.findings.append(
                    Finding(
                        "concurrency.unknown-lock",
                        WARNING,
                        f"{self.filename}:{self.guard_lines[field]}",
                        f"{self.cls.name}.{field} is guarded-by"
                        f" {lock!r}, but the class never assigns"
                        f" self.{lock}",
                        "fix the annotation or create the lock in"
                        " __init__",
                    )
                )
        for node in self.cls.body:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                if node.name in _CONSTRUCTORS:
                    continue
                if node.name.endswith("_locked"):
                    continue  # caller-holds-lock convention
                self._check_scope(node, node.name, frozenset())
        return self.findings

    def _check_scope(
        self, node: ast.AST, method: str, held: frozenset
    ) -> None:
        if isinstance(node, ast.With):
            acquired = set()
            for item in node.items:
                attr = _self_attr(item.context_expr)
                if attr is not None:
                    acquired.add(attr)
            inner = held | frozenset(acquired)
            for item in node.items:
                self._check_scope(item.context_expr, method, held)
            for child in node.body:
                self._check_scope(child, method, inner)
            return
        if isinstance(node, ast.Attribute):
            attr = _self_attr(node)
            if attr is not None:
                lock = self.guards.get(attr)
                if lock is not None and lock not in held:
                    self.findings.append(
                        Finding(
                            "concurrency.guarded-by",
                            ERROR,
                            f"{self.filename}:{node.lineno}",
                            f"{self.cls.name}.{method} accesses"
                            f" self.{attr} (guarded-by {lock})"
                            f" without holding self.{lock}",
                            f"wrap the access in 'with self.{lock}:' or"
                            " waive it with"
                            " '# analysis: ignore[guarded-by]'",
                        )
                    )
        for child in ast.iter_child_nodes(node):
            self._check_scope(child, method, held)


def lint_source(
    source: str, filename: str = "<module>"
) -> List[Finding]:
    """Lint one module's source text for guarded-by violations."""
    comments = _guard_comments(source)
    waivers = parse_waivers(source)
    tree = ast.parse(source)
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            findings.extend(
                _ClassLint(node, comments, filename).check()
            )

    def line_of(finding: Finding) -> Optional[int]:
        _, _, tail = finding.site.rpartition(":")
        return int(tail) if tail.isdigit() else None

    kept = []
    for finding in findings:
        line = line_of(finding)
        if line is not None and waivers.waived(line, finding.check):
            continue
        kept.append(finding)
    return kept


def lint_file(path: str) -> List[Finding]:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, filename=os.path.basename(path))


def lint_concurrency(
    paths: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint the locking discipline of the serving/runtime modules."""
    findings: List[Finding] = []
    for path in paths or DEFAULT_MODULES:
        findings.extend(lint_file(path))
    return findings
