"""Soundness lint over the registered rewrite-rule families.

Rules are declarative s-expr programs (:mod:`repro.eqsat.rules`), so
most soundness properties are statically checkable from the atom and
action structure alone:

``rules.unbound-rhs``
    An action (Let/Union/Fact) references a variable no query atom
    binds.  The engine would raise :class:`MatchError` the first time
    the rule fires — this lint reports it before saturation ever runs.
``rules.unbound-guard``
    A comparison guard reads a variable that is not yet bound at its
    position in the query (a ``(= x expr)`` guard with exactly one
    unbound top-level variable *binds* it, egglog-style, and is fine).
``rules.impure-guard``
    A guard whose operator is outside the pure comparison set
    (:data:`repro.eqsat.rules.COMPARISON_OPS`) or whose argument
    patterns apply heads outside :data:`repro.eqsat.pattern.PRIMITIVE_OPS`
    — anything else could observe or mutate engine state mid-match.
``rules.delta-safety``
    The compiled program's ``delta_safe``/``depth`` classification
    disagrees with what the query's structure implies.  A rule wrongly
    marked delta-safe silently *misses matches* under incremental
    saturation; a wrong closure depth has the same effect.
``rules.shadowed-lhs``
    Two rules in one family share a canonical query (same atoms modulo
    variable renaming) — the later rule can never contribute a match
    the earlier one did not already make.
``rules.trivial-rewrite``
    A union action whose two sides are the same pattern — a dead rule.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..eqsat.ematch import CompiledQuery
from ..eqsat.pattern import (
    PRIMITIVE_OPS,
    PApp,
    PLit,
    PVar,
    Pattern,
    pattern_depth,
    pattern_var_depths,
    pattern_vars,
)
from ..eqsat.rules import (
    COMPARISON_OPS,
    FactAction,
    GuardAtom,
    LetAction,
    RelAtom,
    Rule,
    TermAtom,
    UnionAction,
)
from .findings import ERROR, WARNING, Finding

__all__ = [
    "lint_rule",
    "lint_family",
    "lint_rules",
    "expected_delta_safe",
    "expected_depth",
]


def _canon(pattern: Pattern, names: Dict[str, str]) -> Tuple:
    """Hashable canonical form with variables renamed by first use."""
    if isinstance(pattern, PVar):
        if pattern.name not in names:
            names[pattern.name] = f"v{len(names)}"
        return ("var", names[pattern.name])
    if isinstance(pattern, PLit):
        return ("lit", pattern.kind, pattern.value)
    return (
        "app",
        pattern.head,
        tuple(_canon(a, names) for a in pattern.args),
    )


def canonical_query(rule: Rule) -> Tuple:
    names: Dict[str, str] = {}

    def canon_var(name: Optional[str]) -> Optional[str]:
        if name is None:
            return None
        if name not in names:
            names[name] = f"v{len(names)}"
        return names[name]

    parts: List[Tuple] = []
    for atom in rule.query:
        if isinstance(atom, TermAtom):
            parts.append(
                ("term", canon_var(atom.var), _canon(atom.pattern, names))
            )
        elif isinstance(atom, RelAtom):
            parts.append(
                (
                    "rel",
                    atom.name,
                    tuple(_canon(a, names) for a in atom.args),
                )
            )
        elif isinstance(atom, GuardAtom):
            parts.append(
                (
                    "guard",
                    atom.op,
                    tuple(_canon(a, names) for a in atom.args),
                )
            )
    return tuple(parts)


def expected_delta_safe(query: Sequence) -> bool:
    """The delta-safety classification the query's structure implies.

    Mirrors the analysis in :func:`repro.eqsat.ematch.compile_query`;
    the lint cross-checks the compiled program against this independent
    recomputation.
    """
    first = query[0] if query else None
    if not (
        isinstance(first, TermAtom)
        and isinstance(first.pattern, PApp)
        and first.pattern.head not in PRIMITIVE_OPS
    ):
        return False
    structural = pattern_vars(first.pattern)
    if first.var is not None:
        structural.add(first.var)
    for atom in query[1:]:
        if isinstance(atom, TermAtom):
            if atom.var is None or atom.var not in structural:
                return False
            structural |= pattern_vars(atom.pattern)
        elif isinstance(atom, RelAtom):
            arg_vars = {
                a.name for a in atom.args if isinstance(a, PVar)
            }
            if not all(
                isinstance(a, (PVar, PLit)) for a in atom.args
            ) or not (arg_vars & structural):
                return False
    return True


def expected_depth(query: Sequence) -> int:
    """The dirty-closure depth the query's structure implies."""
    depth = 0
    var_depth: Dict[str, int] = {}
    for atom in query:
        if isinstance(atom, TermAtom):
            base = 0
            if atom.var is not None and atom.var in var_depth:
                base = var_depth[atom.var]
            elif atom.var is not None:
                var_depth[atom.var] = 0
            depth = max(depth, base + pattern_depth(atom.pattern))
            pattern_var_depths(atom.pattern, base, var_depth)
        elif isinstance(atom, RelAtom):
            for arg in atom.args:
                if isinstance(arg, PVar):
                    depth = max(depth, var_depth.get(arg.name, 0))
    return max(depth, 1)


def _pure_guard_args(args: Iterable[Pattern]) -> bool:
    for arg in args:
        if isinstance(arg, PApp):
            if arg.head not in PRIMITIVE_OPS:
                return False
            if not _pure_guard_args(arg.args):
                return False
    return True


def lint_rule(
    rule: Rule,
    *,
    family: str = "",
    compiled: Optional[CompiledQuery] = None,
) -> List[Finding]:
    """Lint one rule.  ``compiled`` overrides ``rule.compiled()`` (the
    mutation self-test passes tampered programs through here)."""
    findings: List[Finding] = []
    site = f"{family}/{rule.name}" if family else rule.name

    # -- binding simulation, atom by atom ------------------------------------
    bound: set = set()
    for atom in rule.query:
        if isinstance(atom, TermAtom):
            bound |= pattern_vars(atom.pattern)
            if atom.var is not None:
                bound.add(atom.var)
        elif isinstance(atom, RelAtom):
            for arg in atom.args:
                bound |= pattern_vars(arg)
        elif isinstance(atom, GuardAtom):
            if atom.op not in COMPARISON_OPS or not _pure_guard_args(
                atom.args
            ):
                findings.append(
                    Finding(
                        "rules.impure-guard",
                        ERROR,
                        site,
                        f"guard ({atom.op} ...) uses operators outside the"
                        " pure comparison/primitive set"
                        f" ({sorted(COMPARISON_OPS)} over"
                        f" {sorted(PRIMITIVE_OPS)})",
                        "express the side condition with pure comparisons"
                        " over primitive arithmetic",
                    )
                )
            unbound = [
                a.name
                for a in atom.args
                if isinstance(a, PVar) and a.name not in bound
            ]
            nested_unbound = set()
            for arg in atom.args:
                if not isinstance(arg, PVar):
                    nested_unbound |= pattern_vars(arg) - bound
            if atom.op == "=" and len(unbound) == 1 and not nested_unbound:
                # (= x expr): primitive evaluation binds x
                bound.add(unbound[0])
            elif unbound or nested_unbound:
                missing = sorted(set(unbound) | nested_unbound)
                findings.append(
                    Finding(
                        "rules.unbound-guard",
                        ERROR,
                        site,
                        f"guard ({atom.op} ...) reads unbound"
                        f" variable(s) {missing}",
                        "bind them with an earlier term/relation atom",
                    )
                )

    # -- actions: every referenced variable must be bound --------------------
    def check_action_pattern(pattern: Pattern, what: str) -> None:
        missing = sorted(pattern_vars(pattern) - bound)
        if missing:
            findings.append(
                Finding(
                    "rules.unbound-rhs",
                    ERROR,
                    site,
                    f"{what} references unbound variable(s) {missing}",
                    "bind them on the LHS (query atoms) or with an"
                    " earlier let action",
                )
            )

    for action in rule.actions:
        if isinstance(action, LetAction):
            check_action_pattern(action.pattern, f"let {action.name}")
            bound.add(action.name)
        elif isinstance(action, UnionAction):
            check_action_pattern(action.a, "union lhs")
            check_action_pattern(action.b, "union rhs")
            # the rewrite() sugar unions through a root variable; chase
            # one level of TermAtom binding so (union __root lhs) with
            # __root matched against lhs is recognized as trivial
            term_bindings = {
                atom.var: atom.pattern
                for atom in rule.query
                if isinstance(atom, TermAtom) and atom.var is not None
            }

            def _resolve(pattern: Pattern) -> Pattern:
                if isinstance(pattern, PVar):
                    return term_bindings.get(pattern.name, pattern)
                return pattern

            names: Dict[str, str] = {}
            if _canon(_resolve(action.a), names) == _canon(
                _resolve(action.b), dict(names)
            ):
                findings.append(
                    Finding(
                        "rules.trivial-rewrite",
                        WARNING,
                        site,
                        "union of a pattern with itself — the rule can"
                        " never change the e-graph",
                        "delete the rule or fix its RHS",
                    )
                )
        elif isinstance(action, FactAction):
            for arg in action.args:
                check_action_pattern(arg, f"fact {action.name}")

    # -- compiled-program consistency ---------------------------------------
    if compiled is None:
        try:
            compiled = rule.compiled()
        except Exception:
            compiled = None  # unbound-rhs findings above already explain it
    if compiled is not None:
        want_safe = expected_delta_safe(rule.query)
        want_depth = expected_depth(rule.query)
        if bool(compiled.delta_safe) != want_safe:
            findings.append(
                Finding(
                    "rules.delta-safety",
                    ERROR,
                    site,
                    f"compiled program says delta_safe={compiled.delta_safe}"
                    f" but the query structure implies {want_safe};"
                    " incremental saturation would miss matches",
                    "recompile the rule (stale cached program?) or fix the"
                    " safety analysis",
                )
            )
        if compiled.depth != want_depth:
            findings.append(
                Finding(
                    "rules.delta-safety",
                    ERROR,
                    site,
                    f"compiled closure depth {compiled.depth} != structural"
                    f" depth {want_depth}; delta scans would anchor at the"
                    " wrong level",
                    "recompile the rule or fix the depth analysis",
                )
            )
    return findings


def lint_family(
    name: str, rules: Sequence[Rule]
) -> List[Finding]:
    """Lint one rule family, including cross-rule shadowing."""
    findings: List[Finding] = []
    seen: Dict[Tuple, str] = {}
    for rule in rules:
        findings.extend(lint_rule(rule, family=name))
        key = canonical_query(rule)
        if key in seen and seen[key] != rule.name:
            findings.append(
                Finding(
                    "rules.shadowed-lhs",
                    WARNING,
                    f"{name}/{rule.name}",
                    f"query is identical (modulo renaming) to earlier rule"
                    f" {seen[key]!r}; this rule is shadowed",
                    "merge the rules or differentiate their queries",
                )
            )
        else:
            seen.setdefault(key, rule.name)
    return findings


def lint_rules(families=None) -> List[Finding]:
    """Lint every registered rule family.

    ``families`` maps name -> rule list; defaults to the app families
    registered in :data:`repro.hardboiled.tile_extractor._APP_RULES`
    plus the axiomatic base rules.
    """
    if families is None:
        from ..hardboiled import tile_extractor as tx

        families = {}
        base = getattr(tx, "axiomatic_rules", None)
        if base is not None:
            rules = base()
            families["axiomatic"] = (
                rules[0] if isinstance(rules, tuple) else rules
            )
        for kind, factory in tx._APP_RULES.items():
            rules = factory()
            families[kind] = (
                rules[0] if isinstance(rules, tuple) else rules
            )
    findings: List[Finding] = []
    for name, rules in families.items():
        findings.extend(lint_family(name, list(rules)))
    return findings
