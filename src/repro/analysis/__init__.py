"""Static verification: catch whole defect classes before anything runs.

Four analyzers over four layers of the stack, one diagnostic currency
(:class:`Finding`), one CLI (``python -m repro.analysis``):

================  =====================================================
analyzer          defect classes
================  =====================================================
:mod:`.verify_ir`        use-before-def, out-of-bounds indices, scope
                         and type violations, illegal accumulator
                         access in lowered/tensorized IR
:mod:`.lint_rules`       unbound RHS variables, impure guards, wrong
                         delta-safety classification, shadowed/dead
                         rewrite rules
:mod:`.lint_kernels`     arena take/give leaks, nondeterminism, and
                         unpublished env keys in emitted kernel source
:mod:`.lint_concurrency` guarded-by discipline violations in the
                         serving/runtime locking
================  =====================================================

Gates: ``lower(..., verify=True)``, ``select_instructions(...,
verify=True)``, and the warm-start artifact restore
(:func:`repro.service.compile.warm_select`, default **on**) all call
:func:`check_ir`; a stale or corrupt artifact therefore fails
verification and recompiles cold instead of poisoning the serving
process.
"""

from .findings import (
    ERROR,
    WARNING,
    AnalysisError,
    Finding,
    apply_waivers,
    errors,
    format_findings,
    parse_waivers,
    raise_on_errors,
    warnings,
)
from .lint_concurrency import (
    DEFAULT_MODULES,
    lint_concurrency,
    lint_file,
    lint_source,
)
from .lint_kernels import lint_kernel, lint_kernel_source
from .lint_rules import lint_family, lint_rule, lint_rules
from .sweep import FIG6_APPS, QUICK_APPS, analyze_app, sweep
from .verify_ir import check_ir, verify_ir

__all__ = [
    "ERROR",
    "WARNING",
    "AnalysisError",
    "Finding",
    "apply_waivers",
    "errors",
    "format_findings",
    "parse_waivers",
    "raise_on_errors",
    "verify_ir",
    "check_ir",
    "lint_rules",
    "lint_rule",
    "lint_family",
    "lint_kernel",
    "lint_kernel_source",
    "lint_concurrency",
    "lint_file",
    "lint_source",
    "DEFAULT_MODULES",
    "analyze_app",
    "sweep",
    "QUICK_APPS",
    "FIG6_APPS",
]
