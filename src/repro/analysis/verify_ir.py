"""IR well-formedness verification (lowered and tensorized statements).

``verify_ir`` walks a statement once and reports structural defects the
dynamic test suite can only catch by accident:

``ir.use-before-def``
    A :class:`~repro.ir.expr.Variable` read with no enclosing
    ``For``/``Let``/``LetStmt`` binding and no published env key
    (``{name}.stride.{d}``, ``batch.size``) to resolve it at run time.
``ir.env-stride-zero``
    A ``{name}.stride.0`` variable — :func:`repro.runtime.plan.stride_env`
    publishes strides for dimensions ``d > 0`` only, so this key can
    never resolve.
``ir.undeclared-buffer``
    A ``Store`` into a buffer that is neither realized nor bound by an
    enclosing ``Allocate`` (loads from unknown names are treated as
    external inputs and allowed).
``ir.allocate-shadow``
    A nested ``Allocate`` reusing an in-scope allocation's name.
``ir.out-of-bounds``
    A ``Load``/``Store`` whose index interval (over loop ranges and let
    bindings) provably escapes the buffer's constant flat extent.
``ir.type-mismatch``
    A ``Store`` whose value kind (int vs float) disagrees with the
    buffer's declared element type; a bits-only disagreement is a
    warning (stores round/cast, e.g. f32 values into bf16 buffers).
``ir.unencodable-type``
    An accelerator-scheduled buffer whose element type has no
    e-graph encoding head (:data:`repro.hardboiled.encode._TYPE_HEADS`)
    — instruction selection could never map it.
``ir.accumulator-access``
    *(tensorized phase only)* a plain ``Load``/``Store`` on a buffer
    with an accelerator memory type; after selection those buffers are
    only legal as intrinsic operands (the ``*2Mem`` movement path).

``phase`` selects which rules apply: ``"lowered"`` statements still
carry plain stores into accelerator-scheduled buffers (selection has
not run), so the accumulator rule is deferred to ``"tensorized"``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Set, Tuple

from ..ir import expr as E
from ..ir import stmt as S
from ..ir.expr import EXPR_CHILDREN
from ..ir.stmt import STMT_CHILDREN
from ..ir.types import DataType, TypeCode
from .findings import ERROR, WARNING, Finding, raise_on_errors

_STRIDE_RE = re.compile(r"^(?P<buf>.+)\.stride\.(?P<dim>\d+)$")

#: element types the e-graph encoder has heads for (kept in sync with
#: repro.hardboiled.encode._TYPE_HEADS by test_analysis)
ENCODABLE_TYPES: Set[Tuple[TypeCode, int]] = {
    (TypeCode.FLOAT, 64),
    (TypeCode.FLOAT, 32),
    (TypeCode.FLOAT, 16),
    (TypeCode.BFLOAT, 16),
    (TypeCode.INT, 8),
    (TypeCode.INT, 16),
    (TypeCode.INT, 32),
    (TypeCode.INT, 64),
    (TypeCode.UINT, 8),
    (TypeCode.UINT, 1),
}

_INT_KINDS = (TypeCode.INT, TypeCode.UINT)

Interval = Optional[Tuple[int, int]]


def _add(a: Interval, b: Interval) -> Interval:
    if a is None or b is None:
        return None
    return (a[0] + b[0], a[1] + b[1])


def _sub(a: Interval, b: Interval) -> Interval:
    if a is None or b is None:
        return None
    return (a[0] - b[1], a[1] - b[0])


def _mul(a: Interval, b: Interval) -> Interval:
    if a is None or b is None:
        return None
    products = (a[0] * b[0], a[0] * b[1], a[1] * b[0], a[1] * b[1])
    return (min(products), max(products))


def _union(a: Interval, b: Interval) -> Interval:
    if a is None or b is None:
        return None
    return (min(a[0], b[0]), max(a[1], b[1]))


class _BufferInfo:
    """What the verifier knows about one declared buffer."""

    __slots__ = ("size", "dtype", "memory_type")

    def __init__(
        self,
        size: Optional[int],
        dtype: Optional[DataType],
        memory_type: S.MemoryType,
    ) -> None:
        self.size = size
        self.dtype = dtype
        self.memory_type = memory_type


def _const_size(extents) -> Optional[int]:
    size = 1
    for extent in extents:
        if isinstance(extent, E.IntImm):
            size *= extent.value
        else:
            return None
    return size


class _Verifier:
    def __init__(
        self,
        realizations,
        phase: str,
        context: str,
        allowed_env: Set[str],
        unmapped: Set[str],
    ) -> None:
        self.phase = phase
        self.context = context
        self.allowed_env = allowed_env
        #: accelerator stores selection legitimately left unmapped
        #: (strict=False / shallow saturation) — still in plain form
        self.unmapped = unmapped
        self.findings: List[Finding] = []
        #: in-scope value bindings (loop vars, lets) -> interval
        self.ranges: Dict[str, Interval] = {}
        self.bound: Set[str] = set()
        #: declared buffers currently in scope
        self.buffers: Dict[str, _BufferInfo] = {}
        self.open_allocs: Set[str] = set()
        self.path: List[str] = []
        #: >0 while traversing an intrinsic Call's arguments, where
        #: accumulator loads are the legal operand form
        self.in_intrinsic = 0
        if realizations:
            for name, info in realizations.items():
                dtype = None
                func = getattr(info, "func", None)
                if func is not None:
                    try:
                        dtype = func.dtype.element_of()
                    except Exception:
                        dtype = None
                self.buffers[name] = _BufferInfo(
                    _const_size(info.extents), dtype, info.memory_type
                )

    # -- reporting -----------------------------------------------------------

    def report(
        self, check: str, severity: str, message: str, hint: str = ""
    ) -> None:
        where = "/".join(self.path) or "<root>"
        self.findings.append(
            Finding(check, severity, f"{self.context}:{where}", message, hint)
        )

    # -- interval evaluation -------------------------------------------------

    def interval(self, e: E.Expr) -> Interval:
        if isinstance(e, E.IntImm):
            return (e.value, e.value)
        if isinstance(e, E.Variable):
            return self.ranges.get(e.name)
        if isinstance(e, E.Cast):
            return self.interval(e.value)
        if isinstance(e, E.Broadcast):
            return self.interval(e.value)
        if isinstance(e, E.Ramp):
            base = self.interval(e.base)
            span = _mul(
                self.interval(e.stride), (e.count - 1, e.count - 1)
            )
            return _union(base, _add(base, span))
        if isinstance(e, E.Select):
            return _union(
                self.interval(e.true_value), self.interval(e.false_value)
            )
        if isinstance(e, E.Let):
            saved = self.ranges.get(e.name)
            self.ranges[e.name] = self.interval(e.value)
            try:
                return self.interval(e.body)
            finally:
                if saved is None:
                    self.ranges.pop(e.name, None)
                else:
                    self.ranges[e.name] = saved
        name = type(e).__name__
        if name == "Add":
            return _add(self.interval(e.a), self.interval(e.b))
        if name == "Sub":
            return _sub(self.interval(e.a), self.interval(e.b))
        if name == "Mul":
            return _mul(self.interval(e.a), self.interval(e.b))
        if name == "Min":
            a, b = self.interval(e.a), self.interval(e.b)
            if a is None or b is None:
                return None
            return (min(a[0], b[0]), min(a[1], b[1]))
        if name == "Max":
            a, b = self.interval(e.a), self.interval(e.b)
            if a is None or b is None:
                return None
            return (max(a[0], b[0]), max(a[1], b[1]))
        if name == "Div":
            a, b = self.interval(e.a), self.interval(e.b)
            if (
                a is not None
                and b is not None
                and b[0] == b[1]
                and b[0] > 0
                and a[0] >= 0
            ):
                return (a[0] // b[0], a[1] // b[0])
            return None
        if name == "Mod":
            b = self.interval(e.b)
            if b is not None and b[0] == b[1] and b[0] > 0:
                return (0, b[0] - 1)
            return None
        return None

    # -- variable / buffer access checks -------------------------------------

    def check_variable(self, e: E.Variable) -> None:
        name = e.name
        if name in self.bound:
            return
        match = _STRIDE_RE.match(name)
        if match:
            if int(match.group("dim")) == 0:
                self.report(
                    "ir.env-stride-zero",
                    ERROR,
                    f"variable {name!r} reads a stride the execution plan"
                    " never publishes (stride_env covers dimensions > 0)",
                    "flatten storage against dimension-0 stride 1, or"
                    " publish the key explicitly",
                )
            return
        if name in self.allowed_env:
            return
        self.report(
            "ir.use-before-def",
            ERROR,
            f"variable {name!r} read with no enclosing binding",
            "bind it with For/Let/LetStmt or publish it in the plan env",
        )

    def check_access(self, name: str, index: E.Expr, *, is_store: bool,
                     value: Optional[E.Expr] = None) -> None:
        info = self.buffers.get(name)
        if info is None:
            if is_store:
                self.report(
                    "ir.undeclared-buffer",
                    ERROR,
                    f"store into {name!r}, which is neither realized nor"
                    " allocated in an enclosing scope",
                    "allocate the buffer or realize it before storing",
                )
            return
        if (
            self.phase == "tensorized"
            and info.memory_type.is_accelerator()
            and name not in self.unmapped
        ):
            legal = (
                isinstance(value, E.Call)
                and value.call_type == E.CallType.INTRINSIC
                if is_store
                else self.in_intrinsic > 0
            )
            if not legal:
                kind = "store into" if is_store else "load from"
                self.report(
                    "ir.accumulator-access",
                    ERROR,
                    f"plain {kind} accelerator buffer {name!r}"
                    f" ({info.memory_type.name}) after instruction"
                    " selection; accumulator state is only legal as an"
                    " intrinsic operand (whole-tile fill/mma values and"
                    " the *2Mem movement path)",
                    "route the access through the tile intrinsics",
                )
        if info.size is not None:
            iv = self.interval(index)
            if iv is not None and (iv[0] < 0 or iv[1] >= info.size):
                kind = "store" if is_store else "load"
                self.report(
                    "ir.out-of-bounds",
                    ERROR,
                    f"{kind} index range [{iv[0]}, {iv[1]}] escapes"
                    f" {name!r} (flat extent {info.size})",
                    "fix the flattened index arithmetic or the declared"
                    " extents",
                )
        if is_store and value is not None and info.dtype is not None:
            have = value.type.element_of()
            want = info.dtype
            have_int = have.code in _INT_KINDS
            want_int = want.code in _INT_KINDS
            if have_int != want_int:
                self.report(
                    "ir.type-mismatch",
                    ERROR,
                    f"store of {have} value into {name!r} declared {want}"
                    " (int/float kind mismatch)",
                    "insert an explicit Cast at the store site",
                )
            elif (have.code, have.bits) != (want.code, want.bits):
                self.report(
                    "ir.type-mismatch",
                    WARNING,
                    f"store of {have} value into {name!r} declared {want}"
                    " (store-time rounding applies)",
                )

    def check_encodable(self, name: str, info: _BufferInfo) -> None:
        if not info.memory_type.is_accelerator() or info.dtype is None:
            return
        key = (info.dtype.code, info.dtype.bits)
        if key not in ENCODABLE_TYPES:
            self.report(
                "ir.unencodable-type",
                ERROR,
                f"accelerator buffer {name!r} has element type"
                f" {info.dtype} with no e-graph encoding head;"
                " instruction selection cannot map it",
                "schedule the buffer on host memory or use an encodable"
                " element type",
            )

    # -- traversal -----------------------------------------------------------

    def visit_expr(self, e: E.Expr) -> None:
        if isinstance(e, E.Variable):
            self.check_variable(e)
            return
        if isinstance(e, E.Load):
            self.check_access(e.name, e.index, is_store=False)
            self.visit_expr(e.index)
            return
        if isinstance(e, E.Let):
            self.visit_expr(e.value)
            saved = self.ranges.get(e.name)
            was_bound = e.name in self.bound
            self.ranges[e.name] = self.interval(e.value)
            self.bound.add(e.name)
            try:
                self.visit_expr(e.body)
            finally:
                if not was_bound:
                    self.bound.discard(e.name)
                if saved is None:
                    self.ranges.pop(e.name, None)
                else:
                    self.ranges[e.name] = saved
            return
        if (
            isinstance(e, E.Call)
            and e.call_type == E.CallType.INTRINSIC
        ):
            self.in_intrinsic += 1
            try:
                for arg in e.args:
                    self.visit_expr(arg)
            finally:
                self.in_intrinsic -= 1
            return
        for attr in EXPR_CHILDREN.get(type(e), ()):
            child = getattr(e, attr)
            if isinstance(child, tuple):
                for part in child:
                    if isinstance(part, E.Expr):
                        self.visit_expr(part)
            elif isinstance(child, E.Expr):
                self.visit_expr(child)

    def visit_stmt(self, s: S.Stmt) -> None:
        if isinstance(s, S.Store):
            self.path.append(f"Store({s.name})")
            try:
                self.check_access(
                    s.name, s.index, is_store=True, value=s.value
                )
                self.visit_expr(s.index)
                self.visit_expr(s.value)
            finally:
                self.path.pop()
            return
        if isinstance(s, S.For):
            self.visit_expr(s.min_expr)
            self.visit_expr(s.extent)
            lo = self.interval(s.min_expr)
            extent = self.interval(s.extent)
            rng: Interval = None
            if lo is not None and extent is not None:
                rng = (lo[0], lo[1] + extent[1] - 1)
            saved = self.ranges.get(s.name)
            was_bound = s.name in self.bound
            self.ranges[s.name] = rng
            self.bound.add(s.name)
            self.path.append(f"For({s.name})")
            try:
                self.visit_stmt(s.body)
            finally:
                self.path.pop()
                if not was_bound:
                    self.bound.discard(s.name)
                if saved is None:
                    self.ranges.pop(s.name, None)
                else:
                    self.ranges[s.name] = saved
            return
        if isinstance(s, S.LetStmt):
            self.visit_expr(s.value)
            saved = self.ranges.get(s.name)
            was_bound = s.name in self.bound
            self.ranges[s.name] = self.interval(s.value)
            self.bound.add(s.name)
            self.path.append(f"Let({s.name})")
            try:
                self.visit_stmt(s.body)
            finally:
                self.path.pop()
                if not was_bound:
                    self.bound.discard(s.name)
                if saved is None:
                    self.ranges.pop(s.name, None)
                else:
                    self.ranges[s.name] = saved
            return
        if isinstance(s, S.Allocate):
            for extent in s.extents:
                self.visit_expr(extent)
            shadowed = self.buffers.get(s.name)
            if s.name in self.open_allocs:
                self.report(
                    "ir.allocate-shadow",
                    WARNING,
                    f"Allocate({s.name!r}) shadows an enclosing allocation"
                    " of the same name",
                    "rename the inner buffer",
                )
            info = _BufferInfo(
                _const_size(s.extents),
                s.dtype.element_of(),
                s.memory_type,
            )
            self.check_encodable(s.name, info)
            self.buffers[s.name] = info
            was_open = s.name in self.open_allocs
            self.open_allocs.add(s.name)
            self.path.append(f"Allocate({s.name})")
            try:
                self.visit_stmt(s.body)
            finally:
                self.path.pop()
                if not was_open:
                    self.open_allocs.discard(s.name)
                if shadowed is None:
                    self.buffers.pop(s.name, None)
                else:
                    self.buffers[s.name] = shadowed
            return
        if isinstance(s, S.IfThenElse):
            self.visit_expr(s.condition)
            self.visit_stmt(s.then_case)
            if s.else_case is not None:
                self.visit_stmt(s.else_case)
            return
        expr_attrs, stmt_attrs = STMT_CHILDREN.get(type(s), ((), ()))
        for attr in expr_attrs:
            child = getattr(s, attr)
            if isinstance(child, tuple):
                for part in child:
                    if isinstance(part, E.Expr):
                        self.visit_expr(part)
            elif isinstance(child, E.Expr):
                self.visit_expr(child)
        for attr in stmt_attrs:
            child = getattr(s, attr)
            if isinstance(child, tuple):
                for part in child:
                    if isinstance(part, S.Stmt):
                        self.visit_stmt(part)
            elif isinstance(child, S.Stmt):
                self.visit_stmt(child)

    def run(self, stmt: S.Stmt) -> List[Finding]:
        for name, info in self.buffers.items():
            self.check_encodable(name, info)
        self.visit_stmt(stmt)
        return self.findings


def verify_ir(
    stmt: S.Stmt,
    realizations=None,
    *,
    phase: str = "lowered",
    context: str = "stmt",
    allowed_env: Optional[Set[str]] = None,
    unmapped: Optional[Set[str]] = None,
) -> List[Finding]:
    """Verify one statement; returns findings (empty = well-formed).

    ``realizations`` is the ``Lowered.realizations`` dict (optional —
    without it, buffer declarations come only from ``Allocate`` nodes
    and stores into unknown names are reported).  ``phase`` is
    ``"lowered"`` or ``"tensorized"``; the accumulator-access rule only
    applies after instruction selection.  ``unmapped`` names
    accelerator stores a non-strict selection left in plain form — they
    are exempt from the accumulator rule (the interpreter fallback
    executes them), not from bounds/type/scope checks.
    """
    if phase not in ("lowered", "tensorized"):
        raise ValueError(f"unknown phase {phase!r}")
    env = {"batch.size"}
    if allowed_env:
        env |= set(allowed_env)
    verifier = _Verifier(
        realizations, phase, context, env, set(unmapped or ())
    )
    return verifier.run(stmt)


def check_ir(
    stmt: S.Stmt,
    realizations=None,
    *,
    phase: str = "lowered",
    context: str = "stmt",
    allowed_env: Optional[Set[str]] = None,
    unmapped: Optional[Set[str]] = None,
) -> List[Finding]:
    """Gate form of :func:`verify_ir`: raise on error-severity findings."""
    findings = verify_ir(
        stmt,
        realizations,
        phase=phase,
        context=context,
        allowed_env=allowed_env,
        unmapped=unmapped,
    )
    return raise_on_errors(f"verify_ir[{phase}] {context}", findings)
