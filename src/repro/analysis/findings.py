"""Structured diagnostics shared by every analyzer.

A :class:`Finding` is one defect report: which check fired, how bad it
is, where it points (``site``), what is wrong (``message``), and — when
the analyzer knows one — how to fix it (``hint``).  Analyzers return
plain lists of findings; gates raise :class:`AnalysisError` when any
error-severity finding survives.

Waivers
-------

A finding anchored to a source line can be waived in place::

    self.hits += 1  # analysis: ignore[guarded-by]

The bracket names one or more check ids (comma separated), matched
against the full id (``concurrency.guarded-by``) or its suffix
(``guarded-by``); ``ignore[all]`` waives every check on that line.
Waivers are deliberate documentation — the lint counts them separately
so a waived tree is still distinguishable from a clean one.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set

ERROR = "error"
WARNING = "warning"

_SEVERITIES = (ERROR, WARNING)

_IGNORE_RE = re.compile(r"#\s*analysis:\s*ignore\[([\w.,\-\s]+)\]")


@dataclass(frozen=True)
class Finding:
    """One defect reported by a static analyzer."""

    #: dotted check id, ``<analyzer>.<check>`` (e.g. ``ir.use-before-def``)
    check: str
    #: ``"error"`` (gate-failing) or ``"warning"`` (advisory)
    severity: str
    #: where: a statement path, ``file.py:line``, or a rule/kernel name
    site: str
    #: what is wrong
    message: str
    #: how to fix it, when the analyzer knows
    hint: str = ""

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITIES:
            raise ValueError(
                f"severity must be one of {_SEVERITIES}, got"
                f" {self.severity!r}"
            )

    def __str__(self) -> str:
        text = f"{self.severity}[{self.check}] {self.site}: {self.message}"
        if self.hint:
            text += f" (fix: {self.hint})"
        return text


def errors(findings: Iterable[Finding]) -> List[Finding]:
    """The error-severity subset, in order."""
    return [f for f in findings if f.severity == ERROR]


def warnings(findings: Iterable[Finding]) -> List[Finding]:
    """The warning-severity subset, in order."""
    return [f for f in findings if f.severity == WARNING]


def format_findings(findings: Sequence[Finding]) -> str:
    """One finding per line, errors first."""
    ordered = errors(findings) + warnings(findings)
    return "\n".join(str(f) for f in ordered)


class AnalysisError(RuntimeError):
    """A verification gate failed: error-severity findings survived."""

    def __init__(self, context: str, findings: Sequence[Finding]) -> None:
        self.findings = list(findings)
        failing = errors(self.findings)
        lines = "\n".join(f"  {f}" for f in failing)
        super().__init__(
            f"{context}: {len(failing)} verification error(s)\n{lines}"
        )


def raise_on_errors(
    context: str, findings: Sequence[Finding]
) -> List[Finding]:
    """Gate helper: raise :class:`AnalysisError` if any error survived."""
    if errors(findings):
        raise AnalysisError(context, findings)
    return list(findings)


# -- waivers -------------------------------------------------------------------


@dataclass
class Waivers:
    """Per-line ``# analysis: ignore[...]`` markers for one source file."""

    #: line number (1-based) -> waived check names from that line's marker
    by_line: Dict[int, Set[str]] = field(default_factory=dict)

    def waived(self, line: int, check: str) -> bool:
        names = self.by_line.get(line)
        if not names:
            return False
        if "all" in names:
            return True
        return any(
            check == name or check.endswith("." + name) for name in names
        )


def parse_waivers(source: str) -> Waivers:
    """Collect waiver markers from a module's source text."""
    waivers = Waivers()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _IGNORE_RE.search(line)
        if match:
            names = {n.strip() for n in match.group(1).split(",")}
            waivers.by_line[lineno] = {n for n in names if n}
    return waivers


def apply_waivers(
    findings: Iterable[Finding], waivers: Waivers, line_of
) -> List[Finding]:
    """Drop findings whose anchor line carries a matching waiver.

    ``line_of`` maps a finding to its 1-based source line (or ``None``
    for findings with no line anchor, which are never waived).
    """
    kept: List[Finding] = []
    for finding in findings:
        line = line_of(finding)
        if line is not None and waivers.waived(line, finding.check):
            continue
        kept.append(finding)
    return kept
