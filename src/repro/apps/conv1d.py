"""1-D convolution (paper §V-A, Fig. 5).

``O(x, y) = sum_rx I(x + rx, y) * K(rx)`` — a single-channel 1-D filter
run over every row of an image.  im2col would degenerate this to a
matrix-vector product, so kernel libraries cannot help; HARDBOILED maps
each 256-pixel segment x 8-tap block onto an m32n8k16 WMMA MMA against a
Toeplitz matrix built by ``ConvolutionShuffle``.

The paper evaluates a 4096x4096 image; interpretation runs a reduced
number of rows and scales the counters.
"""

from __future__ import annotations

import numpy as np

from .. import frontend as hl
from .common import App, f16_random

FULL_ROWS = 4096
FULL_WIDTH = 4096
SEGMENT = 256
TAP_BLOCK = 8


def reference_conv1d(image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Row-wise valid convolution, fp32 accumulation."""
    taps = len(kernel)
    k32 = kernel.astype(np.float32)
    img = image.astype(np.float32)
    width = img.shape[1] - taps + 1
    out = np.zeros((img.shape[0], width), dtype=np.float32)
    for t in range(taps):
        out += k32[t] * img[:, t : t + width]
    return out


def build(
    variant: str,
    taps: int = 16,
    width: int = FULL_WIDTH,
    rows: int = 2,
    seed: int = 0,
) -> App:
    """Build the conv1d workload.

    ``taps`` must be a multiple of 8 (the paper sweeps 8..256).
    """
    if taps % TAP_BLOCK != 0:
        raise ValueError(f"taps must be a multiple of {TAP_BLOCK}")
    if width % SEGMENT != 0:
        raise ValueError(f"width must be a multiple of {SEGMENT}")

    K = hl.ImageParam(hl.Float(16), 1, name="K")
    I = hl.ImageParam(hl.Float(16), 2, name="I")
    x, y = hl.Var("x"), hl.Var("y")
    xi, rxi = hl.Var("xi"), hl.Var("rxi")
    rx = hl.RDom(0, taps, name="rx")
    conv = hl.Func("conv")
    output = hl.Func("output")
    conv[x, y] = 0.0
    conv[x, y] += hl.f32(K[rx]) * hl.f32(I[x + rx, y])
    output[x, y] = conv[x, y]
    output.bound(x, 0, width).bound(y, 0, rows)

    output.split(x, x, xi, SEGMENT).vectorize(xi).gpu_blocks(x, y)
    conv.compute_at(output, x)
    if variant == "tensor":
        conv.store_in(hl.MemoryType.WMMA_ACCUMULATOR)
        conv.split(x, x, xi, SEGMENT).vectorize(xi)
        conv.update().split(x, x, xi, SEGMENT).split(
            rx, rx, rxi, TAP_BLOCK
        ).reorder(rxi, xi, rx, x).atomic().vectorize(xi).vectorize(rxi)
    elif variant == "cuda":
        conv.split(x, x, xi, SEGMENT).vectorize(xi)
        conv.update().split(x, x, xi, SEGMENT).reorder(
            xi, rx, x
        ).vectorize(xi)
    else:
        raise ValueError(f"unknown variant {variant!r}")

    rng = np.random.default_rng(seed)
    # pad the input so the 16-wide Toeplitz rows stay in bounds
    image = f16_random(rng, (rows, width + taps + TAP_BLOCK))
    kernel = f16_random(rng, taps) / np.float16(taps)
    inputs = {I: image, K: kernel}

    return App(
        name="conv1d",
        variant=variant,
        output=output,
        inputs=inputs,
        reference=lambda: reference_conv1d(image, kernel)[:, :width],
        scale_factor=FULL_ROWS / rows,
        kernels=1,
        description=(
            f"1-D convolution, {taps} taps, {FULL_ROWS}x{width} image"
        ),
    )


def theoretical_macs(taps: int) -> int:
    """The paper's footnote-7 ideal work: (4096 - k) * 4096 * k."""
    return (FULL_WIDTH - taps) * FULL_ROWS * taps


def theoretical_io_bytes(taps: int) -> int:
    """Ideal IO: input + output, fp16 in / fp32 out."""
    return FULL_ROWS * (FULL_WIDTH + taps) * 2 + FULL_ROWS * FULL_WIDTH * 4
