"""Shared scaffolding for the case-study applications.

Every application exposes ``build(variant, **params) -> App`` where
``variant`` is ``"cuda"`` (best-effort vectorized schedule without tensor
accelerators) or ``"tensor"`` (the accelerator schedule).  An :class:`App`
bundles the scheduled output Func with its inputs, a numpy reference, and
the scale factor relating the interpreted (reduced) problem to the
paper's full-size problem — counters scale linearly with the iteration
domain, so reduced runs extrapolate exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from ..frontend.func import Func, ImageParam
from ..hardboiled import SelectionReport, select_instructions
from ..lowering import lower
from ..runtime import Counters
from ..runtime.executor import CompiledPipeline, _check_backend
from ..runtime.kernel_cache import KernelCache


@dataclass
class App:
    """A compiled-ready workload instance."""

    name: str
    variant: str
    output: Func
    inputs: Dict[ImageParam, np.ndarray]
    reference: Callable[[], np.ndarray]
    #: full-size problem is `scale_factor` x the interpreted one
    scale_factor: float = 1.0
    #: GPU kernel launches per full-size run (for launch overhead)
    kernels: int = 1
    description: str = ""
    #: default execution backend: "interpret" (instrumented) or
    #: "compile" (fast NumPy kernels); see repro.runtime.executor
    backend: str = "interpret"
    #: warm-start artifact directory (see repro.service); None compiles
    #: from scratch every process
    cache_dir: Optional[str] = None
    _pipeline: Optional[CompiledPipeline] = None
    _report: Optional[SelectionReport] = None

    def compile(self, cache_dir: Optional[str] = None) -> CompiledPipeline:
        if cache_dir is not None:
            if self._pipeline is not None and cache_dir != self.cache_dir:
                self._pipeline = None  # recompile through the store
            self.cache_dir = cache_dir
        if (
            self._pipeline is not None
            and self._pipeline.backend != self.backend
        ):
            # the backend was mutated after the first compile():
            # retarget the existing pipeline (validating the name)
            # instead of silently keeping the stale backend
            self._pipeline.backend = _check_backend(self.backend)
        if self._pipeline is None:
            lowered = lower(self.output)
            if self.variant == "tensor":
                if self.cache_dir is not None:
                    # warm start: a matching on-disk artifact skips
                    # saturation and codegen entirely
                    from ..service import warm_compile

                    self._pipeline, self._report = warm_compile(
                        lowered, self.cache_dir, backend=self.backend
                    )
                    return self._pipeline
                lowered, self._report = select_instructions(
                    lowered, strict=True
                )
            kernel_cache = None
            if self.cache_dir is not None:
                # no selection to cache, but compiled kernels still
                # persist via the kernel cache's disk tier
                kernel_cache = KernelCache(disk_dir=self.cache_dir)
            self._pipeline = CompiledPipeline(
                lowered, backend=self.backend, kernel_cache=kernel_cache
            )
        return self._pipeline

    @property
    def report(self) -> Optional[SelectionReport]:
        self.compile()
        return self._report

    def run(
        self,
        counters: Optional[Counters] = None,
        backend: Optional[str] = None,
    ) -> np.ndarray:
        """Run once.  Counters force the interpreter backend."""
        return self.compile().run(
            self.inputs, counters=counters, backend=backend
        )

    def run_many(
        self,
        requests: Optional[list] = None,
        workers: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> list:
        """Serve a batch of requests through reusable execution plans.

        Each request is an input map like :attr:`inputs` (same keys and
        shapes, different data); ``None`` entries — or ``requests=None``
        itself, meaning a single-request batch — reuse the app's bundled
        inputs.  Fanned over ``workers`` threads with one plan + arena
        per worker; see :meth:`CompiledPipeline.run_many
        <repro.runtime.executor.CompiledPipeline.run_many>`.
        """
        if requests is None:
            requests = [self.inputs]
        requests = [
            self.inputs if request is None else request
            for request in requests
        ]
        return self.compile().run_many(
            requests, workers=workers, backend=backend
        )

    def run_and_measure(self):
        """Run once; returns (output, counters scaled to full size)."""
        counters = Counters()
        out = self.run(counters)
        return out, counters.scaled(self.scale_factor)

    def verify(
        self,
        rtol: float = 2e-2,
        atol: float = 2e-2,
        backend: Optional[str] = None,
    ) -> np.ndarray:
        out = self.run(backend=backend)
        ref = self.reference()
        np.testing.assert_allclose(out, ref, rtol=rtol, atol=atol)
        return out


def f16_random(rng: np.random.Generator, shape) -> np.ndarray:
    return rng.standard_normal(shape).astype(np.float16)


def f32_random(rng: np.random.Generator, shape) -> np.ndarray:
    return rng.standard_normal(shape).astype(np.float32)
