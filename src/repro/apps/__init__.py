"""The paper's case-study applications (SS IV and SS V).

Each module exposes ``build(variant, **params) -> App`` with variants
``"cuda"`` (vectorized, no tensor accelerators) and ``"tensor"``
(HARDBOILED-selected accelerator schedule).
"""

from . import (
    attention,
    conv1d,
    conv2d,
    conv_layer,
    dct_denoise,
    downsample,
    matmul,
    recursive_filter,
    resample,
    upsample,
)
from .common import App

__all__ = [
    "App",
    "attention",
    "conv1d",
    "conv2d",
    "conv_layer",
    "dct_denoise",
    "downsample",
    "matmul",
    "recursive_filter",
    "resample",
    "upsample",
]
