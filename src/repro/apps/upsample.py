"""Upsampling by 2 — multiphase filtering (paper §V-B, Figs. 7/8).

Upsampling is decomposed into phases (§V-B): ``O_phase(dx, x, y)``
computes phase ``dx`` of output column ``2x + dx`` with the phase kernel
``K_phase(rx, dx) = K(2*rx + dx)``; declaring ``dx`` as the innermost
dimension stores phases interleaved (the paper's
``reorder_storage(dx, ...)``) so the final output is a dense copy.
HARDBOILED maps the phase update onto m32n8k16 MMAs against the ``A_up``
matrix built by ``MultiphaseShuffle`` — all 8 tile columns are valid, so
redundancy only comes from the widened 16-deep reduction.

This implementation upsamples along x; the full 2-D upsample applies the
same structure with ``ry``/``dy`` as serial outer loops.
"""

from __future__ import annotations

import numpy as np

from .. import frontend as hl
from .common import App, f16_random

FULL_ROWS = 2048  # input rows of a 2048^2 -> 4096^2 upsample
FULL_WIDTH = 2048
SEGMENT = 128  # input positions per MMA tile (256 outputs)
PHASE_TAPS = 8


def reference_upsample(image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """``out[2x + p] = sum_r image[x + r] * kernel[2r + p]`` per row."""
    img = image.astype(np.float32)
    k32 = kernel.astype(np.float32)
    taps_half = len(kernel) // 2
    out_w = 2 * (img.shape[1] - taps_half)
    out = np.zeros((img.shape[0], out_w), dtype=np.float32)
    for r in range(taps_half):
        for p in range(2):
            out[:, p::2] += (
                k32[2 * r + p] * img[:, r : r + out_w // 2]
            )
    return out


def build(
    variant: str,
    taps: int = 16,
    width: int = 512,
    rows: int = 4,
    seed: int = 3,
) -> App:
    """Upsample-by-2 along x; ``taps`` counts the full (2-phase) kernel."""
    if taps != 2 * PHASE_TAPS:
        raise ValueError(
            f"the multiphase tile geometry is built for {2 * PHASE_TAPS}"
            " taps (8 per phase)"
        )
    if width % SEGMENT != 0:
        raise ValueError(f"input width must be a multiple of {SEGMENT}")

    K = hl.ImageParam(hl.Float(16), 1, name="Ku")
    I = hl.ImageParam(hl.Float(16), 2, name="Iu")
    dx, x, y = hl.Var("dx"), hl.Var("x"), hl.Var("y")
    xi, rxi = hl.Var("xi"), hl.Var("rxi")
    rx = hl.RDom(0, PHASE_TAPS, name="rxu")
    oph = hl.Func("oph")
    output = hl.Func("outputu")
    oph[dx, x, y] = 0.0
    oph[dx, x, y] += hl.f32(K[2 * rx + dx]) * hl.f32(I[x + rx, y])
    output[dx, x, y] = oph[dx, x, y]
    output.bound(dx, 0, 2).bound(x, 0, width).bound(y, 0, rows)

    output.split(x, x, xi, SEGMENT).vectorize(xi).vectorize(dx).gpu_blocks(
        x, y
    )
    oph.compute_at(output, x)
    if variant == "tensor":
        oph.store_in(hl.MemoryType.WMMA_ACCUMULATOR)
        oph.split(x, x, xi, SEGMENT).reorder(dx, xi, x).vectorize(
            dx
        ).vectorize(xi)
        oph.update().split(x, x, xi, SEGMENT).split(
            rx, rx, rxi, PHASE_TAPS
        ).reorder(rxi, dx, xi, rx, x).atomic().vectorize(rxi).vectorize(
            dx
        ).vectorize(xi)
    elif variant == "cuda":
        oph.split(x, x, xi, SEGMENT).reorder(dx, xi, x).vectorize(
            dx
        ).vectorize(xi)
        oph.update().split(x, x, xi, SEGMENT).reorder(
            dx, xi, rx, x
        ).vectorize(dx).vectorize(xi)
    else:
        raise ValueError(f"unknown variant {variant!r}")

    rng = np.random.default_rng(seed)
    image = f16_random(rng, (rows, width + taps))
    kernel = f16_random(rng, taps) / np.float16(taps)
    inputs = {I: image, K: kernel}

    def reference():
        full = reference_upsample(image, kernel)
        # output layout: (y, x, dx) innermost dx == interleaved phases
        return full[:, : 2 * width].reshape(rows, width, 2)

    return App(
        name="upsample",
        variant=variant,
        output=output,
        inputs=inputs,
        reference=reference,
        scale_factor=(FULL_ROWS * FULL_WIDTH) / (rows * width),
        kernels=1,
        description=f"upsample by 2, {taps}-tap multiphase kernel",
    )


def theoretical_macs(taps: int = 16) -> int:
    # every output pixel needs taps/2 MACs; 2x width outputs
    return 2 * FULL_ROWS * FULL_WIDTH * (taps // 2)


def theoretical_io_bytes(taps: int = 16) -> int:
    return (
        FULL_ROWS * (FULL_WIDTH + taps) * 2
        + 2 * FULL_ROWS * FULL_WIDTH * 4
    )
