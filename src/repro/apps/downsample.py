"""Downsampling by 2 — strided convolution (paper §V-B, Figs. 7/8).

``O(x, y) = sum I(2x + rx, 2y + ry) K(rx, ry)``.  The stride-2 access
pattern lowers onto the ``A_down`` Toeplitz matrix; only four of the
eight MMA tile columns carry valid outputs (the redundancy the paper's
roofline discussion accepts), so segments are 128 outputs wide.
"""

from __future__ import annotations

import numpy as np

from .. import frontend as hl
from .common import App, f16_random

FULL_ROWS = 2048  # output size of a 4096^2 -> 2048^2 downsample
FULL_WIDTH = 2048
SEGMENT = 128
TAP_BLOCK = 8


def reference_downsample(image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    ky, kx = kernel.shape
    img = image.astype(np.float32)
    k32 = kernel.astype(np.float32)
    out_h = (img.shape[0] - ky) // 2 + 1
    out_w = (img.shape[1] - kx) // 2 + 1
    out = np.zeros((out_h, out_w), dtype=np.float32)
    for dy in range(ky):
        for dx in range(kx):
            out += (
                k32[dy, dx]
                * img[dy : dy + 2 * out_h : 2, dx : dx + 2 * out_w : 2]
            )
    return out


def build(
    variant: str,
    taps: int = 16,
    width: int = 512,
    rows: int = 16,
    seed: int = 2,
) -> App:
    if taps % TAP_BLOCK != 0:
        raise ValueError(f"taps must be a multiple of {TAP_BLOCK}")
    if width % SEGMENT != 0:
        raise ValueError(f"output width must be a multiple of {SEGMENT}")

    K = hl.ImageParam(hl.Float(16), 2, name="Kd")
    I = hl.ImageParam(hl.Float(16), 2, name="Id")
    x, y = hl.Var("x"), hl.Var("y")
    xi, rxi = hl.Var("xi"), hl.Var("rxi")
    r = hl.RDom([(0, taps), (0, taps)], name="rd")
    down = hl.Func("down")
    output = hl.Func("outputd")
    down[x, y] = 0.0
    down[x, y] += hl.f32(K[r.x, r.y]) * hl.f32(I[2 * x + r.x, 2 * y + r.y])
    output[x, y] = down[x, y]
    output.bound(x, 0, width).bound(y, 0, rows)

    output.split(x, x, xi, SEGMENT).vectorize(xi).gpu_blocks(x, y)
    down.compute_at(output, x)
    if variant == "tensor":
        down.store_in(hl.MemoryType.WMMA_ACCUMULATOR)
        down.split(x, x, xi, SEGMENT).vectorize(xi)
        down.update().split(x, x, xi, SEGMENT).split(
            "rd.x", "rd.x", rxi, TAP_BLOCK
        ).reorder(rxi, xi, "rd.x", x, "rd.y").atomic().vectorize(
            xi
        ).vectorize(rxi)
    elif variant == "cuda":
        down.split(x, x, xi, SEGMENT).vectorize(xi)
        down.update().split(x, x, xi, SEGMENT).reorder(
            xi, "rd.x", "rd.y", x
        ).vectorize(xi)
    else:
        raise ValueError(f"unknown variant {variant!r}")

    rng = np.random.default_rng(seed)
    image = f16_random(rng, (2 * rows + taps, 2 * width + taps + 2 * TAP_BLOCK))
    kernel = f16_random(rng, (taps, taps)) / np.float16(taps)
    inputs = {I: image, K: kernel}

    return App(
        name="downsample",
        variant=variant,
        output=output,
        inputs=inputs,
        reference=lambda: reference_downsample(image, kernel)[:rows, :width],
        scale_factor=(FULL_ROWS * FULL_WIDTH) / (rows * width),
        kernels=1,
        description=f"downsample by 2, {taps}x{taps} kernel",
    )


def theoretical_macs(taps: int) -> int:
    return FULL_ROWS * FULL_WIDTH * taps * taps


def theoretical_io_bytes(taps: int) -> int:
    return (
        (2 * FULL_ROWS + taps) * (2 * FULL_WIDTH + taps) * 2
        + FULL_ROWS * FULL_WIDTH * 4
    )
