"""Convolutional layer with fused bias + ReLU (paper §IV, Fig. 4).

``O(co, x, y) = ReLU(bias(co) + sum_{ci,dx,dy} W(co, ci, dx, dy)
* I(ci, x+dx, y+dy))`` — the cuDNN
``ConvolutionBiasActivationForward`` primitive.  With channels innermost
(NCHW-ish) each (dx, dy) tap is a GEMM over ``ci``: the m16n16k16 WMMA
rule fires with the pixel dimension as M and output channels as N.  The
bias + ReLU epilogue reads the accumulator tile directly (a WMMA2Mem
fragment read), keeping everything in one fused kernel.
"""

from __future__ import annotations

import numpy as np

from .. import frontend as hl
from .common import App, f16_random, f32_random

TILE = 16
FULL_BATCH = 4096
FULL_H = 64
FULL_W = 64
KERNEL = 3


def reference_conv_layer(
    image: np.ndarray, weights: np.ndarray, bias: np.ndarray
) -> np.ndarray:
    """image: (y, x, ci) fp16; weights: (dy, dx, ci, co); bias: (co,)."""
    img = image.astype(np.float32)
    w = weights.astype(np.float32)
    out_h = img.shape[0] - KERNEL + 1
    out_w = img.shape[1] - KERNEL + 1
    co = w.shape[3]
    out = np.zeros((out_h, out_w, co), dtype=np.float32)
    for dy in range(KERNEL):
        for dx in range(KERNEL):
            patch = img[dy : dy + out_h, dx : dx + out_w, :]
            out += patch @ w[dy, dx]
    out += bias.astype(np.float32)
    return np.maximum(out, 0.0)


def build(
    variant: str,
    channels: int = 16,
    width: int = 64,
    rows: int = 4,
    seed: int = 6,
) -> App:
    """``channels`` input channels -> ``channels`` output channels."""
    if channels % TILE != 0:
        raise ValueError(f"channels must be a multiple of {TILE}")
    if width % TILE != 0:
        raise ValueError(f"width must be a multiple of {TILE}")

    # I(ci, x, y): channels innermost.  W(co, ci, dx, dy): output
    # channels innermost so the B operand pattern is unit-stride in co.
    I = hl.ImageParam(hl.Float(16), 3, name="Icl")
    W = hl.ImageParam(hl.Float(16), 4, name="Wcl")
    Bias = hl.ImageParam(hl.Float(32), 1, name="BiasCl")
    co, x, y = hl.Var("co"), hl.Var("x"), hl.Var("y")
    xi, coi, rci = hl.Var("xi"), hl.Var("coi"), hl.Var("rci")
    r = hl.RDom(
        [(0, channels), (0, KERNEL), (0, KERNEL)], name="rcl"
    )  # (ci, dx, dy)
    f = hl.Func("convlayer")
    out = hl.Func("convlayer_relu")
    f[co, x, y] = 0.0
    f[co, x, y] += hl.f32(I[r.x, x + r.y, y + r[2]]) * hl.f32(
        W[co, r.x, r.y, r[2]]
    )
    out[co, x, y] = hl.maximum(f[co, x, y] + Bias[co], 0.0)
    out.bound(co, 0, channels).bound(x, 0, width).bound(y, 0, rows)

    out.split(x, x, xi, TILE).split(co, co, coi, TILE).reorder(
        coi, xi, co, x, y
    ).vectorize(coi).vectorize(xi).gpu_blocks(x, y)
    f.compute_at(out, "x")
    if variant == "tensor":
        f.store_in(hl.MemoryType.WMMA_ACCUMULATOR)
    elif variant != "cuda":
        raise ValueError(f"unknown variant {variant!r}")
    f.vectorize(co, TILE).vectorize(x, TILE)
    f.update().split("rcl.x", "rcl.x", rci, TILE).split(
        co, co, coi, TILE
    ).split(x, x, xi, TILE).reorder(
        rci, coi, xi, "rcl.x", co, x, "rcl.y", "rcl.z"
    ).atomic().vectorize(rci).vectorize(coi).vectorize(xi)

    rng = np.random.default_rng(seed)
    image_yxc = f16_random(
        rng, (rows + KERNEL, width + KERNEL + TILE, channels)
    ) / np.float16(2)
    weights_yxio = f16_random(
        rng, (KERNEL, KERNEL, channels, channels)
    ) / np.float16(channels)
    bias = f32_random(rng, channels)
    # I(ci, x, y): numpy axes reversed -> (y, x, ci)
    inputs = {
        I: image_yxc,
        # W(co, ci, dx, dy) -> numpy (dy, dx, ci, co)
        W: weights_yxio,
        Bias: bias,
    }

    def reference():
        ref = reference_conv_layer(image_yxc, weights_yxio, bias)
        return ref[:rows, :width, :]

    full_work = FULL_BATCH * FULL_H * FULL_W
    return App(
        name="conv_layer",
        variant=variant,
        output=out,
        inputs=inputs,
        reference=reference,
        scale_factor=full_work / (rows * width),
        kernels=1,
        description=(
            f"conv layer {KERNEL}x{KERNEL}, {channels} channels, fused"
            " bias+ReLU"
        ),
    )


def theoretical_macs(channels: int) -> int:
    return FULL_BATCH * FULL_H * FULL_W * KERNEL * KERNEL * channels * channels


def theoretical_io_bytes(channels: int) -> int:
    pixels = FULL_BATCH * FULL_H * FULL_W
    return pixels * channels * 2 + pixels * channels * 4
