"""Convolutional layer with fused bias + ReLU (paper §IV, Fig. 4).

``O(co, x, y) = ReLU(bias(co) + sum_{ci,dx,dy} W(co, ci, dx, dy)
* I(ci, x+dx, y+dy))`` — the cuDNN
``ConvolutionBiasActivationForward`` primitive.  With channels innermost
(NCHW-ish) each (dx, dy) tap is a GEMM over ``ci``: the m16n16k16 WMMA
rule fires with the pixel dimension as M and output channels as N.  The
bias + ReLU epilogue reads the accumulator tile directly (a WMMA2Mem
fragment read), keeping everything in one fused kernel.
"""

from __future__ import annotations

import numpy as np

from .. import frontend as hl
from .common import App, f16_random, f32_random

TILE = 16
FULL_BATCH = 4096
FULL_H = 64
FULL_W = 64
KERNEL = 3


def reference_conv_layer(
    image: np.ndarray, weights: np.ndarray, bias: np.ndarray
) -> np.ndarray:
    """image: (y, x, ci) fp16; weights: (dy, dx, ci, co); bias: (co,)."""
    img = image.astype(np.float32)
    w = weights.astype(np.float32)
    out_h = img.shape[0] - KERNEL + 1
    out_w = img.shape[1] - KERNEL + 1
    co = w.shape[3]
    out = np.zeros((out_h, out_w, co), dtype=np.float32)
    for dy in range(KERNEL):
        for dx in range(KERNEL):
            patch = img[dy : dy + out_h, dx : dx + out_w, :]
            out += patch @ w[dy, dx]
    out += bias.astype(np.float32)
    return np.maximum(out, 0.0)


def build(
    variant: str,
    channels: int = 16,
    width: int = 64,
    rows: int = 4,
    seed: int = 6,
) -> App:
    """``channels`` input channels -> ``channels`` output channels."""
    if channels % TILE != 0:
        raise ValueError(f"channels must be a multiple of {TILE}")
    if width % TILE != 0:
        raise ValueError(f"width must be a multiple of {TILE}")

    # I(ci, x, y): channels innermost.  W(co, ci, dx, dy): output
    # channels innermost so the B operand pattern is unit-stride in co.
    I = hl.ImageParam(hl.Float(16), 3, name="Icl")
    W = hl.ImageParam(hl.Float(16), 4, name="Wcl")
    Bias = hl.ImageParam(hl.Float(32), 1, name="BiasCl")
    co, x, y = hl.Var("co"), hl.Var("x"), hl.Var("y")
    xi, coi, rci = hl.Var("xi"), hl.Var("coi"), hl.Var("rci")
    r = hl.RDom(
        [(0, channels), (0, KERNEL), (0, KERNEL)], name="rcl"
    )  # (ci, dx, dy)
    f = hl.Func("convlayer")
    out = hl.Func("convlayer_relu")
    f[co, x, y] = 0.0
    f[co, x, y] += hl.f32(I[r.x, x + r.y, y + r[2]]) * hl.f32(
        W[co, r.x, r.y, r[2]]
    )
    out[co, x, y] = hl.maximum(f[co, x, y] + Bias[co], 0.0)
    out.bound(co, 0, channels).bound(x, 0, width).bound(y, 0, rows)

    out.split(x, x, xi, TILE).split(co, co, coi, TILE).reorder(
        coi, xi, co, x, y
    ).vectorize(coi).vectorize(xi).gpu_blocks(x, y)
    f.compute_at(out, "x")
    if variant == "tensor":
        f.store_in(hl.MemoryType.WMMA_ACCUMULATOR)
    elif variant != "cuda":
        raise ValueError(f"unknown variant {variant!r}")
    f.vectorize(co, TILE).vectorize(x, TILE)
    f.update().split("rcl.x", "rcl.x", rci, TILE).split(
        co, co, coi, TILE
    ).split(x, x, xi, TILE).reorder(
        rci, coi, xi, "rcl.x", co, x, "rcl.y", "rcl.z"
    ).atomic().vectorize(rci).vectorize(coi).vectorize(xi)

    rng = np.random.default_rng(seed)
    image_yxc = f16_random(
        rng, (rows + KERNEL, width + KERNEL + TILE, channels)
    ) / np.float16(2)
    weights_yxio = f16_random(
        rng, (KERNEL, KERNEL, channels, channels)
    ) / np.float16(channels)
    bias = f32_random(rng, channels)
    # I(ci, x, y): numpy axes reversed -> (y, x, ci)
    inputs = {
        I: image_yxc,
        # W(co, ci, dx, dy) -> numpy (dy, dx, ci, co)
        W: weights_yxio,
        Bias: bias,
    }

    def reference():
        ref = reference_conv_layer(image_yxc, weights_yxio, bias)
        return ref[:rows, :width, :]

    full_work = FULL_BATCH * FULL_H * FULL_W
    return App(
        name="conv_layer",
        variant=variant,
        output=out,
        inputs=inputs,
        reference=reference,
        scale_factor=full_work / (rows * width),
        kernels=1,
        description=(
            f"conv layer {KERNEL}x{KERNEL}, {channels} channels, fused"
            " bias+ReLU"
        ),
    )


# -- quantized int8 variant on the dp4a target ---------------------------------

INT8_CHANNELS = 64  # the dp4a macro-tile reduction depth
CO_TILE = 16


def reference_conv_layer_int8(
    image: np.ndarray, weights: np.ndarray, bias: np.ndarray
) -> np.ndarray:
    """image: (y, x, ci) int8; weights: (dy, dx, ci, co); bias: (co,) i32.

    Exact int32 accumulation followed by bias add and ReLU — the
    quantized-inference convolution epilogue.
    """
    img = image.astype(np.int32)
    w = weights.astype(np.int32)
    out_h = img.shape[0] - KERNEL + 1
    out_w = img.shape[1] - KERNEL + 1
    co = w.shape[3]
    out = np.zeros((out_h, out_w, co), dtype=np.int32)
    for dy in range(KERNEL):
        for dx in range(KERNEL):
            patch = img[dy : dy + out_h, dx : dx + out_w, :]
            out += patch @ w[dy, dx]
    out += bias.astype(np.int32)
    return np.maximum(out, 0)


def build_int8(
    width: int = 32, rows: int = 2, seed: int = 13
) -> App:
    """Quantized conv layer: 64 int8 input channels -> 64 channels.

    Per (dx, dy) tap the channel reduction is an m16n16k64 int8 GEMM,
    so the dp4a lowering rule fires once per tap per (co, x) tile; the
    int32 bias + ReLU epilogue reads the accumulator pointwise through
    the (legal) ``DP4A2Mem`` marker, exactly as the fp16 variant's
    epilogue reads WMMA fragments.
    """
    channels = INT8_CHANNELS
    if width % TILE != 0:
        raise ValueError(f"width must be a multiple of {TILE}")

    I = hl.ImageParam(hl.Int(8), 3, name="Iq")
    W = hl.ImageParam(hl.Int(8), 4, name="Wq")
    Bias = hl.ImageParam(hl.Int(32), 1, name="BiasQ")
    co, x, y = hl.Var("co"), hl.Var("x"), hl.Var("y")
    xi, coi, rci = hl.Var("xi"), hl.Var("coi"), hl.Var("rci")
    r = hl.RDom(
        [(0, channels), (0, KERNEL), (0, KERNEL)], name="rql"
    )  # (ci, dx, dy)
    f = hl.Func("convlayer_q")
    out = hl.Func("convlayer_q_relu")
    f[co, x, y] = 0
    f[co, x, y] += hl.i32(I[r.x, x + r.y, y + r[2]]) * hl.i32(
        W[co, r.x, r.y, r[2]]
    )
    out[co, x, y] = hl.maximum(f[co, x, y] + Bias[co], 0)
    out.bound(co, 0, channels).bound(x, 0, width).bound(y, 0, rows)

    out.split(x, x, xi, TILE).split(co, co, coi, CO_TILE).reorder(
        coi, xi, co, x, y
    ).vectorize(coi).vectorize(xi).gpu_blocks(x, y)
    f.compute_at(out, "x")
    f.store_in(hl.MemoryType.DP4A_ACCUMULATOR)
    # co spans four 16-wide tiles, so the vectorized pair must be
    # reordered innermost explicitly (the fp16 variant's co fits one
    # tile and needs no reorder)
    fcoi, fxi = hl.Var("fcoi"), hl.Var("fxi")
    f.split(co, co, fcoi, CO_TILE).split(x, x, fxi, TILE).reorder(
        fcoi, fxi, co, x, y
    ).vectorize(fcoi).vectorize(fxi)
    f.update().split("rql.x", "rql.x", rci, channels).split(
        co, co, coi, CO_TILE
    ).split(x, x, xi, TILE).reorder(
        rci, coi, xi, "rql.x", co, x, "rql.y", "rql.z"
    ).atomic().vectorize(rci).vectorize(coi).vectorize(xi)

    rng = np.random.default_rng(seed)
    image_yxc = rng.integers(
        -128, 128, size=(rows + KERNEL, width + KERNEL + TILE, channels),
        dtype=np.int8,
    )
    weights_yxio = rng.integers(
        -128, 128, size=(KERNEL, KERNEL, channels, channels), dtype=np.int8
    )
    bias = rng.integers(-(2**15), 2**15, size=channels, dtype=np.int32)
    inputs = {I: image_yxc, W: weights_yxio, Bias: bias}

    def reference():
        ref = reference_conv_layer_int8(image_yxc, weights_yxio, bias)
        return ref[:rows, :width, :]

    full_work = FULL_BATCH * FULL_H * FULL_W
    return App(
        name="conv_layer_int8",
        variant="tensor",
        output=out,
        inputs=inputs,
        reference=reference,
        scale_factor=full_work / (rows * width),
        kernels=1,
        description=(
            f"quantized conv layer {KERNEL}x{KERNEL}, {channels} int8"
            " channels, fused i32 bias+ReLU on dp4a"
        ),
    )


def theoretical_macs(channels: int) -> int:
    return FULL_BATCH * FULL_H * FULL_W * KERNEL * KERNEL * channels * channels


def theoretical_io_bytes(channels: int) -> int:
    pixels = FULL_BATCH * FULL_H * FULL_W
    return pixels * channels * 2 + pixels * channels * 4
