"""Recursive audio filtering (paper §V-D).

The pipeline combines both parallelization techniques the paper uses:

* **Hoppe tiling** for inter-block parallelism: each 1024-sample tile is
  filtered from zero state, then a serial fix-up scan adds the previous
  tile's tail propagated through the homogeneous response;
* **Scattered lookahead (SLA)** with dilation ``d = 8`` for intra-block
  parallelism: a 15-tap FIR prefilter (the only dense-compute stage)
  followed by a dilated recurrence whose steps are independent across
  ``t mod d``.

The ``tensor`` variant schedules only the FIR convolution onto Tensor
Cores (the recurrence is inherently serial); the paper's savings come
from relieving the memory subsystem, not extra FLOPs — Tensor Core
utilization is a mere 8%.

Three compiled kernels (FIR, recurrence, fix-up) run in sequence with
numpy reshaping between them, mirroring the paper's kernel structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .. import frontend as hl
from ..linalg import homogeneous_response, recursive_filter_serial, sla_decompose
from ..runtime import Counters
from ..runtime.executor import CompiledPipeline, realize
from ..lowering import lower
from ..hardboiled import select_instructions

A_COEFF = 1.2
B_COEFF = -0.5
DILATION = 8
TILE_SIZE = 1024
FULL_SAMPLES = 2**21
CHANNELS = 2
FIR_TAPS = 16  # 2d - 1 = 15, padded to two 8-tap blocks


@dataclass
class RecursiveFilterApp:
    """Multi-kernel app: FIR -> dilated recurrence -> Hoppe fix-up."""

    variant: str
    samples: int
    signal: np.ndarray  # (CHANNELS, samples)
    scale_factor: float
    kernels: int = 3
    #: warm-start artifact directory (see repro.service)
    cache_dir: Optional[str] = None
    #: default execution backend; "compile" also persists the generated
    #: kernel in the artifact, so warm processes skip codegen too
    backend: str = "interpret"

    def __post_init__(self):
        self.fir, self.a_d, self.b_d = sla_decompose(
            A_COEFF, B_COEFF, DILATION
        )
        self.num_tiles = self.samples // TILE_SIZE
        self._build_fir_pipeline()

    # -- stage 1: the FIR prefilter as a (possibly tensorized) pipeline ----

    def _build_fir_pipeline(self):
        K = hl.ImageParam(hl.Float(16), 1, name="Krf")
        X = hl.ImageParam(hl.Float(16), 2, name="Xrf")
        x, row = hl.Var("x"), hl.Var("row")
        xi, rxi = hl.Var("xi"), hl.Var("rxi")
        rx = hl.RDom(0, FIR_TAPS, name="rxrf")
        conv = hl.Func("firconv")
        out = hl.Func("firout")
        conv[x, row] = 0.0
        conv[x, row] += hl.f32(K[rx]) * hl.f32(X[x + rx, row])
        out[x, row] = conv[x, row]
        rows = self.num_tiles * CHANNELS
        out.bound(x, 0, TILE_SIZE).bound(row, 0, rows)
        out.split(x, x, xi, 256).vectorize(xi).gpu_blocks(x, row)
        conv.compute_at(out, "x")
        if self.variant == "tensor":
            conv.store_in(hl.MemoryType.WMMA_ACCUMULATOR)
            conv.split(x, x, xi, 256).vectorize(xi)
            conv.update().split(x, x, xi, 256).split(
                rx, rx, rxi, 8
            ).reorder(rxi, xi, rx, x).atomic().vectorize(xi).vectorize(rxi)
        else:
            conv.split(x, x, xi, 256).vectorize(xi)
            conv.update().split(x, x, xi, 256).reorder(xi, rx, x).vectorize(
                xi
            )
        self._fir_params = (K, X)
        lowered = lower(out)
        if self.variant == "tensor":
            if self.cache_dir is not None:
                # warm start: restore the tensorized stmt on a hit
                from ..service import warm_compile

                self.fir_pipeline, self._fir_report = warm_compile(
                    lowered, self.cache_dir, backend=self.backend
                )
                return
            lowered, self._fir_report = select_instructions(
                lowered, strict=True
            )
        self.fir_pipeline = CompiledPipeline(lowered, backend=self.backend)

    def _fir_inputs(self) -> Dict:
        K, X = self._fir_params
        # reversed FIR as a correlation kernel; tiles padded with leading
        # zeros so no tile reads its neighbour (zero-state filtering)
        taps = len(self.fir)  # 15
        kernel = np.zeros(FIR_TAPS, dtype=np.float16)
        kernel[:taps] = self.fir[::-1].astype(np.float16)
        rows = self.num_tiles * CHANNELS
        padded = np.zeros(
            (rows, TILE_SIZE + FIR_TAPS + 8), dtype=np.float16
        )
        tiles = self.signal.reshape(
            CHANNELS, self.num_tiles, TILE_SIZE
        ).reshape(rows, TILE_SIZE)
        # u[t] = sum_k fir[k] x[t-k]  ->  correlation with x shifted by 14
        padded[:, taps - 1 : taps - 1 + TILE_SIZE] = tiles
        return {X: padded, K: kernel}

    # -- driver ------------------------------------------------------------

    def run(self, counters=None, backend=None) -> np.ndarray:
        """Run all three stages; stage 1 honours the backend switch."""
        u = self.fir_pipeline.run(
            self._fir_inputs(), counters=counters, backend=backend
        )
        return self._recurrence_and_fixup(u, counters)

    def run_and_measure(self):
        counters = Counters()
        out = self.run(counters)
        return out, counters.scaled(self.scale_factor)

    def _recurrence_and_fixup(self, u, counters=None) -> np.ndarray:
        if counters is None:
            counters = Counters()
        rows = self.num_tiles * CHANNELS
        # stage 2: dilated recurrence per tile (zero initial state);
        # serial dependency chains of length TILE_SIZE/d, d-wide parallel
        y = u.astype(np.float64).copy()
        m_steps = TILE_SIZE // DILATION
        lanes = y.reshape(rows, m_steps, DILATION)
        for m in range(1, m_steps):
            lanes[:, m, :] += self.a_d * lanes[:, m - 1, :]
            if m >= 2:
                lanes[:, m, :] += self.b_d * lanes[:, m - 2, :]
        counters.scalar_flops += rows * (m_steps - 1) * DILATION * 4
        counters.add_load("l1", rows * TILE_SIZE * 3 * 4)
        counters.add_store("l1", rows * TILE_SIZE * 4)
        # stage 3: Hoppe fix-up scan across tiles
        resp = homogeneous_response(A_COEFF, B_COEFF, TILE_SIZE)
        out = y.reshape(CHANNELS, self.num_tiles, TILE_SIZE)
        for b in range(1, self.num_tiles):
            tail1 = out[:, b - 1, -1][:, None]
            tail2 = out[:, b - 1, -2][:, None]
            out[:, b] += tail1 * resp.h1 + tail2 * resp.h2
        counters.scalar_flops += CHANNELS * (self.num_tiles - 1) * TILE_SIZE * 4
        counters.add_load("dram_unique", self.samples * CHANNELS * 4)
        counters.add_store("dram_unique", self.samples * CHANNELS * 4)
        return out.reshape(CHANNELS, self.samples)

    def reference(self) -> np.ndarray:
        return np.stack(
            [
                recursive_filter_serial(self.signal[c], A_COEFF, B_COEFF)
                for c in range(CHANNELS)
            ]
        )

    def verify(self, rtol=2e-2, atol=2e-2):
        out, _ = self.run_and_measure()
        ref = self.reference()
        np.testing.assert_allclose(out, ref, rtol=rtol, atol=atol)
        return out


def build(
    variant: str,
    samples: int = 8192,
    seed: int = 9,
    cache_dir=None,
    backend: str = "interpret",
):
    rng = np.random.default_rng(seed)
    signal = (rng.standard_normal((CHANNELS, samples)) / 8).astype(
        np.float64
    )
    return RecursiveFilterApp(
        variant=variant,
        samples=samples,
        signal=signal,
        scale_factor=FULL_SAMPLES / samples,
        cache_dir=cache_dir,
        backend=backend,
    )
