"""GEMM (paper §III walkthrough and §IV robustness/performance).

Three flavours:

* :func:`build` — fp16 GEMM on Tensor Cores (m16n16k16 tiles), the
  Fig. 4 workload.
* :func:`build_amx` — bf16 GEMM on (simulated) Intel AMX, parametrized
  by the schedule variants of Intel's Optimization Reference Manual for
  the Table I robustness study.
* :func:`build_int8` — quantized int8 GEMM with int32 accumulation on
  the dp4a (VNNI/DP4A) dot-product target, the serving-style workload.
"""

from __future__ import annotations

import numpy as np

from .. import frontend as hl
from ..targets.bfloat16 import round_to_bfloat16
from .common import App, f16_random

TILE = 16
FULL_N = 1024


def reference_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a.astype(np.float32) @ b.astype(np.float32)


def reference_matmul_int8(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """int8 GEMM with int32 accumulation — exact, no rounding."""
    return a.astype(np.int32) @ b.astype(np.int32)


def build(
    variant: str, n: int = 128, seed: int = 4, full_n: int = FULL_N
) -> App:
    """fp16 GEMM ``C[x, y] = sum_r A[x, r] * B[r, y]`` on ``n^3``."""
    if n % TILE != 0:
        raise ValueError(f"n must be a multiple of {TILE}")
    A = hl.ImageParam(hl.Float(16), 2, name="Ag")
    B = hl.ImageParam(hl.Float(16), 2, name="Bg")
    x, y = hl.Var("x"), hl.Var("y")
    xi, yi, ri = hl.Var("xi"), hl.Var("yi"), hl.Var("ri")
    r = hl.RDom(0, n, name="rg")
    mm = hl.Func("mmg")
    mm[y, x] = 0.0
    mm[y, x] += hl.f32(A[r, x]) * hl.f32(B[y, r])
    out = mm.in_()
    out.bound(x, 0, n).bound(y, 0, n)
    out.split(x, x, xi, TILE).split(y, y, yi, TILE).reorder(
        yi, xi, y, x
    ).vectorize(yi).vectorize(xi).gpu_blocks(y, x)
    # realize one 16x16 accumulator tile per (x, y) tile pair: attach at
    # the inner tile loop
    mm.compute_at(out, "y")
    if variant == "tensor":
        mm.store_in(hl.MemoryType.WMMA_ACCUMULATOR)
    elif variant != "cuda":
        raise ValueError(f"unknown variant {variant!r}")
    mm.vectorize(y, TILE).vectorize(x, TILE)
    yiu, xiu = hl.Var("yiu"), hl.Var("xiu")
    mm.update().split(r, r, ri, TILE).split(y, y, yiu, TILE).split(
        x, x, xiu, TILE
    ).reorder(ri, yiu, xiu, r, y, x).atomic().vectorize(ri).vectorize(
        yiu
    ).vectorize(xiu)

    rng = np.random.default_rng(seed)
    a = f16_random(rng, (n, n)) / np.float16(4)
    b = f16_random(rng, (n, n)) / np.float16(4)
    inputs = {A: a, B: b}

    return App(
        name="matmul",
        variant=variant,
        output=out,
        inputs=inputs,
        reference=lambda: reference_matmul(a, b),
        scale_factor=(full_n / n) ** 3,
        kernels=1,
        description=f"fp16 GEMM, {full_n}^3 (interpreted at {n}^3)",
    )


def theoretical_macs(n: int = FULL_N) -> int:
    return n**3


def theoretical_io_bytes(n: int = FULL_N) -> int:
    return 2 * n * n * 2 + n * n * 4


# -- AMX variants for Table I ---------------------------------------------------


def build_amx(
    layout: str = "standard",
    loop_order: str = "xy",
    preload_a: bool = False,
    preload_b: bool = False,
    tiles: int = 2,
    seed: int = 5,
) -> App:
    """A bf16 AMX GEMM covering Intel-manual schedule variants (Table I).

    * ``layout`` — ``"standard"`` row-major B (HARDBOILED must inject the
      VNNI swizzle) or ``"vnni"`` pre-swizzled B.
    * ``loop_order`` — ``"xy"`` or ``"yx"`` tile loop nesting.
    * ``preload_a``/``preload_b`` — stage the operand through an
      intermediate Func (the manual's register-preload pattern).
    """
    if preload_b:
        tiles = 1  # a preloaded B occupies exactly one tile register
    n = TILE * tiles
    k = 32
    A = hl.ImageParam(hl.BFloat(16), 2, name="Aa")
    x, y = hl.Var("x"), hl.Var("y")
    xi, yi = hl.Var("xi"), hl.Var("yi")
    r = hl.RDom(0, k, name="ra")
    rng = np.random.default_rng(seed)
    a = round_to_bfloat16(
        rng.standard_normal((n, k)).astype(np.float32) / 4
    )
    b = round_to_bfloat16(
        rng.standard_normal((k, n)).astype(np.float32) / 4
    )

    def a_operand():
        if not preload_a:
            return A, A[r, x]
        stage = hl.Func("Astage")
        ax, ar = hl.Var("ax"), hl.Var("ar")
        stage[ar, ax] = A[ar, ax]
        stage.compute_root()
        return A, stage[r, x]

    mm = hl.Func("mma")
    if layout == "standard":
        B = hl.ImageParam(hl.BFloat(16), 2, name="Ba")
        b_input = b
        if preload_b:
            # preloading stages B into a tile register ahead of the
            # MatMul; once data sits in a tile no swizzle can be applied,
            # and a dense standard-layout copy cannot be distinguished
            # from a VNNI one — the ambiguity of Table I's x entry
            stage = hl.Func("Bstage")
            bj, br = hl.Var("bj"), hl.Var("br")
            stage[bj, br] = B[bj, br]
            stage.compute_root().store_in(hl.MemoryType.AMX_TILE)
            stage.vectorize(bj, TILE).vectorize(br, k)
            stage.bound(bj, 0, n).bound(br, 0, k)
            b_ref = stage[y, r]
        else:
            b_ref = B[y, r]
    elif layout == "vnni":
        B = hl.ImageParam(hl.BFloat(16), 3, name="Bv")
        from ..targets.amx import vnni_pack

        b_input = vnni_pack(b).reshape(k // 2, n, 2)
        if preload_b:
            stage = hl.Func("Bvstage")
            bp, bj, bh = hl.Var("bp"), hl.Var("bj"), hl.Var("bh")
            stage[bp, bj, bh] = B[bp, bj, bh]
            stage.compute_root().store_in(hl.MemoryType.AMX_TILE)
            stage.vectorize(bp, 2).vectorize(bj, TILE).vectorize(bh, k // 2)
            stage.bound(bp, 0, 2).bound(bj, 0, n).bound(bh, 0, k // 2)
            b_ref = stage[r % 2, y, r / 2]
        else:
            b_ref = B[r % 2, y, r / 2]
    else:
        raise ValueError(f"unknown layout {layout!r}")

    _, a_ref = a_operand()
    mm[y, x] = 0.0
    mm[y, x] += hl.f32(a_ref) * hl.f32(b_ref)
    out = mm.in_()
    out.bound(x, 0, n).bound(y, 0, n)
    out.split(x, x, xi, TILE).split(y, y, yi, TILE)
    if loop_order == "xy":
        out.reorder(yi, xi, y, x)
        inner_tile_loop = "y"
    else:
        out.reorder(yi, xi, x, y)
        inner_tile_loop = "x"
    out.vectorize(yi).vectorize(xi)
    mm.store_in(hl.MemoryType.AMX_TILE).compute_at(out, inner_tile_loop)
    mm.vectorize(y, TILE).vectorize(x, TILE)
    mm.update().atomic().vectorize(r, k).vectorize(y, TILE).vectorize(
        x, TILE
    )

    inputs = {A: a, B: b_input}
    return App(
        name=f"amx_matmul_{layout}",
        variant="tensor",
        output=out,
        inputs=inputs,
        reference=lambda: reference_matmul(a, b),
        scale_factor=1.0,
        description=(
            f"AMX GEMM {n}x{k}x{n}, {layout} layout, order {loop_order},"
            f" preload_a={preload_a}, preload_b={preload_b}"
        ),
    )


# -- quantized int8 GEMM on the dp4a target -------------------------------------

INT8_K = 64  # the dp4a macro-tile reduction depth (4-way groups x 16)


def build_int8(
    tiles: int = 2,
    layout: str = "standard",
    seed: int = 11,
    full_n: int = FULL_N,
) -> App:
    """Quantized GEMM ``C_i32[x, y] = sum_r A_i8[x, r] * B_i8[r, y]``.

    With ``layout="standard"`` the B operand arrives row-major, so
    HARDBOILED must discover the VNNI-4 swizzle (``KWayInterleave``
    with ``k = 4``) to place it in a dp4a register block — the int8
    analogue of the AMX standard-layout schedule.  With
    ``layout="vnni4"`` B is pre-packed ``B_vnni4(r%4, y, r/4)`` and
    loads directly, no swizzle.  Accumulation is exact int32, so both
    backends and the numpy reference agree bit for bit.
    """
    n = TILE * tiles
    k = INT8_K
    A = hl.ImageParam(hl.Int(8), 2, name="Aq")
    x, y = hl.Var("x"), hl.Var("y")
    xi, yi = hl.Var("xi"), hl.Var("yi")
    r = hl.RDom(0, k, name="rq")

    rng = np.random.default_rng(seed)
    a = rng.integers(-128, 128, size=(n, k), dtype=np.int8)
    b = rng.integers(-128, 128, size=(k, n), dtype=np.int8)

    if layout == "standard":
        B = hl.ImageParam(hl.Int(8), 2, name="Bq")
        b_input = b
        b_ref = lambda: B[y, r]  # noqa: E731
    elif layout == "vnni4":
        from ..targets.dp4a import vnni4_pack

        B = hl.ImageParam(hl.Int(8), 3, name="Bq4")
        b_input = vnni4_pack(b).reshape(k // 4, n, 4)
        b_ref = lambda: B[r % 4, y, r / 4]  # noqa: E731
    else:
        raise ValueError(f"unknown layout {layout!r}")

    mm = hl.Func("mmq")
    mm[y, x] = 0
    mm[y, x] += hl.i32(A[r, x]) * hl.i32(b_ref())
    out = mm.in_()
    out.bound(x, 0, n).bound(y, 0, n)
    out.split(x, x, xi, TILE).split(y, y, yi, TILE).reorder(
        yi, xi, y, x
    ).vectorize(yi).vectorize(xi)
    mm.store_in(hl.MemoryType.DP4A_ACCUMULATOR).compute_at(out, "y")
    mm.vectorize(y, TILE).vectorize(x, TILE)
    mm.update().atomic().vectorize(r, k).vectorize(y, TILE).vectorize(
        x, TILE
    )

    inputs = {A: a, B: b_input}
    return App(
        name="matmul_int8",
        variant="tensor",
        output=out,
        inputs=inputs,
        reference=lambda: reference_matmul_int8(a, b),
        scale_factor=full_n**3 / (n * n * k),
        kernels=1,
        description=(
            f"int8 GEMM {n}x{k}x{n} on dp4a, {layout} layout, i32"
            f" accumulation (extrapolated to {full_n}^3)"
        ),
    )
