"""Scaled dot-product attention (paper §IV, Fig. 4).

The naive three-stage algorithm, as the paper specifies (no
FlashAttention-style reordering — "an apples-to-apples comparison
focusing on proper Tensor Core utilization"):

1. ``S = Q K^T / sqrt(D)`` — a GEMM, tensorized;
2. row softmax (max, exp, sum) — CUDA lanes;
3. ``O = P V`` — a GEMM over the probabilities, tensorized.

Stage boundaries are materialized Funcs, matching the multiple kernel
launches of the naive implementation.
"""

from __future__ import annotations

import numpy as np

from .. import frontend as hl
from .common import App, f16_random

TILE = 16
FULL_BATCH = 64
FULL_L = 4096


def reference_attention(q, kt, v):
    """q: (i, d) via numpy (L, D); kt: (d, j) -> (D, L)... see build."""
    q32 = q.astype(np.float32)
    k32 = kt.astype(np.float32)
    v32 = v.astype(np.float32)
    d = q32.shape[1]
    scores = q32 @ k32 / np.sqrt(d)
    scores -= scores.max(axis=1, keepdims=True)
    p = np.exp(scores)
    p /= p.sum(axis=1, keepdims=True)
    # fp16 quantization of P happens before the second GEMM
    p = p.astype(np.float16).astype(np.float32)
    return p @ v32


def build(
    variant: str, length: int = 128, depth: int = 64, seed: int = 7
) -> App:
    """One batch of attention at sequence length ``length``."""
    if length % TILE or depth % TILE:
        raise ValueError("length and depth must be multiples of 16")

    # layouts chosen for unit-stride operands (the developer's job):
    # Q(d, i), Kt(j, d), V(d, j) — innermost dimension first
    Q = hl.ImageParam(hl.Float(16), 2, name="Qat")
    Kt = hl.ImageParam(hl.Float(16), 2, name="Ktat")
    V = hl.ImageParam(hl.Float(16), 2, name="Vat")
    i, j, d = hl.Var("i"), hl.Var("j"), hl.Var("d")
    ji, ii, di, ri = hl.Var("ji"), hl.Var("ii"), hl.Var("di"), hl.Var("ri")
    rd = hl.RDom(0, depth, name="rdat")
    rj = hl.RDom(0, length, name="rjat")
    rj2 = hl.RDom(0, length, name="rj2at")

    # stage 1: scores
    s = hl.Func("scores")
    s[j, i] = 0.0
    s[j, i] += hl.f32(Q[rd, i]) * hl.f32(Kt[j, rd])
    s_mem = hl.Func("scores_mem")
    s_mem[j, i] = s[j, i]

    # stage 2: softmax across keys
    scale = 1.0 / float(np.sqrt(depth))
    row_max = hl.Func("row_max")
    row_max[i] = -1e30
    row_max[i] = hl.maximum(row_max[i], s_mem[rj, i])
    prob = hl.Func("prob")
    prob[j, i] = hl.exp((s_mem[j, i] - row_max[i]) * scale)
    denom = hl.Func("denom")
    denom[i] = 0.0
    denom[i] += prob[rj2, i]
    p16 = hl.Func("p16")
    p16[j, i] = hl.f16(prob[j, i] / denom[i])

    # stage 3: output
    o = hl.Func("attn")
    o[d, i] = 0.0
    o[d, i] += hl.f32(p16[rj, i]) * hl.f32(V[d, rj])
    out = o.in_()
    out.bound(d, 0, depth).bound(i, 0, length)

    # schedules -----------------------------------------------------------
    s_mem.compute_root()
    s_mem.bound(j, 0, length).bound(i, 0, length)
    s_mem.split(j, j, ji, TILE).split(i, i, ii, TILE).reorder(
        ji, ii, j, i
    ).vectorize(ji).vectorize(ii).gpu_blocks(i)
    s.compute_at(s_mem, "j")
    s.vectorize(j, TILE).vectorize(i, TILE)
    sji, sii = hl.Var("sji"), hl.Var("sii")
    s.update().split(rd, rd, ri, TILE).split(j, j, sji, TILE).split(
        i, i, sii, TILE
    ).reorder(ri, sji, sii, rd, j, i).atomic().vectorize(ri).vectorize(
        sji
    ).vectorize(sii)

    row_max.compute_root().bound(i, 0, length).vectorize(i, length)
    row_max.update().reorder(i, "rjat").vectorize(i, length)
    prob.compute_root().bound(j, 0, length).bound(i, 0, length)
    prob.vectorize(j, length)
    denom.compute_root().bound(i, 0, length).vectorize(i, length)
    denom.update().reorder(i, "rj2at").vectorize(i, length)
    p16.compute_root().bound(j, 0, length).bound(i, 0, length)
    p16.vectorize(j, length)

    out.split(d, d, di, TILE).split(i, i, ii, TILE).reorder(
        di, ii, d, i
    ).vectorize(di).vectorize(ii).gpu_blocks(i)
    o.compute_at(out, "d")
    o.vectorize(d, TILE).vectorize(i, TILE)
    odi, oii = hl.Var("odi"), hl.Var("oii")
    o.update().split(rj, rj, ri, TILE).split(d, d, odi, TILE).split(
        i, i, oii, TILE
    ).reorder(ri, odi, oii, rj, d, i).atomic().vectorize(ri).vectorize(
        odi
    ).vectorize(oii)

    if variant == "tensor":
        s.store_in(hl.MemoryType.WMMA_ACCUMULATOR)
        o.store_in(hl.MemoryType.WMMA_ACCUMULATOR)
    elif variant != "cuda":
        raise ValueError(f"unknown variant {variant!r}")

    rng = np.random.default_rng(seed)
    q = f16_random(rng, (length, depth)) / np.float16(4)  # numpy (i, d)
    kt = f16_random(rng, (depth, length)) / np.float16(4)  # numpy (d, j)
    v = f16_random(rng, (length, depth)) / np.float16(4)  # numpy (j, d)
    inputs = {Q: q, Kt: kt, V: v}

    def reference():
        # numpy layouts: q (i, d); kt (d, j); v (j, d) — the output Func
        # o(d, i) also materializes as numpy (i, d)
        return reference_attention(q, kt, v)

    full_work = FULL_BATCH * (FULL_L / length) ** 2
    return App(
        name="attention",
        variant=variant,
        output=out,
        inputs=inputs,
        reference=reference,
        scale_factor=full_work,
        kernels=4,  # scores, softmax x2, output
        description=(
            f"scaled dot-product attention, N={FULL_BATCH}, L={FULL_L},"
            f" D={depth}"
        ),
    )


def theoretical_macs(depth: int = 64) -> int:
    return FULL_BATCH * (2 * FULL_L * FULL_L * depth)


def theoretical_io_bytes(depth: int = 64) -> int:
    per_batch = 3 * FULL_L * depth * 2 + FULL_L * depth * 4
    return FULL_BATCH * per_batch
