"""Non-integer-factor resampling (paper §V-C, Table II).

Resizing is separable: a vertical then a horizontal pass, each applying a
block-sparse banded Lanczos-3 matrix (groups of 16 output rows share a
start column; the band is widened to a multiple of 16).  Each 16-row
block x 16-column tile of the pass is then a small GEMM whose A operand
is a window of the input starting at a *data-dependent* row — the
per-block start index loaded from a table — and HARDBOILED maps it to
m16n16k16 MMAs.  This is the workload that achieves only ~10% Tensor
Core utilization yet still wins 1.47x end to end, because adding tensor
compute makes the kernel purely bandwidth-limited.

One :class:`App` models one pass; the Table II benchmark composes the
vertical and horizontal passes.
"""

from __future__ import annotations

import numpy as np

from .. import frontend as hl
from ..linalg import ResampleMatrix, build_resample_matrix
from .common import App

TILE = 16


def build_pass(
    variant: str,
    in_size: int,
    out_size: int,
    columns: int,
    seed: int = 8,
    scale_factor: float = 1.0,
    matrix: ResampleMatrix = None,
    image: np.ndarray = None,
) -> App:
    """One resampling pass: ``out[x, o] = sum_w band[o][w] * in[start+w, x]``.

    ``columns`` is the cross dimension (image width for the vertical
    pass).  The output is indexed ``(x, oi, ob)`` — block-decomposed —
    and reassembled by the caller.
    """
    if matrix is None:
        matrix = build_resample_matrix(in_size, out_size, block=TILE)
    width = matrix.width
    blocks = matrix.num_blocks
    out_rounded = blocks * TILE
    if columns % TILE != 0:
        raise ValueError("columns must be a multiple of 16")

    rng = np.random.default_rng(seed)
    if image is None:
        image = rng.random((in_size, columns)).astype(np.float16)

    # images: transposed input (x-major rows), per-block bands, starts
    IT = hl.ImageParam(hl.Float(16), 2, name="ITrs")  # (w_row, x)
    Bands = hl.ImageParam(hl.Float(16), 3, name="Bandsrs")  # (oi, w, ob)
    Starts = hl.ImageParam(hl.Int(32), 1, name="Startsrs")  # (ob,)

    x, oi, ob = hl.Var("x"), hl.Var("oi"), hl.Var("ob")
    xi, rwi = hl.Var("xi"), hl.Var("rwi")
    rw = hl.RDom(0, width, name="rwrs")
    acc = hl.Func("rsacc")
    out = hl.Func("rsout")
    acc[oi, x, ob] = 0.0
    acc[oi, x, ob] += hl.f32(Bands[oi, rw, ob]) * hl.f32(
        IT[Starts[ob] + rw, x]
    )
    out[oi, x, ob] = acc[oi, x, ob]
    out.bound(oi, 0, TILE).bound(x, 0, columns).bound(ob, 0, blocks)

    out.split(x, x, xi, TILE).reorder(oi, xi, x, ob).vectorize(
        oi
    ).vectorize(xi).gpu_blocks(x, ob)
    acc.compute_at(out, "x")
    if variant == "tensor":
        acc.store_in(hl.MemoryType.WMMA_ACCUMULATOR)
    elif variant != "cuda":
        raise ValueError(f"unknown variant {variant!r}")
    acc.vectorize(oi, TILE).vectorize(x, TILE)
    aoi, axi = hl.Var("aoi"), hl.Var("axi")
    acc.update().split(rw, rw, rwi, TILE).split(oi, oi, aoi, TILE).split(
        x, x, axi, TILE
    ).reorder(rwi, aoi, axi, rw, oi, x).atomic().vectorize(rwi).vectorize(
        aoi
    ).vectorize(axi)

    # the A operand reads rows [start, start+width); pad the transposed
    # input so every block's window is in range
    pad = width + TILE
    it_padded = np.zeros((in_size + pad, columns), dtype=np.float16)
    it_padded[:in_size] = image
    # IT(w_row, x): numpy layout (x, w_row) — transpose so the row index
    # is the innermost dimension
    it_padded = np.ascontiguousarray(it_padded.T)
    bands = matrix.bands.astype(np.float16)  # (ob, oi_block, w)
    # Bands(oi, w, ob): numpy (ob, w, oi)
    bands_img = np.ascontiguousarray(np.transpose(bands, (0, 2, 1)))
    starts = matrix.starts.astype(np.int32)
    inputs = {IT: it_padded, Bands: bands_img, Starts: starts}

    def reference():
        dense = matrix.apply(image.astype(np.float32))
        padded = np.zeros((blocks, columns, TILE), dtype=np.float32)
        for b in range(blocks):
            rows = dense[b * TILE : (b + 1) * TILE]  # (<=16, columns)
            padded[b, :, : rows.shape[0]] = rows.T
        return padded

    return App(
        name="resample_pass",
        variant=variant,
        output=out,
        inputs=inputs,
        reference=reference,
        scale_factor=scale_factor,
        kernels=1,
        description=(
            f"Lanczos-3 block-sparse pass {in_size}->{out_size},"
            f" band width {width}"
        ),
    )


def assemble(app_output: np.ndarray, out_size: int) -> np.ndarray:
    """(ob, x, oi) block output -> (out_size, columns)."""
    blocks, columns, tile = app_output.shape
    flat = np.transpose(app_output, (0, 2, 1)).reshape(
        blocks * tile, columns
    )
    return flat[:out_size]
