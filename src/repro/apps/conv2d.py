"""2-D convolution (paper §V-A, Figs. 7/8).

The 2-D kernel is parametrized over one reduction axis (``ry`` stays a
serial outer loop), reducing each row of the stencil to the 1-D
convolution pattern HARDBOILED already lowers (§V-A: "This
parametrization step, when reflected in Halide schedules, is equivalent
to leaving ry as a serial outer loop").
"""

from __future__ import annotations

import numpy as np

from .. import frontend as hl
from .common import App, f16_random

FULL_ROWS = 2048
FULL_WIDTH = 2048
SEGMENT = 256
TAP_BLOCK = 8


def reference_conv2d(image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    ky, kx = kernel.shape
    img = image.astype(np.float32)
    k32 = kernel.astype(np.float32)
    out_h = img.shape[0] - ky + 1
    out_w = img.shape[1] - kx + 1
    out = np.zeros((out_h, out_w), dtype=np.float32)
    for dy in range(ky):
        for dx in range(kx):
            out += k32[dy, dx] * img[dy : dy + out_h, dx : dx + out_w]
    return out


def build(
    variant: str,
    taps: int = 16,
    width: int = 1024,
    rows: int = 16,
    seed: int = 1,
) -> App:
    """2-D convolution with a ``taps x taps`` kernel."""
    if taps % TAP_BLOCK != 0:
        raise ValueError(f"taps must be a multiple of {TAP_BLOCK}")

    K = hl.ImageParam(hl.Float(16), 2, name="K2")
    I = hl.ImageParam(hl.Float(16), 2, name="I2")
    x, y = hl.Var("x"), hl.Var("y")
    xi, rxi = hl.Var("xi"), hl.Var("rxi")
    r = hl.RDom([(0, taps), (0, taps)], name="r2")
    conv = hl.Func("conv2")
    output = hl.Func("output2")
    conv[x, y] = 0.0
    conv[x, y] += hl.f32(K[r.x, r.y]) * hl.f32(I[x + r.x, y + r.y])
    output[x, y] = conv[x, y]
    output.bound(x, 0, width).bound(y, 0, rows)

    output.split(x, x, xi, SEGMENT).vectorize(xi).gpu_blocks(x, y)
    conv.compute_at(output, x)
    if variant == "tensor":
        conv.store_in(hl.MemoryType.WMMA_ACCUMULATOR)
        conv.split(x, x, xi, SEGMENT).vectorize(xi)
        # ry serial outermost; rx blocked onto the tensor unit
        conv.update().split(x, x, xi, SEGMENT).split(
            "r2.x", "r2.x", rxi, TAP_BLOCK
        ).reorder(rxi, xi, "r2.x", x, "r2.y").atomic().vectorize(
            xi
        ).vectorize(rxi)
    elif variant == "cuda":
        conv.split(x, x, xi, SEGMENT).vectorize(xi)
        conv.update().split(x, x, xi, SEGMENT).reorder(
            xi, "r2.x", "r2.y", x
        ).vectorize(xi)
    else:
        raise ValueError(f"unknown variant {variant!r}")

    rng = np.random.default_rng(seed)
    image = f16_random(rng, (rows + taps, width + taps + TAP_BLOCK))
    kernel = f16_random(rng, (taps, taps)) / np.float16(taps)
    inputs = {I: image, K: kernel}

    return App(
        name="conv2d",
        variant=variant,
        output=output,
        inputs=inputs,
        reference=lambda: reference_conv2d(image, kernel)[:rows, :width],
        scale_factor=(FULL_ROWS * FULL_WIDTH) / (rows * width),
        kernels=1,
        description=f"2-D convolution, {taps}x{taps} kernel",
    )


def theoretical_macs(taps: int) -> int:
    return FULL_ROWS * FULL_WIDTH * taps * taps


def theoretical_io_bytes(taps: int) -> int:
    return (
        (FULL_ROWS + taps) * (FULL_WIDTH + taps) * 2
        + FULL_ROWS * FULL_WIDTH * 4
    )
