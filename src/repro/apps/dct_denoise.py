"""DCT-based denoising — transform-domain coring (paper §V-E).

Each windowed 16x16 tile is transformed (``D @ X @ D^T``), small
coefficients are zeroed (coring), and the transform is inverted
(``D^T @ Y @ D``) — four chained MatMuls per tile with a *non-linear*
operation between them, all fused into one kernel.  A library-based
implementation would need four separate GEMM launches and lose the
fusion entirely (§V-E's closing argument).

The coring step consumes WMMA accumulator tiles directly (a fragment
read) and feeds the next MMA through a small staging buffer, exactly the
fused structure the paper describes.  Tile extraction, windowing, and
the final overlapped blend are numpy glue around the compiled transform
kernel (the blend kernel is modeled separately in the benchmark — the
paper also reports it as a second kernel).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .. import frontend as hl
from ..linalg import dct_matrix
from ..runtime import Counters
from ..runtime.executor import CompiledPipeline
from ..lowering import lower
from ..hardboiled import select_instructions

TILE = 16
FULL_PIXELS = 1024 * 1024 * 3  # one megapixel, three channels
CORING_THRESHOLD = 0.5


def window_2d() -> np.ndarray:
    """A separable raised-cosine window for overlap-add blending."""
    w = 0.5 - 0.5 * np.cos(2 * np.pi * (np.arange(TILE) + 0.5) / TILE)
    return np.outer(w, w).astype(np.float32)


def reference_transform(tiles: np.ndarray, threshold: float) -> np.ndarray:
    """tiles: (t, 16, 16) -> cored reconstruction, fp32."""
    d = dct_matrix(TILE).astype(np.float32)
    out = np.empty_like(tiles, dtype=np.float32)
    for t in range(tiles.shape[0]):
        coeffs = d @ tiles[t].astype(np.float32) @ d.T
        cored = np.where(np.abs(coeffs) < threshold, 0.0, coeffs)
        out[t] = d.T @ cored @ d
    return out


@dataclass
class DCTDenoiseApp:
    variant: str
    num_tiles: int
    tiles: np.ndarray  # (t, 16, 16) float16
    scale_factor: float
    kernels: int = 2  # transform + blend
    #: warm-start artifact directory (see repro.service)
    cache_dir: Optional[str] = None
    #: default execution backend; "compile" also persists the generated
    #: kernel in the artifact, so warm processes skip codegen too
    backend: str = "interpret"

    def __post_init__(self):
        self._build_pipeline()

    def _build_pipeline(self):
        # Xt(j, i, t): input tiles; Dm(u, k) the DCT matrix with its
        # transpose laid out for unit-stride operand patterns
        Xt = hl.ImageParam(hl.Float(16), 3, name="Xtd")
        Dm = hl.ImageParam(hl.Float(16), 2, name="Dmd")  # (k, u): D[u,k]
        Dt = hl.ImageParam(hl.Float(16), 2, name="Dtd")  # (u, k): D[u,k]
        i, j, t = hl.Var("i"), hl.Var("j"), hl.Var("t")
        u, v, w = hl.Var("u"), hl.Var("v"), hl.Var("w")
        rk = hl.RDom(0, TILE, name="rkd")
        rk2 = hl.RDom(0, TILE, name="rk2d")
        rk3 = hl.RDom(0, TILE, name="rk3d")
        rk4 = hl.RDom(0, TILE, name="rk4d")

        # stage 1: S1(j, u, t) = sum_k D(u, k) X(j, k, t)  [transform rows]
        s1 = hl.Func("dcts1")
        s1[j, u, t] = 0.0
        s1[j, u, t] += hl.f32(Dm[rk, u]) * hl.f32(Xt[j, rk, t])
        s1f = hl.Func("dcts1f")
        s1f[j, u, t] = hl.f16(s1[j, u, t])

        # stage 2: S2(v, u, t) = sum_k S1(k, u, t) D(v, k) [cols] + coring
        s2 = hl.Func("dcts2")
        s2[v, u, t] = 0.0
        s2[v, u, t] += hl.f32(s1f[rk2, u, t]) * hl.f32(Dt[v, rk2])
        cored = hl.Func("dctcored")
        s2v = s2[v, u, t]
        cored[v, u, t] = hl.f16(
            hl.select(hl.abs_(s2v) < CORING_THRESHOLD, 0.0, s2v)
        )

        # stage 3: S3(v, w, t) = sum_k Dt(k, w)? -> inverse along rows
        # S3(v, w, t) = sum_k D(k, w) cored(v, k, t)  (D^T on the left)
        s3 = hl.Func("dcts3")
        s3[v, w, t] = 0.0
        s3[v, w, t] += hl.f32(Dt[rk3, w]) * hl.f32(cored[v, rk3, t])
        s3f = hl.Func("dcts3f")
        s3f[v, w, t] = hl.f16(s3[v, w, t])

        # stage 4: OUT(j2, w, t) = sum_k S3(k, w, t) D(k, j2)
        s4 = hl.Func("dcts4")
        s4[v, w, t] = 0.0
        s4[v, w, t] += hl.f32(s3f[rk4, w, t]) * hl.f32(Dm[v, rk4])
        out = hl.Func("dctout")
        out[v, w, t] = s4[v, w, t]
        out.bound(v, 0, TILE).bound(w, 0, TILE).bound(t, 0, self.num_tiles)
        out.vectorize(v, TILE).vectorize(w, TILE).gpu_blocks(t)

        accumulators = [s1, s2, s3, s4]
        stagings = [s1f, cored, s3f]
        for func in accumulators:
            func.compute_at(out, "t")
            if self.variant == "tensor":
                func.store_in(hl.MemoryType.WMMA_ACCUMULATOR)
            a, b = func.pure.args[0].name, func.pure.args[1].name
            func.vectorize(a, TILE).vectorize(b, TILE)
            stage = func.update()
            rname = next(iter(stage.rvars))
            ai, bi, ri = (
                hl.Var(f"{func.name}ai"),
                hl.Var(f"{func.name}bi"),
                hl.Var(f"{func.name}ri"),
            )
            stage.split(rname, rname, ri, TILE).split(a, a, ai, TILE).split(
                b, b, bi, TILE
            ).reorder(ri, ai, bi, rname, a, b).atomic().vectorize(
                ri
            ).vectorize(ai).vectorize(bi)
        for func in stagings:
            func.compute_at(out, "t")
            a, b = func.pure.args[0].name, func.pure.args[1].name
            func.vectorize(a, TILE).vectorize(b, TILE)

        self._params = (Xt, Dm, Dt)
        lowered = lower(out)
        if self.variant == "tensor":
            if self.cache_dir is not None:
                # warm start: restore the tensorized stmt on a hit
                from ..service import warm_compile

                self.pipeline, self.report = warm_compile(
                    lowered, self.cache_dir, backend=self.backend
                )
                return
            lowered, self.report = select_instructions(lowered, strict=True)
        else:
            self.report = None
        self.pipeline = CompiledPipeline(lowered, backend=self.backend)

    def _inputs(self) -> Dict:
        Xt, Dm, Dt = self._params
        d = dct_matrix(TILE).astype(np.float16)
        # Dm(k, u) holds D[u, k]: numpy (u, k) = d; Dt(u, k) holds D[u, k]
        # transposed for the second operand: numpy (k, u) = d.T
        return {Xt: self.tiles, Dm: d, Dt: np.ascontiguousarray(d.T)}

    def run(self, counters=None, backend=None) -> np.ndarray:
        return self.pipeline.run(
            self._inputs(), counters=counters, backend=backend
        )

    def run_and_measure(self):
        counters = Counters()
        out = self.run(counters)
        return out, counters.scaled(self.scale_factor)

    def reference(self) -> np.ndarray:
        # output (t, w, v): stage-4 index order transposes each tile
        ref = reference_transform(self.tiles, CORING_THRESHOLD)
        return ref

    def verify(self, rtol=5e-2, atol=5e-2):
        out, _ = self.run_and_measure()
        np.testing.assert_allclose(out, self.reference(), rtol=rtol, atol=atol)
        return out


def build(
    variant: str,
    num_tiles: int = 32,
    seed: int = 10,
    cache_dir=None,
    backend: str = "interpret",
):
    rng = np.random.default_rng(seed)
    base = rng.random((num_tiles, TILE, TILE)).astype(np.float32)
    noisy = base + 0.05 * rng.standard_normal(base.shape).astype(np.float32)
    windowed = (noisy * window_2d()).astype(np.float16)
    full_tiles = FULL_PIXELS / (TILE * TILE) * 4  # 4 overlapping offsets
    return DCTDenoiseApp(
        variant=variant,
        num_tiles=num_tiles,
        cache_dir=cache_dir,
        backend=backend,
        tiles=windowed,
        scale_factor=full_tiles / num_tiles,
    )
