"""Lowering passes: loop building, flattening, vectorization, simplify."""

from .bounds import BoundsError, Interval, interval_of, required_regions
from .build import (
    Lowerer,
    LoweringError,
    RealizationInfo,
    flatten_storage,
    reachable_funcs,
)
from .pipeline import Lowered, lower
from .simplify import simplify_expr, simplify_stmt
from .vectorize import VectorizeError, block_repeat, vectorize_loops

__all__ = [
    "BoundsError",
    "Interval",
    "Lowered",
    "Lowerer",
    "LoweringError",
    "RealizationInfo",
    "VectorizeError",
    "block_repeat",
    "flatten_storage",
    "interval_of",
    "lower",
    "reachable_funcs",
    "required_regions",
    "simplify_expr",
    "simplify_stmt",
    "vectorize_loops",
]
