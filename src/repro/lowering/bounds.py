"""Interval arithmetic for bounds inference.

Computes the region of a producer Func required by its consumers: each
call argument expression is evaluated over intervals (loop variables range
over their loop bounds; outer variables stay symbolic single points).
Affine expressions — the only kind our schedules produce in indices — get
exact bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..ir import (
    Add,
    Broadcast,
    Call,
    CallType,
    Cast,
    Div,
    Expr,
    IntImm,
    Max,
    Min,
    Mod,
    Mul,
    Sub,
    Variable,
    builders,
    is_const,
    const_value,
    make_add,
    make_div,
    make_max,
    make_min,
    make_mul,
    make_sub,
)


def linear_form(e: Expr):
    """Decompose into (coefficients-by-atom, constant) or None.

    Atoms are non-affine subexpressions (variables, divisions, ...), keyed
    by structural equality.  This lets symbolic extents like
    ``(xo*256 + 255) - (xo*256) + 1`` cancel to 256.
    """
    if isinstance(e, IntImm):
        return {}, e.value
    if isinstance(e, Add):
        a = linear_form(e.a)
        b = linear_form(e.b)
        return _combine(a, b, 1)
    if isinstance(e, Sub):
        a = linear_form(e.a)
        b = linear_form(e.b)
        return _combine(a, b, -1)
    if isinstance(e, Mul):
        for const_side, other in ((e.a, e.b), (e.b, e.a)):
            if is_const(const_side):
                inner = linear_form(other)
                if inner is None:
                    return None
                scale = const_value(const_side)
                coeffs, const = inner
                return (
                    {k: v * scale for k, v in coeffs.items()},
                    const * scale,
                )
        return {e: 1}, 0
    if e.type.lanes == 1:
        return {e: 1}, 0
    return None


def _combine(a, b, sign):
    if a is None or b is None:
        return None
    coeffs = dict(a[0])
    for key, value in b[0].items():
        coeffs[key] = coeffs.get(key, 0) + sign * value
    return coeffs, a[1] + sign * b[1]


def simplify_affine(e: Expr) -> Expr:
    """Re-normalize an affine integer expression (cancels common terms)."""
    form = linear_form(e)
    if form is None:
        return e
    coeffs, const = form
    out: Expr = IntImm(int(const))
    for atom, coeff in coeffs.items():
        if coeff == 0:
            continue
        out = make_add(out, make_mul(atom, IntImm(int(coeff))))
    return out


@dataclass(frozen=True)
class Interval:
    """A closed interval [lo, hi] of scalar integer expressions."""

    lo: Expr
    hi: Expr

    @staticmethod
    def point(e: Expr) -> "Interval":
        return Interval(e, e)

    def is_point(self) -> bool:
        return self.lo == self.hi

    def union(self, other: "Interval") -> "Interval":
        if self.lo == other.lo and self.hi == other.hi:
            return self
        return Interval(
            make_min(self.lo, other.lo), make_max(self.hi, other.hi)
        )

    def shift(self, offset: Expr) -> "Interval":
        return Interval(make_add(self.lo, offset), make_add(self.hi, offset))

    def extent(self) -> Expr:
        return simplify_affine(make_add(make_sub(self.hi, self.lo), IntImm(1)))

    def __str__(self) -> str:
        from ..ir import print_expr

        return f"[{print_expr(self.lo)}, {print_expr(self.hi)}]"


Scope = Dict[str, Interval]


class BoundsError(RuntimeError):
    pass


def interval_of(e: Expr, scope: Scope) -> Interval:
    """Bounds of ``e`` with variables ranging over ``scope`` intervals."""
    if isinstance(e, IntImm):
        return Interval.point(e)
    if isinstance(e, Variable):
        found = scope.get(e.name)
        if found is not None:
            return found
        return Interval.point(e)  # symbolic outer variable: a single point
    if isinstance(e, Cast):
        return interval_of(e.value, scope)
    if isinstance(e, Add):
        a, b = interval_of(e.a, scope), interval_of(e.b, scope)
        return Interval(make_add(a.lo, b.lo), make_add(a.hi, b.hi))
    if isinstance(e, Sub):
        a, b = interval_of(e.a, scope), interval_of(e.b, scope)
        return Interval(make_sub(a.lo, b.hi), make_sub(a.hi, b.lo))
    if isinstance(e, Mul):
        return _interval_mul(e, scope)
    if isinstance(e, Div):
        return _interval_div(e, scope)
    if isinstance(e, Mod):
        if is_const(e.b):
            m = const_value(e.b)
            if m > 0:
                a = interval_of(e.a, scope)
                if a.is_point():
                    return Interval.point(builders.make_mod(a.lo, e.b))
                return Interval(IntImm(0), IntImm(int(m) - 1))
        raise BoundsError(f"cannot bound modulo by non-constant: {e}")
    if isinstance(e, Min):
        a, b = interval_of(e.a, scope), interval_of(e.b, scope)
        return Interval(make_min(a.lo, b.lo), make_min(a.hi, b.hi))
    if isinstance(e, Max):
        a, b = interval_of(e.a, scope), interval_of(e.b, scope)
        return Interval(make_max(a.lo, b.lo), make_max(a.hi, b.hi))
    raise BoundsError(f"cannot compute interval of {type(e).__name__}: {e}")


def _interval_mul(e: Mul, scope: Scope) -> Interval:
    a, b = interval_of(e.a, scope), interval_of(e.b, scope)
    if b.is_point() and is_const(b.lo):
        factor = const_value(b.lo)
    elif a.is_point() and is_const(a.lo):
        a, b = b, a
        factor = const_value(b.lo)
    elif a.is_point() and b.is_point():
        return Interval.point(make_mul(a.lo, b.lo))
    else:
        raise BoundsError(f"cannot bound product of two intervals: {e}")
    lo = make_mul(a.lo, b.lo)
    hi = make_mul(a.hi, b.lo)
    if factor < 0:
        lo, hi = hi, lo
    return Interval(lo, hi)


def _interval_div(e: Div, scope: Scope) -> Interval:
    a = interval_of(e.a, scope)
    if not is_const(e.b):
        if a.is_point():
            return Interval.point(make_div(a.lo, e.b))
        raise BoundsError(f"cannot bound division by non-constant: {e}")
    d = const_value(e.b)
    if d <= 0:
        raise BoundsError(f"non-positive divisor in {e}")
    return Interval(make_div(a.lo, e.b), make_div(a.hi, e.b))


def required_regions(
    node, func_names, scope: Scope
) -> Dict[str, list]:
    """Regions of each named Func called within ``node``.

    Returns ``{func_name: [Interval per dimension]}`` — the union over all
    call sites, with loop variables in ``scope`` ranging over their loops.
    """
    from ..ir.visitor import IRVisitor

    wanted = set(func_names)
    regions: Dict[str, list] = {}

    class Collector(IRVisitor):
        def visit_Call(self, call: Call):
            if call.call_type in (CallType.HALIDE, CallType.IMAGE) and (
                call.name in wanted
            ):
                intervals = [interval_of(a, scope) for a in call.args]
                if call.name in regions:
                    regions[call.name] = [
                        old.union(new)
                        for old, new in zip(regions[call.name], intervals)
                    ]
                else:
                    regions[call.name] = intervals
            for a in call.args:
                self.visit(a)

        visit_FuncCall = visit_Call

    Collector().visit(node)
    return regions
