"""The aggressive (pattern-obscuring) simplifier.

Halide runs local strength-reduction style rewrites throughout
compilation.  Two of them are precisely what hides tensor patterns from a
syntactic matcher (paper §III-B):

* a load of a broadcast index becomes a broadcast of a (narrower) load —
  cheaper at runtime, but now the tensor access pattern is wrapped in a
  broadcast *outside* the load;
* nested ramp/broadcast index vectors are left in shallow un-nested
  ``ramp(...) + xK(ramp(...))`` sums rather than the canonical
  three-level nesting the MatMul pattern expects.

HARDBOILED's axiomatic rules undo exactly these, inside EqSat, where rule
ordering does not matter.
"""

from __future__ import annotations

from ..ir import (
    Add,
    Broadcast,
    Cast,
    Div,
    Expr,
    Load,
    Max,
    Min,
    Mod,
    Mul,
    Ramp,
    Shuffle,
    Stmt,
    Sub,
    VectorReduce,
    builders,
)
from ..ir.visitor import IRMutator

_DISTRIBUTABLE = (Add, Sub, Mul, Div, Mod, Min, Max)
_BUILDER_FOR = {
    Add: builders.make_add,
    Sub: builders.make_sub,
    Mul: builders.make_mul,
    Div: builders.make_div,
    Mod: builders.make_mod,
    Min: builders.make_min,
    Max: builders.make_max,
}


def _rewrite_once(e: Expr):
    """One local rewrite step; returns None when nothing applies."""
    if isinstance(e, Broadcast):
        if e.count == 1:
            return e.value
        if isinstance(e.value, Broadcast):
            return Broadcast(e.value.value, e.value.count * e.count)
    if isinstance(e, Ramp):
        if e.count == 1:
            return e.base
        # dense nested ramp -> flat ramp: the paper's matmul[ramp(0,1,512)]
        if (
            isinstance(e.base, Ramp)
            and builders.is_const(e.base.stride)
            and builders.const_value(e.base.stride) == 1
            and e.base.base.type.lanes == 1
            and isinstance(e.stride, Broadcast)
            and builders.is_const(e.stride.value)
            and builders.const_value(e.stride.value) == e.base.count
        ):
            from ..ir import IntImm

            return Ramp(e.base.base, IntImm(1), e.base.count * e.count)
    if isinstance(e, Load) and isinstance(e.index, Broadcast):
        # load of broadcast index -> broadcast of load (cheaper; obscures)
        inner_index = e.index.value
        inner = Load(
            e.dtype.with_lanes(inner_index.type.lanes), e.name, inner_index
        )
        return Broadcast(inner, e.index.count)
    if isinstance(e, Cast) and isinstance(e.value, Broadcast):
        inner_lanes = e.value.value.type.lanes
        return Broadcast(
            Cast(e.dtype.with_lanes(inner_lanes), e.value.value),
            e.value.count,
        )
    if isinstance(e, _DISTRIBUTABLE):
        a, b = e.a, e.b
        if builders.is_const(a) and builders.is_const(b):
            folded = _BUILDER_FOR[type(e)](a, b)
            if folded != e:
                return folded
        if builders.is_const(a) or builders.is_const(b):
            folded = _BUILDER_FOR[type(e)](a, b)
            if folded != e:
                return folded
        if (
            isinstance(a, Broadcast)
            and isinstance(b, Broadcast)
            and a.count == b.count
            and a.value.type.lanes == b.value.type.lanes
        ):
            return Broadcast(_BUILDER_FOR[type(e)](a.value, b.value), a.count)
    if isinstance(e, (Add, Mul, Sub)):
        folded = _fold_ramp_broadcast(e)
        if folded is not None:
            return folded
    if (
        isinstance(e, (Add, Sub, Mul))
        and e.type.lanes == 1
        and e.type.is_int()
    ):
        from ..ir import expr_size
        from .bounds import simplify_affine

        normalized = simplify_affine(e)
        if expr_size(normalized) < expr_size(e):
            return normalized
    if isinstance(e, Shuffle) and len(e.vectors) == 1:
        if e.indices == tuple(range(e.vectors[0].type.lanes)):
            return e.vectors[0]
        if isinstance(e.vectors[0], Broadcast) and (
            e.vectors[0].value.type.lanes == 1
        ):
            return Broadcast(e.vectors[0].value, len(e.indices))
    return None


def _fold_ramp_broadcast(e: Expr):
    """Fold ramp +/-/* broadcast into the ramp (when lane blocks align)."""
    sides = ((e.a, e.b), (e.b, e.a))
    if isinstance(e, Sub):
        sides = ((e.a, e.b),)  # only ramp - broadcast
    for ramp, other in sides:
        if not isinstance(ramp, Ramp) or not isinstance(other, Broadcast):
            continue
        blockwise = (
            other.count == ramp.count
            and other.value.type.lanes == ramp.base.type.lanes
        )
        uniform = (
            other.value.type.lanes == 1
            and other.count == ramp.type.lanes
        )
        if not blockwise and not uniform:
            continue
        v = other.value
        if isinstance(e, Add):
            return Ramp(builders.make_add(ramp.base, v), ramp.stride, ramp.count)
        if isinstance(e, Sub):
            return Ramp(builders.make_sub(ramp.base, v), ramp.stride, ramp.count)
        return Ramp(
            builders.make_mul(ramp.base, v),
            builders.make_mul(ramp.stride, v),
            ramp.count,
        )
    return None


class _Simplifier(IRMutator):
    def generic_mutate(self, node):
        node = super().generic_mutate(node)
        if isinstance(node, Expr):
            for _ in range(8):
                rewritten = _rewrite_once(node)
                if rewritten is None:
                    break
                node = rewritten
        return node


def simplify_stmt(stmt: Stmt, max_rounds: int = 10) -> Stmt:
    """Simplify to a fixpoint (inner rewrites expose outer ones)."""
    for _ in range(max_rounds):
        new = _Simplifier().mutate(stmt)
        if new is stmt or new == stmt:
            return new
        stmt = new
    return stmt


def simplify_expr(e: Expr, max_rounds: int = 10) -> Expr:
    for _ in range(max_rounds):
        new = _Simplifier().mutate(e)
        if new is e or new == e:
            return new
        e = new
    return e
