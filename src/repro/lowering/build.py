"""Loop-nest construction and storage flattening.

``lower_skeleton`` turns a scheduled Func DAG into a loop nest of
:class:`Provide` statements (multi-dimensional stores), realizing each
producer at its ``compute_at`` level with bounds from interval analysis.
``flatten_storage`` then rewrites Provides/Calls into flat-indexed
Store/Load nodes using each realization's region and strides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ir import (
    Allocate,
    Block,
    Call,
    CallType,
    DataType,
    Expr,
    For,
    ForKind,
    IntImm,
    MemoryType,
    ProducerConsumer,
    Provide,
    Stmt,
    Store,
    Variable,
    as_int,
    contains,
    is_const,
    make_add,
    make_mul,
    make_sub,
    substitute,
)
from ..ir.visitor import IRMutator, IRVisitor
from ..frontend.func import Func, Stage
from .bounds import Interval, interval_of, required_regions


class LoweringError(RuntimeError):
    pass


@dataclass
class RealizationInfo:
    """Where and how a Func's buffer is laid out."""

    func: Func
    mins: List[Expr]
    extents: List[Expr]
    #: storage dimension order: indices into arg order, innermost first
    storage_perm: List[int]
    memory_type: MemoryType
    is_output: bool = False

    @property
    def name(self) -> str:
        return self.func.name

    def strides(self) -> List[Expr]:
        """Stride per *argument* dimension (respecting storage order)."""
        strides: List[Optional[Expr]] = [None] * len(self.extents)
        acc: Expr = IntImm(1)
        for dim in self.storage_perm:
            strides[dim] = acc
            acc = make_mul(acc, self.extents[dim])
        return strides  # type: ignore[return-value]

    def flatten(self, args: Sequence[Expr]) -> Expr:
        idx: Expr = IntImm(0)
        for arg, mn, stride in zip(args, self.mins, self.strides()):
            idx = make_add(idx, make_mul(make_sub(arg, mn), stride))
        return idx


def _collect_called_funcs(expr) -> List[Func]:
    from ..frontend.func import Func as FuncClass

    found: List[Func] = []

    class V(IRVisitor):
        def visit_Call(self, call: Call):
            func = getattr(call, "func", None)
            if call.call_type == CallType.HALIDE and func is not None:
                found.append(func)
            for a in call.args:
                self.visit(a)

        visit_FuncCall = visit_Call

    V().visit(expr)
    return found


def reachable_funcs(output: Func) -> List[Func]:
    """All Funcs in the DAG rooted at ``output`` (output first)."""
    seen: List[Func] = []

    def visit(f: Func) -> None:
        if any(g is f for g in seen):
            return
        seen.append(f)
        for stage in f.stages():
            for called in _collect_called_funcs(stage.value):
                visit(called)
            for arg in stage.args:
                for called in _collect_called_funcs(arg):
                    visit(called)

    visit(output)
    return seen


class _Inliner(IRMutator):
    """Substitutes calls to inline-scheduled Funcs with their definitions."""

    def __init__(self, materialized: Set[str]):
        self.materialized = materialized

    def mutate_FuncCall(self, call: Call):
        return self.mutate_Call(call)

    def mutate_Call(self, call: Call):
        func = getattr(call, "func", None)
        if (
            call.call_type == CallType.HALIDE
            and func is not None
            and func.name not in self.materialized
        ):
            if func.updates:
                raise LoweringError(
                    f"Func {func.name!r} has update definitions and must be"
                    " scheduled (compute_root/compute_at), not inlined"
                )
            args = tuple(self.mutate(a) for a in call.args)
            mapping = dict(zip(func.arg_names, args))
            return self.mutate(substitute(func.pure.value, mapping))
        return self.generic_mutate(call)


def inline_pass(expr, materialized: Set[str]):
    return _Inliner(materialized).mutate(expr)


@dataclass
class _StagePlan:
    stage: Stage
    dims_bounds: List[Tuple[str, Expr, Expr, ForKind]]  # innermost first
    provide: Provide


class Lowerer:
    """Builds the full loop skeleton for one output Func."""

    def __init__(self, output: Func) -> None:
        self.output = output
        self.funcs = reachable_funcs(output)
        self.realizations: Dict[str, RealizationInfo] = {}
        self.atomic_vars: Set[str] = set()
        self.materialized = {
            f.name
            for f in self.funcs
            if f is output or f.compute_level != "inline"
        }
        # group producers by (consumer identity, var name)
        self.producers_at: Dict[Tuple[int, str], List[Func]] = {}
        self.root_producers: List[Func] = []
        for f in self.funcs:
            if f is output:
                continue
            level = f.compute_level
            if level == "inline":
                continue
            if level == "root":
                self.root_producers.append(f)
            else:
                consumer, var = level
                self.producers_at.setdefault((id(consumer), var), []).append(f)

    # -- public ------------------------------------------------------------------

    def lower(self) -> Stmt:
        if not self.output.defined:
            raise LoweringError(f"output {self.output.name!r} is undefined")
        region = self._output_region()
        body = self._realize(self.output, region, is_output=True)
        body = self._inject_root_producers(body)
        return body

    def _output_region(self) -> List[Interval]:
        region = []
        for name in self.output.arg_names:
            if name not in self.output.explicit_bounds:
                raise LoweringError(
                    f"output {self.output.name!r} needs bound() for {name!r}"
                )
            mn, ext = self.output.explicit_bounds[name]
            region.append(Interval(IntImm(mn), IntImm(mn + ext - 1)))
        return region

    # -- realization ----------------------------------------------------------------

    def _realize(
        self, func: Func, region: List[Interval], is_output: bool = False
    ) -> Stmt:
        if func.name in self.realizations:
            raise LoweringError(
                f"Func {func.name!r} realized twice — two consumers at"
                " different levels are not supported"
            )
        mins = [iv.lo for iv in region]
        extents = [iv.extent() for iv in region]
        if func.storage_order is not None:
            perm = [func.arg_names.index(n) for n in func.storage_order]
        else:
            perm = list(range(len(extents)))
        memory = func.memory_type
        if memory is MemoryType.AUTO:
            memory = MemoryType.HEAP if is_output else MemoryType.STACK
        info = RealizationInfo(
            func, mins, extents, perm, memory, is_output=is_output
        )
        self.realizations[func.name] = info

        stage_stmts = [
            self._build_stage(func, stage, region) for stage in func.stages()
        ]
        return ProducerConsumer(func.name, True, Block.make(stage_stmts))

    def _stage_bounds(
        self, func: Func, stage: Stage, region: List[Interval]
    ) -> Dict[str, Tuple[Expr, Expr]]:
        bounds: Dict[str, Tuple[Expr, Expr]] = {}
        if not stage.is_update:
            for arg, iv in zip(func.arg_names, region):
                bounds[arg] = (iv.lo, iv.extent())
        else:
            for pos, arg in enumerate(stage.args):
                if isinstance(arg, Variable):
                    if arg.name in stage.rvars:
                        continue
                    iv = region[pos]
                    bounds[arg.name] = (iv.lo, iv.extent())
                elif is_const(arg):
                    continue
                else:
                    raise LoweringError(
                        f"update of {func.name!r} has a non-variable LHS"
                        f" index; cannot derive its bounds"
                    )
            for rvar in stage.rvars.values():
                bounds[rvar.name] = (
                    IntImm(rvar.min_value),
                    IntImm(rvar.extent),
                )
        return bounds

    def _apply_splits(
        self, stage: Stage, bounds: Dict[str, Tuple[Expr, Expr]]
    ) -> Dict[str, Expr]:
        """Mutates ``bounds``; returns the substitution old var -> expr."""
        subst: Dict[str, Expr] = {}
        for split in stage.splits:
            if split.old not in bounds:
                raise LoweringError(
                    f"split of unknown dimension {split.old!r} in"
                    f" {stage.func.name!r}"
                )
            mn, ext = bounds.pop(split.old)
            if not is_const(ext):
                raise LoweringError(
                    f"split of {split.old!r}: extent must be constant, got"
                    f" a symbolic expression"
                )
            extent = as_int(ext)
            if extent % split.factor != 0:
                raise LoweringError(
                    f"split of {split.old!r} in {stage.func.name!r}: extent"
                    f" {extent} is not divisible by factor {split.factor} —"
                    " this simplified Halide requires exact splits"
                )
            bounds[split.inner] = (IntImm(0), IntImm(split.factor))
            bounds[split.outer] = (IntImm(0), IntImm(extent // split.factor))
            replacement = make_add(
                make_add(
                    make_mul(
                        Variable(split.outer), IntImm(split.factor)
                    ),
                    Variable(split.inner),
                ),
                mn,
            )
            # rewrite prior substitutions that mention the split var
            for key, value in list(subst.items()):
                subst[key] = substitute(value, {split.old: replacement})
            subst[split.old] = replacement
        return subst

    def _build_stage(
        self, func: Func, stage: Stage, region: List[Interval]
    ) -> Stmt:
        bounds = self._stage_bounds(func, stage, region)
        subst = self._apply_splits(stage, bounds)
        stage_index = func.stages().index(stage)
        # qualify every loop variable with its func/stage, as Halide does
        # (conv.s1.x), so producer loops never capture consumer variables
        qualify = {
            dim.var: f"{func.name}.s{stage_index}.{dim.var}"
            for dim in stage.dims
        }
        rename = {plain: Variable(q) for plain, q in qualify.items()}

        value = inline_pass(stage.value, self.materialized)
        args = tuple(inline_pass(a, self.materialized) for a in stage.args)
        if subst:
            value = substitute(value, subst)
            args = tuple(substitute(a, subst) for a in args)
        value = substitute(value, rename)
        args = tuple(substitute(a, rename) for a in args)
        if stage.atomic_flag:
            self.atomic_vars.update(qualify.values())

        stmt: Stmt = Provide(func.name, args, value)
        # wrap loops innermost-first; inject producers at their level
        for position, dim in enumerate(stage.dims):
            if dim.var not in bounds:
                raise LoweringError(
                    f"dimension {dim.var!r} of {func.name!r} has no bounds"
                    " (reorder/split bookkeeping error)"
                )
            stmt = self._inject_producers(
                func, stage, stmt, position, bounds, qualify
            )
            mn, ext = bounds[dim.var]
            stmt = For(qualify[dim.var], mn, ext, dim.kind, stmt)
        return stmt

    def _inject_producers(
        self,
        func: Func,
        stage: Stage,
        stmt: Stmt,
        position: int,
        bounds: Dict[str, Tuple[Expr, Expr]],
        qualify: Dict[str, str],
    ) -> Stmt:
        dim = stage.dims[position]
        producers = self.producers_at.get((id(func), dim.var), [])
        for producer in producers:
            if not _references(stmt, producer.name):
                continue
            scope = {}
            for inner in stage.dims[:position]:
                mn, ext = bounds[inner.var]
                scope[qualify[inner.var]] = Interval(
                    mn, make_sub(make_add(mn, ext), IntImm(1))
                )
            # loops of producers already injected at this level are also
            # inside the insertion point: their variables range too
            scope.update(_loop_scope(stmt))
            regions = required_regions(stmt, [producer.name], scope)
            if producer.name not in regions:
                continue
            produce = self._realize(producer, regions[producer.name])
            info = self.realizations[producer.name]
            stmt = Allocate(
                producer.name,
                producer.dtype,
                tuple(info.extents),
                info.memory_type,
                Block.make([produce, stmt]),
            )
        return stmt

    def _root_producer_order(self) -> List[Func]:
        """Topological order: consumers first (injected innermost)."""
        by_name = {f.name: f for f in self.root_producers}
        order: List[Func] = []
        visiting: Set[str] = set()

        def visit(f: Func) -> None:
            if f in order:
                return
            if f.name in visiting:
                raise LoweringError(
                    f"cycle among compute_root funcs at {f.name!r}"
                )
            visiting.add(f.name)
            # producers this func consumes come AFTER it (wrap outside)
            consumed = []
            for stage in f.stages():
                for called in _collect_called_funcs(stage.value):
                    if called.name in by_name and called is not f:
                        consumed.append(called)
            order.append(f)
            for g in consumed:
                visit(g)
            visiting.discard(f.name)

        for f in self.root_producers:
            visit(f)
        # consumers-of-consumers may appear late; re-sort stably so that
        # every func precedes everything it consumes
        result: List[Func] = []
        for f in order:
            if f not in result:
                result.append(f)
        changed = True
        while changed:
            changed = False
            for idx, f in enumerate(result):
                for stage in f.stages():
                    for called in _collect_called_funcs(stage.value):
                        if called in result:
                            jdx = result.index(called)
                            if jdx < idx:
                                result.insert(idx, result.pop(jdx))
                                changed = True
        return result

    def _inject_root_producers(self, body: Stmt) -> Stmt:
        # root producers realize over the full region their consumers
        # touch; injection order is consumers-innermost so every produce
        # runs after the produces it depends on
        for producer in self._root_producer_order():
            if not _references(body, producer.name):
                continue
            scope = _loop_scope(body)
            regions = required_regions(body, [producer.name], scope)
            if producer.name not in regions:
                continue
            produce = self._realize(producer, regions[producer.name])
            info = self.realizations[producer.name]
            body = Allocate(
                producer.name,
                producer.dtype,
                tuple(info.extents),
                info.memory_type,
                Block.make([produce, body]),
            )
        return body


def _references(stmt: Stmt, name: str) -> bool:
    return contains(
        stmt,
        lambda n: isinstance(n, Call)
        and n.call_type in (CallType.HALIDE, CallType.IMAGE)
        and n.name == name,
    )


def _loop_scope(stmt: Stmt) -> Dict[str, Interval]:
    scope: Dict[str, Interval] = {}

    class V(IRVisitor):
        def visit_For(self, node: For):
            scope[node.name] = Interval(
                node.min_expr,
                make_sub(make_add(node.min_expr, node.extent), IntImm(1)),
            )
            self.visit(node.body)

    V().visit(stmt)
    return scope


class _Flattener(IRMutator):
    """Provide -> Store and Call -> Load with flat indices."""

    def __init__(self, realizations: Dict[str, RealizationInfo]):
        self.realizations = realizations

    def mutate_Provide(self, node: Provide):
        args = tuple(self.mutate(a) for a in node.args)
        value = self.mutate(node.value)
        info = self.realizations.get(node.name)
        if info is None:
            raise LoweringError(f"Provide to unrealized func {node.name!r}")
        return Store(node.name, info.flatten(args), value)

    def mutate_FuncCall(self, node: Call):
        return self.mutate_Call(node)

    def mutate_Call(self, node: Call):
        args = tuple(self.mutate(a) for a in node.args)
        if node.call_type == CallType.HALIDE:
            info = self.realizations.get(node.name)
            if info is None:
                raise LoweringError(
                    f"call to unrealized func {node.name!r} — inline funcs"
                    " should have been substituted"
                )
            from ..ir.expr import Load

            return Load(node.dtype, node.name, info.flatten(args))
        if node.call_type == CallType.IMAGE:
            idx: Expr = IntImm(0)
            stride: Expr = IntImm(1)
            for d, arg in enumerate(args):
                if d == 0:
                    stride_expr: Expr = IntImm(1)
                else:
                    stride_expr = Variable(f"{node.name}.stride.{d}")
                idx = make_add(idx, make_mul(arg, stride_expr))
            from ..ir.expr import Load

            return Load(node.dtype, node.name, idx)
        if args != node.args:
            import dataclasses

            return dataclasses.replace(node, args=args)
        return node


def flatten_storage(
    stmt: Stmt, realizations: Dict[str, RealizationInfo]
) -> Stmt:
    return _Flattener(realizations).mutate(stmt)
