"""Pass orchestration: Func DAG -> executable lowered statement."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from ..frontend.func import Func
from ..ir import Stmt
from .build import Lowerer, RealizationInfo, flatten_storage
from .cleanup import remove_trivial_loops
from .simplify import simplify_stmt
from .vectorize import vectorize_loops


@dataclass
class Lowered:
    """The result of lowering (pre- or post-instruction-selection)."""

    stmt: Stmt
    realizations: Dict[str, RealizationInfo]
    output: Func
    atomic_vars: Set[str]
    #: wall-clock seconds per pass, for the compile-time experiments
    pass_seconds: Dict[str, float] = field(default_factory=dict)


def lower(
    output: Func,
    *,
    vectorize: bool = True,
    simplify: bool = True,
    verify: bool = False,
) -> Lowered:
    """Lower a scheduled Func to vectorized, simplified IR.

    ``verify=True`` gates the result through the static IR verifier
    (:func:`repro.analysis.check_ir`): use-before-def, bounds, scope,
    and type defects raise :class:`repro.analysis.AnalysisError`
    instead of surfacing as wrong answers at run time.
    """
    timings: Dict[str, float] = {}
    start = time.perf_counter()
    lowerer = Lowerer(output)
    skeleton = lowerer.lower()
    timings["build"] = time.perf_counter() - start

    start = time.perf_counter()
    stmt = flatten_storage(skeleton, lowerer.realizations)
    stmt = remove_trivial_loops(stmt)
    timings["flatten"] = time.perf_counter() - start

    if vectorize:
        start = time.perf_counter()
        stmt = vectorize_loops(stmt, lowerer.atomic_vars)
        timings["vectorize"] = time.perf_counter() - start
    if simplify:
        start = time.perf_counter()
        stmt = simplify_stmt(stmt)
        timings["simplify"] = time.perf_counter() - start
    if verify:
        from ..analysis import check_ir

        start = time.perf_counter()
        check_ir(
            stmt,
            lowerer.realizations,
            phase="lowered",
            context=output.name,
        )
        timings["verify"] = time.perf_counter() - start
    return Lowered(
        stmt, lowerer.realizations, output, lowerer.atomic_vars, timings
    )
