"""Loop cleanups: drop extent-1 and extent-0 loops.

Splitting a dimension by its full extent leaves a remnant loop of extent
one (e.g. ``vectorize(x, 16)`` on a 16-wide dimension).  Removing these
before vectorization keeps vectorized dimensions properly innermost.
"""

from __future__ import annotations

from ..ir import Block, For, Stmt, as_int, is_const, substitute
from ..ir.visitor import IRMutator


class _TrivialLoopRemover(IRMutator):
    def mutate_For(self, node: For):
        body = self.mutate(node.body)
        if is_const(node.extent):
            extent = as_int(node.extent)
            if extent == 0:
                return Block(())
            if extent == 1:
                return substitute_stmt_var(body, node.name, node.min_expr)
        if body is node.body:
            return node
        return For(node.name, node.min_expr, node.extent, node.kind, body)


def substitute_stmt_var(stmt: Stmt, name: str, value):
    return substitute(stmt, {name: value})


def remove_trivial_loops(stmt: Stmt) -> Stmt:
    return _TrivialLoopRemover().mutate(stmt)
