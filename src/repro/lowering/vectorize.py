"""The vectorization pass.

Processes ``ForKind.VECTORIZED`` loops innermost-first.  Substituting the
loop variable produces the vector IR HARDBOILED consumes:

* a scalar occurrence of the var becomes ``Ramp(min, 1, n)``;
* already-vectorized (inner) expressions widen so the *new* dimension is
  outermost — each j-th block of the result holds the expression at
  ``var = min + j``;
* mismatched inner lane counts are fixed up with ``block_repeat`` (each
  block of lanes repeated contiguously), which distributes structurally
  over ramps/broadcasts/arithmetic and pushes through loads by widening
  the index — this is exactly how the paper's nested
  ``ramp(x512(0), x512(32), 16) + x256(ramp(0, 1, 32))`` shapes arise;
* vectorizing a reduction dimension (under ``atomic()``) of a
  ``f[i] = f[i] + w`` update emits ``VectorReduce`` — the paper's
  ``vector_reduce_add``.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..ir import (
    Add,
    Block,
    Broadcast,
    Call,
    Cast,
    Div,
    EQ,
    Evaluate,
    Expr,
    For,
    ForKind,
    GE,
    GT,
    IntImm,
    LE,
    LT,
    Load,
    Max,
    Min,
    Mod,
    Mul,
    NE,
    Ramp,
    Select,
    Shuffle,
    Stmt,
    Store,
    Sub,
    Variable,
    VectorReduce,
    as_int,
    free_variables,
    is_const,
    make_add,
)
from ..ir.visitor import IRMutator

_BINARY_NODES = (Add, Sub, Mul, Div, Mod, Min, Max, EQ, NE, LT, LE, GT, GE)


class VectorizeError(RuntimeError):
    pass


def block_repeat(e: Expr, block: int, times: int) -> Expr:
    """Repeat every ``block`` consecutive lanes of ``e`` ``times`` times."""
    lanes = e.type.lanes
    if times == 1:
        return e
    if lanes % block != 0:
        raise VectorizeError(
            f"block_repeat: {lanes} lanes not divisible by block {block}"
        )
    if lanes == block:
        return Broadcast(e, times)
    if isinstance(e, Broadcast):
        inner_lanes = e.value.type.lanes
        if inner_lanes == 1:
            # uniform vector: any block repetition is still uniform
            return Broadcast(e.value, e.count * times)
        if inner_lanes == block:
            # each copy is exactly one block: repeating blocks just makes
            # more copies
            return Broadcast(e.value, e.count * times)
        if inner_lanes % block == 0:
            # blocks subdivide each copy: repeat inside, then re-tile
            return Broadcast(block_repeat(e.value, block, times), e.count)
        return _shuffle_repeat(e, block, times)
    if isinstance(e, Ramp):
        base_lanes = e.base.type.lanes
        if base_lanes == block:
            return Ramp(
                Broadcast(e.base, times), Broadcast(e.stride, times), e.count
            )
    if isinstance(e, _BINARY_NODES):
        return type(e)(
            block_repeat(e.a, block, times), block_repeat(e.b, block, times)
        )
    if isinstance(e, Cast):
        child = block_repeat(e.value, block, times)
        return Cast(e.dtype.with_lanes(child.type.lanes), child)
    if isinstance(e, Load):
        idx = block_repeat(e.index, block, times)
        return Load(e.dtype.with_lanes(idx.type.lanes), e.name, idx)
    return _shuffle_repeat(e, block, times)


def _shuffle_repeat(e: Expr, block: int, times: int) -> Expr:
    lanes = e.type.lanes
    indices = tuple(
        g * block + i
        for g in range(lanes // block)
        for _ in range(times)
        for i in range(block)
    )
    return Shuffle((e,), indices)


class _VecSubst:
    """Widens one vectorized loop variable through an expression tree."""

    def __init__(self, var: str, min_expr: Expr, extent: int):
        self.var = var
        self.min_expr = min_expr
        self.n = extent
        self._contains_cache: Dict[int, bool] = {}

    def contains_var(self, e) -> bool:
        key = id(e)
        cached = self._contains_cache.get(key)
        if cached is None:
            cached = self.var in free_variables(e)
            self._contains_cache[key] = cached
        return cached

    # -- expression widening -------------------------------------------------

    def widen(self, e: Expr) -> Expr:
        """Returns ``e`` with lanes(e) * n lanes; new dim outermost."""
        if not self.contains_var(e):
            return Broadcast(e, self.n)
        return self.vec(e)

    def vec(self, e: Expr) -> Expr:
        """Widen an expression that contains the var."""
        if isinstance(e, Variable):
            if e.name == self.var:
                return Ramp(self.min_expr, IntImm(1), self.n)
            raise VectorizeError(f"variable {e.name!r} does not contain var")
        if isinstance(e, _BINARY_NODES):
            return self._widen_children(type(e), e.a, e.b)
        if isinstance(e, Select):
            return self._widen_children(
                Select, e.condition, e.true_value, e.false_value
            )
        if isinstance(e, Cast):
            child = self.vec(e.value)
            return Cast(e.dtype.with_lanes(child.type.lanes), child)
        if isinstance(e, Load):
            idx = self.vec(e.index)
            return Load(e.dtype.with_lanes(idx.type.lanes), e.name, idx)
        if isinstance(e, Broadcast):
            inner = self.vec(e.value)
            return block_repeat(inner, e.value.type.lanes, e.count)
        if isinstance(e, Ramp):
            return self._vec_ramp(e)
        if isinstance(e, VectorReduce):
            inner = self.vec(e.value)
            return VectorReduce(e.op, inner, e.result_lanes * self.n)
        if isinstance(e, Call):
            args = tuple(
                self.vec(a) if self.contains_var(a) else self._match_arg(a)
                for a in e.args
            )
            lanes = max(a.type.lanes for a in args) if args else e.type.lanes
            import dataclasses

            return dataclasses.replace(
                e, dtype=e.dtype.with_lanes(lanes), args=args
            )
        raise VectorizeError(
            f"cannot vectorize {type(e).__name__} over {self.var!r}"
        )

    def _match_arg(self, a: Expr) -> Expr:
        return Broadcast(a, self.n) if a.type.lanes >= 1 else a

    def _widen_children(self, node_cls, *children: Expr) -> Expr:
        orig_lanes = max(c.type.lanes for c in children)
        widened = []
        for c in children:
            lc = c.type.lanes
            if self.contains_var(c):
                w = self.vec(c)
                if lc < orig_lanes:
                    # scalar child stretched so each value fills a block
                    w = block_repeat(w, lc, orig_lanes // lc)
            else:
                if lc < orig_lanes:
                    c = Broadcast(c, orig_lanes // lc)
                w = Broadcast(c, self.n)
            widened.append(w)
        return node_cls(*widened)

    def _vec_ramp(self, e: Ramp) -> Expr:
        if self.contains_var(e.stride):
            raise VectorizeError(
                "vectorizing a ramp whose stride depends on the loop var is"
                " not supported"
            )
        base_lanes = e.base.type.lanes
        vec_base = self.vec(e.base)
        part1 = block_repeat(vec_base, base_lanes, e.count)
        from ..ir.builders import const

        zero = const(0, e.base.type)
        steps = Ramp(zero, e.stride, e.count)
        part2 = Broadcast(steps, self.n)
        return Add(part1, part2)

    # -- statement widening ---------------------------------------------------

    def vec_stmt(self, s: Stmt, atomic_vars: Set[str]) -> Stmt:
        if isinstance(s, Block):
            return Block.make(
                [self.vec_stmt(part, atomic_vars) for part in s.stmts]
            )
        if isinstance(s, Evaluate):
            if self.contains_var(s.value):
                return Evaluate(self.vec(s.value))
            return s
        if isinstance(s, Store):
            return self._vec_store(s, atomic_vars)
        if isinstance(s, For):
            raise VectorizeError(
                f"loop {s.name!r} nested inside vectorized loop"
                f" {self.var!r}; vectorized dimensions must be innermost"
            )
        raise VectorizeError(
            f"cannot vectorize statement {type(s).__name__} over"
            f" {self.var!r}"
        )

    def _vec_store(self, s: Store, atomic_vars: Set[str]) -> Stmt:
        idx_has = self.contains_var(s.index)
        val_has = self.contains_var(s.value)
        if not idx_has and not val_has:
            return s
        if idx_has:
            idx = self.vec(s.index)
            if val_has:
                value = self.vec(s.value)
            else:
                value = Broadcast(s.value, self.n)
            return Store(s.name, idx, value)
        # reduction: the store location does not move with the loop var
        if self.var not in atomic_vars:
            raise VectorizeError(
                f"vectorizing reduction dimension {self.var!r} requires"
                " atomic() on the stage"
            )
        # expected shape: name[i] = name[i] + w   (from `f[...] += w`)
        value = s.value
        if isinstance(value, Add):
            for load, rest in ((value.a, value.b), (value.b, value.a)):
                is_self_load = (
                    isinstance(load, Load)
                    and load.name == s.name
                    and load.index == s.index
                )
                if not is_self_load or not self.contains_var(rest):
                    continue
                if rest.type.lanes != 1:
                    raise VectorizeError(
                        "reduction dimensions must be vectorized first"
                        " (innermost of all vectorized dimensions)"
                    )
                wide = self.vec(rest)
                reduced = VectorReduce("add", wide, 1)
                return Store(s.name, s.index, Add(reduced, load))
        raise VectorizeError(
            f"atomic vectorization of {self.var!r} needs an update of the"
            f" form {s.name}[i] = {s.name}[i] + w"
        )


class _LoopVectorizer(IRMutator):
    def __init__(self, atomic_vars: Optional[Set[str]] = None):
        self.atomic_vars = atomic_vars or set()

    def mutate_For(self, node: For):
        body = self.mutate(node.body)
        if node.kind is not ForKind.VECTORIZED:
            if body is node.body:
                return node
            return For(node.name, node.min_expr, node.extent, node.kind, body)
        if not is_const(node.extent):
            raise VectorizeError(
                f"vectorized loop {node.name!r} needs a constant extent"
            )
        extent = as_int(node.extent)
        subst = _VecSubst(node.name, node.min_expr, extent)
        return subst.vec_stmt(body, self.atomic_vars)


def vectorize_loops(stmt: Stmt, atomic_vars: Optional[Set[str]] = None) -> Stmt:
    """Replace vectorized loops by wide vector statements."""
    return _LoopVectorizer(atomic_vars).mutate(stmt)
