"""Execution runtime: buffers, the two backends, counters.

Two execution backends share one lowered-IR contract: the instrumented
tree-walking :class:`Interpreter` and the compiled NumPy backend in
:mod:`.codegen` (memoized by :class:`.kernel_cache.KernelCache`).
"""

from .buffer import Buffer
from .counters import Counters
from .interpreter import INTRINSICS, Interpreter, memory_level, register_intrinsic
from .kernel_cache import DEFAULT_CACHE, KernelCache, fingerprint_stmt
from .plan import BufferArena, ExecutionPlan

__all__ = [
    "Buffer",
    "BufferArena",
    "Counters",
    "DEFAULT_CACHE",
    "ExecutionPlan",
    "INTRINSICS",
    "Interpreter",
    "KernelCache",
    "fingerprint_stmt",
    "memory_level",
    "register_intrinsic",
]
