"""Execution runtime: buffers, the instrumented interpreter, counters."""

from .buffer import Buffer
from .counters import Counters
from .interpreter import INTRINSICS, Interpreter, memory_level, register_intrinsic

__all__ = [
    "Buffer",
    "Counters",
    "INTRINSICS",
    "Interpreter",
    "memory_level",
    "register_intrinsic",
]
