"""Reusable execution plans and buffer arenas for steady-state serving.

A :class:`~.executor.CompiledPipeline` is built once per *pipeline*;
an :class:`ExecutionPlan` is built once per *worker* and then run
thousands of times.  The plan moves every piece of per-call setup that
``CompiledPipeline.run`` used to repeat into one bind step:

* the compiled kernel is resolved from the kernel cache **once** (no
  per-call cache lookup, and the statement fingerprint — already
  memoized on the pipeline — is never recomputed);
* the ``{name}.stride.{d}`` environment dict is derived once per input
  *shape signature* and reused as the same dict object;
* input :class:`~.buffer.Buffer` wrappers are reused — a steady-state
  call only swaps each buffer's flat ``data`` view onto the new request
  array (zero-copy for contiguous, correctly-typed inputs);
* the output may be written into caller-provided storage (``out=``),
  making a steady-state call allocation-free on the ingest side.

The plan owns a :class:`BufferArena`, which pools what the *kernel*
allocates and re-derives per call:

* ``Allocate`` statements (tile accumulators, shuffle staging buffers)
  are recycled through a free-list instead of constructing a fresh
  zeroed :class:`Buffer` per loop iteration — a reused buffer is
  re-zeroed, so semantics are identical to a fresh allocation;
* tile-addressing index grids (``tile_index`` arithmetic) are cached
  per ``(stride, rows, cols)`` geometry;
* weight-derived shuffle operands (the Toeplitz matrix of
  ``ConvolutionShuffle``, the multiphase matrix of
  ``MultiphaseShuffle``, ``KWayInterleave`` re-layouts) are memoized
  **by value** — keyed on the source bytes — so a serving loop that
  applies the same filter to every request rebuilds the matrix once,
  not once per tile per request, while a request that *does* change
  the weights misses the memo and stays correct.

Every cached object is bit-identical to what the uncached path
computes, so arena runs produce bit-identical outputs; the serving
benchmark and test suite assert this on both backends.

Neither a plan nor its arena is thread-safe — create one per worker
thread (``CompiledPipeline.run_many`` and ``repro.service.Server`` do).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional, TYPE_CHECKING, Tuple

import numpy as np

from ..ir.stmt import MemoryType
from ..ir.types import DataType, TypeCode
from ..targets.bfloat16 import round_to_bfloat16
from .buffer import Buffer, StackedBuffer
from .faultpoints import fire
from .interpreter import Interpreter, tile_index

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .codegen import CompiledKernel
    from .executor import CompiledPipeline


def bind_inputs(inputs: dict):
    """Wrap a request map into named buffers.

    Keys are ``ImageParam`` objects (their declared dtype wins) or
    buffer names.  Returns ``(buffers, entries)`` where each entry is
    ``(key, buffer, array)`` in request order — the single input-
    wrapping rule shared by ``CompiledPipeline.run`` and the plan's
    bind step, so the two can never drift.
    """
    from ..frontend.func import ImageParam

    buffers: Dict[str, Buffer] = {}
    entries = []
    for key, array in inputs.items():
        name = key.name if isinstance(key, ImageParam) else str(key)
        dtype = key.dtype if isinstance(key, ImageParam) else None
        array = np.asarray(array)
        buf = Buffer.from_numpy(name, array, dtype=dtype)
        buffers[name] = buf
        entries.append((key, buf, array))
    return buffers, entries


def stride_env(buffers: Dict[str, Buffer]) -> dict:
    """``{name}.stride.{d}`` entries for *every* buffer — the output
    included, so kernels that address it through its strides do not
    hit an unbound variable."""
    env: dict = {}
    for name, buf in buffers.items():
        for d, stride in enumerate(buf.strides):
            if d > 0:
                env[f"{name}.stride.{d}"] = stride
    return env


class BufferArena:
    """A per-worker pool of kernel-internal allocations and operand memos.

    Passed to compiled kernels, which route every ``Allocate`` through
    :meth:`take`/:meth:`give` and every cacheable intrinsic through
    :meth:`tile_grid`/:meth:`memo`.  ``None`` (the default when running
    without a plan) makes kernels fall back to fresh allocations and
    uncached rebuilds — the exact pre-arena behavior.

    Not thread-safe: one arena per worker thread.
    """

    def __init__(self, memo_maxsize: int = 256) -> None:
        self.memo_maxsize = memo_maxsize
        self._free: Dict[tuple, List[Buffer]] = {}
        self._grids: Dict[Tuple[int, int, int], np.ndarray] = {}
        self._memo: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self.buffer_allocs = 0
        self.buffer_reuses = 0
        self.memo_hits = 0
        self.memo_misses = 0

    # -- pooled Allocate storage --------------------------------------------

    @staticmethod
    def _key(
        name: str, dtype: DataType, extents: tuple, memory_type: MemoryType
    ) -> tuple:
        return (name, dtype, tuple(int(e) for e in extents), memory_type)

    def take(
        self,
        name: str,
        dtype: DataType,
        extents: tuple,
        memory_type: MemoryType,
    ) -> Buffer:
        """A zeroed buffer — recycled when one of this shape was freed.

        Re-zeroing a recycled buffer keeps it indistinguishable from
        the fresh ``np.zeros`` allocation it replaces.
        """
        key = self._key(name, dtype, extents, memory_type)
        pool = self._free.get(key)
        if pool:
            buf = pool.pop()
            buf.data.fill(0)
            self.buffer_reuses += 1
            return buf
        fire("arena.alloc", name=name)
        self.buffer_allocs += 1
        return Buffer(
            name, dtype, key[2], memory_type=memory_type, is_external=False
        )

    def give(self, buf) -> None:
        """Return a buffer to the pool at the end of its Allocate scope.

        Stacked (batch-axis) buffers pool under a batch-qualified key so
        a ``[B, size]`` block is only ever recycled for the same B.
        """
        key = (buf.name, buf.dtype, buf.extents, buf.memory_type)
        if isinstance(buf, StackedBuffer):
            key = key + (buf.batch,)
        self._free.setdefault(key, []).append(buf)

    def take_batched(
        self,
        name: str,
        dtype: DataType,
        extents: tuple,
        memory_type: MemoryType,
        batch: int,
    ) -> StackedBuffer:
        """The batch-axis twin of :meth:`take`: a zeroed ``[batch, size]``
        stacked scope buffer, recycled per (shape, batch)."""
        key = self._key(name, dtype, extents, memory_type) + (int(batch),)
        pool = self._free.get(key)
        if pool:
            buf = pool.pop()
            buf.data.fill(0)
            self.buffer_reuses += 1
            return buf
        fire("arena.alloc", name=name)
        self.buffer_allocs += 1
        return StackedBuffer(
            name, dtype, key[2], memory_type=memory_type, batch=int(batch)
        )

    # -- derived-operand caches ---------------------------------------------

    def tile_grid(self, stride: int, rows: int, cols: int) -> np.ndarray:
        """The flat index grid of a ``rows x cols`` tile at base 0."""
        key = (stride, rows, cols)
        grid = self._grids.get(key)
        if grid is None:
            grid = self._grids[key] = tile_index(0, stride, rows, cols)
        return grid

    def memo(self, key: tuple, build: Callable[[], np.ndarray]) -> np.ndarray:
        """Value-keyed LRU memo for derived operands (treated immutable).

        ``key`` must capture everything the result depends on — the
        shuffle intrinsics key on the *bytes* of the source coefficients
        plus the geometry, so changing weights can never serve a stale
        matrix.
        """
        hit = self._memo.get(key)
        if hit is not None:
            self._memo.move_to_end(key)
            self.memo_hits += 1
            return hit
        self.memo_misses += 1
        value = build()
        self._memo[key] = value
        while len(self._memo) > self.memo_maxsize:
            self._memo.popitem(last=False)
        return value

    def stats(self) -> Dict[str, int]:
        return {
            "buffer_allocs": self.buffer_allocs,
            "buffer_reuses": self.buffer_reuses,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "pooled_buffers": sum(len(p) for p in self._free.values()),
            "cached_grids": len(self._grids),
            "memo_entries": len(self._memo),
        }


class ExecutionPlan:
    """A pipeline pre-bound for repeated same-shape execution.

    Created via :meth:`CompiledPipeline.plan
    <repro.runtime.executor.CompiledPipeline.plan>`.  The first
    :meth:`run` binds to the request's input shapes; subsequent calls
    with same-shaped inputs take the steady-state path: no statement
    fingerprinting, no kernel-cache lookup, no environment rebuild, no
    ``Buffer`` revalidation, and no input copy for contiguous
    correctly-typed arrays.  A call whose input shapes or dtypes differ
    transparently rebinds (``rebinds`` counts them).

    Not thread-safe — one plan per worker thread.
    """

    def __init__(
        self,
        pipeline: "CompiledPipeline",
        backend: str,
        arena: Optional[BufferArena] = None,
    ) -> None:
        self.pipeline = pipeline
        self.backend = backend
        self.lowered = pipeline.lowered
        self.output_name = pipeline.output_name
        self.output_dtype = pipeline.output_dtype
        self.output_extents = pipeline.output_extents
        self.arena = arena if arena is not None else BufferArena()
        self._out_np = self.output_dtype.to_numpy()
        self._out_shape = tuple(reversed(self.output_extents))
        self._out_size = (
            int(np.prod(self.output_extents)) if self.output_extents else 1
        )
        #: resolved once — steady-state runs never consult the cache
        self.kernel: Optional["CompiledKernel"] = None
        if backend == "compile":
            self.kernel = pipeline.kernel_cache.get(
                pipeline.lowered, key=pipeline.cache_key
            )
        # bound per input-shape signature
        self._buffers: Dict[str, Buffer] = {}
        self._env: dict = {}
        #: (key, buffer, shape, source dtype, needs bf16 rounding)
        self._ingest: Tuple[tuple, ...] = ()
        self._out_buffer: Optional[Buffer] = None
        self.runs = 0
        self.rebinds = 0

    # -- binding -------------------------------------------------------------

    def _bind(self, inputs: dict) -> None:
        """Full (slow-path) bind: wrap every input, derive the env."""
        buffers, entries = bind_inputs(inputs)
        out = Buffer(
            self.output_name,
            self.output_dtype,
            self.output_extents,
            is_external=True,
        )
        buffers[self.output_name] = out
        self._buffers = buffers
        self._env = stride_env(buffers)
        self._ingest = tuple(
            (
                key,
                buf,
                array.shape,
                array.dtype,
                buf.dtype.code is TypeCode.BFLOAT,
            )
            for key, buf, array in entries
        )
        self._out_buffer = out
        self.rebinds += 1

    def _fast_ingest(self, inputs: dict) -> bool:
        """Swap request arrays into the bound buffers; False on mismatch."""
        if len(inputs) != len(self._ingest):
            return False
        for key, buf, shape, src_dtype, needs_round in self._ingest:
            array = inputs.get(key)
            if (
                not isinstance(array, np.ndarray)
                or array.shape != shape
                or array.dtype != src_dtype
            ):
                return False
            if needs_round:
                buf.data = round_to_bfloat16(
                    np.asarray(array, dtype=np.float32).ravel()
                )
            elif array.dtype == buf.data.dtype and array.flags.c_contiguous:
                buf.data = array.reshape(-1)  # zero-copy view
            else:
                buf.data = np.asarray(array, dtype=buf.data.dtype).ravel()
        return True

    # -- execution -----------------------------------------------------------

    def run(
        self,
        inputs: Optional[dict] = None,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Run once; steady-state after the first same-shaped call.

        ``out``, when given, must be a writeable C-contiguous array of
        the output's numpy shape and dtype; the kernel then writes the
        caller's storage directly and ``out`` itself is returned.
        """
        inputs = inputs if inputs is not None else {}
        if self._out_buffer is None or not self._fast_ingest(inputs):
            self._bind(inputs)
        if out is not None:
            if not isinstance(out, np.ndarray):
                raise ValueError("out= must be a numpy array")
            if out.dtype != self._out_np or out.shape != self._out_shape:
                raise ValueError(
                    f"out= expects shape {self._out_shape} dtype"
                    f" {self._out_np}, got shape {out.shape} dtype"
                    f" {out.dtype}"
                )
            if not out.flags.c_contiguous or not out.flags.writeable:
                raise ValueError("out= must be C-contiguous and writeable")
            for array in inputs.values():
                # inputs are bound zero-copy, so an out= that overlaps
                # one would be zeroed before the kernel reads it —
                # reject instead of silently computing from zeros
                if isinstance(array, np.ndarray) and np.may_share_memory(
                    out, array
                ):
                    raise ValueError(
                        "out= must not share memory with an input array"
                    )
            flat = out.reshape(-1)
            flat.fill(0)  # match fresh-allocation semantics exactly
            result = out
        else:
            flat = np.zeros(self._out_size, dtype=self._out_np)
            result = flat.reshape(self._out_shape)
        self._out_buffer.data = flat
        if self.kernel is not None:
            fire("kernel.compile")
            self.kernel(self._buffers, self._env, arena=self.arena)
        else:
            fire("kernel.interpret")
            Interpreter(self._buffers, None).run(self.lowered.stmt, self._env)
        self.runs += 1
        return result

    def stats(self) -> Dict[str, int]:
        """Run/rebind counters plus the arena's pooling counters."""
        stats = {"runs": self.runs, "rebinds": self.rebinds}
        stats.update(self.arena.stats())
        return stats


class BatchingUnsupported(RuntimeError):
    """A request batch cannot take the batch-axis path.

    Raised by :class:`BatchedExecutionPlan` when the bucket is ragged
    (shapes/dtypes differ across requests), a request is not a plain
    ndarray mapping, or the statement has no batch-axis kernel for the
    bucket's stacked set (e.g. per-request weights feeding a shuffle
    constructor).  Callers — ``CompiledPipeline.run_many`` and
    ``repro.service.Server`` — catch it and fall back to the looped
    per-request path, so it is a routing signal, not an error.
    """


class BatchedExecutionPlan:
    """A pipeline pre-bound to run a whole shape bucket per kernel call.

    Where :class:`ExecutionPlan` runs one request at a time, this plan
    stages a batch of same-shaped requests into contiguous ``[B, size]``
    stacked buffers, invokes one batch-axis kernel
    (:func:`repro.runtime.codegen.compile_batched_stmt`), and scatters
    the stacked output back into per-request views.  Inputs whose array
    is the *same object* across every request of a batch — the serving
    idiom for weights — are bound as plain shared buffers, so their
    derived shuffle operands are computed once per batch by
    construction.

    The compiled kernels are B-agnostic: one kernel serves every batch
    size of a bucket, and only a change in shapes, dtypes, or the
    shared/stacked split rebinds (which also drops all previously grown
    staging storage — stale staging from an old shape is never reused).

    Not thread-safe — callers serialize access (``Server`` holds a
    lock; ``run_many`` uses one plan under a lock).
    """

    def __init__(
        self,
        pipeline: "CompiledPipeline",
        arena: Optional[BufferArena] = None,
    ) -> None:
        self.pipeline = pipeline
        self.output_name = pipeline.output_name
        self.output_dtype = pipeline.output_dtype
        self.output_extents = pipeline.output_extents
        self.arena = arena if arena is not None else BufferArena()
        self._out_np = self.output_dtype.to_numpy()
        self._out_shape = tuple(reversed(self.output_extents))
        self._out_size = (
            int(np.prod(self.output_extents)) if self.output_extents else 1
        )
        self.kernel: Optional["CompiledKernel"] = None
        self._buffers: Dict[str, object] = {}
        self._env: dict = {}
        #: (key, buffer, shape, source dtype, needs bf16 rounding)
        self._shared: Tuple[tuple, ...] = ()
        #: (key, stacked buffer, shape, source dtype, needs bf16
        #: rounding, staging numpy dtype)
        self._stacked: Tuple[tuple, ...] = ()
        #: name -> [capacity, size] staging block (grown, never shrunk)
        self._staging: Dict[str, np.ndarray] = {}
        self._out_sb: Optional[StackedBuffer] = None
        self.runs = 0
        self.rebinds = 0
        self.batched_requests = 0

    # -- binding -------------------------------------------------------------

    def _bind(self, requests: List[dict]) -> None:
        """Full bind against the first request's geometry.

        Classifies each input as *shared* (same array object in every
        request) or *stacked*, resolves the batch-axis kernel for that
        split, and rebuilds all staging storage from scratch — a rebind
        on shape change therefore also invalidates any batched staging
        left over from the previous geometry.
        """
        first = requests[0]
        buffers, entries = bind_inputs(first)
        out = Buffer(
            self.output_name,
            self.output_dtype,
            self.output_extents,
            is_external=True,
        )
        buffers[self.output_name] = out
        env = stride_env(buffers)
        many = len(requests) > 1
        shared = []
        stacked = []
        stacked_names = {self.output_name}
        kernel_buffers: Dict[str, object] = {}
        for key, buf, array in entries:
            needs_round = buf.dtype.code is TypeCode.BFLOAT
            is_shared = not many or all(
                r.get(key) is array for r in requests[1:]
            )
            if is_shared:
                shared.append(
                    (key, buf, array.shape, array.dtype, needs_round)
                )
                kernel_buffers[buf.name] = buf
            else:
                sbuf = StackedBuffer.like(buf, len(requests))
                stacked.append(
                    (
                        key,
                        sbuf,
                        array.shape,
                        array.dtype,
                        needs_round,
                        buf.dtype.to_numpy(),
                    )
                )
                stacked_names.add(buf.name)
                kernel_buffers[buf.name] = sbuf
        out_sb = StackedBuffer.like(out, len(requests))
        kernel_buffers[self.output_name] = out_sb
        kernel = self.pipeline.batched_kernel(frozenset(stacked_names))
        if kernel is None:
            raise BatchingUnsupported(
                "no batch-axis kernel for stacked buffers "
                + ", ".join(sorted(stacked_names))
            )
        self.kernel = kernel
        self._buffers = kernel_buffers
        self._env = env
        self._shared = tuple(shared)
        self._stacked = tuple(stacked)
        self._staging = {}
        self._out_sb = out_sb
        self.rebinds += 1

    def _stage(self, sbuf: StackedBuffer, batch: int, np_dtype) -> np.ndarray:
        block = self._staging.get(sbuf.name)
        if block is None or block.shape[0] < batch:
            block = np.empty((batch, sbuf.size), dtype=np_dtype)
            self._staging[sbuf.name] = block
        return block[:batch]

    def _ingest(self, requests: List[dict]) -> bool:
        """Stage a batch into the bound buffers; False on any mismatch.

        Validates every request before copying anything, so a mismatch
        never leaves a half-staged batch behind.
        """
        if self._out_sb is None:
            return False
        batch = len(requests)
        n_keys = len(self._shared) + len(self._stacked)
        for r in requests:
            if len(r) != n_keys:
                return False
        for key, buf, shape, src_dtype, _ in self._shared:
            array = requests[0].get(key)
            if (
                not isinstance(array, np.ndarray)
                or array.shape != shape
                or array.dtype != src_dtype
            ):
                return False
            for r in requests[1:]:
                if r.get(key) is not array:
                    return False
        for key, sbuf, shape, src_dtype, _, _ in self._stacked:
            for r in requests:
                array = r.get(key)
                if (
                    not isinstance(array, np.ndarray)
                    or array.shape != shape
                    or array.dtype != src_dtype
                ):
                    return False
        # shared inputs: swap the data view, exactly like ExecutionPlan
        for key, buf, shape, src_dtype, needs_round in self._shared:
            array = requests[0][key]
            if needs_round:
                buf.data = round_to_bfloat16(
                    np.asarray(array, dtype=np.float32).ravel()
                )
            elif array.dtype == buf.data.dtype and array.flags.c_contiguous:
                buf.data = array.reshape(-1)  # zero-copy view
            else:
                buf.data = np.asarray(array, dtype=buf.data.dtype).ravel()
        # stacked inputs: one contiguous [B, size] staging block; row b
        # holds exactly what request b's per-request Buffer would hold
        for key, sbuf, shape, src_dtype, needs_round, np_dtype in (
            self._stacked
        ):
            block = self._stage(sbuf, batch, np_dtype)
            for b, r in enumerate(requests):
                block[b] = r[key].reshape(-1)
            if needs_round:
                block[:] = round_to_bfloat16(block)
            sbuf.data = block
            sbuf.batch = batch
        return True

    # -- execution -----------------------------------------------------------

    def run(
        self,
        requests: List[dict],
        out: Optional[np.ndarray] = None,
    ) -> List[np.ndarray]:
        """Run a whole bucket in one kernel call.

        Returns per-request output arrays (views of one stacked block).
        ``out``, when given, must be a writeable C-contiguous
        ``[B, *output_shape]`` array of the output dtype; the kernel
        writes it directly and the returned views alias it.

        Raises :class:`BatchingUnsupported` when the batch cannot be
        staged (ragged shapes, non-array requests) or no batch-axis
        kernel exists for its shared/stacked split.
        """
        requests = list(requests)
        batch = len(requests)
        if batch == 0:
            return []
        for r in requests:
            if not isinstance(r, dict):
                raise BatchingUnsupported("requests must be input dicts")
        if not self._ingest(requests):
            self._bind(requests)
            if not self._ingest(requests):
                raise BatchingUnsupported(
                    "ragged batch: request shapes/dtypes differ"
                )
        out_shape = (batch,) + self._out_shape
        if out is not None:
            if not isinstance(out, np.ndarray):
                raise ValueError("out= must be a numpy array")
            if out.dtype != self._out_np or out.shape != out_shape:
                raise ValueError(
                    f"out= expects shape {out_shape} dtype {self._out_np},"
                    f" got shape {out.shape} dtype {out.dtype}"
                )
            if not out.flags.c_contiguous or not out.flags.writeable:
                raise ValueError("out= must be C-contiguous and writeable")
            for r in requests:
                for array in r.values():
                    if isinstance(
                        array, np.ndarray
                    ) and np.may_share_memory(out, array):
                        raise ValueError(
                            "out= must not share memory with an input array"
                        )
            flat = out.reshape(batch, -1)
            flat.fill(0)  # match fresh-allocation semantics exactly
            results = [out[b] for b in range(batch)]
        else:
            flat = np.zeros((batch, self._out_size), dtype=self._out_np)
            results = [
                flat[b].reshape(self._out_shape) for b in range(batch)
            ]
        self._out_sb.data = flat
        self._out_sb.batch = batch
        self._env["batch.size"] = batch
        fire("kernel.compile", batched=True)
        self.kernel(self._buffers, self._env, arena=self.arena)
        self.runs += 1
        self.batched_requests += batch
        return results

    def stats(self) -> Dict[str, int]:
        """Run/rebind/request counters plus the arena's counters."""
        stats = {
            "runs": self.runs,
            "rebinds": self.rebinds,
            "batched_requests": self.batched_requests,
        }
        stats.update(self.arena.stats())
        return stats
